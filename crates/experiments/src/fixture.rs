//! Shared dataset fixtures for the experiments.

use soi_data::Dataset;
use soi_datagen::{berlin, generate, london, vienna, CityConfig, GroundTruth};
use soi_index::{PhotoGrid, PoiIndex};
use std::time::{Duration, Instant};

/// The paper's distance threshold ε = 0.0005° (≈ 55 m).
pub const EPS: f64 = 0.0005;

/// The paper's neighbourhood radius ρ = 0.0001°.
pub const RHO: f64 = 0.0001;

/// Grid cell size of the POI index (the paper leaves it free; 2ε keeps the
/// ε-dilation of a segment to a handful of cells).
pub const POI_CELL_SIZE: f64 = 2.0 * EPS;

/// Grid cell size of the dataset-wide photo grid.
pub const PHOTO_CELL_SIZE: f64 = 2.0 * EPS;

/// A generated city with its indexes built.
pub struct CityFixture {
    /// The generated dataset.
    pub dataset: Dataset,
    /// Planted ground truth.
    pub truth: GroundTruth,
    /// The spatio-textual POI index.
    pub index: PoiIndex,
    /// The dataset-wide photo grid.
    pub photo_grid: PhotoGrid,
}

impl CityFixture {
    /// Generates the dataset for `config` and builds its indexes.
    pub fn load(config: &CityConfig) -> Self {
        let (dataset, truth) = generate(config);
        let index = PoiIndex::build(&dataset.network, &dataset.pois, POI_CELL_SIZE);
        let photo_grid = PhotoGrid::build(&dataset.network, &dataset.photos, PHOTO_CELL_SIZE);
        Self {
            dataset,
            truth,
            index,
            photo_grid,
        }
    }

    /// The city name.
    pub fn name(&self) -> &str {
        &self.dataset.name
    }
}

/// Reads the dataset scale from `SOI_SCALE` (default 0.2 — dense enough
/// for the SOI bounds to prune, as on the paper's full-size datasets).
pub fn default_scale() -> f64 {
    std::env::var("SOI_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|s| *s > 0.0 && *s <= 1.0)
        .unwrap_or(0.2)
}

/// Loads the three standard cities (London, Berlin, Vienna) in parallel.
pub fn standard_cities(scale: f64) -> Vec<CityFixture> {
    let configs = [london(scale), berlin(scale), vienna(scale)];
    let mut slots: Vec<Option<CityFixture>> = (0..configs.len()).map(|_| None).collect();
    crossbeam::thread::scope(|s| {
        for (slot, config) in slots.iter_mut().zip(configs.iter()) {
            s.spawn(move |_| {
                *slot = Some(CityFixture::load(config));
            });
        }
    })
    .expect("city loader thread panicked");
    slots.into_iter().map(|s| s.expect("loaded")).collect()
}

/// Runs `f` `reps` times and returns the median wall-clock duration together
/// with the last return value.
pub fn median_time<T>(reps: usize, mut f: impl FnMut() -> T) -> (Duration, T) {
    assert!(reps >= 1);
    let mut times = Vec::with_capacity(reps);
    let mut last = None;
    for _ in 0..reps {
        let start = Instant::now();
        last = Some(f());
        times.push(start.elapsed());
    }
    times.sort();
    (times[times.len() / 2], last.expect("reps >= 1"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_loads_tiny_city() {
        let fixture = CityFixture::load(&vienna(0.005));
        assert_eq!(fixture.name(), "vienna");
        assert!(fixture.dataset.network.num_segments() > 0);
        assert!(fixture.index.num_occupied_cells() > 0);
    }

    #[test]
    fn default_scale_parses_env() {
        // Cannot mutate the environment safely in tests; just check range.
        let s = default_scale();
        assert!(s > 0.0 && s <= 1.0);
    }

    #[test]
    fn median_time_returns_value() {
        let (d, v) = median_time(3, || 41 + 1);
        assert_eq!(v, 42);
        assert!(d.as_nanos() < 1_000_000_000);
    }
}
