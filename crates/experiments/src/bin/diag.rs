//! Work-counter diagnostics for the SOI algorithm (development tool).

fn main() {
    let _profile = soi_experiments::profile_from_env();
    let cities = soi_experiments::standard_cities(soi_experiments::default_scale());
    let f = &cities[0];
    for k in [10usize, 50, 100, 200] {
        let q = soi_core::soi::SoiQuery::new(
            f.dataset.query_keywords(&["religion", "education", "food"]),
            k,
            0.0005,
        )
        .unwrap();
        let t = std::time::Instant::now();
        let out = soi_core::soi::run_soi(
            &f.dataset.network,
            &f.dataset.pois,
            &f.index,
            &q,
            &soi_core::soi::SoiConfig::default(),
        )
        .expect("valid query");
        let el = t.elapsed();
        let s = &out.stats;
        println!("k={k}: {el:?} construct={:?} filter={:?} refine={:?} accesses={} seen={} bounded_out={} cell_visits={} total_segs={}",
            s.timer.duration("construction"), s.timer.duration("filtering"),
            s.timer.duration("refinement"),
            s.accesses, s.segments_seen, s.segments_bounded_out, s.cell_visits,
            f.dataset.network.num_segments());
    }
}
