//! Regenerates the paper's Table2 on the synthetic cities.

fn main() {
    let scale = soi_experiments::default_scale();
    eprintln!("loading cities at scale {scale} (set SOI_SCALE to change)...");
    let cities = soi_experiments::standard_cities(scale);
    let report = soi_experiments::experiments::table2::run(&cities);
    println!("{}", report.to_markdown());
}
