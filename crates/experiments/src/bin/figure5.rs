//! Regenerates the paper's Figure5 on the synthetic cities.

fn main() {
    let scale = soi_experiments::default_scale();
    soi_experiments::announce_loading(scale);
    let _profile = soi_experiments::profile_from_env();
    let cities = soi_experiments::standard_cities(scale);
    let report = soi_experiments::experiments::figure5::run(&cities);
    println!("{}", report.to_markdown());
}
