//! Table 4: relevant POIs per query keyword count.

use crate::experiments::Report;
use crate::fixture::CityFixture;
use crate::paper::TABLE4;
use crate::table::TextTable;

/// The paper's benchmark keyword prefix.
pub const KEYWORDS: [&str; 4] = ["religion", "education", "food", "services"];

/// Counts POIs relevant to the cumulative keyword prefixes |Ψ| = 1..4.
pub fn run(cities: &[CityFixture]) -> Report {
    let mut t = TextTable::new([
        "Dataset",
        "|Ψ|=1",
        "|Ψ|=2",
        "|Ψ|=3",
        "|Ψ|=4",
        "paper (scaled %)",
    ]);
    for fixture in cities {
        let mut row = vec![fixture.name().to_string()];
        let mut ours_pct = Vec::new();
        for i in 1..=4 {
            let q = fixture.dataset.query_keywords(&KEYWORDS[..i]);
            let count = fixture.dataset.pois.count_relevant(&q);
            ours_pct.push(100.0 * count as f64 / fixture.dataset.pois.len() as f64);
            row.push(count.to_string());
        }
        let paper_pct = TABLE4
            .iter()
            .find(|(c, _)| *c == fixture.name())
            .map(|(_, counts)| {
                let total = crate::paper::TABLE1
                    .iter()
                    .find(|r| r.city == fixture.name())
                    .map(|r| r.pois as f64)
                    .unwrap_or(1.0);
                counts
                    .iter()
                    .map(|&c| format!("{:.1}", 100.0 * c as f64 / total))
                    .collect::<Vec<_>>()
                    .join("/")
            })
            .unwrap_or_else(|| "-".into());
        row.push(format!(
            "ours {} vs paper {}",
            ours_pct
                .iter()
                .map(|p| format!("{p:.1}"))
                .collect::<Vec<_>>()
                .join("/"),
            paper_pct
        ));
        t.row(row);
    }
    let body = format!(
        "Relevant POIs for the cumulative keyword prefix (religion, \
         education, food, services). The absolute counts scale with the \
         dataset; the preserved feature is the selectivity growth pattern \
         (each keyword adds a progressively larger slice, ~0.5% → ~10%).\n\n{}",
        t.to_markdown()
    );
    Report {
        id: "Table 4",
        title: "Relevant POIs according to |Ψ|",
        body,
    }
}
