//! One runner per table/figure of the paper's evaluation section.

pub mod figure4;
pub mod figure5;
pub mod figure6;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;

/// A rendered experiment report.
#[derive(Debug, Clone)]
pub struct Report {
    /// Short identifier, e.g. `"Table 2"`.
    pub id: &'static str,
    /// Human-readable title.
    pub title: &'static str,
    /// Markdown body (tables plus commentary).
    pub body: String,
}

impl Report {
    /// Renders the report as a markdown section.
    pub fn to_markdown(&self) -> String {
        format!("## {} — {}\n\n{}\n", self.id, self.title, self.body)
    }
}

/// Helpers shared by the describe-side experiments.
pub(crate) mod describe_setup {
    use crate::fixture::{CityFixture, EPS, RHO};
    use soi_common::StreetId;
    use soi_core::describe::{ContextBuilder, PhiSource, StreetContext};
    use soi_core::soi::{run_soi, SoiConfig, SoiQuery};

    /// The top-1 "shop" street of a city (falls back to the first planted
    /// destination if the query returns nothing).
    pub fn top_shop_street(fixture: &CityFixture) -> StreetId {
        let query =
            SoiQuery::new(fixture.dataset.query_keywords(&["shop"]), 1, EPS).expect("valid query");
        let out = run_soi(
            &fixture.dataset.network,
            &fixture.dataset.pois,
            &fixture.index,
            &query,
            &SoiConfig::default(),
        )
        .expect("valid query");
        out.results
            .first()
            .map(|r| r.street)
            .or_else(|| fixture.truth.for_category("shop").first().copied())
            .expect("city has streets")
    }

    /// Builds the description context for a street with the paper's
    /// parameters (ε = 0.0005, ρ = 0.0001, Φs from photos).
    pub fn context_for(fixture: &CityFixture, street: StreetId) -> StreetContext {
        ContextBuilder {
            network: &fixture.dataset.network,
            photos: &fixture.dataset.photos,
            photo_grid: &fixture.photo_grid,
            pois: Some(&fixture.dataset.pois),
            eps: EPS,
            rho: RHO,
            phi_source: PhiSource::Photos,
        }
        .build(street)
        .expect("fixture street exists")
    }
}
