//! Figure 4: SOI vs BL runtime, varying k and |Ψ|.
//!
//! The SOI side runs through the batched [`QueryEngine`]: per-configuration
//! latency is measured on a single-worker engine (identical code path and
//! results as a direct `run_soi` call, plus scratch reuse), and the whole
//! sweep is then fanned out once per fixture to report batch throughput.

use crate::experiments::table4::KEYWORDS;
use crate::experiments::Report;
use crate::fixture::{median_time, CityFixture, EPS};
use crate::paper::FIG4_SPEEDUP_VARY_K;
use crate::table::{fmt_duration, TextTable};
use soi_core::soi::{run_baseline, SoiQuery, StreetAggregate};
use soi_engine::{QueryContext, QueryEngine};
use std::sync::Arc;
use std::time::Duration;

/// Values of k swept in Fig. 4(a–c).
pub const K_VALUES: [usize; 5] = [10, 20, 50, 100, 200];
/// Default k when sweeping |Ψ| (Fig. 4(d–f)).
pub const DEFAULT_K: usize = 50;
/// Default |Ψ| when sweeping k.
pub const DEFAULT_NUM_KEYWORDS: usize = 3;
/// Timed repetitions per configuration (median reported).
const REPS: usize = 3;

struct Measurement {
    bl: Duration,
    soi_total: Duration,
    construction: Duration,
    filtering: Duration,
    refinement: Duration,
}

fn soi_query(fixture: &CityFixture, k: usize, num_keywords: usize) -> SoiQuery {
    let keywords = fixture.dataset.query_keywords(&KEYWORDS[..num_keywords]);
    SoiQuery::new(keywords, k, EPS).expect("valid query")
}

fn measure(
    fixture: &CityFixture,
    engine: &QueryEngine,
    ctx: &Arc<QueryContext<'_>>,
    query: &SoiQuery,
) -> Measurement {
    let d = &fixture.dataset;

    let (bl, _) = median_time(REPS, || {
        fixture.index.clear_epsilon_cache();
        run_baseline(
            &d.network,
            &d.pois,
            &fixture.index,
            query,
            StreetAggregate::Max,
        )
    });
    let (soi_total, batch) = median_time(REPS, || {
        fixture.index.clear_epsilon_cache();
        engine.run_soi_batch(ctx, std::slice::from_ref(query))
    });
    let outcome = batch.results.into_iter().next().expect("one result");
    let outcome = outcome.expect("valid query");
    let timer = &outcome.stats.timer;
    Measurement {
        bl,
        soi_total,
        construction: timer.duration("construction"),
        filtering: timer.duration("filtering"),
        refinement: timer.duration("refinement"),
    }
}

fn push_row(t: &mut TextTable, fixture: &CityFixture, label: String, m: &Measurement) {
    let speedup = m.bl.as_secs_f64() / m.soi_total.as_secs_f64().max(1e-12);
    t.row([
        fixture.name().to_string(),
        label,
        fmt_duration(m.bl),
        fmt_duration(m.soi_total),
        fmt_duration(m.construction),
        fmt_duration(m.filtering),
        fmt_duration(m.refinement),
        format!("{speedup:.1}x"),
    ]);
}

/// Runs the six subplots of Figure 4 and reports the timing tables.
pub fn run(cities: &[CityFixture]) -> Report {
    let header = [
        "City",
        "Setting",
        "BL",
        "SOI total",
        "SOI construct",
        "SOI filter",
        "SOI refine",
        "Speedup",
    ];
    // Per-configuration latency on one worker (timing fidelity); the batch
    // fan-out below uses the auto-resolved worker count.
    let latency_engine = QueryEngine::new(1);
    let batch_engine = QueryEngine::default();

    let mut vary_k = TextTable::new(header);
    let mut vary_psi = TextTable::new(header);
    let mut throughput = TextTable::new(["City", "Queries", "Workers", "Batch wall", "QPS"]);
    for fixture in cities {
        let ctx = Arc::new(QueryContext::new(
            &fixture.dataset.network,
            &fixture.dataset.pois,
            &fixture.index,
        ));
        let mut sweep: Vec<SoiQuery> = Vec::new();
        for &k in &K_VALUES {
            let query = soi_query(fixture, k, DEFAULT_NUM_KEYWORDS);
            let m = measure(fixture, &latency_engine, &ctx, &query);
            push_row(&mut vary_k, fixture, format!("k={k}"), &m);
            sweep.push(query);
        }
        for num_kw in 1..=4usize {
            let query = soi_query(fixture, DEFAULT_K, num_kw);
            let m = measure(fixture, &latency_engine, &ctx, &query);
            push_row(&mut vary_psi, fixture, format!("|Ψ|={num_kw}"), &m);
            sweep.push(query);
        }
        // The full sweep as one batch: workers pull queries off a shared
        // queue, results stay in input order.
        let batch = batch_engine.run_soi_batch(&ctx, &sweep);
        throughput.row([
            fixture.name().to_string(),
            batch.stats.queries.to_string(),
            batch.stats.threads.to_string(),
            fmt_duration(batch.stats.wall_time),
            format!("{:.0}", batch.stats.queries_per_second()),
        ]);
    }

    let paper_claims: Vec<String> = FIG4_SPEEDUP_VARY_K
        .iter()
        .map(|(c, lo, hi)| format!("{c} {lo}–{hi}x"))
        .collect();
    let body = format!(
        "Median of {REPS} runs, ε-augmented maps rebuilt per run (as at \
         query time in the paper). SOI time is split into the paper's three \
         phases; SOI queries run through the batched engine (one worker for \
         the per-configuration latencies).\n\n\
         ### Fig. 4(a–c): varying k (|Ψ| = {DEFAULT_NUM_KEYWORDS})\n\n{}\n\
         ### Fig. 4(d–f): varying |Ψ| (k = {DEFAULT_K})\n\n{}\n\
         ### Batched engine throughput (full sweep per city)\n\n{}\n\
         Paper's claims: SOI beats BL by {} when varying k; the |Ψ| sweep \
         narrows the gap as selectivity drops (1.1x–18x in the paper); BL is \
         insensitive to both parameters while SOI's filtering work grows \
         with |Ψ|.\n",
        vary_k.to_markdown(),
        vary_psi.to_markdown(),
        throughput.to_markdown(),
        paper_claims.join(", "),
    );
    Report {
        id: "Figure 4",
        title: "k-SOI runtime: SOI vs BL",
        body,
    }
}
