//! Figure 4: SOI vs BL runtime, varying k and |Ψ|.

use crate::experiments::table4::KEYWORDS;
use crate::experiments::Report;
use crate::fixture::{median_time, CityFixture, EPS};
use crate::paper::FIG4_SPEEDUP_VARY_K;
use crate::table::{fmt_duration, TextTable};
use soi_core::soi::{run_baseline, run_soi, SoiConfig, SoiQuery, StreetAggregate};
use std::time::Duration;

/// Values of k swept in Fig. 4(a–c).
pub const K_VALUES: [usize; 5] = [10, 20, 50, 100, 200];
/// Default k when sweeping |Ψ| (Fig. 4(d–f)).
pub const DEFAULT_K: usize = 50;
/// Default |Ψ| when sweeping k.
pub const DEFAULT_NUM_KEYWORDS: usize = 3;
/// Timed repetitions per configuration (median reported).
const REPS: usize = 3;

struct Measurement {
    bl: Duration,
    soi_total: Duration,
    construction: Duration,
    filtering: Duration,
    refinement: Duration,
}

fn measure(fixture: &CityFixture, k: usize, num_keywords: usize) -> Measurement {
    let keywords = fixture.dataset.query_keywords(&KEYWORDS[..num_keywords]);
    let query = SoiQuery::new(keywords, k, EPS).expect("valid query");
    let d = &fixture.dataset;

    let (bl, _) = median_time(REPS, || {
        fixture.index.clear_epsilon_cache();
        run_baseline(
            &d.network,
            &d.pois,
            &fixture.index,
            &query,
            StreetAggregate::Max,
        )
    });
    let (soi_total, outcome) = median_time(REPS, || {
        fixture.index.clear_epsilon_cache();
        run_soi(
            &d.network,
            &d.pois,
            &fixture.index,
            &query,
            &SoiConfig::default(),
        )
    });
    let outcome = outcome.expect("valid query");
    let timer = &outcome.stats.timer;
    Measurement {
        bl,
        soi_total,
        construction: timer.duration("construction"),
        filtering: timer.duration("filtering"),
        refinement: timer.duration("refinement"),
    }
}

fn push_row(t: &mut TextTable, fixture: &CityFixture, label: String, m: &Measurement) {
    let speedup = m.bl.as_secs_f64() / m.soi_total.as_secs_f64().max(1e-12);
    t.row([
        fixture.name().to_string(),
        label,
        fmt_duration(m.bl),
        fmt_duration(m.soi_total),
        fmt_duration(m.construction),
        fmt_duration(m.filtering),
        fmt_duration(m.refinement),
        format!("{speedup:.1}x"),
    ]);
}

/// Runs the six subplots of Figure 4 and reports the timing tables.
pub fn run(cities: &[CityFixture]) -> Report {
    let header = [
        "City",
        "Setting",
        "BL",
        "SOI total",
        "SOI construct",
        "SOI filter",
        "SOI refine",
        "Speedup",
    ];
    let mut vary_k = TextTable::new(header);
    for fixture in cities {
        for &k in &K_VALUES {
            let m = measure(fixture, k, DEFAULT_NUM_KEYWORDS);
            push_row(&mut vary_k, fixture, format!("k={k}"), &m);
        }
    }
    let mut vary_psi = TextTable::new(header);
    for fixture in cities {
        for num_kw in 1..=4usize {
            let m = measure(fixture, DEFAULT_K, num_kw);
            push_row(&mut vary_psi, fixture, format!("|Ψ|={num_kw}"), &m);
        }
    }

    let paper_claims: Vec<String> = FIG4_SPEEDUP_VARY_K
        .iter()
        .map(|(c, lo, hi)| format!("{c} {lo}–{hi}x"))
        .collect();
    let body = format!(
        "Median of {REPS} runs, ε-augmented maps rebuilt per run (as at \
         query time in the paper). SOI time is split into the paper's three \
         phases.\n\n\
         ### Fig. 4(a–c): varying k (|Ψ| = {DEFAULT_NUM_KEYWORDS})\n\n{}\n\
         ### Fig. 4(d–f): varying |Ψ| (k = {DEFAULT_K})\n\n{}\n\
         Paper's claims: SOI beats BL by {} when varying k; the |Ψ| sweep \
         narrows the gap as selectivity drops (1.1x–18x in the paper); BL is \
         insensitive to both parameters while SOI's filtering work grows \
         with |Ψ|.\n",
        vary_k.to_markdown(),
        vary_psi.to_markdown(),
        paper_claims.join(", "),
    );
    Report {
        id: "Figure 4",
        title: "k-SOI runtime: SOI vs BL",
        body,
    }
}
