//! Table 3: objective scores of the nine selection methods.

use crate::experiments::describe_setup::{context_for, top_shop_street};
use crate::experiments::Report;
use crate::fixture::CityFixture;
use crate::paper::TABLE3;
use crate::table::TextTable;
use soi_core::describe::{objective, st_rel_div, DescribeParams, MethodSpec};

/// Photos per summary (the paper's Fig. 3 summaries use 3–4 photos; we use
/// 5 to give the objective more signal).
const SUMMARY_K: usize = 5;

/// For the top "shop" SOI of each city, selects a photo summary with each
/// of the nine methods and scores all selections with the balanced
/// objective (Eq. 2, λ = w = 0.5), normalised by ST_Rel+Div's score.
pub fn run(cities: &[CityFixture]) -> Report {
    let eval = DescribeParams::new(SUMMARY_K, 0.5, 0.5).expect("valid");

    // Per city: evaluate every method.
    let mut scores: Vec<Vec<f64>> = Vec::new(); // [method][city]
    for _ in MethodSpec::all() {
        scores.push(vec![0.0; cities.len()]);
    }
    for (ci, fixture) in cities.iter().enumerate() {
        let street = top_shop_street(fixture);
        let ctx = context_for(fixture, street);
        for (mi, method) in MethodSpec::all().iter().enumerate() {
            let params = method.params(SUMMARY_K, 0.5, 0.5);
            let out = st_rel_div(&ctx, &fixture.dataset.photos, &params).expect("valid params");
            scores[mi][ci] = objective(&ctx, &fixture.dataset.photos, &eval, &out.selected);
        }
    }

    // Normalise by ST_Rel+Div (last method).
    let reference = scores.last().expect("nine methods").clone();
    let mut t = TextTable::new({
        let mut h = vec!["Method".to_string()];
        for c in cities {
            h.push(format!("{} (ours)", c.name()));
            h.push(format!("{} (paper)", c.name()));
        }
        h
    });
    for (mi, method) in MethodSpec::all().iter().enumerate() {
        let mut row = vec![method.name().to_string()];
        let paper_row = TABLE3.iter().find(|(m, _)| *m == method.name());
        for (ci, _) in cities.iter().enumerate() {
            let normalised = if reference[ci] > 0.0 {
                scores[mi][ci] / reference[ci]
            } else {
                0.0
            };
            row.push(format!("{normalised:.3}"));
            row.push(paper_row.map_or("-".into(), |(_, vals)| {
                vals.get(ci).map_or("-".into(), |v| format!("{v:.3}"))
            }));
        }
        t.row(row);
    }

    let body = format!(
        "Each method selects a {SUMMARY_K}-photo summary of the top \"shop\" \
         SOI per city; all summaries are scored with the balanced objective \
         (Eq. 2, λ = 0.5, w = 0.5) and normalised by ST_Rel+Div's score. \
         The reproduced claim: ST_Rel+Div attains the maximum (1.000) in \
         every city, relevance-only methods trail badly, and there is no \
         consistent runner-up.\n\n{}",
        t.to_markdown()
    );
    Report {
        id: "Table 3",
        title: "Objective scores of the nine photo-selection methods",
        body,
    }
}
