//! Table 1: dataset statistics.

use crate::experiments::Report;
use crate::fixture::CityFixture;
use crate::paper::{METERS_PER_DEGREE, TABLE1};
use crate::table::TextTable;
use soi_network::NetworkStats;

/// Regenerates Table 1 for the synthetic cities, alongside the paper's
/// numbers for the real datasets.
pub fn run(cities: &[CityFixture]) -> Report {
    let mut t = TextTable::new([
        "Dataset",
        "Segments (ours)",
        "Segments (paper)",
        "Min segm. m (ours)",
        "Min segm. m (paper)",
        "Max segm. m (ours)",
        "Max segm. m (paper)",
        "POIs (ours)",
        "POIs (paper)",
        "Photos (ours)",
    ]);
    for fixture in cities {
        let stats = NetworkStats::of(&fixture.dataset.network);
        let paper = TABLE1.iter().find(|r| r.city == fixture.name());
        t.row([
            fixture.name().to_string(),
            stats.num_segments.to_string(),
            paper.map_or("-".into(), |p| p.segments.to_string()),
            format!("{:.2}", stats.min_segment_len * METERS_PER_DEGREE),
            paper.map_or("-".into(), |p| format!("{:.2}", p.min_len_m)),
            format!("{:.2}", stats.max_segment_len * METERS_PER_DEGREE),
            paper.map_or("-".into(), |p| format!("{:.2}", p.max_len_m)),
            fixture.dataset.pois.len().to_string(),
            paper.map_or("-".into(), |p| p.pois.to_string()),
            fixture.dataset.photos.len().to_string(),
        ]);
    }
    let body = format!(
        "Synthetic datasets generated at the configured scale; the paper \
         columns show the full-size real datasets. The preserved features \
         are the relative city sizes, the POI-per-segment ratios, and the \
         segment-length spread (sub-metre minima from breakpoints, \
         kilometre-scale maxima from avenues).\n\n{}",
        t.to_markdown()
    );
    Report {
        id: "Table 1",
        title: "Datasets used in the evaluation",
        body,
    }
}
