//! Figure 6: ST_Rel+Div vs BL runtime, varying k, λ, and w.
//!
//! The ST_Rel+Div side runs through the batched [`QueryEngine`]: per-setting
//! latency is measured on a single-worker engine (identical code path and
//! results as a direct `st_rel_div` call, plus scratch reuse), and the whole
//! parameter sweep is then fanned out once per city to report batch wall
//! time.

use crate::experiments::describe_setup::{context_for, top_shop_street};
use crate::experiments::Report;
use crate::fixture::{median_time, CityFixture};
use crate::paper::FIG6_SPEEDUP_RANGE;
use crate::table::{fmt_duration, TextTable};
use soi_core::describe::{greedy_select, DescribeParams, StreetContext};
use soi_data::PhotoCollection;
use soi_engine::QueryEngine;

/// k values swept in Fig. 6(a–c).
pub const K_VALUES: [usize; 5] = [5, 10, 20, 30, 40];
/// λ values swept in Fig. 6(d–f).
pub const LAMBDAS: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];
/// w values swept in Fig. 6(g–i).
pub const WS: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];
/// Defaults (paper: k = 20, λ = 0.5, w = 0.5).
pub const DEFAULTS: (usize, f64, f64) = (20, 0.5, 0.5);
const REPS: usize = 3;

fn measure_row(
    t: &mut TextTable,
    engine: &QueryEngine,
    city: &str,
    label: String,
    ctx: &StreetContext,
    photos: &PhotoCollection,
    params: &DescribeParams,
) {
    let (bl, _) = median_time(REPS, || greedy_select(ctx, photos, params));
    let (fast, _) = median_time(REPS, || {
        let results = engine.run_describe_batch(photos, &[(ctx, *params)]);
        results
            .into_iter()
            .next()
            .expect("one result")
            .expect("valid params")
    });
    let speedup = bl.as_secs_f64() / fast.as_secs_f64().max(1e-12);
    t.row([
        city.to_string(),
        label,
        fmt_duration(bl),
        fmt_duration(fast),
        format!("{speedup:.1}x"),
    ]);
}

/// Runs the nine subplots of Figure 6 and reports the timing tables.
pub fn run(cities: &[CityFixture]) -> Report {
    let header = ["City", "Setting", "BL", "ST_Rel+Div", "Speedup"];
    let (dk, dl, dw) = DEFAULTS;
    let latency_engine = QueryEngine::new(1);
    let batch_engine = QueryEngine::default();

    let contexts: Vec<(&CityFixture, StreetContext)> = cities
        .iter()
        .map(|f| (f, context_for(f, top_shop_street(f))))
        .collect();

    let mut vary_k = TextTable::new(header);
    for (fixture, ctx) in &contexts {
        for &k in &K_VALUES {
            let params = DescribeParams::new(k, dl, dw).expect("valid");
            measure_row(
                &mut vary_k,
                &latency_engine,
                fixture.name(),
                format!("k={k}"),
                ctx,
                &fixture.dataset.photos,
                &params,
            );
        }
    }
    let mut vary_lambda = TextTable::new(header);
    for (fixture, ctx) in &contexts {
        for &lambda in &LAMBDAS {
            let params = DescribeParams::new(dk, lambda, dw).expect("valid");
            measure_row(
                &mut vary_lambda,
                &latency_engine,
                fixture.name(),
                format!("λ={lambda:.2}"),
                ctx,
                &fixture.dataset.photos,
                &params,
            );
        }
    }
    let mut vary_w = TextTable::new(header);
    for (fixture, ctx) in &contexts {
        for &w in &WS {
            let params = DescribeParams::new(dk, dl, w).expect("valid");
            measure_row(
                &mut vary_w,
                &latency_engine,
                fixture.name(),
                format!("w={w:.2}"),
                ctx,
                &fixture.dataset.photos,
                &params,
            );
        }
    }

    // The full sweep as one batch per city, on the auto-resolved worker
    // count.
    let mut throughput = TextTable::new(["City", "Jobs", "Workers", "Batch wall"]);
    for (fixture, ctx) in &contexts {
        let mut jobs: Vec<(&StreetContext, DescribeParams)> = Vec::new();
        for &k in &K_VALUES {
            jobs.push((ctx, DescribeParams::new(k, dl, dw).expect("valid")));
        }
        for &lambda in &LAMBDAS {
            jobs.push((ctx, DescribeParams::new(dk, lambda, dw).expect("valid")));
        }
        for &w in &WS {
            jobs.push((ctx, DescribeParams::new(dk, dl, w).expect("valid")));
        }
        let start = std::time::Instant::now();
        let results = batch_engine.run_describe_batch(&fixture.dataset.photos, &jobs);
        let wall = start.elapsed();
        assert!(results.iter().all(Result::is_ok));
        throughput.row([
            fixture.name().to_string(),
            jobs.len().to_string(),
            batch_engine.threads().to_string(),
            fmt_duration(wall),
        ]);
    }

    let sizes: Vec<String> = contexts
        .iter()
        .map(|(f, ctx)| format!("{} |Rs|={}", f.name(), ctx.members.len()))
        .collect();
    let body = format!(
        "Both algorithms select summaries of the same street per city \
         ({}); median of {REPS} runs; the per-street index build is shared \
         and excluded, as in the paper. ST_Rel+Div runs through the batched \
         engine (one worker for the per-setting latencies).\n\n\
         ### Fig. 6(a–c): varying k (λ = {dl}, w = {dw})\n\n{}\n\
         ### Fig. 6(d–f): varying λ (k = {dk}, w = {dw})\n\n{}\n\
         ### Fig. 6(g–i): varying w (k = {dk}, λ = {dl})\n\n{}\n\
         ### Batched engine throughput (full sweep per city)\n\n{}\n\
         Paper's claims: ST_Rel+Div outperforms BL by {}–{}x, stays \
         sub-second for online use, scales much better with k, and the gap \
         is stable across λ and w.\n",
        sizes.join(", "),
        vary_k.to_markdown(),
        vary_lambda.to_markdown(),
        vary_w.to_markdown(),
        throughput.to_markdown(),
        FIG6_SPEEDUP_RANGE.0,
        FIG6_SPEEDUP_RANGE.1,
    );
    Report {
        id: "Figure 6",
        title: "Diversified selection runtime: ST_Rel+Div vs BL",
        body,
    }
}
