//! Figure 5: the relevance–diversity trade-off across λ.

use crate::experiments::describe_setup::{context_for, top_shop_street};
use crate::experiments::Report;
use crate::fixture::CityFixture;
use crate::table::TextTable;
use soi_core::describe::{knee, sweep_lambda};

/// λ values swept (the paper uses increments of 0.25).
pub const LAMBDAS: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];
/// Photos per summary (paper default k = 20).
pub const K: usize = 20;
/// Spatial/textual weight (paper: w = 0.5).
pub const W: f64 = 0.5;

/// For the top "shop" SOI of each city, sweeps λ and reports the normalised
/// relevance (Eq. 4) and diversity (Eq. 5) of the selected summary.
pub fn run(cities: &[CityFixture]) -> Report {
    let mut t = TextTable::new(["City", "λ", "rel (norm)", "div (norm)", "knee?"]);
    for fixture in cities {
        let street = top_shop_street(fixture);
        let ctx = context_for(fixture, street);
        let photos = &fixture.dataset.photos;

        let points = sweep_lambda(&ctx, photos, K, W, &LAMBDAS).expect("sweep");
        let knee_idx = knee(&points);
        let max_rel = points
            .iter()
            .map(|p| p.relevance)
            .fold(0.0f64, f64::max)
            .max(1e-12);
        let max_div = points
            .iter()
            .map(|p| p.diversity)
            .fold(0.0f64, f64::max)
            .max(1e-12);
        for (i, p) in points.iter().enumerate() {
            t.row([
                fixture.name().to_string(),
                format!("{:.2}", p.lambda),
                format!("{:.3}", p.relevance / max_rel),
                format!("{:.3}", p.diversity / max_div),
                if Some(i) == knee_idx {
                    "← knee".into()
                } else {
                    String::new()
                },
            ]);
        }
    }
    let body = format!(
        "Summaries of k = {K} photos for the top \"shop\" SOI per city, \
         w = {W}. Relevance and diversity are normalised by their per-city \
         maxima (attained at λ = 0 and λ = 1 respectively). The reproduced \
         claim: diversity rises steeply for small λ while relevance decays \
         slowly; the detected knee (max distance to the chord of the \
         trade-off curve, the paper's 'value for money' criterion) falls \
         at a moderate λ — justifying the paper's default of 0.5.\n\n{}",
        t.to_markdown()
    );
    Report {
        id: "Figure 5",
        title: "Relevance–diversity trade-off (w = 0.5)",
        body,
    }
}
