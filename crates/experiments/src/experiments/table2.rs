//! Table 2: effectiveness of SOI identification ("shops" in Berlin).

use crate::experiments::Report;
use crate::fixture::{CityFixture, EPS};
use crate::paper::TABLE2_RECALL;
use crate::table::TextTable;
use soi_core::soi::{run_soi, SoiConfig, SoiQuery};

/// Runs the 10-SOI "shop" query on the Berlin-like city and measures recall
/// against the planted destination streets (the stand-in for the paper's
/// two authoritative web source lists).
pub fn run(cities: &[CityFixture]) -> Report {
    let fixture = cities
        .iter()
        .find(|c| c.name() == "berlin")
        .unwrap_or(&cities[0]);
    let truth = fixture.truth.for_category("shop");
    let query =
        SoiQuery::new(fixture.dataset.query_keywords(&["shop"]), 10, EPS).expect("valid query");
    let out = run_soi(
        &fixture.dataset.network,
        &fixture.dataset.pois,
        &fixture.index,
        &query,
        &SoiConfig::default(),
    )
    .expect("valid query");

    let mut t = TextTable::new(["Rank", "Street", "Interest", "Planted destination?"]);
    let mut hits = 0usize;
    for (rank, r) in out.results.iter().enumerate() {
        let hit = truth.contains(&r.street);
        if hit {
            hits += 1;
        }
        t.row([
            (rank + 1).to_string(),
            fixture.dataset.network.street(r.street).name.clone(),
            format!("{:.1}", r.interest),
            if hit { "yes".into() } else { String::new() },
        ]);
    }
    let recall = if truth.is_empty() {
        0.0
    } else {
        hits as f64 / truth.len() as f64
    };

    let body = format!(
        "Query: Ψ = {{shop}}, k = 10, ε = {EPS}° on {}. Ground truth: the \
         {} planted shopping-destination streets (substituting the paper's \
         two authoritative web lists).\n\n{}\n\
         **Recall@10: {:.2}** (paper: {:.2} against each web source; \
         the paper argues its effective recall is higher since several \
         \"false positives\" were genuine shopping streets — the same \
         applies here, where non-planted streets can organically \
         accumulate shop POIs).\n",
        fixture.name(),
        truth.len(),
        t.to_markdown(),
        recall,
        TABLE2_RECALL,
    );
    Report {
        id: "Table 2",
        title: "Identified top SOIs for \"shop\" vs. ground truth",
        body,
    }
}
