//! Plain-text table formatting for experiment output.

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given header.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders as a GitHub-flavoured markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("| ");
        out.push_str(&self.header.join(" | "));
        out.push_str(" |\n|");
        for _ in &self.header {
            out.push_str("---|");
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str("| ");
            out.push_str(&row.join(" | "));
            out.push_str(" |\n");
        }
        out
    }

    /// Renders as aligned plain text.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                let pad = widths[i] - cell.chars().count();
                line.push_str(cell);
                line.push_str(&" ".repeat(pad + 2));
            }
            line.trim_end().to_string()
        };
        let mut out = fmt_row(&self.header);
        out.push('\n');
        out.push_str(
            &"-".repeat(
                widths
                    .iter()
                    .map(|w| w + 2)
                    .sum::<usize>()
                    .saturating_sub(2),
            ),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a duration in adaptive units (µs/ms/s).
pub fn fmt_duration(d: std::time::Duration) -> String {
    let us = d.as_secs_f64() * 1e6;
    if us < 1000.0 {
        format!("{us:.0}µs")
    } else if us < 1_000_000.0 {
        format!("{:.2}ms", us / 1000.0)
    } else {
        format!("{:.3}s", us / 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn renders_markdown_and_text() {
        let mut t = TextTable::new(["name", "value"]);
        t.row(["alpha", "1"]);
        t.row(["long-name-entry", "22"]);
        let md = t.to_markdown();
        assert!(md.starts_with("| name | value |"));
        assert_eq!(md.lines().count(), 4);
        let text = t.to_text();
        assert!(text.contains("long-name-entry"));
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(["a", "b", "c"]);
        t.row(["x"]);
        assert!(t.to_markdown().contains("| x |  |  |"));
    }

    #[test]
    fn duration_units() {
        assert_eq!(fmt_duration(Duration::from_micros(500)), "500µs");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.00ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000s");
    }
}
