//! Experiment harness for the EDBT 2016 "Streets of Interest" paper.
//!
//! One module per table/figure of the paper's evaluation (Sec. 5); each
//! regenerates the corresponding rows/series on the synthetic city
//! datasets. Binaries `table1`..`figure6` run single experiments; `all`
//! runs everything and emits an `EXPERIMENTS.md`-ready report.
//!
//! Scale: the `SOI_SCALE` environment variable (default 0.1) scales the
//! synthetic cities relative to the paper's dataset sizes (Table 1).
//! Absolute runtimes are not comparable to the paper (different hardware,
//! language, and data); the reproduced claims are the *relative* results —
//! who wins, by what factor, and how trends move with each parameter.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod fixture;
pub mod paper;
pub mod table;

pub use fixture::{default_scale, standard_cities, CityFixture, EPS, RHO};
pub use table::TextTable;

/// Applies `SOI_LOG` (`json`/`text`/`off`) to the process-wide log mode
/// and announces the city load. Every experiment binary calls this first,
/// so `SOI_LOG=json table1` yields machine-readable progress on stderr.
pub fn announce_loading(scale: f64) {
    soi_obs::log::init_from_env();
    soi_obs::log::event(
        "exp.load",
        "loading cities (set SOI_SCALE to change)",
        &[("scale", soi_obs::log::Value::F64(scale))],
    );
}
