//! Experiment harness for the EDBT 2016 "Streets of Interest" paper.
//!
//! One module per table/figure of the paper's evaluation (Sec. 5); each
//! regenerates the corresponding rows/series on the synthetic city
//! datasets. Binaries `table1`..`figure6` run single experiments; `all`
//! runs everything and emits an `EXPERIMENTS.md`-ready report.
//!
//! Scale: the `SOI_SCALE` environment variable (default 0.1) scales the
//! synthetic cities relative to the paper's dataset sizes (Table 1).
//! Absolute runtimes are not comparable to the paper (different hardware,
//! language, and data); the reproduced claims are the *relative* results —
//! who wins, by what factor, and how trends move with each parameter.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod fixture;
pub mod paper;
pub mod table;

pub use fixture::{default_scale, standard_cities, CityFixture, EPS, RHO};
pub use table::TextTable;

/// Applies `SOI_LOG` (`json`/`text`/`off`) to the process-wide log mode
/// and announces the city load. Every experiment binary calls this first,
/// so `SOI_LOG=json table1` yields machine-readable progress on stderr.
pub fn announce_loading(scale: f64) {
    soi_obs::log::init_from_env();
    soi_obs::log::event(
        "exp.load",
        "loading cities (set SOI_SCALE to change)",
        &[("scale", soi_obs::log::Value::F64(scale))],
    );
}

/// Profiles the whole experiment run when `SOI_PROFILE_OUT=FILE` is set
/// (rate from `SOI_PROFILE_HZ`, default 99), mirroring the CLI's
/// `--profile-out`: on drop, writes `FILE` (JSON), `FILE.folded`, and
/// `FILE.svg`. Every experiment binary holds the returned guard for its
/// whole `main`, so `SOI_PROFILE_OUT=/tmp/f4.json figure4` yields a
/// flamegraph of the experiment with zero extra flags.
pub fn profile_from_env() -> Option<ProfileGuard> {
    let path = std::env::var("SOI_PROFILE_OUT").ok()?;
    if path.is_empty() {
        return None;
    }
    let hz = std::env::var("SOI_PROFILE_HZ")
        .ok()
        .and_then(|raw| raw.parse::<u32>().ok())
        .unwrap_or(soi_obs::profile::DEFAULT_HZ);
    match soi_obs::profile::start(hz) {
        Ok(()) => Some(ProfileGuard { path }),
        Err(e) => {
            eprintln!("warning: SOI_PROFILE_OUT set but profiler failed to start: {e}");
            None
        }
    }
}

/// Stops the profiling session started by [`profile_from_env`] and writes
/// its artifacts when dropped (i.e. when the experiment's `main` returns).
pub struct ProfileGuard {
    path: String,
}

impl Drop for ProfileGuard {
    fn drop(&mut self) {
        let Some(report) = soi_obs::profile::stop() else {
            return;
        };
        let write = |path: &str, contents: String| {
            if let Err(e) = std::fs::write(path, contents) {
                eprintln!("warning: could not write profile artifact {path}: {e}");
            }
        };
        write(&self.path, report.to_json());
        write(&format!("{}.folded", self.path), report.folded_text());
        write(&format!("{}.svg", self.path), report.flamegraph_svg());
        soi_obs::log::event(
            "exp.profile",
            &format!("wrote profile to {} (+.folded, +.svg)", self.path),
            &[
                ("samples", soi_obs::log::Value::U64(report.samples)),
                (
                    "stacks",
                    soi_obs::log::Value::U64(report.stacks.len() as u64),
                ),
            ],
        );
    }
}
