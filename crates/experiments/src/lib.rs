//! Experiment harness for the EDBT 2016 "Streets of Interest" paper.
//!
//! One module per table/figure of the paper's evaluation (Sec. 5); each
//! regenerates the corresponding rows/series on the synthetic city
//! datasets. Binaries `table1`..`figure6` run single experiments; `all`
//! runs everything and emits an `EXPERIMENTS.md`-ready report.
//!
//! Scale: the `SOI_SCALE` environment variable (default 0.1) scales the
//! synthetic cities relative to the paper's dataset sizes (Table 1).
//! Absolute runtimes are not comparable to the paper (different hardware,
//! language, and data); the reproduced claims are the *relative* results —
//! who wins, by what factor, and how trends move with each parameter.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod fixture;
pub mod paper;
pub mod table;

pub use fixture::{default_scale, standard_cities, CityFixture, EPS, RHO};
pub use table::TextTable;
