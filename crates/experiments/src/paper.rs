//! Reference numbers reported by the paper, for side-by-side comparison.

/// One row of the paper's Table 1 (dataset statistics).
#[derive(Debug, Clone, Copy)]
pub struct Table1Row {
    /// City name.
    pub city: &'static str,
    /// Number of street segments.
    pub segments: usize,
    /// Minimum segment length in metres.
    pub min_len_m: f64,
    /// Maximum segment length in metres.
    pub max_len_m: f64,
    /// Number of POIs.
    pub pois: usize,
}

/// The paper's Table 1.
pub const TABLE1: &[Table1Row] = &[
    Table1Row {
        city: "london",
        segments: 113_885,
        min_len_m: 0.93,
        max_len_m: 5_834.71,
        pois: 2_114_264,
    },
    Table1Row {
        city: "berlin",
        segments: 47_755,
        min_len_m: 0.06,
        max_len_m: 6_312.96,
        pois: 797_244,
    },
    Table1Row {
        city: "vienna",
        segments: 22_211,
        min_len_m: 1.35,
        max_len_m: 9_913.42,
        pois: 408_712,
    },
];

/// Degrees → metres at ~52°N (the paper's ε = 0.0005° ≈ 55 m).
pub const METERS_PER_DEGREE: f64 = 111_320.0;

/// The paper's Table 2 recall of the 10-SOI "shop" query against each
/// authoritative source list (4 of 5 streets found).
pub const TABLE2_RECALL: f64 = 0.8;

/// The paper's Table 3: normalised objective scores per method and city
/// (λ = 0.5, w = 0.5), in `MethodSpec::all()` order.
pub const TABLE3: &[(&str, [f64; 3])] = &[
    // (method, [london, berlin, vienna])
    ("S_Rel", [0.831, 0.726, 0.508]),
    ("S_Div", [0.923, 0.982, 0.961]),
    ("S_Rel+Div", [0.982, 0.953, 0.911]),
    ("T_Rel", [0.708, 0.367, 0.219]),
    ("T_Div", [0.831, 0.811, 0.895]),
    ("T_Rel+Div", [0.949, 0.848, 0.919]),
    ("ST_Rel", [0.776, 0.367, 0.279]),
    ("ST_Div", [0.913, 0.986, 0.961]),
    ("ST_Rel+Div", [1.000, 1.000, 1.000]),
];

/// The paper's Table 4: relevant POIs per |Ψ| (cumulative keyword prefix
/// religion, education, food, services).
pub const TABLE4: &[(&str, [usize; 4])] = &[
    ("london", [10_445, 32_682, 113_211, 202_127]),
    ("berlin", [1_969, 10_506, 47_950, 78_310]),
    ("vienna", [1_678, 7_660, 25_695, 41_484]),
];

/// Qualitative claims of Figure 4: SOI outperforms BL by these factor
/// ranges when varying k.
pub const FIG4_SPEEDUP_VARY_K: &[(&str, f64, f64)] = &[
    ("london", 2.1, 3.2),
    ("berlin", 1.6, 2.1),
    ("vienna", 1.1, 2.5),
];

/// Figure 6 claim: ST_Rel+Div outperforms BL by a factor of 2 up to 64.
pub const FIG6_SPEEDUP_RANGE: (f64, f64) = (2.0, 64.0);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_is_complete() {
        assert_eq!(TABLE1.len(), 3);
        assert_eq!(TABLE1[0].segments, 113_885);
    }

    #[test]
    fn table3_winner_is_st_rel_div() {
        let st = TABLE3.last().unwrap();
        assert_eq!(st.0, "ST_Rel+Div");
        for (method, scores) in TABLE3 {
            for (i, s) in scores.iter().enumerate() {
                assert!(
                    *s <= st.1[i] + 1e-12,
                    "{method} beats ST_Rel+Div in city {i}"
                );
            }
        }
    }

    #[test]
    fn table4_counts_grow_with_keywords() {
        for (city, counts) in TABLE4 {
            for w in counts.windows(2) {
                assert!(w[0] < w[1], "{city}: counts not increasing");
            }
        }
    }
}
