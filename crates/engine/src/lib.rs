//! Batched query execution over a shared, immutable context.
//!
//! The paper's evaluation (and any production deployment) runs *many* k-SOI
//! and describe queries against one static dataset. This crate turns that
//! shape into throughput:
//!
//! - a [`QueryContext`] bundles the immutable inputs (network, POIs, index,
//!   config) behind an [`Arc`] so every worker shares one copy;
//! - a [`QueryEngine`] fans a slice of queries out over a scoped worker
//!   pool; workers pull the next query index from a shared atomic counter
//!   (work stealing at index granularity — cheap, contention-free, and
//!   naturally load-balancing for skewed per-query costs);
//! - each worker owns a [`SoiScratch`]/[`DescribeScratch`], so steady-state
//!   queries reuse buffers instead of re-allocating them;
//! - results are returned **in input order** regardless of worker count or
//!   scheduling: `results[i]` always answers `queries[i]`, and each result
//!   is bit-identical to a sequential [`run_soi`]/[`st_rel_div`] call.
//!
//! Worker count resolves through [`soi_common::effective_threads`]
//! (explicit → `SOI_THREADS` → available parallelism); `threads == 1` runs
//! inline on the calling thread with no pool at all, so single-query latency
//! is unchanged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code must surface failures as `SoiError`, never panic: unwrap and
// expect are compile errors outside of test code.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use soi_common::{effective_threads, Result};
use soi_core::describe::{
    st_rel_div_with_scratch, DescribeOutcome, DescribeParams, DescribeScratch, StreetContext,
};
use soi_core::soi::{
    run_soi_with_scratch, QueryStats, SoiConfig, SoiOutcome, SoiQuery, SoiScratch,
};
use soi_data::{PhotoCollection, PoiCollection};
use soi_index::PoiIndex;
use soi_network::RoadNetwork;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The immutable inputs shared by every query of a batch.
///
/// Borrows the dataset (datasets are large and already owned by the caller
/// — fixtures, CLI state); the context itself is cheap and lives in an
/// [`Arc`] cloned into each worker.
#[derive(Debug, Clone)]
pub struct QueryContext<'a> {
    /// The road network.
    pub network: &'a RoadNetwork,
    /// The POI collection.
    pub pois: &'a PoiCollection,
    /// The spatio-textual POI index.
    pub index: &'a PoiIndex,
    /// Algorithm configuration applied to every query of the batch.
    pub config: SoiConfig,
}

impl<'a> QueryContext<'a> {
    /// Creates a context with the default [`SoiConfig`].
    pub fn new(network: &'a RoadNetwork, pois: &'a PoiCollection, index: &'a PoiIndex) -> Self {
        Self {
            network,
            pois,
            index,
            config: SoiConfig::default(),
        }
    }
}

/// Aggregated counters over a batch (summed per-query [`QueryStats`],
/// successful queries only) plus batch-level wall-clock and worker count.
#[derive(Debug, Clone, Default)]
pub struct BatchStats {
    /// Queries in the batch.
    pub queries: usize,
    /// Queries that returned an error.
    pub errors: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock time of the whole batch.
    pub wall_time: Duration,
    /// Summed cells popped from SL1.
    pub cells_popped: usize,
    /// Summed segments popped from SL2/SL3.
    pub segments_popped: usize,
    /// Summed effective `UpdateInterest` executions.
    pub cell_visits: usize,
    /// Summed segments seen.
    pub segments_seen: usize,
    /// Summed segments dismissed by bounds.
    pub segments_bounded_out: usize,
    /// Summed source-list accesses.
    pub accesses: usize,
}

impl BatchStats {
    fn absorb(&mut self, stats: &QueryStats) {
        self.cells_popped += stats.cells_popped;
        self.segments_popped += stats.segments_popped;
        self.cell_visits += stats.cell_visits;
        self.segments_seen += stats.segments_seen;
        self.segments_bounded_out += stats.segments_bounded_out;
        self.accesses += stats.accesses;
    }

    /// Successful queries per second over the batch wall-clock (0 for an
    /// empty or unmeasured batch).
    pub fn queries_per_second(&self) -> f64 {
        let secs = self.wall_time.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        (self.queries - self.errors) as f64 / secs
    }
}

/// The outcome of a k-SOI batch: per-query results in input order plus
/// aggregated statistics.
#[derive(Debug)]
pub struct BatchOutcome {
    /// `results[i]` answers `queries[i]` — invalid queries yield their
    /// validation error without failing the rest of the batch.
    pub results: Vec<Result<SoiOutcome>>,
    /// Aggregated batch statistics.
    pub stats: BatchStats,
}

/// A batched query executor with a fixed worker count.
#[derive(Debug, Clone)]
pub struct QueryEngine {
    threads: usize,
}

impl QueryEngine {
    /// Creates an engine with `threads` workers (`0` = resolve automatically
    /// via [`effective_threads`]).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: effective_threads((threads > 0).then_some(threads)),
        }
    }

    /// The resolved worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Evaluates every query of `queries` against `ctx`.
    ///
    /// Results come back in input order and are bit-identical to calling
    /// [`run_soi`](soi_core::soi::run_soi) sequentially, for any worker
    /// count.
    pub fn run_soi_batch(&self, ctx: &Arc<QueryContext<'_>>, queries: &[SoiQuery]) -> BatchOutcome {
        let start = Instant::now();
        let mut results = self.dispatch(queries, || {
            let ctx = Arc::clone(ctx);
            let mut scratch = SoiScratch::default();
            move |query: &SoiQuery| {
                run_soi_with_scratch(
                    ctx.network,
                    ctx.pois,
                    ctx.index,
                    query,
                    &ctx.config,
                    &mut scratch,
                )
            }
        });
        let mut stats = BatchStats {
            queries: queries.len(),
            threads: self.threads,
            ..BatchStats::default()
        };
        for result in results.iter_mut().flatten() {
            match result {
                Ok(outcome) => stats.absorb(&outcome.stats),
                Err(_) => stats.errors += 1,
            }
        }
        stats.wall_time = start.elapsed();
        BatchOutcome {
            // Every slot is claimed exactly once by the counter protocol, so
            // no `None` survives; `flatten` above plus this unwrap-by-match
            // keeps the invariant checked without panicking.
            results: results.into_iter().flatten().collect(),
            stats,
        }
    }

    /// Evaluates every `(street context, params)` describe job in `jobs`
    /// against `photos`.
    ///
    /// Results come back in input order and are bit-identical to calling
    /// [`st_rel_div`](soi_core::describe::st_rel_div) sequentially, for any
    /// worker count.
    pub fn run_describe_batch(
        &self,
        photos: &PhotoCollection,
        jobs: &[(&StreetContext, DescribeParams)],
    ) -> Vec<Result<DescribeOutcome>> {
        self.dispatch(jobs, || {
            let mut scratch = DescribeScratch::default();
            move |(ctx, params): &(&StreetContext, DescribeParams)| {
                st_rel_div_with_scratch(ctx, photos, params, &mut scratch)
            }
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// Fans `items` out over the worker pool: each worker claims the next
    /// unprocessed index from a shared counter and runs `make_worker()`'s
    /// closure on it. Returns one slot per item, in input order.
    fn dispatch<T, R, W, F>(&self, items: &[T], make_worker: W) -> Vec<Option<R>>
    where
        T: Sync,
        R: Send,
        W: Fn() -> F + Sync,
        F: FnMut(&T) -> R,
    {
        let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
        slots.resize_with(items.len(), || None);
        if self.threads <= 1 || items.len() <= 1 {
            let mut worker = make_worker();
            for (slot, item) in slots.iter_mut().zip(items) {
                *slot = Some(worker(item));
            }
            return slots;
        }
        let next = AtomicUsize::new(0);
        let next = &next;
        let make_worker = &make_worker;
        let workers = self.threads.min(items.len());
        let mut partials: Vec<Vec<(usize, R)>> = Vec::with_capacity(workers);
        partials.resize_with(workers, Vec::new);
        let run = crossbeam::thread::scope(|s| {
            for partial in partials.iter_mut() {
                s.spawn(move |_| {
                    let mut worker = make_worker();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        partial.push((i, worker(item)));
                    }
                });
            }
        });
        if let Err(panic) = run {
            std::panic::resume_unwind(panic);
        }
        for (i, result) in partials.into_iter().flatten() {
            slots[i] = Some(result);
        }
        slots
    }
}

impl Default for QueryEngine {
    /// An engine with the automatically resolved worker count.
    fn default() -> Self {
        Self::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_core::soi::run_soi;

    fn fixture() -> (soi_data::Dataset, PoiIndex) {
        let (dataset, _) = soi_datagen::generate(&soi_datagen::vienna(0.02));
        let index = PoiIndex::build(&dataset.network, &dataset.pois, 0.001);
        (dataset, index)
    }

    fn queries(dataset: &soi_data::Dataset) -> Vec<SoiQuery> {
        let mut queries = Vec::new();
        for (k, kws) in [
            (5usize, &["shop"][..]),
            (10, &["food", "cafe"][..]),
            (3, &["museum"][..]),
            (7, &["shop", "food", "bar"][..]),
        ] {
            let keywords = dataset.query_keywords(kws);
            queries.push(SoiQuery::new(keywords, k, 0.0005).expect("valid query"));
        }
        queries
    }

    #[test]
    fn batch_matches_sequential_for_every_worker_count() {
        let (dataset, index) = fixture();
        let queries = queries(&dataset);
        let expected: Vec<SoiOutcome> = queries
            .iter()
            .map(|q| {
                run_soi(
                    &dataset.network,
                    &dataset.pois,
                    &index,
                    q,
                    &SoiConfig::default(),
                )
                .expect("valid query")
            })
            .collect();
        let ctx = Arc::new(QueryContext::new(&dataset.network, &dataset.pois, &index));
        for workers in [1usize, 2, 8] {
            let engine = QueryEngine::new(workers);
            assert_eq!(engine.threads(), workers);
            let batch = engine.run_soi_batch(&ctx, &queries);
            assert_eq!(batch.results.len(), queries.len());
            assert_eq!(batch.stats.queries, queries.len());
            assert_eq!(batch.stats.errors, 0);
            for (got, want) in batch.results.iter().zip(&expected) {
                let got = got.as_ref().expect("valid query");
                assert_eq!(got.results.len(), want.results.len());
                for (g, w) in got.results.iter().zip(&want.results) {
                    assert_eq!(g.street, w.street);
                    assert_eq!(g.interest.to_bits(), w.interest.to_bits());
                    assert_eq!(g.best_segment, w.best_segment);
                    assert_eq!(g.best_segment_mass.to_bits(), w.best_segment_mass.to_bits());
                }
            }
        }
    }

    #[test]
    fn invalid_query_fails_alone() {
        let (dataset, index) = fixture();
        let mut queries = queries(&dataset);
        queries[1].k = 0; // invalid
        let ctx = Arc::new(QueryContext::new(&dataset.network, &dataset.pois, &index));
        let batch = QueryEngine::new(2).run_soi_batch(&ctx, &queries);
        assert!(batch.results[0].is_ok());
        assert!(batch.results[1].is_err());
        assert!(batch.results[2].is_ok());
        assert_eq!(batch.stats.errors, 1);
    }

    #[test]
    fn empty_batch() {
        let (dataset, index) = fixture();
        let ctx = Arc::new(QueryContext::new(&dataset.network, &dataset.pois, &index));
        let batch = QueryEngine::new(4).run_soi_batch(&ctx, &[]);
        assert!(batch.results.is_empty());
        assert_eq!(batch.stats.queries_per_second(), 0.0);
    }

    #[test]
    fn describe_batch_matches_sequential_for_every_worker_count() {
        use soi_core::describe::{st_rel_div, ContextBuilder, PhiSource};
        use soi_index::PhotoGrid;

        let (dataset, _) = fixture();
        let grid = PhotoGrid::build(&dataset.network, &dataset.photos, 0.001);
        let mut contexts = Vec::new();
        for street in dataset.network.streets() {
            let ctx = ContextBuilder {
                network: &dataset.network,
                photos: &dataset.photos,
                photo_grid: &grid,
                pois: None,
                eps: 0.0005,
                rho: 0.0001,
                phi_source: PhiSource::Photos,
            }
            .build(street.id)
            .expect("buildable context");
            if !ctx.members.is_empty() {
                contexts.push(ctx);
            }
            if contexts.len() == 3 {
                break;
            }
        }
        assert!(!contexts.is_empty(), "fixture has streets with photos");
        let jobs: Vec<(&StreetContext, DescribeParams)> = contexts
            .iter()
            .flat_map(|ctx| {
                [(5usize, 0.5f64), (10, 0.25)]
                    .into_iter()
                    .map(move |(k, lambda)| {
                        (ctx, DescribeParams::new(k, lambda, 0.5).expect("valid"))
                    })
            })
            .collect();
        let expected: Vec<DescribeOutcome> = jobs
            .iter()
            .map(|(ctx, params)| st_rel_div(ctx, &dataset.photos, params).expect("valid"))
            .collect();
        for workers in [1usize, 2, 8] {
            let results = QueryEngine::new(workers).run_describe_batch(&dataset.photos, &jobs);
            assert_eq!(results.len(), jobs.len());
            for (got, want) in results.iter().zip(&expected) {
                let got = got.as_ref().expect("valid");
                assert_eq!(got.selected, want.selected, "workers {workers}");
                assert_eq!(got.objective.to_bits(), want.objective.to_bits());
            }
        }
    }

    #[test]
    fn stats_aggregate_counters() {
        let (dataset, index) = fixture();
        let queries = queries(&dataset);
        let ctx = Arc::new(QueryContext::new(&dataset.network, &dataset.pois, &index));
        let batch = QueryEngine::new(1).run_soi_batch(&ctx, &queries);
        let summed: usize = batch
            .results
            .iter()
            .map(|r| r.as_ref().expect("valid").stats.accesses)
            .sum();
        assert_eq!(batch.stats.accesses, summed);
        assert!(batch.stats.wall_time > Duration::ZERO);
    }
}
