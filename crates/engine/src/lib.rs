//! Batched query execution over a shared, immutable context.
//!
//! The paper's evaluation (and any production deployment) runs *many* k-SOI
//! and describe queries against one static dataset. This crate turns that
//! shape into throughput:
//!
//! - a [`QueryContext`] bundles the immutable inputs (network, POIs, index,
//!   config) behind an [`Arc`] so every worker shares one copy;
//! - a [`QueryEngine`] fans a slice of queries out over a scoped worker
//!   pool; workers pull small contiguous chunks of query indices from a
//!   shared atomic counter (work stealing at chunk granularity — cheap,
//!   amortising counter contention on large batches while staying
//!   naturally load-balancing for skewed per-query costs);
//! - each worker owns a [`SoiScratch`]/[`DescribeScratch`], so steady-state
//!   queries reuse buffers instead of re-allocating them;
//! - results are returned **in input order** regardless of worker count or
//!   scheduling: `results[i]` always answers `queries[i]`, and each result
//!   is bit-identical to a sequential [`run_soi`]/[`st_rel_div`] call.
//!
//! Worker count resolves through [`soi_common::effective_threads`]
//! (explicit → `SOI_THREADS` → available parallelism); `threads == 1` runs
//! inline on the calling thread with no pool at all, so single-query latency
//! is unchanged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code must surface failures as `SoiError`, never panic: unwrap and
// expect are compile errors outside of test code.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod obs;

use soi_common::{effective_threads, Result};
use soi_core::describe::{
    st_rel_div_budgeted, st_rel_div_full, DescribeExplain, DescribeOutcome, DescribeParams,
    DescribeScratch, StreetContext,
};
use soi_core::soi::{
    run_soi_full, QueryStats, SoiConfig, SoiExplain, SoiOutcome, SoiQuery, SoiScratch,
};
use soi_core::QueryBudget;
use soi_data::{PhotoView, PoiCollection, PoiView};
use soi_index::{DeltaIndex, IndexView, PoiIndex};
use soi_network::RoadNetwork;
use soi_obs::AllocScope;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The immutable inputs shared by every query of a batch.
///
/// Borrows the dataset (datasets are large and already owned by the caller
/// — fixtures, CLI state); the context itself is cheap and lives in an
/// [`Arc`] cloned into each worker.
#[derive(Debug, Clone)]
pub struct QueryContext<'a> {
    /// The road network.
    pub network: &'a RoadNetwork,
    /// The POI collection.
    pub pois: &'a PoiCollection,
    /// The spatio-textual POI index.
    pub index: &'a PoiIndex,
    /// The sealed live-ingestion delta overlaid on the base structures for
    /// every query of the batch (`None` = base only). The batch pins this
    /// one delta for its whole run: queries within a batch always see a
    /// single consistent epoch.
    pub delta: Option<&'a DeltaIndex>,
    /// The epoch id the batch is pinned to (0 before any ingestion).
    pub epoch: u64,
    /// Algorithm configuration applied to every query of the batch.
    pub config: SoiConfig,
}

impl<'a> QueryContext<'a> {
    /// Creates a context with the default [`SoiConfig`] and no delta.
    pub fn new(network: &'a RoadNetwork, pois: &'a PoiCollection, index: &'a PoiIndex) -> Self {
        Self {
            network,
            pois,
            index,
            delta: None,
            epoch: 0,
            config: SoiConfig::default(),
        }
    }

    /// Creates a context pinned to epoch `epoch` with `delta` overlaid on
    /// the base structures.
    pub fn with_delta(
        network: &'a RoadNetwork,
        pois: &'a PoiCollection,
        index: &'a PoiIndex,
        delta: Option<&'a DeltaIndex>,
        epoch: u64,
    ) -> Self {
        Self {
            network,
            pois,
            index,
            delta,
            epoch,
            config: SoiConfig::default(),
        }
    }

    /// The POI read view of this context (base + delta adds).
    pub fn poi_view(&self) -> PoiView<'a> {
        match self.delta {
            Some(d) => d.poi_view(self.pois),
            None => self.pois.into(),
        }
    }

    /// The index read view of this context (base + delta overlay).
    pub fn index_view(&self) -> IndexView<'a> {
        IndexView::new(self.index, self.delta)
    }
}

/// Aggregated counters over a batch (summed per-query [`QueryStats`],
/// successful queries only) plus batch-level wall-clock and worker count.
#[derive(Debug, Clone, Default)]
pub struct BatchStats {
    /// Queries in the batch.
    pub queries: usize,
    /// Queries that returned an error.
    pub errors: usize,
    /// Queries whose deadline expired: they returned anytime *partial*
    /// results (counted as successes, not errors).
    pub partials: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock time of the whole batch.
    pub wall_time: Duration,
    /// Summed cells popped from SL1.
    pub cells_popped: usize,
    /// Summed segments popped from SL2/SL3.
    pub segments_popped: usize,
    /// Summed effective `UpdateInterest` executions.
    pub cell_visits: usize,
    /// Summed segments seen.
    pub segments_seen: usize,
    /// Summed segments dismissed by bounds.
    pub segments_bounded_out: usize,
    /// Summed source-list accesses.
    pub accesses: usize,
}

/// One failed query of a batch: which slot failed, at which stage, and why.
///
/// The engine emits `stage == "query"` records for evaluation failures;
/// callers that pre-validate or parse their inputs (the `soi batch` CLI)
/// prepend their own records with other stages (e.g. `"parse"`), so one
/// artifact lists every failure of the run with its input index.
#[derive(Debug, Clone)]
pub struct BatchErrorRecord {
    /// Input index of the failed query (`results[index]` holds the error).
    pub index: usize,
    /// Pipeline stage that rejected it (`"query"` for engine evaluation).
    pub stage: &'static str,
    /// The [`soi_common::ErrorCategory`] name (`usage`, `data`, …).
    pub category: String,
    /// The rendered error message.
    pub message: String,
}

impl BatchErrorRecord {
    /// Renders the record as a JSON object.
    pub fn to_json(&self) -> String {
        let mut obj = soi_obs::json::JsonWriter::object();
        obj.field_u64("index", self.index as u64);
        obj.field_str("stage", self.stage);
        obj.field_str("category", &self.category);
        obj.field_str("message", &self.message);
        obj.finish()
    }
}

/// Machine-readable telemetry snapshot of one batch: the aggregated
/// [`BatchStats`] plus the per-query latency distribution and the ε-map
/// cache counters — the superset the `--stats-json` CLI flag emits.
///
/// The latency list holds one entry per *successful* query, in input
/// order, so exact percentiles (not histogram estimates) are available
/// per batch. The ε-map cache counters are the process-cumulative values
/// sampled when the batch finished: the cache is state shared across
/// batches (and warmed by API users such as the experiment harness), not
/// per-batch, so a delta view belongs to the caller.
#[derive(Debug, Clone, Default)]
pub struct EngineTelemetry {
    /// The aggregated batch counters.
    pub stats: BatchStats,
    /// Per-query wall-clock latency of each successful query, input order.
    pub query_latencies: Vec<Duration>,
    /// Heap allocations performed by each successful query on its worker
    /// thread (an [`AllocScope`] around the algorithm call), input order.
    pub query_allocs: Vec<u64>,
    /// Peak live heap bytes above the scope baseline for each successful
    /// query, input order.
    pub query_alloc_peaks: Vec<u64>,
    /// `soi_epsilon_cache_hits_total` at batch completion.
    pub eps_cache_hits: u64,
    /// `soi_epsilon_cache_misses_total` at batch completion.
    pub eps_cache_misses: u64,
    /// `soi_epsilon_cache_evictions_total` at batch completion.
    pub eps_cache_evictions: u64,
    /// The epoch id the batch was pinned to (0 before any ingestion).
    pub epoch: u64,
    /// Pending delta ops overlaid on the base index during the batch
    /// (0 when the batch ran on a compacted base).
    pub delta_ops: u64,
    /// Delta POI inserts visible to the batch.
    pub delta_added_pois: u64,
    /// Delta POI deletes visible to the batch.
    pub delta_deleted_pois: u64,
    /// One record per failed query, input order — the engine emits
    /// `stage == "query"` entries; callers may prepend their own stages.
    pub error_records: Vec<BatchErrorRecord>,
}

impl EngineTelemetry {
    /// Exact `q`-quantile (`0 ≤ q ≤ 1`) of the per-query latencies: the
    /// `⌈q·n⌉`-th smallest. `None` when no query succeeded.
    pub fn latency_quantile(&self, q: f64) -> Option<Duration> {
        if self.query_latencies.is_empty() {
            return None;
        }
        let mut sorted = self.query_latencies.clone();
        sorted.sort_unstable();
        let n = sorted.len();
        let rank = (q.clamp(0.0, 1.0) * n as f64).ceil() as usize;
        sorted.get(rank.saturating_sub(1)).copied()
    }

    /// Median per-query latency.
    pub fn latency_p50(&self) -> Option<Duration> {
        self.latency_quantile(0.50)
    }

    /// 95th-percentile per-query latency.
    pub fn latency_p95(&self) -> Option<Duration> {
        self.latency_quantile(0.95)
    }

    /// 99th-percentile per-query latency.
    pub fn latency_p99(&self) -> Option<Duration> {
        self.latency_quantile(0.99)
    }

    /// Renders the snapshot as a JSON object (the `--stats-json` payload).
    pub fn to_json(&self) -> String {
        let ms = |d: Duration| d.as_secs_f64() * 1e3;
        let mut obj = soi_obs::json::JsonWriter::object();
        obj.field_u64("queries", self.stats.queries as u64);
        obj.field_u64("errors", self.stats.errors as u64);
        obj.field_u64("partials", self.stats.partials as u64);
        obj.field_u64("threads", self.stats.threads as u64);
        obj.field_f64("wall_time_ms", ms(self.stats.wall_time));
        obj.field_f64("queries_per_second", self.stats.queries_per_second());
        let mut counters = soi_obs::json::JsonWriter::object();
        counters.field_u64("cells_popped", self.stats.cells_popped as u64);
        counters.field_u64("segments_popped", self.stats.segments_popped as u64);
        counters.field_u64("cell_visits", self.stats.cell_visits as u64);
        counters.field_u64("segments_seen", self.stats.segments_seen as u64);
        counters.field_u64(
            "segments_bounded_out",
            self.stats.segments_bounded_out as u64,
        );
        counters.field_u64("accesses", self.stats.accesses as u64);
        obj.field_raw("counters", &counters.finish());
        let mut latency = soi_obs::json::JsonWriter::object();
        latency.field_u64("samples", self.query_latencies.len() as u64);
        for (key, q) in [("p50_ms", 0.50), ("p95_ms", 0.95), ("p99_ms", 0.99)] {
            match self.latency_quantile(q) {
                Some(d) => latency.field_f64(key, ms(d)),
                None => latency.field_raw(key, "null"),
            }
        }
        match self.query_latencies.iter().max() {
            Some(&d) => latency.field_f64("max_ms", ms(d)),
            None => latency.field_raw("max_ms", "null"),
        }
        obj.field_raw("latency", &latency.finish());
        let mut alloc = soi_obs::json::JsonWriter::object();
        alloc.field_u64("samples", self.query_allocs.len() as u64);
        for (key, vals) in [
            ("allocations", &self.query_allocs),
            ("peak_bytes", &self.query_alloc_peaks),
        ] {
            let mut dist = soi_obs::json::JsonWriter::object();
            match quantile_u64(vals, 0.50) {
                Some(v) => dist.field_u64("p50", v),
                None => dist.field_raw("p50", "null"),
            }
            match vals.iter().max() {
                Some(&v) => dist.field_u64("max", v),
                None => dist.field_raw("max", "null"),
            }
            dist.field_u64("total", vals.iter().sum());
            alloc.field_raw(key, &dist.finish());
        }
        obj.field_raw("alloc", &alloc.finish());
        let mut eps = soi_obs::json::JsonWriter::object();
        eps.field_u64("hits", self.eps_cache_hits);
        eps.field_u64("misses", self.eps_cache_misses);
        eps.field_u64("evictions", self.eps_cache_evictions);
        obj.field_raw("eps_cache", &eps.finish());
        let mut epoch = soi_obs::json::JsonWriter::object();
        epoch.field_u64("id", self.epoch);
        epoch.field_u64("delta_ops", self.delta_ops);
        epoch.field_u64("delta_added_pois", self.delta_added_pois);
        epoch.field_u64("delta_deleted_pois", self.delta_deleted_pois);
        obj.field_raw("epoch", &epoch.finish());
        let mut records = soi_obs::json::JsonWriter::array();
        for rec in &self.error_records {
            records.elem_raw(&rec.to_json());
        }
        obj.field_raw("error_records", &records.finish());
        obj.finish()
    }
}

/// Exact `q`-quantile of `vals` (the `⌈q·n⌉`-th smallest), `None` when
/// empty.
fn quantile_u64(vals: &[u64], q: f64) -> Option<u64> {
    if vals.is_empty() {
        return None;
    }
    let mut sorted = vals.to_vec();
    sorted.sort_unstable();
    let rank = (q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize;
    sorted.get(rank.saturating_sub(1)).copied()
}

impl BatchStats {
    fn absorb(&mut self, stats: &QueryStats) {
        self.cells_popped += stats.cells_popped;
        self.segments_popped += stats.segments_popped;
        self.cell_visits += stats.cell_visits;
        self.segments_seen += stats.segments_seen;
        self.segments_bounded_out += stats.segments_bounded_out;
        self.accesses += stats.accesses;
    }

    /// Successful queries per second over the batch wall-clock (0 for an
    /// empty or unmeasured batch).
    pub fn queries_per_second(&self) -> f64 {
        let secs = self.wall_time.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        (self.queries - self.errors) as f64 / secs
    }
}

/// Per-job observability directives: which request the job belongs to and
/// which artifacts to collect while it runs.
///
/// The default (`request_id == 0`, nothing captured) is free: the engine
/// worker takes the exact same path as before per-request capture existed.
/// A non-zero `request_id` stamps every trace event the job emits (global
/// or captured) with the id; `trace`/`explain` additionally collect a
/// request-scoped Chrome trace / explain report for that one job, without
/// touching the process-global trace switch.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryCapture {
    /// Request id to stamp into trace events (`0` = none).
    pub request_id: u64,
    /// Capture this job's trace events into a private per-request buffer.
    pub trace: bool,
    /// Run the job with an explain collector and render it to JSON.
    pub explain: bool,
}

impl QueryCapture {
    /// True when the job needs a capture buffer or an explain collector.
    pub fn is_active(&self) -> bool {
        self.trace || self.explain
    }
}

/// Artifacts captured for one job whose [`QueryCapture`] asked for them.
#[derive(Debug, Clone, Default)]
pub struct CapturedArtifacts {
    /// Chrome-trace JSON of the events this job emitted on its worker.
    pub trace_json: Option<String>,
    /// Rendered explain report (`SoiExplain`/`DescribeExplain` JSON).
    pub explain_json: Option<String>,
}

/// The outcome of a k-SOI batch: per-query results in input order plus
/// aggregated statistics.
#[derive(Debug)]
pub struct BatchOutcome {
    /// `results[i]` answers `queries[i]` — invalid queries yield their
    /// validation error without failing the rest of the batch.
    pub results: Vec<Result<SoiOutcome>>,
    /// Aggregated batch statistics.
    pub stats: BatchStats,
    /// The machine-readable telemetry snapshot (per-query latencies,
    /// ε-cache counters) superseding the plain `stats`.
    pub telemetry: EngineTelemetry,
    /// `captures[i]` holds the artifacts requested by `jobs[i]`'s
    /// [`QueryCapture`]; `None` for jobs that asked for nothing.
    pub captures: Vec<Option<CapturedArtifacts>>,
}

/// A batched query executor with a fixed worker count.
#[derive(Debug, Clone)]
pub struct QueryEngine {
    threads: usize,
}

impl QueryEngine {
    /// Creates an engine with `threads` workers (`0` = resolve automatically
    /// via [`effective_threads`]).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: effective_threads((threads > 0).then_some(threads)),
        }
    }

    /// The resolved worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Evaluates every query of `queries` against `ctx`.
    ///
    /// Results come back in input order and are bit-identical to calling
    /// [`run_soi`](soi_core::soi::run_soi) sequentially, for any worker
    /// count.
    pub fn run_soi_batch(&self, ctx: &Arc<QueryContext<'_>>, queries: &[SoiQuery]) -> BatchOutcome {
        self.run_soi_batch_inner(ctx, queries, |q| {
            (q, QueryBudget::unlimited(), QueryCapture::default())
        })
    }

    /// [`run_soi_batch`] with a per-query execution budget: anytime
    /// semantics for serving.
    ///
    /// Each job carries its own [`QueryBudget`]; a query whose deadline
    /// expires mid-run returns its current lower-bound top-k with
    /// [`partial`](SoiOutcome::partial) set (a success, counted in
    /// [`BatchStats::partials`]), never an error. Jobs with an unlimited
    /// budget are bit-identical to [`run_soi_batch`].
    pub fn run_soi_batch_with_deadlines(
        &self,
        ctx: &Arc<QueryContext<'_>>,
        jobs: &[(SoiQuery, QueryBudget)],
    ) -> BatchOutcome {
        self.run_soi_batch_inner(ctx, jobs, |(q, b)| (q, *b, QueryCapture::default()))
    }

    /// [`run_soi_batch_with_deadlines`] with per-job observability
    /// directives: request-id stamping plus optional request-scoped trace
    /// and explain capture (see [`QueryCapture`]). Artifacts come back in
    /// [`BatchOutcome::captures`], input order. Jobs with a default
    /// capture take the plain execution path.
    pub fn run_soi_batch_captured(
        &self,
        ctx: &Arc<QueryContext<'_>>,
        jobs: &[(SoiQuery, QueryBudget, QueryCapture)],
    ) -> BatchOutcome {
        self.run_soi_batch_inner(ctx, jobs, |(q, b, c)| (q, *b, *c))
    }

    /// The shared k-SOI batch executor: `get` projects each item to its
    /// query, budget, and capture directives.
    fn run_soi_batch_inner<T, G>(
        &self,
        ctx: &Arc<QueryContext<'_>>,
        items: &[T],
        get: G,
    ) -> BatchOutcome
    where
        T: Sync,
        G: Fn(&T) -> (&SoiQuery, QueryBudget, QueryCapture) + Sync,
    {
        let _batch_span = soi_obs::trace::span(soi_obs::names::spans::ENGINE_BATCH);
        let start = Instant::now();
        let get = &get;
        let timed = self.dispatch(items, || {
            let ctx = Arc::clone(ctx);
            let mut scratch = SoiScratch::default();
            move |item: &T| {
                let (query, budget, capture) = get(item);
                // Per-query memory accounting: the query runs entirely on
                // this worker thread, so a thread-local scope sees exactly
                // its allocations (and how well the scratch absorbs them).
                let scope = AllocScope::start();
                let started = Instant::now();
                let mut explain = capture.explain.then(SoiExplain::default);
                // The span lives inside `run` so its Complete event falls
                // within the capture scope (spans record on drop).
                let mut run = |explain: Option<&mut SoiExplain>| {
                    let _span = soi_obs::trace::span(soi_obs::names::spans::ENGINE_QUERY);
                    run_soi_full(
                        ctx.network,
                        ctx.poi_view(),
                        ctx.index_view(),
                        query,
                        &ctx.config,
                        &mut scratch,
                        explain,
                        budget,
                    )
                };
                let (result, trace_json) = if capture.trace {
                    let (result, events) =
                        soi_obs::trace::capture(capture.request_id, || run(explain.as_mut()));
                    (result, Some(soi_obs::trace::chrome_trace_json(&events)))
                } else if capture.request_id != 0 {
                    let result = soi_obs::trace::with_request_id(capture.request_id, || {
                        run(explain.as_mut())
                    });
                    (result, None)
                } else {
                    (run(explain.as_mut()), None)
                };
                let elapsed = started.elapsed();
                let artifacts = capture.is_active().then(|| CapturedArtifacts {
                    trace_json,
                    explain_json: explain.map(|e| e.to_json()),
                });
                (result, elapsed, scope.finish(), artifacts)
            }
        });
        let mut stats = BatchStats {
            queries: items.len(),
            threads: self.threads,
            ..BatchStats::default()
        };
        let mut query_latencies = Vec::with_capacity(items.len());
        let mut query_allocs = Vec::with_capacity(items.len());
        let mut query_alloc_peaks = Vec::with_capacity(items.len());
        let mut results = Vec::with_capacity(items.len());
        let mut captures = Vec::with_capacity(items.len());
        let mut error_records = Vec::new();
        let metrics = obs::engine_metrics();
        // Every slot is claimed exactly once by the counter protocol, so no
        // `None` survives; `flatten` keeps the invariant checked without
        // panicking.
        for (index, (result, latency, alloc, artifacts)) in timed.into_iter().flatten().enumerate()
        {
            match &result {
                Ok(outcome) => {
                    stats.absorb(&outcome.stats);
                    if outcome.partial {
                        stats.partials += 1;
                    }
                    query_latencies.push(latency);
                    query_allocs.push(alloc.allocs);
                    query_alloc_peaks.push(alloc.peak_bytes);
                    metrics.query_allocations.observe(alloc.allocs as f64);
                    metrics
                        .query_alloc_peak_bytes
                        .observe(alloc.peak_bytes as f64);
                }
                Err(err) => {
                    stats.errors += 1;
                    error_records.push(BatchErrorRecord {
                        index,
                        stage: "query",
                        category: err.category().to_string(),
                        message: err.to_string(),
                    });
                }
            }
            results.push(result);
            captures.push(artifacts);
        }
        stats.wall_time = start.elapsed();
        let (eps_cache_hits, eps_cache_misses, eps_cache_evictions) =
            soi_index::obs::epsilon_cache_counters();
        let telemetry = EngineTelemetry {
            stats: stats.clone(),
            query_latencies,
            query_allocs,
            query_alloc_peaks,
            eps_cache_hits,
            eps_cache_misses,
            eps_cache_evictions,
            epoch: ctx.epoch,
            delta_ops: ctx.delta.map_or(0, |d| d.num_ops() as u64),
            delta_added_pois: ctx.delta.map_or(0, |d| d.added_pois().len() as u64),
            delta_deleted_pois: ctx.delta.map_or(0, |d| d.num_deleted_pois() as u64),
            error_records,
        };
        BatchOutcome {
            results,
            stats,
            telemetry,
            captures,
        }
    }

    /// Evaluates every `(street context, params)` describe job in `jobs`
    /// against `photos`.
    ///
    /// Results come back in input order and are bit-identical to calling
    /// [`st_rel_div`](soi_core::describe::st_rel_div) sequentially, for any
    /// worker count.
    pub fn run_describe_batch<'p>(
        &self,
        photos: impl Into<PhotoView<'p>>,
        jobs: &[(&StreetContext, DescribeParams)],
    ) -> Vec<Result<DescribeOutcome>> {
        let photos: PhotoView<'p> = photos.into();
        let _batch_span = soi_obs::trace::span(soi_obs::names::spans::ENGINE_BATCH);
        self.dispatch(jobs, || {
            let mut scratch = DescribeScratch::default();
            move |(ctx, params): &(&StreetContext, DescribeParams)| {
                let _span = soi_obs::trace::span(soi_obs::names::spans::ENGINE_QUERY);
                st_rel_div_budgeted(ctx, photos, params, &mut scratch, QueryBudget::unlimited())
            }
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// [`run_describe_batch`] with a per-job execution budget: a job whose
    /// deadline expires mid-selection returns the photos chosen so far with
    /// [`partial`](DescribeOutcome::partial) set (a success, not an error).
    /// Jobs with an unlimited budget are bit-identical to
    /// [`run_describe_batch`].
    pub fn run_describe_batch_with_deadlines<'p>(
        &self,
        photos: impl Into<PhotoView<'p>>,
        jobs: &[(&StreetContext, DescribeParams, QueryBudget)],
    ) -> Vec<Result<DescribeOutcome>> {
        let photos: PhotoView<'p> = photos.into();
        let _batch_span = soi_obs::trace::span(soi_obs::names::spans::ENGINE_BATCH);
        self.dispatch(jobs, || {
            let mut scratch = DescribeScratch::default();
            move |(ctx, params, budget): &(&StreetContext, DescribeParams, QueryBudget)| {
                let _span = soi_obs::trace::span(soi_obs::names::spans::ENGINE_QUERY);
                st_rel_div_budgeted(ctx, photos, params, &mut scratch, *budget)
            }
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// [`run_describe_batch_with_deadlines`] with per-job observability
    /// directives (the describe analogue of [`run_soi_batch_captured`]):
    /// returns results and the per-job artifacts, both in input order.
    #[allow(clippy::type_complexity)]
    pub fn run_describe_batch_captured<'p>(
        &self,
        photos: impl Into<PhotoView<'p>>,
        jobs: &[(&StreetContext, DescribeParams, QueryBudget, QueryCapture)],
    ) -> (Vec<Result<DescribeOutcome>>, Vec<Option<CapturedArtifacts>>) {
        let photos: PhotoView<'p> = photos.into();
        let _batch_span = soi_obs::trace::span(soi_obs::names::spans::ENGINE_BATCH);
        type DescribeJob<'a> = (&'a StreetContext, DescribeParams, QueryBudget, QueryCapture);
        self.dispatch(jobs, || {
            let mut scratch = DescribeScratch::default();
            move |(ctx, params, budget, capture): &DescribeJob<'_>| {
                let mut explain = capture.explain.then(DescribeExplain::default);
                let mut run = |explain: Option<&mut DescribeExplain>| {
                    let _span = soi_obs::trace::span(soi_obs::names::spans::ENGINE_QUERY);
                    st_rel_div_full(ctx, photos, params, &mut scratch, explain, *budget)
                };
                let (result, trace_json) = if capture.trace {
                    let (result, events) =
                        soi_obs::trace::capture(capture.request_id, || run(explain.as_mut()));
                    (result, Some(soi_obs::trace::chrome_trace_json(&events)))
                } else if capture.request_id != 0 {
                    let result = soi_obs::trace::with_request_id(capture.request_id, || {
                        run(explain.as_mut())
                    });
                    (result, None)
                } else {
                    (run(explain.as_mut()), None)
                };
                let artifacts = capture.is_active().then(|| CapturedArtifacts {
                    trace_json,
                    explain_json: explain.map(|e| e.to_json()),
                });
                (result, artifacts)
            }
        })
        .into_iter()
        .flatten()
        .unzip()
    }

    /// Fans `items` out over the worker pool: each worker claims the next
    /// unprocessed chunk of indices from a shared counter and runs
    /// `make_worker()`'s closure on each item. Returns one slot per item,
    /// in input order.
    fn dispatch<T, R, W, F>(&self, items: &[T], make_worker: W) -> Vec<Option<R>>
    where
        T: Sync,
        R: Send,
        W: Fn() -> F + Sync,
        F: FnMut(&T) -> R,
    {
        let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
        slots.resize_with(items.len(), || None);
        if self.threads <= 1 || items.len() <= 1 {
            let mut worker = make_worker();
            for (slot, item) in slots.iter_mut().zip(items) {
                *slot = Some(worker(item));
            }
            return slots;
        }
        let next = AtomicUsize::new(0);
        let next = &next;
        let make_worker = &make_worker;
        let workers = self.threads.min(items.len());
        // Claim granularity: single-index claims hit the shared counter once
        // per query, which shows up as cache-line ping-pong on large batches
        // of cheap queries. Claiming small contiguous chunks (~8 claims per
        // worker over the batch, capped so skewed per-query costs still
        // balance) amortises the contention without giving up stealing.
        let chunk = (items.len() / (workers * 8)).clamp(1, 32);
        let mut partials: Vec<Vec<(usize, R)>> = Vec::with_capacity(workers);
        partials.resize_with(workers, Vec::new);
        let run = crossbeam::thread::scope(|s| {
            for partial in partials.iter_mut() {
                s.spawn(move |_| {
                    // Root span for this worker thread: profiles sampled on
                    // engine workers attach below engine.worker instead of
                    // floating as bare engine.query stacks.
                    let _worker_span = soi_obs::trace::span(soi_obs::names::spans::ENGINE_WORKER);
                    let mut worker = make_worker();
                    loop {
                        let base = next.fetch_add(chunk, Ordering::Relaxed);
                        if base >= items.len() {
                            break;
                        }
                        let end = (base + chunk).min(items.len());
                        for (offset, item) in items[base..end].iter().enumerate() {
                            partial.push((base + offset, worker(item)));
                        }
                    }
                });
            }
        });
        if let Err(panic) = run {
            std::panic::resume_unwind(panic);
        }
        for (i, result) in partials.into_iter().flatten() {
            slots[i] = Some(result);
        }
        slots
    }
}

impl Default for QueryEngine {
    /// An engine with the automatically resolved worker count.
    fn default() -> Self {
        Self::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_core::soi::run_soi;

    fn fixture() -> (soi_data::Dataset, PoiIndex) {
        let (dataset, _) = soi_datagen::generate(&soi_datagen::vienna(0.02));
        let index = PoiIndex::build(&dataset.network, &dataset.pois, 0.001);
        (dataset, index)
    }

    fn queries(dataset: &soi_data::Dataset) -> Vec<SoiQuery> {
        let mut queries = Vec::new();
        for (k, kws) in [
            (5usize, &["shop"][..]),
            (10, &["food", "cafe"][..]),
            (3, &["museum"][..]),
            (7, &["shop", "food", "bar"][..]),
        ] {
            let keywords = dataset.query_keywords(kws);
            queries.push(SoiQuery::new(keywords, k, 0.0005).expect("valid query"));
        }
        queries
    }

    #[test]
    fn batch_matches_sequential_for_every_worker_count() {
        let (dataset, index) = fixture();
        let queries = queries(&dataset);
        let expected: Vec<SoiOutcome> = queries
            .iter()
            .map(|q| {
                run_soi(
                    &dataset.network,
                    &dataset.pois,
                    &index,
                    q,
                    &SoiConfig::default(),
                )
                .expect("valid query")
            })
            .collect();
        let ctx = Arc::new(QueryContext::new(&dataset.network, &dataset.pois, &index));
        for workers in [1usize, 2, 8] {
            let engine = QueryEngine::new(workers);
            assert_eq!(engine.threads(), workers);
            let batch = engine.run_soi_batch(&ctx, &queries);
            assert_eq!(batch.results.len(), queries.len());
            assert_eq!(batch.stats.queries, queries.len());
            assert_eq!(batch.stats.errors, 0);
            for (got, want) in batch.results.iter().zip(&expected) {
                let got = got.as_ref().expect("valid query");
                assert_eq!(got.results.len(), want.results.len());
                for (g, w) in got.results.iter().zip(&want.results) {
                    assert_eq!(g.street, w.street);
                    assert_eq!(g.interest.to_bits(), w.interest.to_bits());
                    assert_eq!(g.best_segment, w.best_segment);
                    assert_eq!(g.best_segment_mass.to_bits(), w.best_segment_mass.to_bits());
                }
            }
        }
    }

    #[test]
    fn invalid_query_fails_alone() {
        let (dataset, index) = fixture();
        let mut queries = queries(&dataset);
        queries[1].k = 0; // invalid
        let ctx = Arc::new(QueryContext::new(&dataset.network, &dataset.pois, &index));
        let batch = QueryEngine::new(2).run_soi_batch(&ctx, &queries);
        assert!(batch.results[0].is_ok());
        assert!(batch.results[1].is_err());
        assert!(batch.results[2].is_ok());
        assert_eq!(batch.stats.errors, 1);
    }

    #[test]
    fn unlimited_deadlines_match_plain_batch() {
        let (dataset, index) = fixture();
        let queries = queries(&dataset);
        let jobs: Vec<(SoiQuery, QueryBudget)> = queries
            .iter()
            .map(|q| (q.clone(), QueryBudget::unlimited()))
            .collect();
        let ctx = Arc::new(QueryContext::new(&dataset.network, &dataset.pois, &index));
        let engine = QueryEngine::new(2);
        let plain = engine.run_soi_batch(&ctx, &queries);
        let budgeted = engine.run_soi_batch_with_deadlines(&ctx, &jobs);
        assert_eq!(budgeted.stats.partials, 0);
        for (got, want) in budgeted.results.iter().zip(&plain.results) {
            let (got, want) = (got.as_ref().expect("valid"), want.as_ref().expect("valid"));
            assert!(!got.partial);
            assert_eq!(got.street_ids(), want.street_ids());
            for (g, w) in got.results.iter().zip(&want.results) {
                assert_eq!(g.interest.to_bits(), w.interest.to_bits());
            }
        }
    }

    #[test]
    fn expired_deadlines_yield_partials_not_errors() {
        let (dataset, index) = fixture();
        let queries = queries(&dataset);
        // A deadline already in the past: every query stops at its first
        // budget check and reports partial.
        let past = Instant::now();
        let jobs: Vec<(SoiQuery, QueryBudget)> = queries
            .iter()
            .map(|q| (q.clone(), QueryBudget::with_deadline(past)))
            .collect();
        let ctx = Arc::new(QueryContext::new(&dataset.network, &dataset.pois, &index));
        let batch = QueryEngine::new(2).run_soi_batch_with_deadlines(&ctx, &jobs);
        assert_eq!(batch.stats.errors, 0);
        assert_eq!(batch.stats.partials, queries.len());
        for result in &batch.results {
            let outcome = result.as_ref().expect("deadline hit is not an error");
            assert!(outcome.partial);
            assert!(outcome.stats.deadline_expired);
        }
    }

    #[test]
    fn error_records_report_index_and_category() {
        let (dataset, index) = fixture();
        let mut queries = queries(&dataset);
        queries[2].k = 0; // invalid
        let ctx = Arc::new(QueryContext::new(&dataset.network, &dataset.pois, &index));
        let batch = QueryEngine::new(2).run_soi_batch(&ctx, &queries);
        assert_eq!(batch.telemetry.error_records.len(), 1);
        let rec = &batch.telemetry.error_records[0];
        assert_eq!(rec.index, 2);
        assert_eq!(rec.stage, "query");
        assert_eq!(rec.category, "usage");
        let json = soi_obs::json::parse(&batch.telemetry.to_json()).expect("parses");
        let records = json
            .get("error_records")
            .and_then(|r| r.as_arr())
            .expect("error_records array");
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].get("index").and_then(|v| v.as_f64()), Some(2.0));
        assert_eq!(
            records[0].get("stage").and_then(|v| v.as_str()),
            Some("query")
        );
    }

    #[test]
    fn captured_jobs_return_artifacts_and_match_uncaptured_results() {
        let (dataset, index) = fixture();
        let queries = queries(&dataset);
        let ctx = Arc::new(QueryContext::new(&dataset.network, &dataset.pois, &index));
        let engine = QueryEngine::new(2);
        let plain = engine.run_soi_batch(&ctx, &queries);
        assert!(plain.captures.iter().all(Option::is_none));
        // Capture trace + explain for job 1 only; stamp ids on the rest.
        let jobs: Vec<(SoiQuery, QueryBudget, QueryCapture)> = queries
            .iter()
            .enumerate()
            .map(|(i, q)| {
                (
                    q.clone(),
                    QueryBudget::unlimited(),
                    QueryCapture {
                        request_id: i as u64 + 100,
                        trace: i == 1,
                        explain: i == 1,
                    },
                )
            })
            .collect();
        let captured = engine.run_soi_batch_captured(&ctx, &jobs);
        assert_eq!(captured.captures.len(), queries.len());
        for (i, (got, want)) in captured.results.iter().zip(&plain.results).enumerate() {
            let (got, want) = (got.as_ref().expect("valid"), want.as_ref().expect("valid"));
            assert_eq!(got.street_ids(), want.street_ids(), "job {i}");
            assert!(captured.captures[i].is_some() == (i == 1));
        }
        let artifacts = captured.captures[1].as_ref().expect("job 1 captured");
        let trace_doc = artifacts.trace_json.as_ref().expect("trace json");
        let parsed = soi_obs::json::parse(trace_doc).expect("trace parses");
        let events = parsed
            .get("traceEvents")
            .and_then(|v| v.as_arr())
            .expect("traceEvents");
        assert!(!events.is_empty(), "captured trace has events");
        // Every captured event belongs to the requesting job.
        for ev in events {
            assert_eq!(
                ev.get("args")
                    .and_then(|a| a.get("request_id"))
                    .and_then(|v| v.as_f64()),
                Some(101.0)
            );
        }
        assert!(events.iter().any(|ev| {
            ev.get("name").and_then(|n| n.as_str()) == Some(soi_obs::names::spans::ENGINE_QUERY)
        }));
        let explain_doc = artifacts.explain_json.as_ref().expect("explain json");
        assert!(soi_obs::json::parse(explain_doc).is_ok());
        // Nothing leaked into the (disabled) global trace.
        assert!(soi_obs::trace::take_events().is_empty());
    }

    #[test]
    fn describe_captured_returns_artifacts() {
        use soi_core::describe::{ContextBuilder, PhiSource};
        use soi_index::PhotoGrid;

        let (dataset, _) = fixture();
        let grid = PhotoGrid::build(&dataset.network, &dataset.photos, 0.001);
        let ctx = dataset
            .network
            .streets()
            .iter()
            .find_map(|street| {
                ContextBuilder {
                    network: &dataset.network,
                    photos: &dataset.photos,
                    photo_grid: &grid,
                    pois: None,
                    eps: 0.0005,
                    rho: 0.0001,
                    phi_source: PhiSource::Photos,
                }
                .build(street.id)
                .ok()
                .filter(|c| !c.members.is_empty())
            })
            .expect("fixture has a street with photos");
        let params = DescribeParams::new(5, 0.5, 0.5).expect("valid");
        let jobs = [(
            &ctx,
            params,
            QueryBudget::unlimited(),
            QueryCapture {
                request_id: 7,
                trace: true,
                explain: true,
            },
        )];
        let (results, captures) =
            QueryEngine::new(1).run_describe_batch_captured(&dataset.photos, &jobs);
        assert!(results[0].is_ok());
        let artifacts = captures[0].as_ref().expect("captured");
        assert!(artifacts
            .trace_json
            .as_ref()
            .is_some_and(|t| t.contains("traceEvents")));
        assert!(artifacts.explain_json.is_some());
    }

    #[test]
    fn empty_batch() {
        let (dataset, index) = fixture();
        let ctx = Arc::new(QueryContext::new(&dataset.network, &dataset.pois, &index));
        let batch = QueryEngine::new(4).run_soi_batch(&ctx, &[]);
        assert!(batch.results.is_empty());
        assert_eq!(batch.stats.queries_per_second(), 0.0);
    }

    #[test]
    fn describe_batch_matches_sequential_for_every_worker_count() {
        use soi_core::describe::{st_rel_div, ContextBuilder, PhiSource};
        use soi_index::PhotoGrid;

        let (dataset, _) = fixture();
        let grid = PhotoGrid::build(&dataset.network, &dataset.photos, 0.001);
        let mut contexts = Vec::new();
        for street in dataset.network.streets() {
            let ctx = ContextBuilder {
                network: &dataset.network,
                photos: &dataset.photos,
                photo_grid: &grid,
                pois: None,
                eps: 0.0005,
                rho: 0.0001,
                phi_source: PhiSource::Photos,
            }
            .build(street.id)
            .expect("buildable context");
            if !ctx.members.is_empty() {
                contexts.push(ctx);
            }
            if contexts.len() == 3 {
                break;
            }
        }
        assert!(!contexts.is_empty(), "fixture has streets with photos");
        let jobs: Vec<(&StreetContext, DescribeParams)> = contexts
            .iter()
            .flat_map(|ctx| {
                [(5usize, 0.5f64), (10, 0.25)]
                    .into_iter()
                    .map(move |(k, lambda)| {
                        (ctx, DescribeParams::new(k, lambda, 0.5).expect("valid"))
                    })
            })
            .collect();
        let expected: Vec<DescribeOutcome> = jobs
            .iter()
            .map(|(ctx, params)| st_rel_div(ctx, &dataset.photos, params).expect("valid"))
            .collect();
        for workers in [1usize, 2, 8] {
            let results = QueryEngine::new(workers).run_describe_batch(&dataset.photos, &jobs);
            assert_eq!(results.len(), jobs.len());
            for (got, want) in results.iter().zip(&expected) {
                let got = got.as_ref().expect("valid");
                assert_eq!(got.selected, want.selected, "workers {workers}");
                assert_eq!(got.objective.to_bits(), want.objective.to_bits());
            }
        }
    }

    #[test]
    fn telemetry_reports_latencies_and_parses_as_json() {
        let (dataset, index) = fixture();
        let queries = queries(&dataset);
        let ctx = Arc::new(QueryContext::new(&dataset.network, &dataset.pois, &index));
        let batch = QueryEngine::new(2).run_soi_batch(&ctx, &queries);
        let t = &batch.telemetry;
        assert_eq!(t.stats.queries, queries.len());
        assert_eq!(
            t.query_latencies.len(),
            queries.len(),
            "one latency per success"
        );
        let p50 = t.latency_p50().expect("non-empty batch has a median");
        let p99 = t.latency_p99().expect("non-empty batch has a p99");
        assert!(p50 <= p99);
        assert!(t.query_latencies.iter().sum::<Duration>() >= p50);

        let json = t.to_json();
        let parsed = soi_obs::json::parse(&json).expect("telemetry JSON parses");
        assert_eq!(
            parsed.get("queries").and_then(|v| v.as_f64()),
            Some(queries.len() as f64)
        );
        assert_eq!(
            parsed
                .get("latency")
                .and_then(|l| l.get("samples"))
                .and_then(|v| v.as_f64()),
            Some(queries.len() as f64)
        );
        assert!(parsed
            .get("latency")
            .and_then(|l| l.get("p50_ms"))
            .and_then(|v| v.as_f64())
            .is_some());
        assert!(parsed
            .get("eps_cache")
            .and_then(|e| e.get("hits"))
            .and_then(|v| v.as_f64())
            .is_some());
        assert!(parsed
            .get("counters")
            .and_then(|c| c.get("accesses"))
            .and_then(|v| v.as_f64())
            .is_some());
        let alloc = parsed.get("alloc").expect("alloc section");
        assert_eq!(
            alloc.get("samples").and_then(|v| v.as_f64()),
            Some(queries.len() as f64)
        );
        assert!(alloc
            .get("peak_bytes")
            .and_then(|p| p.get("max"))
            .and_then(|v| v.as_f64())
            .is_some_and(|v| v > 0.0));
    }

    #[test]
    fn warm_queries_stay_within_cold_allocation_budget() {
        // Scratch-reuse regression guard: with one worker (and therefore one
        // scratch), repeating the same query must not allocate more than the
        // cold first run — warm queries run out of the retained buffers.
        let (dataset, index) = fixture();
        let keywords = dataset.query_keywords(&["shop", "food"]);
        let query = SoiQuery::new(keywords, 10, 0.0005).expect("valid query");
        let batch: Vec<SoiQuery> = vec![query; 8];
        let ctx = Arc::new(QueryContext::new(&dataset.network, &dataset.pois, &index));
        let out = QueryEngine::new(1).run_soi_batch(&ctx, &batch);
        let allocs = &out.telemetry.query_allocs;
        assert_eq!(allocs.len(), batch.len());
        let cold = allocs[0];
        let warm_max = *allocs[1..].iter().max().expect("warm samples");
        assert!(cold > 0, "counting allocator must see the cold query");
        assert!(
            warm_max <= cold,
            "warm query allocated more than the cold one: {warm_max} > {cold}"
        );
        // Absolute ceiling with ample headroom (warm queries currently sit
        // around a few dozen allocations): catches a scratch-reuse
        // regression that re-allocates per-segment state every query long
        // before it degrades wall-clock measurably.
        assert!(
            warm_max <= 10_000,
            "warm query allocation count {warm_max} exceeds the regression ceiling"
        );
        let peaks = &out.telemetry.query_alloc_peaks;
        assert!(
            peaks[1..].iter().all(|&p| p <= peaks[0].max(1)),
            "warm peak exceeded cold peak: {peaks:?}"
        );
    }

    #[test]
    fn telemetry_reports_eps_cache_hits_for_repeated_eps() {
        let (dataset, index) = fixture();
        let queries = queries(&dataset); // all queries share ε = 0.0005
                                         // An API user (the experiment harness, a service warm-up) fetches
                                         // the eager ε-maps for the batch's repeated ε; the cache must serve
                                         // the repeats and the batch telemetry must report the hits.
        for q in &queries {
            let _ = index.epsilon_maps(&dataset.network, q.eps);
        }
        let ctx = Arc::new(QueryContext::new(&dataset.network, &dataset.pois, &index));
        let batch = QueryEngine::new(1).run_soi_batch(&ctx, &queries);
        assert!(
            batch.telemetry.eps_cache_hits > 0,
            "repeated-ε warm-up must register cache hits in the telemetry"
        );
        assert!(batch.telemetry.eps_cache_misses > 0);
    }

    #[test]
    fn empty_latency_quantiles_are_none() {
        let t = EngineTelemetry::default();
        assert_eq!(t.latency_p50(), None);
        let parsed = soi_obs::json::parse(&t.to_json()).expect("parses");
        assert!(matches!(
            parsed.get("latency").and_then(|l| l.get("p50_ms")),
            Some(soi_obs::json::Json::Null)
        ));
    }

    #[test]
    fn stats_aggregate_counters() {
        let (dataset, index) = fixture();
        let queries = queries(&dataset);
        let ctx = Arc::new(QueryContext::new(&dataset.network, &dataset.pois, &index));
        let batch = QueryEngine::new(1).run_soi_batch(&ctx, &queries);
        let summed: usize = batch
            .results
            .iter()
            .map(|r| r.as_ref().expect("valid").stats.accesses)
            .sum();
        assert_eq!(batch.stats.accesses, summed);
        assert!(batch.stats.wall_time > Duration::ZERO);
    }

    #[test]
    fn delta_view_matches_folded_rebuild_with_identical_work_counters() {
        // The tentpole invariant end to end: a batch pinned to a
        // base+delta epoch must answer every query — results AND work
        // counters — bit-identically to a batch over the folded rebuild,
        // at every worker count. Equal counters mean the view's UB/LBk
        // bounds drove the exact same pruning decisions.
        let (dataset, index) = fixture();
        let queries = queries(&dataset);

        // A delta stream: inserts at existing POI positions (inside the
        // grid extent) using queried keywords, plus a few deletes.
        let shop = dataset.query_keywords(&["shop", "cafe"]);
        let mut ops = Vec::new();
        for i in 0..30usize {
            let pos = dataset
                .pois
                .get(soi_common::PoiId::from_index(i * 7 % dataset.pois.len()))
                .pos;
            ops.push(soi_index::DeltaOp::AddPoi {
                pos,
                keywords: shop.clone(),
                weight: 1.0 + (i % 3) as f64,
            });
        }
        for i in 0..10usize {
            ops.push(soi_index::DeltaOp::DeletePoi {
                id: soi_common::PoiId::from_index(i * 13),
            });
        }
        let delta =
            DeltaIndex::seal(&index, &dataset.pois, &dataset.photos, &ops).expect("valid ops");
        let (folded_pois, _) =
            soi_index::fold_ops(&dataset.pois, &dataset.photos, &ops).expect("valid ops");
        let rebuilt = PoiIndex::build(&dataset.network, &folded_pois, 0.001);

        let ctx_delta = Arc::new(QueryContext::with_delta(
            &dataset.network,
            &dataset.pois,
            &index,
            Some(&delta),
            1,
        ));
        let ctx_fold = Arc::new(QueryContext::new(&dataset.network, &folded_pois, &rebuilt));
        for workers in [1usize, 2, 8] {
            let engine = QueryEngine::new(workers);
            let via_view = engine.run_soi_batch(&ctx_delta, &queries);
            let via_fold = engine.run_soi_batch(&ctx_fold, &queries);
            assert_eq!(via_view.stats.errors, 0);
            for (got, want) in via_view.results.iter().zip(&via_fold.results) {
                let got = got.as_ref().expect("valid");
                let want = want.as_ref().expect("valid");
                assert_eq!(got.results.len(), want.results.len());
                for (g, w) in got.results.iter().zip(&want.results) {
                    assert_eq!(g.street, w.street);
                    assert_eq!(g.interest.to_bits(), w.interest.to_bits());
                    assert_eq!(g.best_segment, w.best_segment);
                    assert_eq!(g.best_segment_mass.to_bits(), w.best_segment_mass.to_bits());
                }
                assert_eq!(got.stats.accesses, want.stats.accesses, "w{workers}");
                assert_eq!(
                    got.stats.cells_popped, want.stats.cells_popped,
                    "w{workers}"
                );
                assert_eq!(
                    got.stats.segments_popped, want.stats.segments_popped,
                    "w{workers}"
                );
                assert_eq!(got.stats.cell_visits, want.stats.cell_visits, "w{workers}");
                assert_eq!(
                    got.stats.segments_seen, want.stats.segments_seen,
                    "w{workers}"
                );
                assert_eq!(
                    got.stats.segments_bounded_out, want.stats.segments_bounded_out,
                    "w{workers}"
                );
                assert_eq!(
                    got.stats.segments_finalized(),
                    want.stats.segments_finalized(),
                    "w{workers}"
                );
            }
            // Telemetry surfaces the pinned epoch and delta sizes.
            assert_eq!(via_view.telemetry.epoch, 1);
            assert_eq!(via_view.telemetry.delta_added_pois, 30);
            assert_eq!(via_view.telemetry.delta_deleted_pois, 10);
            assert_eq!(via_fold.telemetry.epoch, 0);
            assert_eq!(via_fold.telemetry.delta_ops, 0);
        }
    }
}
