//! Engine-level instruments: per-query memory-accounting histograms.
//!
//! The engine is where per-query allocation behaviour is visible (each
//! query runs under an [`soi_obs::AllocScope`] on its worker thread), so
//! the distribution instruments live here. The scratch-reuse design means
//! warm queries should sit in the lowest buckets; a drift towards the
//! upper buckets is the earliest sign of an allocation regression in the
//! query path.

use soi_obs::metrics::{register_histogram, Histogram, ALLOC_BYTES_BUCKETS, ALLOC_COUNT_BUCKETS};
use std::sync::OnceLock;

/// Global instruments fed by engine batch execution.
pub struct EngineMetrics {
    /// `soi_engine_query_allocations`: heap allocations per k-SOI query
    /// (worker-thread scope).
    pub query_allocations: &'static Histogram,
    /// `soi_engine_query_alloc_peak_bytes`: peak live heap bytes per
    /// k-SOI query above the scope baseline.
    pub query_alloc_peak_bytes: &'static Histogram,
}

/// The engine instruments (registered on first use).
pub fn engine_metrics() -> &'static EngineMetrics {
    static METRICS: OnceLock<EngineMetrics> = OnceLock::new();
    METRICS.get_or_init(|| EngineMetrics {
        query_allocations: register_histogram(
            "soi_engine_query_allocations",
            "Heap allocations per k-SOI query on its worker thread",
            ALLOC_COUNT_BUCKETS,
        ),
        query_alloc_peak_bytes: register_histogram(
            "soi_engine_query_alloc_peak_bytes",
            "Peak live heap bytes per k-SOI query above the scope baseline",
            ALLOC_BYTES_BUCKETS,
        ),
    })
}

/// Forces registration of the engine metrics so a gather performed before
/// any batch still exposes the full series set.
pub fn register_metrics() {
    let _ = engine_metrics();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_exposes_alloc_series() {
        register_metrics();
        let text = soi_obs::metrics::gather_prefixed("soi_engine_");
        assert!(text.contains("soi_engine_query_allocations"));
        assert!(text.contains("soi_engine_query_alloc_peak_bytes"));
    }
}
