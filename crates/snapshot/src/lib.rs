//! The `soi-snapshot` on-disk container: versioned, checksummed,
//! alignment-aware snapshots of the offline index structures.
//!
//! Every offline structure in this workspace (`PoiIndex`, `PhotoGrid`,
//! `DiversificationIndex`, `IrTree`, ε-maps, the STR R-tree, flat text
//! postings) is at heart a handful of flat `u32`/`u64`/`f64` arrays in CSR
//! layouts. This crate stores those arrays verbatim — native-endian
//! plain-old-data — inside a single container file, so loading an index is
//! a *validated cast*, not a parse:
//!
//! ```text
//! ┌────────────────────────────────────────────────────────────┐
//! │ header (32 B): magic "SOISNAP1" · format version ·         │
//! │                endianness tag · section count ·            │
//! │                table checksum (FNV-1a 64)                  │
//! ├────────────────────────────────────────────────────────────┤
//! │ section table: n × 48 B entries                            │
//! │   {name[16] · offset u64 · len u64 · align u32 ·           │
//! │    reserved u32 · checksum u64 (FNV-1a 64 of the payload)} │
//! ├────────────────────────────────────────────────────────────┤
//! │ payloads, each zero-padded to its declared alignment       │
//! └────────────────────────────────────────────────────────────┘
//! ```
//!
//! Reads go through [`SnapshotBytes`]: an `mmap(2)` of the file on unix
//! (via a tiny syscall shim in the spirit of the serving layer's
//! `signal(2)` shim — no libc *crate*, just the symbols std already links)
//! with a read-into-8-byte-aligned-buffer fallback everywhere else (or when
//! `SOI_SNAPSHOT_NO_MMAP=1`).
//!
//! Corruption — truncation, flipped bytes, bad magic, unknown versions,
//! foreign endianness, overlapping or out-of-bounds sections — surfaces as
//! a categorized [`SoiError`](soi_common::SoiError) in the `Data` category
//! (CLI exit code 3) carrying the file path. Nothing in this crate panics
//! on untrusted input.

#![deny(unsafe_code)]
#![warn(missing_docs)]
// Library code must surface failures as `SoiError`, never panic: unwrap and
// expect are compile errors outside of test code.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod bytes;
pub mod container;
pub mod fnv;
pub mod pod;

pub use bytes::SnapshotBytes;
pub use container::{
    corrupt, SectionMeta, Snapshot, SnapshotWriter, ENDIAN_TAG, FORMAT_VERSION, HEADER_LEN, MAGIC,
    TABLE_ENTRY_LEN,
};
pub use fnv::{fnv1a64, fnv1a64_words, Fnv64};
