//! The snapshot container: header, section table, payloads.
//!
//! See the crate docs for the layout diagram. Design choices:
//!
//! - **Native endianness with a tag.** Payloads are raw POD arrays, so a
//!   file is only readable on a host with the same byte order as the
//!   writer. The header records the writer's order via a known `u32`
//!   constant; a reader on the other order sees the byte-swapped value and
//!   rejects the file instead of silently mis-reading every number.
//! - **Alignment capped at 8.** The widest element stored is 8 bytes
//!   (`u64`/`f64`), and the read fallback guarantees an 8-byte-aligned
//!   base, so every in-file offset aligned to the section's declared
//!   alignment is aligned in memory too.
//! - **Eager checksum verification.** [`Snapshot::open`] verifies the
//!   table checksum and every payload checksum before returning. The
//!   table uses byte-wise FNV-1a; payloads use the word-wise variant
//!   (8 bytes per multiply) so the pass stays I/O-bound even on large
//!   files. Either way a corrupt snapshot can never reach a decoder.

use std::path::{Path, PathBuf};

use soi_common::{Result, SoiError};

use crate::bytes::SnapshotBytes;
use crate::fnv::{fnv1a64, fnv1a64_words};
use crate::pod;

/// File magic: identifies a soi snapshot container, generation 1.
pub const MAGIC: [u8; 8] = *b"SOISNAP1";
/// Container format version. Bump on any incompatible layout change.
pub const FORMAT_VERSION: u32 = 1;
/// Endianness probe constant, stored native-endian.
pub const ENDIAN_TAG: u32 = 0x0A0B_0C0D;
/// Header size in bytes.
pub const HEADER_LEN: usize = 32;
/// Section-table entry size in bytes.
pub const TABLE_ENTRY_LEN: usize = 48;

const NAME_LEN: usize = 16;
const MAX_ALIGN: u32 = 8;

/// Builds a categorized `Data` error for a corrupt or unreadable snapshot,
/// carrying the file path so one log line locates the artifact.
pub fn corrupt(path: &Path, message: impl Into<String>) -> SoiError {
    SoiError::parse(0, format!("snapshot: {}", message.into())).at_path(path)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

struct PendingSection {
    name: String,
    align: u32,
    bytes: Vec<u8>,
}

/// Accumulates named sections and assembles the container.
#[derive(Default)]
pub struct SnapshotWriter {
    sections: Vec<PendingSection>,
}

impl SnapshotWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a raw byte section.
    ///
    /// # Errors
    /// Rejects names longer than 16 bytes or already used, and alignments
    /// that are not a power of two in `1..=8` — all writer-side programming
    /// errors, reported rather than panicking.
    pub fn bytes(&mut self, name: &str, align: u32, bytes: &[u8]) -> Result<()> {
        if name.is_empty() || name.len() > NAME_LEN || !name.is_ascii() {
            return Err(SoiError::invalid(format!(
                "snapshot section name `{name}` must be 1..={NAME_LEN} ASCII bytes"
            )));
        }
        if !align.is_power_of_two() || align > MAX_ALIGN {
            return Err(SoiError::invalid(format!(
                "snapshot section `{name}`: alignment {align} not a power of two in 1..={MAX_ALIGN}"
            )));
        }
        if self.sections.iter().any(|s| s.name == name) {
            return Err(SoiError::invalid(format!(
                "snapshot section `{name}` added twice"
            )));
        }
        self.sections.push(PendingSection {
            name: name.to_string(),
            align,
            bytes: bytes.to_vec(),
        });
        Ok(())
    }

    /// Adds a `u32` array section (alignment 4).
    ///
    /// # Errors
    /// See [`SnapshotWriter::bytes`].
    pub fn u32s(&mut self, name: &str, values: &[u32]) -> Result<()> {
        self.bytes(name, 4, pod::u32s_as_bytes(values))
    }

    /// Adds a `u64` array section (alignment 8).
    ///
    /// # Errors
    /// See [`SnapshotWriter::bytes`].
    pub fn u64s(&mut self, name: &str, values: &[u64]) -> Result<()> {
        self.bytes(name, 8, pod::u64s_as_bytes(values))
    }

    /// Adds an `f64` array section (alignment 8).
    ///
    /// # Errors
    /// See [`SnapshotWriter::bytes`].
    pub fn f64s(&mut self, name: &str, values: &[f64]) -> Result<()> {
        self.bytes(name, 8, pod::f64s_as_bytes(values))
    }

    /// Assembles the container image in memory.
    pub fn finish(&self) -> Vec<u8> {
        let n = self.sections.len();
        let table_len = n * TABLE_ENTRY_LEN;

        // Lay out payloads after the table, honouring alignment.
        let mut offsets = Vec::with_capacity(n);
        let mut cursor = HEADER_LEN + table_len;
        for s in &self.sections {
            let align = s.align.max(1) as usize;
            cursor = cursor.div_ceil(align) * align;
            offsets.push(cursor);
            cursor += s.bytes.len();
        }

        let mut buf = vec![0u8; cursor];

        // Table entries.
        for (i, (s, &off)) in self.sections.iter().zip(&offsets).enumerate() {
            let e = HEADER_LEN + i * TABLE_ENTRY_LEN;
            buf[e..e + s.name.len()].copy_from_slice(s.name.as_bytes());
            buf[e + 16..e + 24].copy_from_slice(&(off as u64).to_ne_bytes());
            buf[e + 24..e + 32].copy_from_slice(&(s.bytes.len() as u64).to_ne_bytes());
            buf[e + 32..e + 36].copy_from_slice(&s.align.to_ne_bytes());
            // e+36..e+40 reserved, stays zero.
            buf[e + 40..e + 48].copy_from_slice(&fnv1a64_words(&s.bytes).to_ne_bytes());
            buf[off..off + s.bytes.len()].copy_from_slice(&s.bytes);
        }

        // Header, including the checksum over the just-written table.
        let table_checksum = fnv1a64(&buf[HEADER_LEN..HEADER_LEN + table_len]);
        buf[0..8].copy_from_slice(&MAGIC);
        buf[8..12].copy_from_slice(&FORMAT_VERSION.to_ne_bytes());
        buf[12..16].copy_from_slice(&ENDIAN_TAG.to_ne_bytes());
        buf[16..20].copy_from_slice(&(n as u32).to_ne_bytes());
        // 20..24 reserved, stays zero.
        buf[24..32].copy_from_slice(&table_checksum.to_ne_bytes());
        buf
    }

    /// Writes the container to `path` atomically (temp file + rename) and
    /// returns the file size in bytes.
    ///
    /// # Errors
    /// Any I/O failure creating, writing, or renaming the file.
    pub fn write_to(&self, path: &Path) -> Result<u64> {
        let image = self.finish();
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(format!(".tmp.{}", std::process::id()));
        let tmp = PathBuf::from(tmp);
        std::fs::write(&tmp, &image).map_err(|e| SoiError::io(e, &tmp))?;
        std::fs::rename(&tmp, path).map_err(|e| {
            std::fs::remove_file(&tmp).ok();
            SoiError::io(e, path)
        })?;
        Ok(image.len() as u64)
    }
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// Metadata of one section, as recorded in the table.
#[derive(Debug, Clone)]
pub struct SectionMeta {
    /// Section name (≤ 16 ASCII bytes).
    pub name: String,
    /// Absolute payload offset in the file.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u64,
    /// Declared payload alignment.
    pub align: u32,
    /// Word-wise FNV-1a 64 checksum of the payload (see [`crate::fnv::fnv1a64_words`]).
    pub checksum: u64,
}

/// An opened, fully validated snapshot container.
#[derive(Debug)]
pub struct Snapshot {
    data: SnapshotBytes,
    path: PathBuf,
    sections: Vec<SectionMeta>,
}

impl Snapshot {
    /// Opens and validates `path`: magic, version, endianness, table
    /// checksum, section bounds/overlap, and every payload checksum.
    ///
    /// # Errors
    /// I/O failures (`Io`/`NotFound` category) and any corruption
    /// (`Data` category, exit code 3), always naming the file.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref();
        let data = SnapshotBytes::open(path)?;
        let sections = validate(path, data.as_slice())?;
        Ok(Snapshot {
            data,
            path: path.to_path_buf(),
            sections,
        })
    }

    /// The file this snapshot was opened from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Whether the content is memory-mapped (vs read into a buffer).
    pub fn is_mapped(&self) -> bool {
        self.data.is_mapped()
    }

    /// Total container size in bytes.
    pub fn file_len(&self) -> u64 {
        self.data.as_slice().len() as u64
    }

    /// The validated section table, in file order.
    pub fn sections(&self) -> &[SectionMeta] {
        &self.sections
    }

    /// Whether a section named `name` exists.
    pub fn has(&self, name: &str) -> bool {
        self.sections.iter().any(|s| s.name == name)
    }

    /// The payload bytes of section `name`.
    ///
    /// # Errors
    /// A `Data` error if the section is absent (a structurally valid file
    /// from a different producer, or a stale layout).
    pub fn bytes(&self, name: &str) -> Result<&[u8]> {
        let meta = self
            .sections
            .iter()
            .find(|s| s.name == name)
            .ok_or_else(|| corrupt(&self.path, format!("missing section `{name}`")))?;
        let (start, end) = (meta.offset as usize, (meta.offset + meta.len) as usize);
        Ok(&self.data.as_slice()[start..end])
    }

    /// Section `name` viewed as a `u32` array.
    ///
    /// # Errors
    /// `Data` error if absent, misaligned, or not a whole number of
    /// elements.
    pub fn u32s(&self, name: &str) -> Result<&[u32]> {
        pod::bytes_as_u32s(self.bytes(name)?)
            .ok_or_else(|| corrupt(&self.path, format!("section `{name}` is not a u32 array")))
    }

    /// Section `name` viewed as a `u64` array.
    ///
    /// # Errors
    /// As [`Snapshot::u32s`].
    pub fn u64s(&self, name: &str) -> Result<&[u64]> {
        pod::bytes_as_u64s(self.bytes(name)?)
            .ok_or_else(|| corrupt(&self.path, format!("section `{name}` is not a u64 array")))
    }

    /// Section `name` viewed as an `f64` array.
    ///
    /// # Errors
    /// As [`Snapshot::u32s`].
    pub fn f64s(&self, name: &str) -> Result<&[f64]> {
        pod::bytes_as_f64s(self.bytes(name)?)
            .ok_or_else(|| corrupt(&self.path, format!("section `{name}` is not an f64 array")))
    }
}

/// Full structural validation; returns the parsed section table.
fn validate(path: &Path, buf: &[u8]) -> Result<Vec<SectionMeta>> {
    let file_len = buf.len();
    if file_len < HEADER_LEN {
        return Err(corrupt(
            path,
            format!("truncated: {file_len} bytes, header needs {HEADER_LEN}"),
        ));
    }
    if buf[0..8] != MAGIC {
        return Err(corrupt(path, "bad magic (not a soi snapshot)"));
    }
    let version = read_u32(buf, 8);
    let endian = read_u32(buf, 12);
    if endian != ENDIAN_TAG {
        if endian == ENDIAN_TAG.swap_bytes() {
            return Err(corrupt(
                path,
                "endianness mismatch: written on a host with the opposite byte order",
            ));
        }
        return Err(corrupt(path, format!("bad endianness tag {endian:#010x}")));
    }
    if version != FORMAT_VERSION {
        return Err(corrupt(
            path,
            format!("unsupported format version {version} (reader supports {FORMAT_VERSION})"),
        ));
    }
    let count = read_u32(buf, 16) as usize;
    let table_len = count
        .checked_mul(TABLE_ENTRY_LEN)
        .filter(|&tl| tl <= file_len - HEADER_LEN)
        .ok_or_else(|| {
            corrupt(
                path,
                format!("section table ({count} entries) exceeds file size {file_len}"),
            )
        })?;
    let table = &buf[HEADER_LEN..HEADER_LEN + table_len];
    let stored_table_checksum = read_u64(buf, 24);
    let actual_table_checksum = fnv1a64(table);
    if stored_table_checksum != actual_table_checksum {
        return Err(corrupt(
            path,
            format!(
                "section table checksum mismatch (stored {stored_table_checksum:#018x}, computed {actual_table_checksum:#018x})"
            ),
        ));
    }

    let mut sections = Vec::with_capacity(count);
    for i in 0..count {
        let e = i * TABLE_ENTRY_LEN;
        let name_bytes = &table[e..e + NAME_LEN];
        let name_end = name_bytes.iter().position(|&b| b == 0).unwrap_or(NAME_LEN);
        let name = std::str::from_utf8(&name_bytes[..name_end])
            .ok()
            .filter(|n| !n.is_empty() && n.is_ascii())
            .ok_or_else(|| corrupt(path, format!("section {i}: invalid name")))?
            .to_string();
        if name_bytes[name_end..].iter().any(|&b| b != 0) {
            return Err(corrupt(path, format!("section {i}: non-padded name")));
        }
        let offset = read_u64(table, e + 16);
        let len = read_u64(table, e + 24);
        let align = read_u32(table, e + 32);
        let checksum = read_u64(table, e + 40);
        if !align.is_power_of_two() || align > MAX_ALIGN {
            return Err(corrupt(
                path,
                format!("section `{name}`: invalid alignment {align}"),
            ));
        }
        let end = offset
            .checked_add(len)
            .ok_or_else(|| corrupt(path, format!("section `{name}`: offset+len overflows")))?;
        if offset < (HEADER_LEN + table_len) as u64 || end > file_len as u64 {
            return Err(corrupt(
                path,
                format!(
                    "section `{name}`: range {offset}..{end} outside payload area of {file_len}-byte file"
                ),
            ));
        }
        if !offset.is_multiple_of(align as u64) {
            return Err(corrupt(
                path,
                format!("section `{name}`: offset {offset} not {align}-byte aligned"),
            ));
        }
        if sections.iter().any(|s: &SectionMeta| s.name == name) {
            return Err(corrupt(path, format!("duplicate section `{name}`")));
        }
        sections.push(SectionMeta {
            name,
            offset,
            len,
            align,
            checksum,
        });
    }

    // Overlap check over the payload spans.
    let mut spans: Vec<(u64, u64, &str)> = sections
        .iter()
        .map(|s| (s.offset, s.offset + s.len, s.name.as_str()))
        .collect();
    spans.sort_unstable();
    for pair in spans.windows(2) {
        if pair[1].0 < pair[0].1 {
            return Err(corrupt(
                path,
                format!("sections `{}` and `{}` overlap", pair[0].2, pair[1].2),
            ));
        }
    }

    // Payload checksums, eagerly.
    for s in &sections {
        let payload = &buf[s.offset as usize..(s.offset + s.len) as usize];
        let actual = fnv1a64_words(payload);
        if actual != s.checksum {
            return Err(corrupt(
                path,
                format!(
                    "section `{}` checksum mismatch (stored {:#018x}, computed {actual:#018x})",
                    s.name, s.checksum
                ),
            ));
        }
    }

    Ok(sections)
}

fn read_u32(buf: &[u8], at: usize) -> u32 {
    let mut b = [0u8; 4];
    b.copy_from_slice(&buf[at..at + 4]);
    u32::from_ne_bytes(b)
}

fn read_u64(buf: &[u8], at: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&buf[at..at + 8]);
    u64::from_ne_bytes(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_common::ErrorCategory;

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("soi-snapc-{}-{name}.soisnap", std::process::id()))
    }

    fn sample_writer() -> SnapshotWriter {
        let mut w = SnapshotWriter::new();
        w.u32s("ids", &[1, 2, 3, 4, 5]).unwrap();
        w.f64s("weights", &[0.5, -1.25, f64::NAN]).unwrap();
        w.u64s("meta", &[42, u64::MAX]).unwrap();
        w.bytes("blob", 1, b"hello").unwrap();
        w
    }

    #[test]
    fn round_trip() {
        let path = temp_path("roundtrip");
        sample_writer().write_to(&path).unwrap();
        let snap = Snapshot::open(&path).unwrap();
        assert_eq!(snap.u32s("ids").unwrap(), &[1, 2, 3, 4, 5]);
        let w = snap.f64s("weights").unwrap();
        assert_eq!(w[0], 0.5);
        assert!(w[2].is_nan());
        assert_eq!(snap.u64s("meta").unwrap(), &[42, u64::MAX]);
        assert_eq!(snap.bytes("blob").unwrap(), b"hello");
        assert_eq!(snap.sections().len(), 4);
        assert!(snap.has("ids") && !snap.has("nope"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_sections_round_trip() {
        let path = temp_path("empty");
        let mut w = SnapshotWriter::new();
        w.u32s("nothing", &[]).unwrap();
        w.write_to(&path).unwrap();
        let snap = Snapshot::open(&path).unwrap();
        assert_eq!(snap.u32s("nothing").unwrap().len(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn writer_rejects_bad_sections() {
        let mut w = SnapshotWriter::new();
        assert!(w.bytes("x", 3, b"").is_err(), "non-power-of-two align");
        assert!(w.bytes("x", 16, b"").is_err(), "align > 8");
        assert!(w.bytes("", 1, b"").is_err(), "empty name");
        assert!(w.bytes("aaaaaaaaaaaaaaaaa", 1, b"").is_err(), "long name");
        w.bytes("dup", 1, b"").unwrap();
        assert!(w.bytes("dup", 1, b"").is_err(), "duplicate name");
    }

    #[test]
    fn missing_section_is_data_error() {
        let path = temp_path("missing");
        sample_writer().write_to(&path).unwrap();
        let snap = Snapshot::open(&path).unwrap();
        let err = snap.u32s("absent").unwrap_err();
        assert_eq!(err.category(), ErrorCategory::Data);
        assert!(err.to_string().contains("absent"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_type_view_is_data_error() {
        let path = temp_path("wrongtype");
        sample_writer().write_to(&path).unwrap();
        let snap = Snapshot::open(&path).unwrap();
        // "blob" is 5 bytes — not a whole number of u32s.
        assert_eq!(
            snap.u32s("blob").unwrap_err().category(),
            ErrorCategory::Data
        );
        std::fs::remove_file(&path).ok();
    }

    fn corrupted(name: &str, mutate: impl FnOnce(&mut Vec<u8>)) -> SoiError {
        let path = temp_path(name);
        sample_writer().write_to(&path).unwrap();
        let mut image = std::fs::read(&path).unwrap();
        mutate(&mut image);
        std::fs::write(&path, &image).unwrap();
        let err = Snapshot::open(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        err
    }

    type Mutator = Box<dyn FnOnce(&mut Vec<u8>)>;

    #[test]
    fn corruption_modes_are_data_errors_with_path() {
        let cases: Vec<(&str, Mutator)> = vec![
            ("magic", Box::new(|b: &mut Vec<u8>| b[0] = b'X')),
            ("version", Box::new(|b: &mut Vec<u8>| b[8] = 99)),
            ("endian", Box::new(|b: &mut Vec<u8>| b[12..16].reverse())),
            ("truncate-hdr", Box::new(|b: &mut Vec<u8>| b.truncate(10))),
            (
                "truncate-body",
                Box::new(|b: &mut Vec<u8>| {
                    let l = b.len();
                    b.truncate(l - 3);
                }),
            ),
            (
                "payload-flip",
                Box::new(|b: &mut Vec<u8>| {
                    let l = b.len();
                    b[l - 1] ^= 0x40;
                }),
            ),
            (
                "table-flip",
                Box::new(|b: &mut Vec<u8>| b[HEADER_LEN + 17] ^= 0x01),
            ),
        ];
        for (name, mutate) in cases {
            let err = corrupted(name, mutate);
            assert_eq!(err.category(), ErrorCategory::Data, "case {name}: {err}");
            assert!(err.to_string().contains(".soisnap"), "case {name}: {err}");
        }
    }

    #[test]
    fn out_of_bounds_and_overlap_are_rejected() {
        // Patch entry 0's offset to point past EOF, fixing the table
        // checksum so the bounds check (not the checksum) fires.
        let err = corrupted("oob", |b| {
            let file_len = b.len() as u64;
            b[HEADER_LEN + 16..HEADER_LEN + 24].copy_from_slice(&file_len.to_ne_bytes());
            let n = read_u32(b, 16) as usize;
            let table = fnv1a64(&b[HEADER_LEN..HEADER_LEN + n * TABLE_ENTRY_LEN]);
            b[24..32].copy_from_slice(&table.to_ne_bytes());
        });
        assert_eq!(err.category(), ErrorCategory::Data);
        assert!(err.to_string().contains("outside payload area"), "{err}");

        // Point section 1 at section 0's payload (aligned) -> overlap.
        let err = corrupted("overlap", |b| {
            let e0 = HEADER_LEN;
            let e1 = HEADER_LEN + TABLE_ENTRY_LEN;
            let off0 = read_u64(b, e0 + 16);
            let aligned = off0.div_ceil(8) * 8;
            b[e1 + 16..e1 + 24].copy_from_slice(&aligned.to_ne_bytes());
            let n = read_u32(b, 16) as usize;
            let table = fnv1a64(&b[HEADER_LEN..HEADER_LEN + n * TABLE_ENTRY_LEN]);
            b[24..32].copy_from_slice(&table.to_ne_bytes());
        });
        assert_eq!(err.category(), ErrorCategory::Data);
        std::fs::remove_file(temp_path("overlap")).ok();
    }

    #[test]
    fn exit_code_is_three() {
        let err = corrupted("exitcode", |b| b[0] = 0);
        assert_eq!(err.category().exit_code(), 3);
    }
}
