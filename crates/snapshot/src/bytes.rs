//! Snapshot file bytes: `mmap(2)` on unix, aligned read everywhere else.
//!
//! Mapping the file lets the kernel page index sections in lazily and
//! share clean pages between processes — a fleet of readers of the same
//! snapshot pays for the file once. The fallback path reads the whole file
//! into a buffer backed by a `Vec<u64>`, guaranteeing the 8-byte alignment
//! the POD casts in [`crate::pod`] require (the container caps section
//! alignment at 8 for exactly this reason; mapped files are page-aligned
//! and trivially satisfy it).
//!
//! The mmap shim follows the serving layer's `signal(2)` shim: an
//! `extern "C"` declaration of the two symbols, which libc — always linked
//! by `std` on unix — provides. No libc crate, no bindings generator. Any
//! mmap failure degrades silently to the read path; `SOI_SNAPSHOT_NO_MMAP=1`
//! forces it (used by tests to cover both).

use std::fs::File;
use std::io::Read;
use std::path::Path;

use soi_common::{Result, SoiError};

/// The raw bytes of a snapshot file, however they were obtained.
#[derive(Debug)]
pub struct SnapshotBytes {
    inner: Inner,
}

#[derive(Debug)]
enum Inner {
    /// The file content copied into an 8-byte-aligned owned buffer.
    Owned { buf: Vec<u64>, len: usize },
    /// A read-only private mapping of the file.
    #[cfg(unix)]
    Mapped(unix::Mapping),
}

impl SnapshotBytes {
    /// Opens `path` and makes its content addressable, preferring `mmap`.
    ///
    /// # Errors
    /// Any I/O failure opening or reading the file (an `mmap` failure is
    /// not an error — it falls back to reading).
    pub fn open(path: &Path) -> Result<Self> {
        let mut file = File::open(path).map_err(|e| SoiError::io(e, path))?;
        let len = file
            .metadata()
            .map_err(|e| SoiError::io(e, path))?
            .len()
            .try_into()
            .map_err(|_| {
                SoiError::io(
                    std::io::Error::new(std::io::ErrorKind::InvalidData, "file exceeds usize"),
                    path,
                )
            })?;

        #[cfg(unix)]
        if len > 0 && !mmap_disabled() {
            if let Some(mapping) = unix::Mapping::map(&file, len) {
                return Ok(SnapshotBytes {
                    inner: Inner::Mapped(mapping),
                });
            }
        }

        let mut buf = vec![0u64; len.div_ceil(8)];
        let dest = bytes_mut(&mut buf);
        file.read_exact(&mut dest[..len])
            .map_err(|e| SoiError::io(e, path))?;
        Ok(SnapshotBytes {
            inner: Inner::Owned { buf, len },
        })
    }

    /// The file content. The pointer is at least 8-byte aligned.
    pub fn as_slice(&self) -> &[u8] {
        match &self.inner {
            Inner::Owned { buf, len } => {
                #[allow(unsafe_code)]
                // SAFETY: the buffer holds `len.div_ceil(8)` u64s, so at
                // least `len` initialized bytes; u8 has alignment 1.
                unsafe {
                    core::slice::from_raw_parts(buf.as_ptr().cast::<u8>(), *len)
                }
            }
            #[cfg(unix)]
            Inner::Mapped(m) => m.as_slice(),
        }
    }

    /// Whether the content is an actual memory mapping (vs a read copy).
    pub fn is_mapped(&self) -> bool {
        match &self.inner {
            Inner::Owned { .. } => false,
            #[cfg(unix)]
            Inner::Mapped(_) => true,
        }
    }
}

/// Whether `SOI_SNAPSHOT_NO_MMAP` asks for the read fallback.
#[cfg(unix)]
fn mmap_disabled() -> bool {
    std::env::var_os("SOI_SNAPSHOT_NO_MMAP").is_some_and(|v| v != "0" && !v.is_empty())
}

/// A mutable byte view of an owned `u64` buffer.
#[allow(unsafe_code)]
fn bytes_mut(buf: &mut [u64]) -> &mut [u8] {
    // SAFETY: u64 has no padding and any byte pattern is valid; the length
    // covers exactly the buffer; u8 alignment is 1.
    unsafe { core::slice::from_raw_parts_mut(buf.as_mut_ptr().cast::<u8>(), buf.len() * 8) }
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod unix {
    //! The `mmap(2)`/`munmap(2)` shim.

    use std::fs::File;
    use std::os::unix::io::AsRawFd;

    extern "C" {
        // Provided by libc, which std always links on unix targets.
        fn mmap(
            addr: *mut core::ffi::c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut core::ffi::c_void;
        fn munmap(addr: *mut core::ffi::c_void, len: usize) -> i32;
    }

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    /// A read-only private mapping, unmapped on drop.
    #[derive(Debug)]
    pub(super) struct Mapping {
        ptr: *mut core::ffi::c_void,
        len: usize,
    }

    // SAFETY: the mapping is PROT_READ and never mutated; sharing the
    // immutable view across threads is safe, and unmapping happens exactly
    // once in Drop.
    unsafe impl Send for Mapping {}
    // SAFETY: as above — all access is through `&self` reads of immutable
    // memory.
    unsafe impl Sync for Mapping {}

    impl Mapping {
        /// Maps `len` bytes of `file` read-only, or `None` on any failure.
        pub(super) fn map(file: &File, len: usize) -> Option<Self> {
            if len == 0 {
                return None;
            }
            // SAFETY: fd is a valid open file descriptor for the duration
            // of the call; addr=null lets the kernel choose placement; a
            // failed call returns MAP_FAILED which we check.
            let ptr = unsafe {
                mmap(
                    core::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr.is_null() || ptr as usize == usize::MAX {
                return None;
            }
            Some(Mapping { ptr, len })
        }

        pub(super) fn as_slice(&self) -> &[u8] {
            // SAFETY: the mapping covers `len` readable bytes and lives as
            // long as `self`; the file was opened read-only and the mapping
            // is private, so the memory is immutable from our side.
            unsafe { core::slice::from_raw_parts(self.ptr.cast::<u8>(), self.len) }
        }
    }

    impl Drop for Mapping {
        fn drop(&mut self) {
            // SAFETY: `ptr`/`len` describe a live mapping created by mmap
            // and not yet unmapped; failure here is unrecoverable but
            // harmless (the address space leaks until process exit).
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_file(name: &str, content: &[u8]) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("soi-snapbytes-{}-{name}", std::process::id()));
        let mut f = File::create(&path).unwrap();
        f.write_all(content).unwrap();
        path
    }

    #[test]
    fn reads_content_and_is_aligned() {
        let path = temp_file("basic", b"0123456789abcdef!");
        let bytes = SnapshotBytes::open(&path).unwrap();
        assert_eq!(bytes.as_slice(), b"0123456789abcdef!");
        assert_eq!(bytes.as_slice().as_ptr().align_offset(8), 0);
        std::fs::remove_file(&path).ok();
    }

    #[cfg(unix)]
    #[test]
    fn mmap_and_fallback_agree() {
        let content: Vec<u8> = (0..10_000u32).flat_map(|v| v.to_le_bytes()).collect();
        let path = temp_file("agree", &content);
        let mapped = SnapshotBytes::open(&path).unwrap();
        std::env::set_var("SOI_SNAPSHOT_NO_MMAP", "1");
        let owned = SnapshotBytes::open(&path).unwrap();
        std::env::remove_var("SOI_SNAPSHOT_NO_MMAP");
        assert!(!owned.is_mapped());
        assert_eq!(mapped.as_slice(), owned.as_slice());
        assert_eq!(owned.as_slice().as_ptr().align_offset(8), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_is_ok() {
        let path = temp_file("empty", b"");
        let bytes = SnapshotBytes::open(&path).unwrap();
        assert!(bytes.as_slice().is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = SnapshotBytes::open(Path::new("/nonexistent/soi.snap")).unwrap_err();
        assert!(err.to_string().contains("soi.snap"));
    }
}
