//! Plain-old-data reinterpretation between byte slices and primitive
//! arrays.
//!
//! This is the "validated cast" at the heart of snapshot loading: a
//! section payload is viewed directly as `&[u32]`/`&[u64]`/`&[f64]` when
//! its pointer is suitably aligned and its length is an exact multiple of
//! the element size; otherwise the caller gets `None` and reports the
//! section as corrupt. The forward direction (typed slice → bytes) is
//! always valid for these types: they have no padding, no niches, and
//! every bit pattern is a value (`f64` included — NaN payloads round-trip
//! bit-exactly).
//!
//! This module is the only place in the crate, alongside the mmap shim,
//! that uses `unsafe`.

#![allow(unsafe_code)]

use core::mem::{align_of, size_of};
use core::slice;

macro_rules! pod_casts {
    ($to_bytes:ident, $from_bytes:ident, $ty:ty) => {
        /// Views a typed slice as its underlying native-endian bytes.
        pub fn $to_bytes(v: &[$ty]) -> &[u8] {
            // SAFETY: `$ty` is a primitive with no padding; any `$ty` value
            // is valid as bytes, the pointer is valid for `len * size` bytes
            // and `u8` has alignment 1.
            unsafe { slice::from_raw_parts(v.as_ptr().cast::<u8>(), v.len() * size_of::<$ty>()) }
        }

        /// Views bytes as a typed slice, or `None` if the pointer is
        /// misaligned for the type or the length is not a whole number of
        /// elements.
        pub fn $from_bytes(b: &[u8]) -> Option<&[$ty]> {
            let size = size_of::<$ty>();
            if b.is_empty() {
                return Some(&[]);
            }
            if !b.len().is_multiple_of(size) || b.as_ptr().align_offset(align_of::<$ty>()) != 0 {
                return None;
            }
            // SAFETY: alignment and size were just checked; every bit
            // pattern of `$ty` is a valid value; the lifetime is tied to the
            // input borrow.
            Some(unsafe { slice::from_raw_parts(b.as_ptr().cast::<$ty>(), b.len() / size) })
        }
    };
}

pod_casts!(u32s_as_bytes, bytes_as_u32s, u32);
pod_casts!(u64s_as_bytes, bytes_as_u64s, u64);
pod_casts!(f64s_as_bytes, bytes_as_f64s, f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u32_round_trip() {
        let v = [1u32, 0xdead_beef, u32::MAX];
        let b = u32s_as_bytes(&v);
        assert_eq!(b.len(), 12);
        assert_eq!(bytes_as_u32s(b).unwrap(), &v);
    }

    #[test]
    fn f64_round_trip_preserves_bits() {
        let v = [1.5f64, -0.0, f64::NAN, f64::INFINITY];
        let back = bytes_as_f64s(f64s_as_bytes(&v)).unwrap();
        for (a, b) in v.iter().zip(back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn rejects_ragged_length() {
        let b = [0u8; 7];
        assert!(bytes_as_u32s(&b).is_none());
        assert!(bytes_as_u64s(&b).is_none());
    }

    #[test]
    fn rejects_misaligned_pointer() {
        let buf = [0u8; 64];
        // At least one of two pointers one byte apart is misaligned for u64.
        let a = bytes_as_u64s(&buf[0..32]).is_none();
        let b = bytes_as_u64s(&buf[1..33]).is_none();
        assert!(a || b);
    }

    #[test]
    fn empty_slices_cast() {
        assert_eq!(bytes_as_u32s(&[]).unwrap().len(), 0);
        assert_eq!(u64s_as_bytes(&[]).len(), 0);
    }
}
