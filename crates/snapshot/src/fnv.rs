//! FNV-1a 64-bit checksums.
//!
//! The container needs a checksum that is (a) implementable in a dozen
//! lines with no dependencies, (b) fast enough to verify every payload at
//! load time without dominating I/O, and (c) good at catching the failure
//! modes snapshots actually see — truncation, single flipped bytes, zeroed
//! pages. FNV-1a fits: every input byte is folded through a multiply, so
//! any single-byte change flips roughly half the state bits. It is *not*
//! cryptographic and does not defend against an adversary crafting a
//! colliding file — snapshots are trusted local artifacts, the checksum
//! guards against storage and copy errors.
//!
//! Two granularities are used. The byte-wise [`fnv1a64`] is the textbook
//! algorithm (matches the published test vectors) and checksums the small
//! section table. Payloads are megabytes, and a byte-per-multiply loop
//! would dominate cold-start, so they use [`fnv1a64_words`]: the same
//! xor-then-multiply fold applied to whole little-endian 64-bit words
//! (8 input bytes per multiply), with a zero-padded tail word and the
//! total length folded last so truncation and trailing-zero edits still
//! change the hash. Any flipped bit lands in some word's xor and diffuses
//! through the remaining multiplies exactly as in the byte-wise variant.

const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streaming FNV-1a 64 hasher.
#[derive(Debug, Clone)]
pub struct Fnv64 {
    state: u64,
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    /// A hasher in the initial state.
    pub fn new() -> Self {
        Fnv64 {
            state: OFFSET_BASIS,
        }
    }

    /// Folds `bytes` into the state.
    pub fn write(&mut self, bytes: &[u8]) {
        let mut h = self.state;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
        self.state = h;
    }

    /// Folds a whole 64-bit word into the state in a single multiply.
    ///
    /// This is the word-wise fold described in the module docs: one
    /// xor-then-multiply per 64 input bits instead of per 8.
    pub fn write_word(&mut self, w: u64) {
        self.state = (self.state ^ w).wrapping_mul(PRIME);
    }

    /// Folds a `u32` into the state (one word-wise fold).
    pub fn write_u32(&mut self, v: u32) {
        self.write_word(v as u64);
    }

    /// Folds a `u64` into the state (one word-wise fold).
    pub fn write_u64(&mut self, v: u64) {
        self.write_word(v);
    }

    /// Folds an `f64` (bit pattern) into the state.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Folds a length-prefixed string into the state.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// One-shot FNV-1a 64 over `bytes`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

/// One-shot word-wise FNV-1a 64 over `bytes`.
///
/// Folds `bytes` as little-endian 64-bit words (8 input bytes per
/// multiply) across four independent lanes — the xor-multiply chain is
/// latency-bound, so striping words over four states lets the CPU overlap
/// the multiplies — then folds the lane states, a zero-padded tail word
/// for any remainder, and the total length into one final chain. Used for
/// payload checksums, where a single dependent chain would dominate
/// snapshot load time. NOT interchangeable with [`fnv1a64`]; both sides
/// of the format must agree on which variant a field uses.
pub fn fnv1a64_words(bytes: &[u8]) -> u64 {
    let mut lanes = [OFFSET_BASIS; 4];
    let mut blocks = bytes.chunks_exact(32);
    for block in &mut blocks {
        for (lane, w) in lanes.iter_mut().zip(block.chunks_exact(8)) {
            *lane = (*lane ^ le_word(w)).wrapping_mul(PRIME);
        }
    }
    let mut h = Fnv64::new();
    for lane in lanes {
        h.write_word(lane);
    }
    let mut words = blocks.remainder().chunks_exact(8);
    for w in &mut words {
        h.write_word(le_word(w));
    }
    let rem = words.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        h.write_word(u64::from_le_bytes(tail));
    }
    h.write_word(bytes.len() as u64);
    h.finish()
}

/// `w` as a little-endian `u64`; callers pass exact 8-byte chunks.
fn le_word(w: &[u8]) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(w);
    u64::from_le_bytes(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn single_byte_flip_changes_hash() {
        let base = vec![0u8; 4096];
        let h0 = fnv1a64(&base);
        for i in [0usize, 1, 100, 4095] {
            let mut flipped = base.clone();
            flipped[i] ^= 1;
            assert_ne!(fnv1a64(&flipped), h0, "flip at {i} undetected");
        }
    }

    #[test]
    fn word_variant_detects_flips_tails_and_truncation() {
        let base = vec![7u8; 4099]; // non-multiple of 8: exercises the tail word
        let h0 = fnv1a64_words(&base);
        for i in [0usize, 1, 4095, 4096, 4098] {
            let mut flipped = base.clone();
            flipped[i] ^= 1;
            assert_ne!(fnv1a64_words(&flipped), h0, "flip at {i} undetected");
        }
        // Truncation and zero-extension both change the hash (length fold).
        assert_ne!(fnv1a64_words(&base[..4098]), h0);
        let mut extended = base.clone();
        extended.push(0);
        assert_ne!(fnv1a64_words(&extended), h0);
        assert_ne!(fnv1a64_words(b""), fnv1a64_words(&[0u8]));
        // Distinct from the byte-wise variant by construction.
        assert_ne!(fnv1a64_words(b"foobar"), fnv1a64(b"foobar"));
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"hello snapshot world";
        let mut h = Fnv64::new();
        h.write(&data[..5]);
        h.write(&data[5..]);
        assert_eq!(h.finish(), fnv1a64(data));
    }
}
