//! Property-based tests for the road-network model and its IO.

use proptest::prelude::*;
use soi_geo::Point;
use soi_network::{NetworkStats, RoadNetwork};

/// Random multi-street networks from point chains (filtering consecutive
/// duplicates so no degenerate segment is produced).
fn street_chains() -> impl Strategy<Value = Vec<Vec<Point>>> {
    proptest::collection::vec(
        proptest::collection::vec((-10.0f64..10.0, -10.0f64..10.0), 2..8).prop_map(|pts| {
            let mut out: Vec<Point> = Vec::new();
            for (x, y) in pts {
                let p = Point::new(x, y);
                if out.last() != Some(&p) {
                    out.push(p);
                }
            }
            out
        }),
        1..8,
    )
    .prop_filter("every chain needs at least one segment", |chains| {
        chains.iter().all(|c| c.len() >= 2)
    })
}

fn build(chains: &[Vec<Point>]) -> RoadNetwork {
    let mut b = RoadNetwork::builder();
    for (i, chain) in chains.iter().enumerate() {
        b.add_street_from_points(format!("street {i}"), chain);
    }
    b.build().expect("chains are valid")
}

proptest! {
    #[test]
    fn io_roundtrip_preserves_network(chains in street_chains()) {
        let net = build(&chains);
        let mut buf = Vec::new();
        soi_network::io::write_network(&net, &mut buf).unwrap();
        let read = soi_network::io::read_network(buf.as_slice()).unwrap();

        prop_assert_eq!(read.num_nodes(), net.num_nodes());
        prop_assert_eq!(read.num_segments(), net.num_segments());
        prop_assert_eq!(read.num_streets(), net.num_streets());
        for (a, b) in net.segments().iter().zip(read.segments()) {
            prop_assert_eq!(a.street, b.street);
            prop_assert_eq!(a.geom, b.geom);
        }
        for (a, b) in net.streets().iter().zip(read.streets()) {
            prop_assert_eq!(&a.name, &b.name);
            prop_assert_eq!(&a.segments, &b.segments);
        }
    }

    #[test]
    fn street_polyline_length_equals_street_len(chains in street_chains()) {
        let net = build(&chains);
        for street in net.streets() {
            let poly = net.street_polyline(street.id);
            prop_assert!(
                (poly.len() - net.street_len(street.id)).abs() < 1e-9,
                "street {}: polyline {} vs street_len {}",
                street.id,
                poly.len(),
                net.street_len(street.id)
            );
            prop_assert_eq!(poly.points().len(), street.num_segments() + 1);
        }
    }

    #[test]
    fn stats_are_consistent(chains in street_chains()) {
        let net = build(&chains);
        let stats = NetworkStats::of(&net);
        prop_assert_eq!(stats.num_segments, net.num_segments());
        prop_assert!(stats.min_segment_len <= stats.max_segment_len);
        prop_assert!(stats.min_segment_len <= stats.mean_segment_len + 1e-12);
        prop_assert!(stats.mean_segment_len <= stats.max_segment_len + 1e-12);
        let manual_total: f64 = net.segments().iter().map(|s| s.len()).sum();
        prop_assert!((stats.total_len - manual_total).abs() < 1e-9);
    }

    #[test]
    fn street_mbr_contains_all_segment_endpoints(chains in street_chains()) {
        let net = build(&chains);
        for street in net.streets() {
            let mbr = net.street_mbr(street.id).expect("non-empty street");
            for &sid in &street.segments {
                let g = net.segment(sid).geom;
                prop_assert!(mbr.contains(g.a));
                prop_assert!(mbr.contains(g.b));
            }
        }
    }

    #[test]
    fn dist_point_to_street_is_min_over_segments(
        chains in street_chains(),
        px in -12.0f64..12.0,
        py in -12.0f64..12.0,
    ) {
        let net = build(&chains);
        let p = Point::new(px, py);
        for street in net.streets() {
            let expected = street
                .segments
                .iter()
                .map(|&s| net.segment(s).geom.dist_to_point(p))
                .fold(f64::INFINITY, f64::min);
            prop_assert!((net.dist_point_to_street(p, street.id) - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn components_partition_nodes(chains in street_chains()) {
        let net = build(&chains);
        let comps = net.connected_components();
        let total: usize = comps.iter().map(Vec::len).sum();
        prop_assert_eq!(total, net.num_nodes());
        let mut seen = vec![false; net.num_nodes()];
        for comp in &comps {
            for node in comp {
                prop_assert!(!seen[node.index()], "node in two components");
                seen[node.index()] = true;
            }
        }
    }
}
