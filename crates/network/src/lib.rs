//! The road-network substrate.
//!
//! The paper models a road network as a directed graph `G = (V, L)` whose
//! vertices are street intersections or breakpoints and whose links are
//! street segments represented as line segments; each segment belongs to
//! exactly one street `s ∈ S`, a simple path of consecutive segments
//! (Sec. 3.1). This crate provides:
//!
//! - [`model`]: the [`Node`], [`Segment`], and [`Street`] records;
//! - [`network`]: the immutable [`RoadNetwork`] and its [`NetworkBuilder`];
//! - [`graph`]: adjacency queries, connected components, and shortest paths
//!   (used by the route-sketching extension);
//! - [`stats`]: the dataset statistics of the paper's Table 1;
//! - [`io`]: a line-oriented TSV round-trip format.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code must surface failures as `SoiError`, never panic: unwrap and
// expect are compile errors outside of test code.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod graph;
pub mod io;
pub mod model;
pub mod network;
pub mod stats;

pub use model::{Node, Segment, Street};
pub use network::{NetworkBuilder, RoadNetwork};
pub use stats::NetworkStats;
