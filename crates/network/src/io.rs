//! Line-oriented TSV round-trip format for road networks.
//!
//! The format is intentionally simple (header + three sections) so that
//! datasets exported from real sources (e.g. OpenStreetMap extracts) can be
//! produced by a few lines of scripting:
//!
//! ```text
//! # soi-network v1
//! nodes <N>
//! <x>\t<y>                       // N lines; node id = line order
//! streets <M>
//! <name>                         // M lines; street id = line order
//! segments <K>
//! <street>\t<from>\t<to>         // K lines; segment id = line order
//! ```

use crate::network::{NetworkBuilder, RoadNetwork};
use soi_common::{NodeId, Result, SoiError, StreetId};
use soi_geo::Point;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

const HEADER: &str = "# soi-network v1";

/// Writes `network` in the TSV format.
pub fn write_network<W: Write>(network: &RoadNetwork, mut w: W) -> Result<()> {
    writeln!(w, "{HEADER}")?;
    writeln!(w, "nodes {}", network.num_nodes())?;
    for node in network.nodes() {
        writeln!(w, "{}\t{}", node.pos.x, node.pos.y)?;
    }
    writeln!(w, "streets {}", network.num_streets())?;
    for street in network.streets() {
        writeln!(w, "{}", street.name)?;
    }
    writeln!(w, "segments {}", network.num_segments())?;
    for seg in network.segments() {
        writeln!(w, "{}\t{}\t{}", seg.street.raw(), seg.from.raw(), seg.to.raw())?;
    }
    Ok(())
}

/// Reads a network in the TSV format.
pub fn read_network<R: BufRead>(r: R) -> Result<RoadNetwork> {
    let mut lines = r.lines().enumerate();

    let mut next_line = |expect: &str| -> Result<(usize, String)> {
        match lines.next() {
            Some((i, Ok(line))) => Ok((i + 1, line)),
            Some((i, Err(e))) => Err(SoiError::parse(i + 1, e.to_string())),
            None => Err(SoiError::parse(0, format!("unexpected EOF, expected {expect}"))),
        }
    };

    let (line_no, header) = next_line("header")?;
    if header.trim() != HEADER {
        return Err(SoiError::parse(line_no, format!("bad header {header:?}")));
    }

    fn section_count(line_no: usize, line: &str, name: &str) -> Result<usize> {
        let rest = line
            .strip_prefix(name)
            .ok_or_else(|| SoiError::parse(line_no, format!("expected `{name} <count>`")))?;
        rest.trim()
            .parse::<usize>()
            .map_err(|e| SoiError::parse(line_no, format!("bad count: {e}")))
    }

    let mut b = NetworkBuilder::default();

    let (ln, line) = next_line("nodes section")?;
    let n_nodes = section_count(ln, &line, "nodes")?;
    for _ in 0..n_nodes {
        let (ln, line) = next_line("node record")?;
        let mut parts = line.split('\t');
        let x = parts
            .next()
            .and_then(|s| s.parse::<f64>().ok())
            .ok_or_else(|| SoiError::parse(ln, "bad node x"))?;
        let y = parts
            .next()
            .and_then(|s| s.parse::<f64>().ok())
            .ok_or_else(|| SoiError::parse(ln, "bad node y"))?;
        b.add_node(Point::new(x, y));
    }

    let (ln, line) = next_line("streets section")?;
    let n_streets = section_count(ln, &line, "streets")?;
    for _ in 0..n_streets {
        let (_, name) = next_line("street record")?;
        b.add_street(name);
    }

    let (ln, line) = next_line("segments section")?;
    let n_segments = section_count(ln, &line, "segments")?;
    for _ in 0..n_segments {
        let (ln, line) = next_line("segment record")?;
        let mut parts = line.split('\t');
        let mut field = |name: &str| -> Result<u32> {
            parts
                .next()
                .and_then(|s| s.parse::<u32>().ok())
                .ok_or_else(|| SoiError::parse(ln, format!("bad segment {name}")))
        };
        let street = field("street")?;
        let from = field("from")?;
        let to = field("to")?;
        if street as usize >= n_streets || from as usize >= n_nodes || to as usize >= n_nodes {
            return Err(SoiError::parse(ln, "segment references out-of-range id"));
        }
        b.add_segment(StreetId(street), NodeId(from), NodeId(to));
    }

    b.build()
}

/// Saves `network` to a file.
pub fn save_network(network: &RoadNetwork, path: impl AsRef<Path>) -> Result<()> {
    let file = std::fs::File::create(path)?;
    write_network(network, BufWriter::new(file))
}

/// Loads a network from a file.
pub fn load_network(path: impl AsRef<Path>) -> Result<RoadNetwork> {
    let file = std::fs::File::open(path)?;
    read_network(BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RoadNetwork {
        let mut b = RoadNetwork::builder();
        let n0 = b.add_node(Point::new(0.5, -1.25));
        let n1 = b.add_node(Point::new(2.0, 0.0));
        let n2 = b.add_node(Point::new(2.0, 3.0));
        let s0 = b.add_street("High Street");
        b.add_segment(s0, n0, n1);
        b.add_segment(s0, n1, n2);
        let _empty = b.add_street("Unbuilt Road");
        b.build().unwrap()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let net = sample();
        let mut buf = Vec::new();
        write_network(&net, &mut buf).unwrap();
        let read = read_network(buf.as_slice()).unwrap();
        assert_eq!(read.num_nodes(), net.num_nodes());
        assert_eq!(read.num_segments(), net.num_segments());
        assert_eq!(read.num_streets(), net.num_streets());
        for (a, b) in net.nodes().iter().zip(read.nodes()) {
            assert_eq!(a.pos, b.pos);
        }
        for (a, b) in net.segments().iter().zip(read.segments()) {
            assert_eq!((a.street, a.from, a.to), (b.street, b.from, b.to));
        }
        assert_eq!(read.street(StreetId(0)).name, "High Street");
        assert_eq!(read.street(StreetId(1)).name, "Unbuilt Road");
    }

    #[test]
    fn rejects_bad_header() {
        assert!(read_network("wrong\n".as_bytes()).is_err());
    }

    #[test]
    fn rejects_truncated_file() {
        let net = sample();
        let mut buf = Vec::new();
        write_network(&net, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let truncated: String = text.lines().take(3).collect::<Vec<_>>().join("\n");
        assert!(read_network(truncated.as_bytes()).is_err());
    }

    #[test]
    fn rejects_out_of_range_segment() {
        let text = "# soi-network v1\nnodes 1\n0\t0\nstreets 1\ns\nsegments 1\n0\t0\t5\n";
        let err = read_network(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("out-of-range"));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("soi_network_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("net.tsv");
        let net = sample();
        save_network(&net, &path).unwrap();
        let read = load_network(&path).unwrap();
        assert_eq!(read.num_segments(), net.num_segments());
        std::fs::remove_file(path).ok();
    }
}
