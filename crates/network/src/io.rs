//! Line-oriented TSV round-trip format for road networks.
//!
//! The format is intentionally simple (header + three sections) so that
//! datasets exported from real sources (e.g. OpenStreetMap extracts) can be
//! produced by a few lines of scripting:
//!
//! ```text
//! # soi-network v1
//! nodes <N>
//! <x>\t<y>                       // N lines; node id = line order
//! streets <M>
//! <name>                         // M lines; street id = line order
//! segments <K>
//! <street>\t<from>\t<to>         // K lines; segment id = line order
//! ```
//!
//! ### Failure semantics
//!
//! Crowdsourced exports are noisy, so every reader takes a
//! [`LoadOptions`]:
//!
//! - **Strict** (default): the first invalid record aborts with a typed
//!   [`SoiError`] carrying the record number, field, and (for the `load_*`
//!   functions) file path.
//! - **Lenient**: invalid records are skipped and counted per
//!   [`ValidationKind`] in a [`LoadReport`]. Node ids are positional, so a
//!   rejected node keeps a placeholder position and every segment touching
//!   it is rejected as a dangling reference; a segment that would break its
//!   street's connected chain (because a predecessor was rejected) is also
//!   rejected.
//!
//! Structural damage — a bad header, a missing section, a truncated file,
//! non-UTF-8 bytes — always aborts, in both modes: there is no sound way to
//! resynchronise a positional format.

use crate::network::{NetworkBuilder, RoadNetwork};
use soi_common::{
    LoadOptions, LoadReport, NodeId, Result, ResultExt, SoiError, StreetId, ValidationKind,
};
use soi_geo::Point;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

const HEADER: &str = "# soi-network v1";

/// Hard ceiling on section counts, so a corrupt count line cannot trigger
/// an unbounded allocation.
const MAX_SECTION_COUNT: usize = 1 << 28;

/// Writes `network` in the TSV format.
pub fn write_network<W: Write>(network: &RoadNetwork, mut w: W) -> Result<()> {
    writeln!(w, "{HEADER}")?;
    writeln!(w, "nodes {}", network.num_nodes())?;
    for node in network.nodes() {
        writeln!(w, "{}\t{}", node.pos.x, node.pos.y)?;
    }
    writeln!(w, "streets {}", network.num_streets())?;
    for street in network.streets() {
        writeln!(w, "{}", street.name)?;
    }
    writeln!(w, "segments {}", network.num_segments())?;
    for seg in network.segments() {
        writeln!(
            w,
            "{}\t{}\t{}",
            seg.street.raw(),
            seg.from.raw(),
            seg.to.raw()
        )?;
    }
    Ok(())
}

/// Reads a network in the TSV format with strict semantics.
pub fn read_network<R: BufRead>(r: R) -> Result<RoadNetwork> {
    read_network_with(r, &LoadOptions::strict()).map(|(net, _)| net)
}

/// Reads a network in the TSV format under the given [`LoadOptions`],
/// returning the network together with a [`LoadReport`].
pub fn read_network_with<R: BufRead>(
    r: R,
    opts: &LoadOptions,
) -> Result<(RoadNetwork, LoadReport)> {
    let mut report = LoadReport::new();
    let mut lines = r.lines().enumerate();

    let mut next_line = |expect: &str| -> Result<(usize, String)> {
        match lines.next() {
            Some((i, Ok(line))) => Ok((i + 1, line)),
            Some((i, Err(e))) => Err(SoiError::parse(i + 1, e.to_string())),
            None => Err(SoiError::parse(
                0,
                format!("unexpected EOF, expected {expect}"),
            )),
        }
    };

    let (line_no, header) = next_line("header")?;
    if header.trim() != HEADER {
        return Err(SoiError::parse(line_no, format!("bad header {header:?}")));
    }

    fn section_count(line_no: usize, line: &str, name: &str) -> Result<usize> {
        let rest = line
            .strip_prefix(name)
            .ok_or_else(|| SoiError::parse(line_no, format!("expected `{name} <count>`")))?;
        let count = rest
            .trim()
            .parse::<usize>()
            .map_err(|e| SoiError::parse(line_no, format!("bad count: {e}")))?;
        if count > MAX_SECTION_COUNT {
            return Err(SoiError::parse(
                line_no,
                format!("section count {count} exceeds the {MAX_SECTION_COUNT} limit"),
            ));
        }
        Ok(count)
    }

    let mut b = NetworkBuilder::default();

    // --- nodes. Ids are positional: a rejected node keeps a placeholder
    // entry so later records keep their meaning, and is remembered so that
    // segments touching it are rejected as dangling.
    let (ln, line) = next_line("nodes section")?;
    let n_nodes = section_count(ln, &line, "nodes")?;
    let mut node_pos: Vec<Option<Point>> = Vec::with_capacity(n_nodes.min(1 << 16));
    for _ in 0..n_nodes {
        let (ln, line) = next_line("node record")?;
        match parse_node(ln, &line) {
            Ok(p) => {
                b.add_node(p);
                node_pos.push(Some(p));
                report.accept();
            }
            Err(e) if opts.is_lenient() => {
                report.skip(
                    e.validation_kind()
                        .unwrap_or(ValidationKind::MalformedRecord),
                );
                b.add_node(Point::new(0.0, 0.0));
                node_pos.push(None);
            }
            Err(e) => return Err(e),
        }
    }

    let (ln, line) = next_line("streets section")?;
    let n_streets = section_count(ln, &line, "streets")?;
    for _ in 0..n_streets {
        let (_, name) = next_line("street record")?;
        b.add_street(name);
        report.accept();
    }

    let (ln, line) = next_line("segments section")?;
    let n_segments = section_count(ln, &line, "segments")?;
    // Last kept segment endpoints per street, for the connected-chain rule.
    let mut chain_tail: Vec<Option<(NodeId, NodeId)>> = vec![None; n_streets];
    for _ in 0..n_segments {
        let (ln, line) = next_line("segment record")?;
        match parse_segment(ln, &line, n_streets, &node_pos, &mut chain_tail) {
            Ok((street, from, to)) => {
                b.add_segment(street, from, to);
                report.accept();
            }
            Err(e) if opts.is_lenient() => {
                report.skip(
                    e.validation_kind()
                        .unwrap_or(ValidationKind::MalformedRecord),
                );
            }
            Err(e) => return Err(e),
        }
    }

    let network = b.build()?;
    Ok((network, report))
}

fn parse_node(ln: usize, line: &str) -> Result<Point> {
    let mut parts = line.split('\t');
    let mut coord = |name: &'static str| -> Result<f64> {
        parts
            .next()
            .and_then(|s| s.parse::<f64>().ok())
            .ok_or_else(|| {
                SoiError::validation(ValidationKind::MalformedRecord, format!("bad node {name}"))
                    .at_record(ln)
                    .in_field(name)
            })
    };
    let x = coord("x")?;
    let y = coord("y")?;
    let p = Point::new(x, y);
    if !p.is_finite() {
        return Err(SoiError::validation(
            ValidationKind::NonFiniteCoordinate,
            format!("node coordinates ({x}, {y}) are not finite"),
        )
        .at_record(ln));
    }
    Ok(p)
}

fn parse_segment(
    ln: usize,
    line: &str,
    n_streets: usize,
    node_pos: &[Option<Point>],
    chain_tail: &mut [Option<(NodeId, NodeId)>],
) -> Result<(StreetId, NodeId, NodeId)> {
    let mut parts = line.split('\t');
    let mut field = |name: &'static str| -> Result<u32> {
        parts
            .next()
            .and_then(|s| s.parse::<u32>().ok())
            .ok_or_else(|| {
                SoiError::validation(
                    ValidationKind::MalformedRecord,
                    format!("bad segment {name}"),
                )
                .at_record(ln)
                .in_field(name)
            })
    };
    let street = field("street")?;
    let from = field("from")?;
    let to = field("to")?;
    let dangling = |what: String| {
        Err(SoiError::validation(ValidationKind::DanglingReference, what).at_record(ln))
    };
    if street as usize >= n_streets {
        return dangling(format!(
            "street id {street} out of range ({n_streets} streets)"
        ));
    }
    let n_nodes = node_pos.len();
    for (name, id) in [("from", from), ("to", to)] {
        if id as usize >= n_nodes {
            return dangling(format!("{name} node {id} out of range ({n_nodes} nodes)"));
        }
        if node_pos[id as usize].is_none() {
            return dangling(format!(
                "{name} node {id} was rejected earlier in this load"
            ));
        }
    }
    if from == to || node_pos[from as usize] == node_pos[to as usize] {
        return Err(SoiError::validation(
            ValidationKind::ZeroLengthSegment,
            format!("segment endpoints coincide (nodes {from}, {to})"),
        )
        .at_record(ln));
    }
    let (street_id, from_id, to_id) = (StreetId(street), NodeId(from), NodeId(to));
    // Connected-chain rule (Section 3.1): a street's consecutive kept
    // segments must share a node. Without this check a lenient skip earlier
    // in the street would poison RoadNetwork::build for the whole file.
    if let Some((pf, pt)) = chain_tail[street as usize] {
        if from_id != pf && from_id != pt && to_id != pf && to_id != pt {
            return dangling(format!(
                "segment does not connect to street {street}'s previous segment"
            ));
        }
    }
    chain_tail[street as usize] = Some((from_id, to_id));
    Ok((street_id, from_id, to_id))
}

/// Saves `network` to a file.
pub fn save_network(network: &RoadNetwork, path: impl AsRef<Path>) -> Result<()> {
    let path = path.as_ref();
    let file = std::fs::File::create(path).at_path(path)?;
    write_network(network, BufWriter::new(file)).at_path(path)
}

/// Loads a network from a file with strict semantics.
pub fn load_network(path: impl AsRef<Path>) -> Result<RoadNetwork> {
    load_network_with(path, &LoadOptions::strict()).map(|(net, _)| net)
}

/// Loads a network from a file under the given [`LoadOptions`]. Errors carry
/// the file path.
pub fn load_network_with(
    path: impl AsRef<Path>,
    opts: &LoadOptions,
) -> Result<(RoadNetwork, LoadReport)> {
    let path = path.as_ref();
    let file = std::fs::File::open(path).at_path(path)?;
    read_network_with(BufReader::new(file), opts).at_path(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_common::ErrorCategory;

    fn sample() -> RoadNetwork {
        let mut b = RoadNetwork::builder();
        let n0 = b.add_node(Point::new(0.5, -1.25));
        let n1 = b.add_node(Point::new(2.0, 0.0));
        let n2 = b.add_node(Point::new(2.0, 3.0));
        let s0 = b.add_street("High Street");
        b.add_segment(s0, n0, n1);
        b.add_segment(s0, n1, n2);
        let _empty = b.add_street("Unbuilt Road");
        b.build().unwrap()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let net = sample();
        let mut buf = Vec::new();
        write_network(&net, &mut buf).unwrap();
        let read = read_network(buf.as_slice()).unwrap();
        assert_eq!(read.num_nodes(), net.num_nodes());
        assert_eq!(read.num_segments(), net.num_segments());
        assert_eq!(read.num_streets(), net.num_streets());
        for (a, b) in net.nodes().iter().zip(read.nodes()) {
            assert_eq!(a.pos, b.pos);
        }
        for (a, b) in net.segments().iter().zip(read.segments()) {
            assert_eq!((a.street, a.from, a.to), (b.street, b.from, b.to));
        }
        assert_eq!(read.street(StreetId(0)).name, "High Street");
        assert_eq!(read.street(StreetId(1)).name, "Unbuilt Road");
    }

    #[test]
    fn rejects_bad_header() {
        assert!(read_network("wrong\n".as_bytes()).is_err());
    }

    #[test]
    fn rejects_truncated_file() {
        let net = sample();
        let mut buf = Vec::new();
        write_network(&net, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let truncated: String = text.lines().take(3).collect::<Vec<_>>().join("\n");
        assert!(read_network(truncated.as_bytes()).is_err());
    }

    #[test]
    fn rejects_out_of_range_segment() {
        let text = "# soi-network v1\nnodes 1\n0\t0\nstreets 1\ns\nsegments 1\n0\t0\t5\n";
        let err = read_network(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
        assert_eq!(
            err.validation_kind(),
            Some(ValidationKind::DanglingReference)
        );
        assert_eq!(err.category(), ErrorCategory::Data);
    }

    #[test]
    fn rejects_oversized_section_count() {
        let text = format!("# soi-network v1\nnodes {}\n", usize::MAX);
        let err = read_network(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("limit"), "{err}");
    }

    #[test]
    fn rejects_non_finite_node() {
        let text = "# soi-network v1\nnodes 1\nNaN\t0\nstreets 0\nsegments 0\n";
        let err = read_network(text.as_bytes()).unwrap_err();
        assert_eq!(
            err.validation_kind(),
            Some(ValidationKind::NonFiniteCoordinate)
        );
    }

    #[test]
    fn rejects_zero_length_segment() {
        let text = "# soi-network v1\nnodes 2\n0\t0\n1\t0\nstreets 1\ns\nsegments 1\n0\t1\t1\n";
        let err = read_network(text.as_bytes()).unwrap_err();
        assert_eq!(
            err.validation_kind(),
            Some(ValidationKind::ZeroLengthSegment)
        );
    }

    #[test]
    fn lenient_skips_and_counts() {
        // Node 1 is NaN; segment 1 references it; segment 2 is fine.
        let text = "# soi-network v1\nnodes 3\n0\t0\nNaN\t0\n2\t0\nstreets 2\na\nb\nsegments 2\n0\t0\t1\n1\t0\t2\n";
        let (net, report) = read_network_with(text.as_bytes(), &LoadOptions::lenient()).unwrap();
        assert_eq!(net.num_segments(), 1);
        assert_eq!(report.skipped(ValidationKind::NonFiniteCoordinate), 1);
        assert_eq!(report.skipped(ValidationKind::DanglingReference), 1);
        assert_eq!(report.total_skipped(), 2);
    }

    #[test]
    fn lenient_preserves_chain_invariant() {
        // Street 0 chain 0-1-2-3, with the middle segment zero-length so it
        // is dropped; the follow-up segment no longer connects and must be
        // dropped too, keeping RoadNetwork::build happy.
        let text = "# soi-network v1\nnodes 4\n0\t0\n1\t0\n2\t0\n3\t0\nstreets 1\ns\nsegments 3\n0\t0\t1\n0\t2\t2\n0\t2\t3\n";
        let (net, report) = read_network_with(text.as_bytes(), &LoadOptions::lenient()).unwrap();
        assert_eq!(net.num_segments(), 1);
        assert_eq!(report.skipped(ValidationKind::ZeroLengthSegment), 1);
        assert_eq!(report.skipped(ValidationKind::DanglingReference), 1);
    }

    #[test]
    fn load_errors_carry_path() {
        let err = load_network("/definitely/not/here.tsv").unwrap_err();
        assert!(err.to_string().contains("here.tsv"), "{err}");
        assert_eq!(err.category(), ErrorCategory::NotFound);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("soi_network_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("net.tsv");
        let net = sample();
        save_network(&net, &path).unwrap();
        let read = load_network(&path).unwrap();
        assert_eq!(read.num_segments(), net.num_segments());
        std::fs::remove_file(path).ok();
    }
}
