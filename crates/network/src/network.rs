//! The immutable road network and its builder.

use crate::model::{Node, Segment, Street};
use soi_common::{NodeId, Result, SegmentId, SoiError, StreetId, ValidationKind};
use soi_geo::{LineSeg, Point, Polyline, Rect};

/// An immutable road network `G = (V, L)` with its street partition `S`.
///
/// Built via [`NetworkBuilder`]; construction validates that every segment
/// belongs to exactly one street and that each street's segments form a
/// connected chain (consecutive segments share a node), per Section 3.1.
#[derive(Debug, Clone)]
pub struct RoadNetwork {
    nodes: Vec<Node>,
    segments: Vec<Segment>,
    streets: Vec<Street>,
    /// Segments incident to each node (by node index).
    incident: Vec<Vec<SegmentId>>,
}

impl RoadNetwork {
    /// Starts building a network.
    pub fn builder() -> NetworkBuilder {
        NetworkBuilder::default()
    }

    /// All nodes, indexed by [`NodeId`].
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All segments, indexed by [`SegmentId`].
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// All streets, indexed by [`StreetId`].
    pub fn streets(&self) -> &[Street] {
        &self.streets
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of segments.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Number of streets.
    pub fn num_streets(&self) -> usize {
        self.streets.len()
    }

    /// The node with id `id`.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// The segment with id `id`.
    #[inline]
    pub fn segment(&self, id: SegmentId) -> &Segment {
        &self.segments[id.index()]
    }

    /// The street with id `id`.
    #[inline]
    pub fn street(&self, id: StreetId) -> &Street {
        &self.streets[id.index()]
    }

    /// The street a segment belongs to.
    #[inline]
    pub fn street_of(&self, seg: SegmentId) -> StreetId {
        self.segment(seg).street
    }

    /// Segments incident to `node`.
    pub fn incident_segments(&self, node: NodeId) -> &[SegmentId] {
        &self.incident[node.index()]
    }

    /// Street length `len(s)`: the sum of its segment lengths.
    pub fn street_len(&self, id: StreetId) -> f64 {
        self.street(id)
            .segments
            .iter()
            .map(|&l| self.segment(l).len())
            .sum()
    }

    /// Minimum distance from `p` to street `s`:
    /// `dist(p, s) = min_{ℓ∈s} dist(p, ℓ)`.
    pub fn dist_point_to_street(&self, p: Point, id: StreetId) -> f64 {
        self.street(id)
            .segments
            .iter()
            .map(|&l| self.segment(l).geom.dist_sq_to_point(p))
            .fold(f64::INFINITY, f64::min)
            .sqrt()
    }

    /// The street's geometry as a polyline (node chain in path order).
    ///
    /// Consecutive segments may be stored in either orientation; the chain is
    /// re-oriented on the fly.
    pub fn street_polyline(&self, id: StreetId) -> Polyline {
        let street = self.street(id);
        let mut pts: Vec<Point> = Vec::with_capacity(street.segments.len() + 1);
        for (i, &sid) in street.segments.iter().enumerate() {
            let seg = self.segment(sid);
            let (a, b) = (self.node(seg.from).pos, self.node(seg.to).pos);
            if i == 0 {
                // Orient the first segment towards the second, if any.
                let flip = street.segments.get(1).is_some_and(|&next| {
                    let n = self.segment(next);
                    seg.from == n.from || seg.from == n.to
                });
                if flip {
                    pts.push(b);
                    pts.push(a);
                } else {
                    pts.push(a);
                    pts.push(b);
                }
            } else {
                let last = pts.last().copied().unwrap_or(a);
                // Append whichever endpoint isn't the current chain end.
                if last == a {
                    pts.push(b);
                } else {
                    pts.push(a);
                }
            }
        }
        Polyline::new(pts)
    }

    /// Minimum bounding rectangle of street `s` (None for empty streets).
    pub fn street_mbr(&self, id: StreetId) -> Option<Rect> {
        let street = self.street(id);
        let mut rect: Option<Rect> = None;
        for &sid in &street.segments {
            let r = self.segment(sid).geom.bounding_rect();
            rect = Some(match rect {
                Some(acc) => acc.union(&r),
                None => r,
            });
        }
        rect
    }

    /// Bounding rectangle of the entire network (None if no nodes).
    pub fn extent(&self) -> Option<Rect> {
        Rect::bounding(self.nodes.iter().map(|n| n.pos))
    }
}

/// Incremental builder for [`RoadNetwork`].
#[derive(Debug, Default)]
pub struct NetworkBuilder {
    nodes: Vec<Node>,
    segments: Vec<Segment>,
    streets: Vec<Street>,
}

impl NetworkBuilder {
    /// Adds a node at `pos` and returns its id.
    pub fn add_node(&mut self, pos: Point) -> NodeId {
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(Node { id, pos });
        id
    }

    /// Adds an (initially empty) street and returns its id.
    pub fn add_street(&mut self, name: impl Into<String>) -> StreetId {
        let id = StreetId::from_index(self.streets.len());
        self.streets.push(Street {
            id,
            name: name.into(),
            segments: Vec::new(),
        });
        id
    }

    /// Adds a segment from `from` to `to`, appending it to `street`.
    ///
    /// # Panics
    /// Panics if the node or street ids are out of range.
    pub fn add_segment(&mut self, street: StreetId, from: NodeId, to: NodeId) -> SegmentId {
        let id = SegmentId::from_index(self.segments.len());
        let geom = LineSeg::new(self.nodes[from.index()].pos, self.nodes[to.index()].pos);
        self.segments.push(Segment {
            id,
            street,
            from,
            to,
            geom,
        });
        self.streets[street.index()].segments.push(id);
        id
    }

    /// Convenience: adds a whole street from a point chain, creating nodes
    /// and segments. Returns the street id.
    pub fn add_street_from_points(
        &mut self,
        name: impl Into<String>,
        points: &[Point],
    ) -> StreetId {
        let street = self.add_street(name);
        if points.is_empty() {
            return street;
        }
        let mut prev = self.add_node(points[0]);
        for &p in &points[1..] {
            let next = self.add_node(p);
            self.add_segment(street, prev, next);
            prev = next;
        }
        street
    }

    /// Number of nodes added so far.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Validates and freezes the network.
    ///
    /// Checks performed:
    /// - every street's consecutive segments share a node (connected chain);
    /// - no degenerate segments (zero length);
    /// - all node coordinates are finite.
    pub fn build(self) -> Result<RoadNetwork> {
        for node in &self.nodes {
            if !node.pos.is_finite() {
                return Err(SoiError::validation(
                    ValidationKind::NonFiniteCoordinate,
                    format!("node {} has non-finite coordinates", node.id),
                ));
            }
        }
        for seg in &self.segments {
            if seg.geom.is_degenerate() {
                return Err(SoiError::validation(
                    ValidationKind::ZeroLengthSegment,
                    format!("segment {} is degenerate (zero length)", seg.id),
                ));
            }
        }
        for street in &self.streets {
            for pair in street.segments.windows(2) {
                let a = &self.segments[pair[0].index()];
                let b = &self.segments[pair[1].index()];
                let shares = a.from == b.from || a.from == b.to || a.to == b.from || a.to == b.to;
                if !shares {
                    return Err(SoiError::validation(
                        ValidationKind::DanglingReference,
                        format!(
                            "street {} ({}) is not a connected chain: segments {} and {} share no node",
                            street.id, street.name, a.id, b.id
                        ),
                    ));
                }
            }
        }

        let mut incident: Vec<Vec<SegmentId>> = vec![Vec::new(); self.nodes.len()];
        for seg in &self.segments {
            incident[seg.from.index()].push(seg.id);
            incident[seg.to.index()].push(seg.id);
        }

        Ok(RoadNetwork {
            nodes: self.nodes,
            segments: self.segments,
            streets: self.streets,
            incident,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two streets: a horizontal 2-segment street and a vertical 1-segment
    /// street crossing it at (1,0).
    pub(crate) fn cross_network() -> RoadNetwork {
        let mut b = RoadNetwork::builder();
        let n0 = b.add_node(Point::new(0.0, 0.0));
        let n1 = b.add_node(Point::new(1.0, 0.0));
        let n2 = b.add_node(Point::new(2.0, 0.0));
        let n3 = b.add_node(Point::new(1.0, 1.0));
        let main = b.add_street("Main St");
        b.add_segment(main, n0, n1);
        b.add_segment(main, n1, n2);
        let cross = b.add_street("Cross St");
        b.add_segment(cross, n1, n3);
        b.build().unwrap()
    }

    #[test]
    fn builds_and_indexes() {
        let net = cross_network();
        assert_eq!(net.num_nodes(), 4);
        assert_eq!(net.num_segments(), 3);
        assert_eq!(net.num_streets(), 2);
        assert_eq!(net.street_of(SegmentId(0)), StreetId(0));
        assert_eq!(net.street_of(SegmentId(2)), StreetId(1));
        assert_eq!(net.street(StreetId(0)).name, "Main St");
        assert_eq!(net.street_len(StreetId(0)), 2.0);
        assert_eq!(net.street_len(StreetId(1)), 1.0);
    }

    #[test]
    fn incident_segments() {
        let net = cross_network();
        // Node n1=(1,0) touches all three segments.
        assert_eq!(net.incident_segments(NodeId(1)).len(), 3);
        assert_eq!(net.incident_segments(NodeId(0)).len(), 1);
    }

    #[test]
    fn distance_to_street_is_min_over_segments() {
        let net = cross_network();
        // Point above the middle of Main St: closest via second segment or
        // Cross St.
        assert_eq!(
            net.dist_point_to_street(Point::new(1.5, 0.5), StreetId(0)),
            0.5
        );
        assert_eq!(
            net.dist_point_to_street(Point::new(1.5, 0.5), StreetId(1)),
            0.5
        );
        assert_eq!(
            net.dist_point_to_street(Point::new(0.0, 0.0), StreetId(0)),
            0.0
        );
    }

    #[test]
    fn street_polyline_chains_points() {
        let net = cross_network();
        let poly = net.street_polyline(StreetId(0));
        assert_eq!(poly.points().len(), 3);
        assert_eq!(poly.len(), 2.0);
    }

    #[test]
    fn street_polyline_handles_reversed_first_segment() {
        let mut b = RoadNetwork::builder();
        let n0 = b.add_node(Point::new(1.0, 0.0));
        let n1 = b.add_node(Point::new(0.0, 0.0));
        let n2 = b.add_node(Point::new(2.0, 0.0));
        let s = b.add_street("Twisty");
        // First segment stored n0->n1 but the chain continues from n0.
        b.add_segment(s, n0, n1);
        b.add_segment(s, n0, n2);
        let net = b.build().unwrap();
        let poly = net.street_polyline(s);
        assert_eq!(poly.points().first(), Some(&Point::new(0.0, 0.0)));
        assert_eq!(poly.points().last(), Some(&Point::new(2.0, 0.0)));
        assert_eq!(poly.len(), 2.0);
    }

    #[test]
    fn street_mbr_and_extent() {
        let net = cross_network();
        let mbr = net.street_mbr(StreetId(1)).unwrap();
        assert_eq!(mbr.min, Point::new(1.0, 0.0));
        assert_eq!(mbr.max, Point::new(1.0, 1.0));
        let ext = net.extent().unwrap();
        assert_eq!(ext.min, Point::new(0.0, 0.0));
        assert_eq!(ext.max, Point::new(2.0, 1.0));
    }

    #[test]
    fn add_street_from_points() {
        let mut b = RoadNetwork::builder();
        let s = b.add_street_from_points(
            "Chain",
            &[
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(1.0, 2.0),
            ],
        );
        let net = b.build().unwrap();
        assert_eq!(net.street(s).num_segments(), 2);
        assert_eq!(net.street_len(s), 3.0);
    }

    #[test]
    fn disconnected_street_rejected() {
        let mut b = RoadNetwork::builder();
        let n0 = b.add_node(Point::new(0.0, 0.0));
        let n1 = b.add_node(Point::new(1.0, 0.0));
        let n2 = b.add_node(Point::new(5.0, 5.0));
        let n3 = b.add_node(Point::new(6.0, 5.0));
        let s = b.add_street("Broken");
        b.add_segment(s, n0, n1);
        b.add_segment(s, n2, n3);
        assert!(b.build().is_err());
    }

    #[test]
    fn degenerate_segment_rejected() {
        let mut b = RoadNetwork::builder();
        let n0 = b.add_node(Point::new(0.0, 0.0));
        let s = b.add_street("Dot");
        b.add_segment(s, n0, n0);
        assert!(b.build().is_err());
    }

    #[test]
    fn non_finite_node_rejected() {
        let mut b = RoadNetwork::builder();
        b.add_node(Point::new(f64::NAN, 0.0));
        assert!(b.build().is_err());
    }
}
