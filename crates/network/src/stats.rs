//! Road-network statistics (the paper's Table 1 columns).

use crate::network::RoadNetwork;

/// Summary statistics of a road network.
///
/// Matches Table 1 of the paper (number of segments, min/max segment
/// length, plus the surrounding context columns).
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkStats {
    /// Number of nodes.
    pub num_nodes: usize,
    /// Number of segments ("Num of segm." in Table 1).
    pub num_segments: usize,
    /// Number of streets.
    pub num_streets: usize,
    /// Minimum segment length ("Min segm. length").
    pub min_segment_len: f64,
    /// Maximum segment length ("Max segm. length").
    pub max_segment_len: f64,
    /// Mean segment length.
    pub mean_segment_len: f64,
    /// Total network length (sum of all segment lengths).
    pub total_len: f64,
    /// Mean number of segments per street.
    pub mean_segments_per_street: f64,
}

impl NetworkStats {
    /// Computes statistics for `network`.
    ///
    /// For an empty network, lengths are reported as 0.
    pub fn of(network: &RoadNetwork) -> Self {
        let mut min_len = f64::INFINITY;
        let mut max_len: f64 = 0.0;
        let mut total = 0.0;
        for seg in network.segments() {
            let l = seg.len();
            min_len = min_len.min(l);
            max_len = max_len.max(l);
            total += l;
        }
        let num_segments = network.num_segments();
        if num_segments == 0 {
            min_len = 0.0;
        }
        let num_streets = network.num_streets();
        Self {
            num_nodes: network.num_nodes(),
            num_segments,
            num_streets,
            min_segment_len: min_len,
            max_segment_len: max_len,
            mean_segment_len: if num_segments == 0 {
                0.0
            } else {
                total / num_segments as f64
            },
            total_len: total,
            mean_segments_per_street: if num_streets == 0 {
                0.0
            } else {
                num_segments as f64 / num_streets as f64
            },
        }
    }
}

impl std::fmt::Display for NetworkStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "nodes:    {}", self.num_nodes)?;
        writeln!(f, "segments: {}", self.num_segments)?;
        writeln!(f, "streets:  {}", self.num_streets)?;
        writeln!(
            f,
            "segment length: min {:.6}, max {:.6}, mean {:.6}",
            self.min_segment_len, self.max_segment_len, self.mean_segment_len
        )?;
        write!(f, "total length: {:.6}", self.total_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_geo::Point;

    #[test]
    fn stats_of_simple_network() {
        let mut b = RoadNetwork::builder();
        let s = b.add_street_from_points(
            "s",
            &[
                Point::new(0.0, 0.0),
                Point::new(3.0, 4.0),
                Point::new(3.0, 5.0),
            ],
        );
        let _ = s;
        let net = b.build().unwrap();
        let st = NetworkStats::of(&net);
        assert_eq!(st.num_segments, 2);
        assert_eq!(st.num_streets, 1);
        assert_eq!(st.min_segment_len, 1.0);
        assert_eq!(st.max_segment_len, 5.0);
        assert_eq!(st.mean_segment_len, 3.0);
        assert_eq!(st.total_len, 6.0);
        assert_eq!(st.mean_segments_per_street, 2.0);
    }

    #[test]
    fn stats_of_empty_network() {
        let net = RoadNetwork::builder().build().unwrap();
        let st = NetworkStats::of(&net);
        assert_eq!(st.num_segments, 0);
        assert_eq!(st.min_segment_len, 0.0);
        assert_eq!(st.max_segment_len, 0.0);
        assert_eq!(st.mean_segment_len, 0.0);
        assert_eq!(st.mean_segments_per_street, 0.0);
    }

    #[test]
    fn display_renders() {
        let net = RoadNetwork::builder().build().unwrap();
        let text = NetworkStats::of(&net).to_string();
        assert!(text.contains("segments: 0"));
    }
}
