//! Graph algorithms over the road network.
//!
//! The k-SOI algorithm itself never traverses the graph (streets are ranked
//! independently — that is the paper's point of difference from the
//! connected-subgraph formulation of Cao et al. \[7\]). These traversals
//! support dataset validation, statistics, and the route-sketching
//! extension.

use crate::network::RoadNetwork;
use soi_common::{NodeId, OrderedF64, SegmentId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

impl RoadNetwork {
    /// The node at the other end of `seg` from `node`.
    ///
    /// Returns `None` if `node` is not an endpoint of `seg`.
    pub fn other_endpoint(&self, seg: SegmentId, node: NodeId) -> Option<NodeId> {
        let s = self.segment(seg);
        if s.from == node {
            Some(s.to)
        } else if s.to == node {
            Some(s.from)
        } else {
            None
        }
    }

    /// Degree of `node` (number of incident segments).
    pub fn degree(&self, node: NodeId) -> usize {
        self.incident_segments(node).len()
    }

    /// Connected components of the undirected network, as lists of node ids.
    ///
    /// Components are ordered by their smallest node id; nodes within a
    /// component are in discovery (BFS) order.
    pub fn connected_components(&self) -> Vec<Vec<NodeId>> {
        let n = self.num_nodes();
        let mut visited = vec![false; n];
        let mut components = Vec::new();
        let mut queue = std::collections::VecDeque::new();

        for start in 0..n {
            if visited[start] {
                continue;
            }
            let mut comp = Vec::new();
            visited[start] = true;
            queue.push_back(NodeId::from_index(start));
            while let Some(node) = queue.pop_front() {
                comp.push(node);
                for &seg in self.incident_segments(node) {
                    if let Some(next) = self.other_endpoint(seg, node) {
                        if !visited[next.index()] {
                            visited[next.index()] = true;
                            queue.push_back(next);
                        }
                    }
                }
            }
            components.push(comp);
        }
        components
    }

    /// Dijkstra shortest path by segment length between two nodes.
    ///
    /// Returns the total length and the node sequence, or `None` if
    /// unreachable. The network is treated as undirected (paper streets are
    /// walkable both ways for exploration purposes).
    pub fn shortest_path(&self, from: NodeId, to: NodeId) -> Option<(f64, Vec<NodeId>)> {
        let n = self.num_nodes();
        if from.index() >= n || to.index() >= n {
            return None;
        }
        let mut dist: Vec<f64> = vec![f64::INFINITY; n];
        let mut prev: Vec<Option<NodeId>> = vec![None; n];
        let mut heap: BinaryHeap<Reverse<(OrderedF64, NodeId)>> = BinaryHeap::new();
        dist[from.index()] = 0.0;
        heap.push(Reverse((OrderedF64::ZERO, from)));

        while let Some(Reverse((d, node))) = heap.pop() {
            if d.get() > dist[node.index()] {
                continue; // stale entry
            }
            if node == to {
                break;
            }
            for &seg in self.incident_segments(node) {
                let Some(next) = self.other_endpoint(seg, node) else {
                    continue;
                };
                let nd = d.get() + self.segment(seg).len();
                if nd < dist[next.index()] {
                    dist[next.index()] = nd;
                    prev[next.index()] = Some(node);
                    heap.push(Reverse((OrderedF64::new(nd), next)));
                }
            }
        }

        if dist[to.index()].is_infinite() {
            return None;
        }
        let mut path = vec![to];
        let mut cur = to;
        while let Some(p) = prev[cur.index()] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        Some((dist[to.index()], path))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_geo::Point;

    fn grid_2x2() -> RoadNetwork {
        // A 2x2 block of unit streets:
        //   n2 - n3
        //   |     |
        //   n0 - n1
        let mut b = RoadNetwork::builder();
        let n0 = b.add_node(Point::new(0.0, 0.0));
        let n1 = b.add_node(Point::new(1.0, 0.0));
        let n2 = b.add_node(Point::new(0.0, 1.0));
        let n3 = b.add_node(Point::new(1.0, 1.0));
        let s0 = b.add_street("bottom");
        b.add_segment(s0, n0, n1);
        let s1 = b.add_street("left");
        b.add_segment(s1, n0, n2);
        let s2 = b.add_street("top");
        b.add_segment(s2, n2, n3);
        let s3 = b.add_street("right");
        b.add_segment(s3, n1, n3);
        b.build().unwrap()
    }

    #[test]
    fn other_endpoint_and_degree() {
        let net = grid_2x2();
        assert_eq!(net.other_endpoint(SegmentId(0), NodeId(0)), Some(NodeId(1)));
        assert_eq!(net.other_endpoint(SegmentId(0), NodeId(1)), Some(NodeId(0)));
        assert_eq!(net.other_endpoint(SegmentId(0), NodeId(3)), None);
        assert_eq!(net.degree(NodeId(0)), 2);
    }

    #[test]
    fn single_component() {
        let net = grid_2x2();
        let comps = net.connected_components();
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].len(), 4);
    }

    #[test]
    fn two_components() {
        let mut b = RoadNetwork::builder();
        let n0 = b.add_node(Point::new(0.0, 0.0));
        let n1 = b.add_node(Point::new(1.0, 0.0));
        let n2 = b.add_node(Point::new(10.0, 10.0));
        let n3 = b.add_node(Point::new(11.0, 10.0));
        let a = b.add_street("a");
        b.add_segment(a, n0, n1);
        let c = b.add_street("b");
        b.add_segment(c, n2, n3);
        let net = b.build().unwrap();
        let comps = net.connected_components();
        assert_eq!(comps.len(), 2);
    }

    #[test]
    fn shortest_path_around_block() {
        let net = grid_2x2();
        let (d, path) = net.shortest_path(NodeId(0), NodeId(3)).unwrap();
        assert_eq!(d, 2.0);
        assert_eq!(path.len(), 3);
        assert_eq!(path[0], NodeId(0));
        assert_eq!(path[2], NodeId(3));
    }

    #[test]
    fn shortest_path_to_self_is_zero() {
        let net = grid_2x2();
        let (d, path) = net.shortest_path(NodeId(1), NodeId(1)).unwrap();
        assert_eq!(d, 0.0);
        assert_eq!(path, vec![NodeId(1)]);
    }

    #[test]
    fn unreachable_returns_none() {
        let mut b = RoadNetwork::builder();
        let n0 = b.add_node(Point::new(0.0, 0.0));
        let n1 = b.add_node(Point::new(1.0, 0.0));
        let n2 = b.add_node(Point::new(5.0, 5.0));
        let n3 = b.add_node(Point::new(6.0, 5.0));
        let a = b.add_street("a");
        b.add_segment(a, n0, n1);
        let c = b.add_street("b");
        b.add_segment(c, n2, n3);
        let net = b.build().unwrap();
        assert!(net.shortest_path(NodeId(0), NodeId(2)).is_none());
    }
}
