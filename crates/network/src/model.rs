//! Road network records.

use soi_common::{NodeId, SegmentId, StreetId};
use soi_geo::{LineSeg, Point};

/// A road-network vertex: a street intersection or a breakpoint in a street.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Node {
    /// The node's identifier.
    pub id: NodeId,
    /// The node's coordinates `(x_v, y_v)`.
    pub pos: Point,
}

/// A street segment: a link of the road network between two nodes.
///
/// Segments are the unit of ranking — Definition 2's interest is defined per
/// segment. Every segment belongs to exactly one street.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Segment {
    /// The segment's identifier.
    pub id: SegmentId,
    /// The street this segment belongs to (`ℓ ∈ s`).
    pub street: StreetId,
    /// Start node.
    pub from: NodeId,
    /// End node.
    pub to: NodeId,
    /// Cached geometry (endpoints resolved at build time).
    pub geom: LineSeg,
}

impl Segment {
    /// Segment length `len(ℓ)`: the Euclidean distance between endpoints.
    #[inline]
    pub fn len(&self) -> f64 {
        self.geom.len()
    }

    /// Minimum distance from point `p` to this segment (Definition 1).
    #[inline]
    pub fn dist_to_point(&self, p: Point) -> f64 {
        self.geom.dist_to_point(p)
    }
}

/// A street: a named simple path of consecutive segments.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Street {
    /// The street's identifier.
    pub id: StreetId,
    /// Human-readable name (may be empty for unnamed service roads).
    pub name: String,
    /// The street's segments in path order.
    pub segments: Vec<SegmentId>,
}

impl Street {
    /// Number of segments in the street.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_len_and_distance() {
        let s = Segment {
            id: SegmentId(0),
            street: StreetId(0),
            from: NodeId(0),
            to: NodeId(1),
            geom: LineSeg::new(Point::new(0.0, 0.0), Point::new(3.0, 4.0)),
        };
        assert_eq!(s.len(), 5.0);
        assert_eq!(s.dist_to_point(Point::new(0.0, 0.0)), 0.0);
    }

    #[test]
    fn street_counts_segments() {
        let st = Street {
            id: StreetId(1),
            name: "Oxford Street".into(),
            segments: vec![SegmentId(0), SegmentId(1)],
        };
        assert_eq!(st.num_segments(), 2);
    }
}
