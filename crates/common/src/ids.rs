//! Strongly typed identifiers for the entities of the system.
//!
//! Every entity (road-network node, street segment, street, POI, photo,
//! interned keyword, grid cell) is identified by a dense `u32` index into its
//! owning collection. Wrapping the index in a newtype prevents mixing ids of
//! different kinds and keeps hot structs small (paper-scale datasets have a
//! few million POIs, well within `u32`).

/// Defines a `u32`-backed id newtype with the standard conversions.
macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        #[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
        pub struct $name(pub u32);

        impl $name {
            /// Creates an id from a `usize` index, panicking on overflow.
            #[inline]
            pub fn from_index(index: usize) -> Self {
                debug_assert!(index <= u32::MAX as usize, "id overflow");
                Self(index as u32)
            }

            /// Returns the id as a `usize` index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Returns the raw `u32` value.
            #[inline]
            pub fn raw(self) -> u32 {
                self.0
            }
        }

        impl From<u32> for $name {
            #[inline]
            fn from(v: u32) -> Self {
                Self(v)
            }
        }

        impl From<$name> for u32 {
            #[inline]
            fn from(v: $name) -> u32 {
                v.0
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}#{}", stringify!($name), self.0)
            }
        }
    };
}

define_id!(
    /// Identifier of a road-network node (intersection or breakpoint).
    NodeId
);
define_id!(
    /// Identifier of a street segment (a link of the road network).
    SegmentId
);
define_id!(
    /// Identifier of a street (a chain of consecutive segments).
    StreetId
);
define_id!(
    /// Identifier of a Point of Interest.
    PoiId
);
define_id!(
    /// Identifier of a geo-tagged photo.
    PhotoId
);
define_id!(
    /// Identifier of an interned keyword.
    KeywordId
);
define_id!(
    /// Linearised identifier of a grid cell (row-major over the grid extent).
    CellId
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_index() {
        let id = PoiId::from_index(123);
        assert_eq!(id.index(), 123);
        assert_eq!(id.raw(), 123);
        assert_eq!(u32::from(id), 123);
        assert_eq!(PoiId::from(123u32), id);
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(SegmentId(1) < SegmentId(2));
        assert_eq!(SegmentId(5), SegmentId(5));
    }

    #[test]
    fn display_names_the_kind() {
        assert_eq!(StreetId(9).to_string(), "StreetId#9");
        assert_eq!(CellId(0).to_string(), "CellId#0");
    }
}
