//! Shared utilities for the streets-of-interest workspace.
//!
//! This crate holds the small, dependency-free building blocks used by every
//! other crate in the workspace:
//!
//! - [`fxhash`]: an FxHash-style fast hasher plus [`FxHashMap`]/[`FxHashSet`]
//!   aliases, for the hot integer-keyed maps (grid cell keys, segment ids).
//! - [`ids`]: strongly typed `u32` identifiers ([`PoiId`], [`SegmentId`], …)
//!   so that ids of different entity kinds cannot be confused.
//! - [`ord`]: [`OrderedF64`], a total order over non-NaN floats used for
//!   ranking scores deterministically.
//! - [`timing`]: [`Stopwatch`] and [`PhaseTimer`] for the per-phase runtime
//!   breakdowns reported by the experiment harness (paper Fig. 4).
//! - [`parallel`]: deterministic data-parallel helpers (chunked fan-out and
//!   a stable parallel sort) whose results never depend on thread count.
//! - [`bucket`]: stable counting sort over dense integer keys, the
//!   `O(n + k)` digit pass the offline index builds chain into radix sorts.
//! - [`topk`]: deterministic top-k selection helpers.
//! - [`error`]: the workspace error type — structured, categorized, with
//!   source-chain context and stable CLI exit codes.
//! - [`load`]: shared ingestion policy ([`LoadMode`] strict/lenient and the
//!   per-category [`LoadReport`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code must surface failures as `SoiError`, never panic: unwrap and
// expect are compile errors outside of test code.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod bucket;
pub mod error;
pub mod fxhash;
pub mod ids;
pub mod load;
pub mod ord;
pub mod parallel;
pub mod timing;
pub mod topk;

pub use bucket::{bucket_sort_stable, bucket_sort_worthwhile};
pub use error::{ErrorCategory, Result, ResultExt, SoiError, ValidationKind};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use ids::{CellId, KeywordId, NodeId, PhotoId, PoiId, SegmentId, StreetId};
pub use load::{LoadMode, LoadOptions, LoadReport};
pub use ord::{f64_from_total_key, f64_total_key, OrderedF64};
pub use parallel::{
    chunk_ranges, effective_threads, par_chunk_map, par_chunks_mut, par_sort_by,
    par_sort_unstable_by,
};
pub use timing::{PhaseTimer, Stopwatch};
pub use topk::{top_k_by_score, ScoredItem, TopKTracker};
