//! Shared utilities for the streets-of-interest workspace.
//!
//! This crate holds the small, dependency-free building blocks used by every
//! other crate in the workspace:
//!
//! - [`fxhash`]: an FxHash-style fast hasher plus [`FxHashMap`]/[`FxHashSet`]
//!   aliases, for the hot integer-keyed maps (grid cell keys, segment ids).
//! - [`ids`]: strongly typed `u32` identifiers ([`PoiId`], [`SegmentId`], …)
//!   so that ids of different entity kinds cannot be confused.
//! - [`ord`]: [`OrderedF64`], a total order over non-NaN floats used for
//!   ranking scores deterministically.
//! - [`timing`]: [`Stopwatch`] and [`PhaseTimer`] for the per-phase runtime
//!   breakdowns reported by the experiment harness (paper Fig. 4).
//! - [`topk`]: deterministic top-k selection helpers.
//! - [`error`]: the workspace error type — structured, categorized, with
//!   source-chain context and stable CLI exit codes.
//! - [`load`]: shared ingestion policy ([`LoadMode`] strict/lenient and the
//!   per-category [`LoadReport`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code must surface failures as `SoiError`, never panic: unwrap and
// expect are compile errors outside of test code.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod error;
pub mod fxhash;
pub mod ids;
pub mod load;
pub mod ord;
pub mod timing;
pub mod topk;

pub use error::{ErrorCategory, Result, ResultExt, SoiError, ValidationKind};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use ids::{CellId, KeywordId, NodeId, PhotoId, PoiId, SegmentId, StreetId};
pub use load::{LoadMode, LoadOptions, LoadReport};
pub use ord::OrderedF64;
pub use timing::{PhaseTimer, Stopwatch};
pub use topk::{top_k_by_score, ScoredItem, TopKTracker};
