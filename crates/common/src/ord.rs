//! A totally ordered wrapper for finite `f64` scores.

use std::cmp::Ordering;

/// A `f64` wrapper with a total order, for use as a ranking key.
///
/// All scores produced by the system (interest, relevance, diversity, `mmr`)
/// are finite and non-NaN by construction; this wrapper makes that contract
/// explicit and lets scores live in `BinaryHeap`s and `sort` keys.
///
/// Construction panics (in debug builds) on NaN; NaN compares via a defined
/// but meaningless order (`f64::total_cmp`) in release builds so the program
/// never aborts inside a comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct OrderedF64(f64);

impl OrderedF64 {
    /// Wraps a score. Debug-asserts that the value is not NaN.
    #[inline]
    pub fn new(value: f64) -> Self {
        debug_assert!(!value.is_nan(), "score must not be NaN");
        Self(value)
    }

    /// Returns the wrapped value.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }

    /// The zero score.
    pub const ZERO: OrderedF64 = OrderedF64(0.0);

    /// Positive infinity, used as the initial unseen upper bound.
    pub const INFINITY: OrderedF64 = OrderedF64(f64::INFINITY);
}

impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl From<f64> for OrderedF64 {
    #[inline]
    fn from(value: f64) -> Self {
        Self::new(value)
    }
}

impl From<OrderedF64> for f64 {
    #[inline]
    fn from(value: OrderedF64) -> f64 {
        value.0
    }
}

impl std::fmt::Display for OrderedF64 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_order() {
        let mut v = vec![
            OrderedF64::new(3.0),
            OrderedF64::new(-1.0),
            OrderedF64::new(0.0),
            OrderedF64::INFINITY,
        ];
        v.sort();
        let raw: Vec<f64> = v.into_iter().map(OrderedF64::get).collect();
        assert_eq!(raw, vec![-1.0, 0.0, 3.0, f64::INFINITY]);
    }

    #[test]
    fn zero_and_infinity_constants() {
        assert_eq!(OrderedF64::ZERO.get(), 0.0);
        assert!(OrderedF64::ZERO < OrderedF64::INFINITY);
    }

    #[test]
    fn negative_zero_orders_below_positive_zero() {
        // total_cmp semantics: -0.0 < +0.0. Callers must not rely on
        // -0.0 == +0.0 for ranking keys; document via test.
        assert!(OrderedF64::new(-0.0) < OrderedF64::new(0.0));
    }

    #[test]
    fn roundtrip_f64() {
        let x: OrderedF64 = 2.5.into();
        let y: f64 = x.into();
        assert_eq!(y, 2.5);
    }
}
