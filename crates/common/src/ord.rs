//! A totally ordered wrapper for finite `f64` scores.

use std::cmp::Ordering;

/// A `f64` wrapper with a total order, for use as a ranking key.
///
/// All scores produced by the system (interest, relevance, diversity, `mmr`)
/// are finite and non-NaN by construction; this wrapper makes that contract
/// explicit and lets scores live in `BinaryHeap`s and `sort` keys.
///
/// Construction panics (in debug builds) on NaN; NaN compares via a defined
/// but meaningless order (`f64::total_cmp`) in release builds so the program
/// never aborts inside a comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct OrderedF64(f64);

impl OrderedF64 {
    /// Wraps a score. Debug-asserts that the value is not NaN.
    #[inline]
    pub fn new(value: f64) -> Self {
        debug_assert!(!value.is_nan(), "score must not be NaN");
        Self(value)
    }

    /// Returns the wrapped value.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }

    /// The zero score.
    pub const ZERO: OrderedF64 = OrderedF64(0.0);

    /// Positive infinity, used as the initial unseen upper bound.
    pub const INFINITY: OrderedF64 = OrderedF64(f64::INFINITY);
}

impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl From<f64> for OrderedF64 {
    #[inline]
    fn from(value: f64) -> Self {
        Self::new(value)
    }
}

impl From<OrderedF64> for f64 {
    #[inline]
    fn from(value: OrderedF64) -> f64 {
        value.0
    }
}

impl std::fmt::Display for OrderedF64 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// Maps an `f64` to a `u64` whose unsigned order equals IEEE-754 totalOrder
/// (i.e. [`f64::total_cmp`]): `a.total_cmp(&b) == f64_total_key(a).cmp(&f64_total_key(b))`.
///
/// This lets floats participate in packed integer sort keys (the index builds
/// sort by a single `u64`/`u128` compare instead of a branchy comparator
/// chain). The mapping is a bijection; [`f64_from_total_key`] inverts it
/// exactly, bit for bit.
#[inline]
pub fn f64_total_key(x: f64) -> u64 {
    let bits = x.to_bits();
    if bits >> 63 == 1 {
        !bits // negative: reverse order, below all positives
    } else {
        bits | 0x8000_0000_0000_0000 // positive: above all negatives
    }
}

/// Exact inverse of [`f64_total_key`].
#[inline]
pub fn f64_from_total_key(key: u64) -> f64 {
    if key >> 63 == 1 {
        f64::from_bits(key & 0x7FFF_FFFF_FFFF_FFFF)
    } else {
        f64::from_bits(!key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_order() {
        let mut v = vec![
            OrderedF64::new(3.0),
            OrderedF64::new(-1.0),
            OrderedF64::new(0.0),
            OrderedF64::INFINITY,
        ];
        v.sort();
        let raw: Vec<f64> = v.into_iter().map(OrderedF64::get).collect();
        assert_eq!(raw, vec![-1.0, 0.0, 3.0, f64::INFINITY]);
    }

    #[test]
    fn zero_and_infinity_constants() {
        assert_eq!(OrderedF64::ZERO.get(), 0.0);
        assert!(OrderedF64::ZERO < OrderedF64::INFINITY);
    }

    #[test]
    fn negative_zero_orders_below_positive_zero() {
        // total_cmp semantics: -0.0 < +0.0. Callers must not rely on
        // -0.0 == +0.0 for ranking keys; document via test.
        assert!(OrderedF64::new(-0.0) < OrderedF64::new(0.0));
    }

    #[test]
    fn roundtrip_f64() {
        let x: OrderedF64 = 2.5.into();
        let y: f64 = x.into();
        assert_eq!(y, 2.5);
    }

    const KEY_SAMPLES: [f64; 12] = [
        f64::NEG_INFINITY,
        -1e300,
        -2.5,
        -1e-300,
        -0.0,
        0.0,
        1e-300,
        1.0,
        2.5,
        1e300,
        f64::INFINITY,
        f64::MIN_POSITIVE,
    ];

    #[test]
    fn total_key_order_matches_total_cmp() {
        for &a in &KEY_SAMPLES {
            for &b in &KEY_SAMPLES {
                assert_eq!(
                    f64_total_key(a).cmp(&f64_total_key(b)),
                    a.total_cmp(&b),
                    "{a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn total_key_roundtrips_exactly() {
        for &x in &KEY_SAMPLES {
            let back = f64_from_total_key(f64_total_key(x));
            assert_eq!(back.to_bits(), x.to_bits(), "{x}");
        }
        // NaN payloads roundtrip too.
        let nan = f64::from_bits(0x7FF8_0000_0000_1234);
        assert_eq!(
            f64_from_total_key(f64_total_key(nan)).to_bits(),
            nan.to_bits()
        );
    }
}
