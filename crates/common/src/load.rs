//! Shared ingestion policy types: strict/lenient loading and the
//! per-category skip report.
//!
//! Crowdsourced geodata arrives noisy: NaN coordinates, negative weights,
//! dangling references, malformed rows. Every loader in the workspace takes
//! a [`LoadOptions`] deciding what happens when a record violates a
//! validation rule ([`ValidationKind`]):
//!
//! - [`LoadMode::Strict`] — the first invalid record aborts the load with a
//!   typed [`SoiError::Validation`](crate::SoiError::Validation) carrying
//!   file, record number, and field context.
//! - [`LoadMode::Lenient`] — invalid records are skipped and counted; the
//!   load returns a [`LoadReport`] with per-category counters and warnings,
//!   so operators can quantify data quality from a single log line.

use crate::error::ValidationKind;
use std::fmt;

/// What to do when a record fails validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LoadMode {
    /// Abort on the first invalid record (the default).
    #[default]
    Strict,
    /// Skip invalid records, counting them per [`ValidationKind`].
    Lenient,
}

/// Ingestion configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct LoadOptions {
    /// Strict or lenient handling of invalid records.
    pub mode: LoadMode,
}

impl LoadOptions {
    /// Strict options (first error aborts).
    pub fn strict() -> Self {
        LoadOptions {
            mode: LoadMode::Strict,
        }
    }

    /// Lenient options (skip + count invalid records).
    pub fn lenient() -> Self {
        LoadOptions {
            mode: LoadMode::Lenient,
        }
    }

    /// True in lenient mode.
    pub fn is_lenient(&self) -> bool {
        self.mode == LoadMode::Lenient
    }
}

/// Outcome accounting of a (possibly lenient) load.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LoadReport {
    /// Records accepted.
    pub records_loaded: u64,
    /// Records skipped in lenient mode, by violated rule. Indexed in the
    /// order of [`ValidationKind::ALL`].
    skipped: [u64; ValidationKind::ALL.len()],
    /// Human-readable notes about non-fatal recoveries (e.g. a missing
    /// optional file replaced by a default).
    pub warnings: Vec<String>,
}

fn kind_index(kind: ValidationKind) -> usize {
    ValidationKind::ALL
        .iter()
        .position(|k| *k == kind)
        .unwrap_or(ValidationKind::ALL.len() - 1)
}

impl LoadReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts one accepted record.
    pub fn accept(&mut self) {
        self.records_loaded += 1;
    }

    /// Counts one skipped record under `kind`.
    pub fn skip(&mut self, kind: ValidationKind) {
        self.skipped[kind_index(kind)] += 1;
    }

    /// Adds a non-fatal recovery note.
    pub fn warn(&mut self, message: impl Into<String>) {
        self.warnings.push(message.into());
    }

    /// Records skipped under `kind`.
    pub fn skipped(&self, kind: ValidationKind) -> u64 {
        self.skipped[kind_index(kind)]
    }

    /// Total records skipped across all categories.
    pub fn total_skipped(&self) -> u64 {
        self.skipped.iter().sum()
    }

    /// True when nothing was skipped and no warnings were raised.
    pub fn is_clean(&self) -> bool {
        self.total_skipped() == 0 && self.warnings.is_empty()
    }

    /// Folds another report (e.g. of a sibling file) into this one.
    pub fn merge(&mut self, other: &LoadReport) {
        self.records_loaded += other.records_loaded;
        for (into, from) in self.skipped.iter_mut().zip(other.skipped.iter()) {
            *into += from;
        }
        self.warnings.extend(other.warnings.iter().cloned());
    }
}

impl fmt::Display for LoadReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "loaded {} record(s), skipped {}",
            self.records_loaded,
            self.total_skipped()
        )?;
        let mut sep = " (";
        for kind in ValidationKind::ALL {
            let n = self.skipped(kind);
            if n > 0 {
                write!(f, "{sep}{kind}: {n}")?;
                sep = ", ";
            }
        }
        if sep == ", " {
            write!(f, ")")?;
        }
        for w in &self.warnings {
            write!(f, "; warning: {w}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_roundtrip() {
        let mut r = LoadReport::new();
        assert!(r.is_clean());
        r.accept();
        r.accept();
        r.skip(ValidationKind::InvalidWeight);
        r.skip(ValidationKind::InvalidWeight);
        r.skip(ValidationKind::NonFiniteCoordinate);
        assert_eq!(r.records_loaded, 2);
        assert_eq!(r.skipped(ValidationKind::InvalidWeight), 2);
        assert_eq!(r.skipped(ValidationKind::NonFiniteCoordinate), 1);
        assert_eq!(r.skipped(ValidationKind::DanglingReference), 0);
        assert_eq!(r.total_skipped(), 3);
        assert!(!r.is_clean());
    }

    #[test]
    fn merge_accumulates() {
        let mut a = LoadReport::new();
        a.accept();
        a.skip(ValidationKind::MalformedRecord);
        let mut b = LoadReport::new();
        b.accept();
        b.skip(ValidationKind::MalformedRecord);
        b.warn("name.txt missing");
        a.merge(&b);
        assert_eq!(a.records_loaded, 2);
        assert_eq!(a.skipped(ValidationKind::MalformedRecord), 2);
        assert_eq!(a.warnings.len(), 1);
    }

    #[test]
    fn display_summarises() {
        let mut r = LoadReport::new();
        r.accept();
        r.skip(ValidationKind::KeywordOutOfRange);
        r.warn("name.txt missing; using \"unnamed\"");
        let s = r.to_string();
        assert!(s.contains("loaded 1"), "{s}");
        assert!(s.contains("keyword-out-of-range: 1"), "{s}");
        assert!(s.contains("name.txt missing"), "{s}");
    }

    #[test]
    fn defaults_are_strict() {
        assert_eq!(LoadOptions::default().mode, LoadMode::Strict);
        assert!(LoadOptions::lenient().is_lenient());
        assert!(!LoadOptions::strict().is_lenient());
    }
}
