//! An FxHash-style hasher and hash-map/set aliases.
//!
//! The workspace's hot paths hash small integer keys (grid cell keys, segment
//! and POI ids) millions of times per query. The standard library's SipHash
//! is robust against hash-flooding but slow for such keys; the Fx algorithm
//! (popularised by Firefox and rustc) is a simple multiply-xor mix that is
//! dramatically faster for integers. None of the data hashed here is
//! attacker-controlled, so the weaker collision resistance is acceptable.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The 64-bit Fx multiplication constant (derived from the golden ratio).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
/// Rotation amount used by the Fx mix step.
const ROTATE: u32 = 5;

/// A fast, non-cryptographic hasher suitable for integer-keyed maps.
///
/// Implements the same algorithm as `rustc-hash`'s classic `FxHasher`:
/// for each input word, `hash = (hash.rotate_left(5) ^ word) * SEED`.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
            // Mix in the length so that zero-padded tails of different
            // lengths do not collide trivially.
            self.add_to_hash(rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`] instances.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using the fast Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using the fast Fx hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_one<T: Hash>(value: T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_one(42u32), hash_one(42u32));
        assert_eq!(hash_one("street"), hash_one("street"));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_one(1u64), hash_one(2u64));
        assert_ne!(hash_one((1u32, 2u32)), hash_one((2u32, 1u32)));
    }

    #[test]
    fn distinguishes_zero_padded_tails() {
        // "a" and "a\0" byte strings must not collide even though the tail
        // chunk zero-pads to the same 8-byte word.
        let mut h1 = FxHasher::default();
        h1.write(b"a");
        let mut h2 = FxHasher::default();
        h2.write(b"a\0");
        assert_ne!(h1.finish(), h2.finish());
    }

    #[test]
    fn map_and_set_work() {
        let mut map: FxHashMap<u32, &str> = FxHashMap::default();
        map.insert(7, "seven");
        map.insert(11, "eleven");
        assert_eq!(map.get(&7), Some(&"seven"));

        let mut set: FxHashSet<(i32, i32)> = FxHashSet::default();
        set.insert((3, 4));
        assert!(set.contains(&(3, 4)));
        assert!(!set.contains(&(4, 3)));
    }

    #[test]
    fn empty_input_hashes_to_default() {
        let h = FxHasher::default();
        assert_eq!(h.finish(), 0);
    }
}
