//! The workspace error type.

use std::fmt;

/// Result alias used across the workspace.
pub type Result<T> = std::result::Result<T, SoiError>;

/// Errors produced by the streets-of-interest crates.
#[derive(Debug)]
pub enum SoiError {
    /// An I/O failure while reading or writing datasets.
    Io(std::io::Error),
    /// A malformed record in a dataset file: `(line number, message)`.
    Parse {
        /// 1-based line number of the offending record (0 if unknown).
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// An invalid argument or inconsistent input to an API.
    InvalidInput(String),
    /// A referenced entity does not exist.
    NotFound(String),
}

impl SoiError {
    /// Convenience constructor for [`SoiError::InvalidInput`].
    pub fn invalid(message: impl Into<String>) -> Self {
        SoiError::InvalidInput(message.into())
    }

    /// Convenience constructor for [`SoiError::Parse`].
    pub fn parse(line: usize, message: impl Into<String>) -> Self {
        SoiError::Parse {
            line,
            message: message.into(),
        }
    }

    /// Convenience constructor for [`SoiError::NotFound`].
    pub fn not_found(message: impl Into<String>) -> Self {
        SoiError::NotFound(message.into())
    }
}

impl fmt::Display for SoiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SoiError::Io(e) => write!(f, "I/O error: {e}"),
            SoiError::Parse { line, message } => {
                if *line == 0 {
                    write!(f, "parse error: {message}")
                } else {
                    write!(f, "parse error at line {line}: {message}")
                }
            }
            SoiError::InvalidInput(m) => write!(f, "invalid input: {m}"),
            SoiError::NotFound(m) => write!(f, "not found: {m}"),
        }
    }
}

impl std::error::Error for SoiError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SoiError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SoiError {
    fn from(e: std::io::Error) -> Self {
        SoiError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(
            SoiError::invalid("epsilon must be positive").to_string(),
            "invalid input: epsilon must be positive"
        );
        assert_eq!(
            SoiError::parse(3, "expected 4 fields").to_string(),
            "parse error at line 3: expected 4 fields"
        );
        assert_eq!(
            SoiError::parse(0, "empty file").to_string(),
            "parse error: empty file"
        );
        assert_eq!(
            SoiError::not_found("street 7").to_string(),
            "not found: street 7"
        );
    }

    #[test]
    fn io_error_converts_and_chains() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let err: SoiError = io.into();
        assert!(err.to_string().contains("gone"));
        assert!(std::error::Error::source(&err).is_some());
    }
}
