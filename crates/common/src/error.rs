//! The workspace error type: structured, categorized, with source-chain
//! context (file path, record number, field) and stable CLI exit codes.
//!
//! Every failure belongs to an [`ErrorCategory`], which maps to the exit
//! code the CLI uses (see [`ErrorCategory::exit_code`]):
//!
//! | category | meaning | exit code |
//! |---|---|---|
//! | [`ErrorCategory::Usage`] | invalid arguments / API parameters | 2 |
//! | [`ErrorCategory::Data`] | malformed or corrupt data | 3 |
//! | [`ErrorCategory::NotFound`] | referenced entity missing | 4 |
//! | [`ErrorCategory::Io`] | OS-level I/O failure | 1 |
//!
//! Errors raised deep in a loader carry only what that layer knows (a line
//! number, a field name); outer layers attach the file path and operation
//! via [`ResultExt`], so a single log line is enough to locate the record:
//!
//! ```text
//! error: loading dataset "data/london": pois.tsv: record 17, field `weight`: invalid weight: -3 is negative
//! ```

use std::fmt;
use std::path::{Path, PathBuf};

/// Result alias used across the workspace.
pub type Result<T> = std::result::Result<T, SoiError>;

/// Broad failure categories with stable CLI exit codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorCategory {
    /// Invalid usage: bad CLI arguments or invalid API parameters.
    Usage,
    /// Malformed or corrupt data: parse failures and validation rejections.
    Data,
    /// A referenced entity (street, file, keyword) does not exist.
    NotFound,
    /// An OS-level I/O failure (permissions, disk, encoding at the OS edge).
    Io,
}

impl ErrorCategory {
    /// The stable process exit code for this category.
    pub fn exit_code(self) -> i32 {
        match self {
            ErrorCategory::Usage => 2,
            ErrorCategory::Data => 3,
            ErrorCategory::NotFound => 4,
            ErrorCategory::Io => 1,
        }
    }
}

impl fmt::Display for ErrorCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ErrorCategory::Usage => "usage",
            ErrorCategory::Data => "data",
            ErrorCategory::NotFound => "not-found",
            ErrorCategory::Io => "io",
        };
        f.write_str(s)
    }
}

/// The validation rule a record violated (ingest-time data hygiene).
///
/// Used both as an error detail in [`SoiError::Validation`] and as the
/// counter key of lenient-load reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValidationKind {
    /// A coordinate is NaN or infinite.
    NonFiniteCoordinate,
    /// A weight is NaN, infinite, or negative.
    InvalidWeight,
    /// A segment's endpoints coincide (zero length).
    ZeroLengthSegment,
    /// A record references a node/street/segment id that does not exist.
    DanglingReference,
    /// A keyword id is outside the vocabulary range.
    KeywordOutOfRange,
    /// A record has the wrong shape (field count, unparsable number).
    MalformedRecord,
}

impl ValidationKind {
    /// All kinds, for exhaustive reporting.
    pub const ALL: [ValidationKind; 6] = [
        ValidationKind::NonFiniteCoordinate,
        ValidationKind::InvalidWeight,
        ValidationKind::ZeroLengthSegment,
        ValidationKind::DanglingReference,
        ValidationKind::KeywordOutOfRange,
        ValidationKind::MalformedRecord,
    ];

    /// A short stable name (used in reports and logs).
    pub fn name(self) -> &'static str {
        match self {
            ValidationKind::NonFiniteCoordinate => "non-finite-coordinate",
            ValidationKind::InvalidWeight => "invalid-weight",
            ValidationKind::ZeroLengthSegment => "zero-length-segment",
            ValidationKind::DanglingReference => "dangling-reference",
            ValidationKind::KeywordOutOfRange => "keyword-out-of-range",
            ValidationKind::MalformedRecord => "malformed-record",
        }
    }
}

impl fmt::Display for ValidationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Errors produced by the streets-of-interest crates.
#[derive(Debug)]
pub enum SoiError {
    /// An I/O failure while reading or writing, with the path if known.
    Io {
        /// The underlying OS error.
        source: std::io::Error,
        /// The file involved, when known.
        path: Option<PathBuf>,
    },
    /// A structurally malformed file: bad header, truncated section,
    /// unparsable record.
    Parse {
        /// The file involved, when known.
        file: Option<PathBuf>,
        /// 1-based line number of the offending record (0 if unknown).
        line: usize,
        /// The field within the record, when known.
        field: Option<&'static str>,
        /// Human-readable description of the problem.
        message: String,
    },
    /// A well-formed record with semantically invalid content.
    Validation {
        /// The violated rule.
        kind: ValidationKind,
        /// The file involved, when known.
        file: Option<PathBuf>,
        /// 1-based record number (line), 0 if unknown.
        record: usize,
        /// The field within the record, when known.
        field: Option<&'static str>,
        /// Human-readable description of the problem.
        message: String,
    },
    /// An invalid argument or inconsistent input to an API.
    InvalidInput(String),
    /// A referenced entity does not exist.
    NotFound(String),
    /// A lower-level error annotated with what the caller was doing.
    Context {
        /// The operation being performed (e.g. `loading dataset "x"`).
        context: String,
        /// The underlying error.
        source: Box<SoiError>,
    },
}

impl SoiError {
    /// Convenience constructor for [`SoiError::InvalidInput`].
    pub fn invalid(message: impl Into<String>) -> Self {
        SoiError::InvalidInput(message.into())
    }

    /// Convenience constructor for [`SoiError::Parse`] (path/field unknown).
    pub fn parse(line: usize, message: impl Into<String>) -> Self {
        SoiError::Parse {
            file: None,
            line,
            field: None,
            message: message.into(),
        }
    }

    /// Convenience constructor for [`SoiError::Parse`] with a field name.
    pub fn parse_field(line: usize, field: &'static str, message: impl Into<String>) -> Self {
        SoiError::Parse {
            file: None,
            line,
            field: Some(field),
            message: message.into(),
        }
    }

    /// Convenience constructor for [`SoiError::NotFound`].
    pub fn not_found(message: impl Into<String>) -> Self {
        SoiError::NotFound(message.into())
    }

    /// Convenience constructor for [`SoiError::Validation`]
    /// (position unknown; attach it with [`SoiError::at_record`]).
    pub fn validation(kind: ValidationKind, message: impl Into<String>) -> Self {
        SoiError::Validation {
            kind,
            file: None,
            record: 0,
            field: None,
            message: message.into(),
        }
    }

    /// Convenience constructor for [`SoiError::Io`] with a path.
    pub fn io(source: std::io::Error, path: impl Into<PathBuf>) -> Self {
        SoiError::Io {
            source,
            path: Some(path.into()),
        }
    }

    /// The broad category of this error (drills through [`SoiError::Context`]).
    pub fn category(&self) -> ErrorCategory {
        match self {
            SoiError::Io { source, .. } => {
                if source.kind() == std::io::ErrorKind::NotFound {
                    ErrorCategory::NotFound
                } else {
                    ErrorCategory::Io
                }
            }
            SoiError::Parse { .. } | SoiError::Validation { .. } => ErrorCategory::Data,
            SoiError::InvalidInput(_) => ErrorCategory::Usage,
            SoiError::NotFound(_) => ErrorCategory::NotFound,
            SoiError::Context { source, .. } => source.category(),
        }
    }

    /// Whether this error is (or wraps) a broken-pipe I/O failure — the
    /// normal outcome of a downstream reader like `head` closing stdout
    /// early, which a CLI should treat as a quiet success.
    pub fn is_broken_pipe(&self) -> bool {
        match self {
            SoiError::Io { source, .. } => source.kind() == std::io::ErrorKind::BrokenPipe,
            SoiError::Context { source, .. } => source.is_broken_pipe(),
            _ => false,
        }
    }

    /// The validation rule behind this error, if it is (or wraps) a
    /// validation rejection.
    pub fn validation_kind(&self) -> Option<ValidationKind> {
        match self {
            SoiError::Validation { kind, .. } => Some(*kind),
            SoiError::Context { source, .. } => source.validation_kind(),
            _ => None,
        }
    }

    /// Attaches a file path to the innermost positional error (Io, Parse, or
    /// Validation) that does not have one yet; other variants gain a
    /// [`SoiError::Context`] frame naming the file.
    pub fn at_path(self, path: impl AsRef<Path>) -> Self {
        let p = path.as_ref();
        match self {
            SoiError::Io { source, path: None } => SoiError::Io {
                source,
                path: Some(p.to_path_buf()),
            },
            SoiError::Parse {
                file: None,
                line,
                field,
                message,
            } => SoiError::Parse {
                file: Some(p.to_path_buf()),
                line,
                field,
                message,
            },
            SoiError::Validation {
                kind,
                file: None,
                record,
                field,
                message,
            } => SoiError::Validation {
                kind,
                file: Some(p.to_path_buf()),
                record,
                field,
                message,
            },
            SoiError::Context { context, source } => SoiError::Context {
                context,
                source: Box::new(source.at_path(p)),
            },
            other => SoiError::Context {
                context: p.display().to_string(),
                source: Box::new(other),
            },
        }
    }

    /// Sets the record (line) number on a positional error that lacks one.
    pub fn at_record(self, record_no: usize) -> Self {
        match self {
            SoiError::Parse {
                file,
                line: 0,
                field,
                message,
            } => SoiError::Parse {
                file,
                line: record_no,
                field,
                message,
            },
            SoiError::Validation {
                kind,
                file,
                record: 0,
                field,
                message,
            } => SoiError::Validation {
                kind,
                file,
                record: record_no,
                field,
                message,
            },
            other => other,
        }
    }

    /// Sets the field name on a positional error that lacks one.
    pub fn in_field(self, name: &'static str) -> Self {
        match self {
            SoiError::Parse {
                file,
                line,
                field: None,
                message,
            } => SoiError::Parse {
                file,
                line,
                field: Some(name),
                message,
            },
            SoiError::Validation {
                kind,
                file,
                record,
                field: None,
                message,
            } => SoiError::Validation {
                kind,
                file,
                record,
                field: Some(name),
                message,
            },
            other => other,
        }
    }

    /// Wraps this error with a description of the failed operation.
    pub fn with_context(self, context: impl Into<String>) -> Self {
        SoiError::Context {
            context: context.into(),
            source: Box::new(self),
        }
    }
}

fn write_position(
    f: &mut fmt::Formatter<'_>,
    file: &Option<PathBuf>,
    line: usize,
    field: Option<&'static str>,
) -> fmt::Result {
    if let Some(file) = file {
        write!(f, "{}: ", file.display())?;
    }
    if line > 0 {
        write!(f, "record {line}")?;
        if let Some(field) = field {
            write!(f, ", field `{field}`")?;
        }
        write!(f, ": ")?;
    } else if let Some(field) = field {
        write!(f, "field `{field}`: ")?;
    }
    Ok(())
}

impl fmt::Display for SoiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SoiError::Io { source, path } => match path {
                Some(p) => write!(f, "I/O error on {}: {source}", p.display()),
                None => write!(f, "I/O error: {source}"),
            },
            SoiError::Parse {
                file,
                line,
                field,
                message,
            } => {
                write!(f, "parse error: ")?;
                write_position(f, file, *line, *field)?;
                write!(f, "{message}")
            }
            SoiError::Validation {
                kind,
                file,
                record,
                field,
                message,
            } => {
                write!(f, "invalid record ({kind}): ")?;
                write_position(f, file, *record, *field)?;
                write!(f, "{message}")
            }
            SoiError::InvalidInput(m) => write!(f, "invalid input: {m}"),
            SoiError::NotFound(m) => write!(f, "not found: {m}"),
            SoiError::Context { context, source } => write!(f, "{context}: {source}"),
        }
    }
}

impl std::error::Error for SoiError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SoiError::Io { source, .. } => Some(source),
            SoiError::Context { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SoiError {
    fn from(e: std::io::Error) -> Self {
        SoiError::Io {
            source: e,
            path: None,
        }
    }
}

/// Context-attachment helpers for `Result`s carrying (or convertible to)
/// [`SoiError`].
pub trait ResultExt<T> {
    /// On error, attach the file path (see [`SoiError::at_path`]).
    fn at_path(self, path: impl AsRef<Path>) -> Result<T>;
    /// On error, wrap with an operation description (lazily built).
    fn context<S: Into<String>>(self, f: impl FnOnce() -> S) -> Result<T>;
}

impl<T, E: Into<SoiError>> ResultExt<T> for std::result::Result<T, E> {
    fn at_path(self, path: impl AsRef<Path>) -> Result<T> {
        self.map_err(|e| e.into().at_path(path))
    }

    fn context<S: Into<String>>(self, f: impl FnOnce() -> S) -> Result<T> {
        self.map_err(|e| e.into().with_context(f().into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(
            SoiError::invalid("epsilon must be positive").to_string(),
            "invalid input: epsilon must be positive"
        );
        assert_eq!(
            SoiError::parse(3, "expected 4 fields").to_string(),
            "parse error: record 3: expected 4 fields"
        );
        assert_eq!(
            SoiError::parse(0, "empty file").to_string(),
            "parse error: empty file"
        );
        assert_eq!(
            SoiError::not_found("street 7").to_string(),
            "not found: street 7"
        );
    }

    #[test]
    fn io_error_converts_and_chains() {
        let io = std::io::Error::new(std::io::ErrorKind::PermissionDenied, "nope");
        let err: SoiError = io.into();
        assert!(err.to_string().contains("nope"));
        assert!(std::error::Error::source(&err).is_some());
        assert_eq!(err.category(), ErrorCategory::Io);
    }

    #[test]
    fn io_not_found_categorises_as_not_found() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let err: SoiError = io.into();
        assert_eq!(err.category(), ErrorCategory::NotFound);
    }

    #[test]
    fn categories_and_exit_codes() {
        assert_eq!(SoiError::invalid("x").category().exit_code(), 2);
        assert_eq!(SoiError::parse(1, "x").category().exit_code(), 3);
        assert_eq!(
            SoiError::validation(ValidationKind::InvalidWeight, "x")
                .category()
                .exit_code(),
            3
        );
        assert_eq!(SoiError::not_found("x").category().exit_code(), 4);
        let io: SoiError = std::io::Error::other("disk").into();
        assert_eq!(io.category().exit_code(), 1);
    }

    #[test]
    fn context_preserves_category_and_chains() {
        let err = SoiError::parse(9, "bad x")
            .at_path("pois.tsv")
            .with_context("loading dataset \"london\"");
        assert_eq!(err.category(), ErrorCategory::Data);
        let text = err.to_string();
        assert!(text.contains("loading dataset"), "{text}");
        assert!(text.contains("pois.tsv"), "{text}");
        assert!(text.contains("record 9"), "{text}");
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn positional_attachments() {
        let err = SoiError::validation(ValidationKind::NonFiniteCoordinate, "x is NaN")
            .at_record(17)
            .in_field("x")
            .at_path("photos.tsv");
        let text = err.to_string();
        assert!(text.contains("photos.tsv"), "{text}");
        assert!(text.contains("record 17"), "{text}");
        assert!(text.contains("field `x`"), "{text}");
        assert_eq!(
            err.validation_kind(),
            Some(ValidationKind::NonFiniteCoordinate)
        );
    }

    #[test]
    fn at_path_does_not_overwrite() {
        let err = SoiError::parse(1, "x").at_path("a.tsv").at_path("b.tsv");
        let text = err.to_string();
        // First path wins; the second becomes an outer context frame.
        assert!(text.contains("a.tsv"), "{text}");
        assert!(text.contains("b.tsv"), "{text}");
    }

    #[test]
    fn result_ext_helpers() {
        let r: std::result::Result<(), std::io::Error> = Err(std::io::Error::other("boom"));
        let e = r.context(|| "writing report").unwrap_err();
        assert!(e.to_string().starts_with("writing report:"));

        let r: Result<()> = Err(SoiError::parse(2, "bad"));
        let e = ResultExt::at_path(r, "f.tsv").unwrap_err();
        assert!(e.to_string().contains("f.tsv"));
    }

    #[test]
    fn validation_kind_names_are_stable() {
        for kind in ValidationKind::ALL {
            assert!(!kind.name().is_empty());
        }
        assert_eq!(
            ValidationKind::ZeroLengthSegment.name(),
            "zero-length-segment"
        );
    }
}
