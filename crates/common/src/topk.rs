//! Deterministic top-k selection helpers.
//!
//! All rankings in the system break ties the same way: higher score first,
//! then lower id. Centralising the selection logic keeps the SOI algorithm,
//! its baseline, and the brute-force reference bit-for-bit comparable.

use crate::ord::OrderedF64;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An item with a score, ordered by (score desc, id asc) for ranking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScoredItem<I> {
    /// The item's ranking score.
    pub score: OrderedF64,
    /// The item's identifier (ties broken by ascending id).
    pub id: I,
}

impl<I: Ord> ScoredItem<I> {
    /// Creates a scored item.
    pub fn new(id: I, score: f64) -> Self {
        Self {
            score: OrderedF64::new(score),
            id,
        }
    }

    /// Ranking comparison: higher score first, then smaller id.
    pub fn rank_cmp(&self, other: &Self) -> Ordering {
        other
            .score
            .cmp(&self.score)
            .then_with(|| self.id.cmp(&other.id))
    }
}

/// Returns the top `k` items by (score desc, id asc), in rank order.
///
/// Runs in `O(n log k)` using a bounded heap; stable and deterministic.
/// If fewer than `k` items exist, all are returned.
pub fn top_k_by_score<I, It>(items: It, k: usize) -> Vec<ScoredItem<I>>
where
    I: Ord + Copy,
    It: IntoIterator<Item = ScoredItem<I>>,
{
    if k == 0 {
        return Vec::new();
    }

    // Max-heap keyed by "worst first" so the heap root is the current k-th
    // ranked element and can be evicted cheaply.
    struct WorstFirst<I>(ScoredItem<I>);
    impl<I: Ord> PartialEq for WorstFirst<I> {
        fn eq(&self, other: &Self) -> bool {
            self.0.rank_cmp(&other.0) == Ordering::Equal
        }
    }
    impl<I: Ord> Eq for WorstFirst<I> {}
    impl<I: Ord> PartialOrd for WorstFirst<I> {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl<I: Ord> Ord for WorstFirst<I> {
        fn cmp(&self, other: &Self) -> Ordering {
            // rank_cmp orders best-first (Less = better), so it already makes
            // the worst-ranked item the max-heap root.
            self.0.rank_cmp(&other.0)
        }
    }

    let mut heap: BinaryHeap<WorstFirst<I>> = BinaryHeap::with_capacity(k + 1);
    for item in items {
        if heap.len() < k {
            heap.push(WorstFirst(item));
        } else if let Some(worst) = heap.peek() {
            if item.rank_cmp(&worst.0) == Ordering::Less {
                heap.pop();
                heap.push(WorstFirst(item));
            }
        }
    }

    let mut out: Vec<ScoredItem<I>> = heap.into_iter().map(|w| w.0).collect();
    out.sort_by(|a, b| a.rank_cmp(b));
    out
}

/// Incrementally tracks the k-th largest score of a mutable id→score map.
///
/// Scores may be inserted or increased (monotone updates are the SOI
/// algorithm's use case, but arbitrary re-scoring works too). The structure
/// keeps the current top-k in one ordered set and the remainder in another;
/// every update is `O(log n)` and [`TopKTracker::threshold`] is `O(1)`-ish
/// (first/last lookups in a B-tree).
///
/// ```
/// use soi_common::TopKTracker;
///
/// let mut tracker = TopKTracker::<u32>::new(2);
/// tracker.update(1, None, 5.0);
/// assert_eq!(tracker.threshold(), 0.0); // fewer than k ids
/// tracker.update(2, None, 3.0);
/// assert_eq!(tracker.threshold(), 3.0); // 2nd largest of {5, 3}
/// tracker.update(2, Some(3.0), 9.0);
/// assert_eq!(tracker.threshold(), 5.0); // 2nd largest of {5, 9}
/// ```
#[derive(Debug, Clone)]
pub struct TopKTracker<I> {
    k: usize,
    top: std::collections::BTreeSet<(OrderedF64, I)>,
    rest: std::collections::BTreeSet<(OrderedF64, I)>,
}

impl<I: Ord + Copy> TopKTracker<I> {
    /// Creates a tracker for the k-th largest score.
    ///
    /// # Panics
    /// Panics if `k` is 0.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "k must be at least 1");
        Self {
            k,
            top: Default::default(),
            rest: Default::default(),
        }
    }

    /// Sets `id`'s score to `new`, where `old` is its previous score (None
    /// if the id is new). Passing a wrong `old` is a logic error.
    pub fn update(&mut self, id: I, old: Option<f64>, new: f64) {
        if let Some(old) = old {
            let key = (OrderedF64::new(old), id);
            if !self.top.remove(&key) {
                let removed = self.rest.remove(&key);
                debug_assert!(removed, "old score not found");
            }
        }
        self.rest.insert((OrderedF64::new(new), id));
        self.rebalance();
    }

    fn rebalance(&mut self) {
        while self.top.len() < self.k {
            match self.rest.pop_last() {
                Some(max) => {
                    self.top.insert(max);
                }
                None => return,
            }
        }
        while let (Some(&rmax), Some(&tmin)) = (self.rest.last(), self.top.first()) {
            if rmax > tmin {
                self.rest.pop_last();
                self.top.pop_first();
                self.rest.insert(tmin);
                self.top.insert(rmax);
            } else {
                break;
            }
        }
    }

    /// The k-th largest score, or 0.0 while fewer than k ids are tracked.
    pub fn threshold(&self) -> f64 {
        if self.top.len() < self.k {
            0.0
        } else {
            self.top.first().map_or(0.0, |s| s.0.get())
        }
    }

    /// Number of tracked ids.
    pub fn len(&self) -> usize {
        self.top.len() + self.rest.len()
    }

    /// Returns true if no ids are tracked.
    pub fn is_empty(&self) -> bool {
        self.top.is_empty() && self.rest.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(pairs: &[(u32, f64)]) -> Vec<ScoredItem<u32>> {
        pairs
            .iter()
            .map(|&(id, s)| ScoredItem::new(id, s))
            .collect()
    }

    #[test]
    fn selects_highest_scores_in_order() {
        let top = top_k_by_score(items(&[(1, 0.5), (2, 0.9), (3, 0.1), (4, 0.7)]), 2);
        let ids: Vec<u32> = top.iter().map(|s| s.id).collect();
        assert_eq!(ids, vec![2, 4]);
    }

    #[test]
    fn ties_broken_by_ascending_id() {
        let top = top_k_by_score(items(&[(9, 1.0), (3, 1.0), (5, 1.0)]), 2);
        let ids: Vec<u32> = top.iter().map(|s| s.id).collect();
        assert_eq!(ids, vec![3, 5]);
    }

    #[test]
    fn k_larger_than_input_returns_all() {
        let top = top_k_by_score(items(&[(1, 0.2), (2, 0.8)]), 10);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].id, 2);
    }

    #[test]
    fn k_zero_returns_empty() {
        assert!(top_k_by_score(items(&[(1, 1.0)]), 0).is_empty());
    }

    #[test]
    fn tracker_threshold_matches_recomputation() {
        let mut tracker = TopKTracker::<u32>::new(3);
        let mut scores: std::collections::HashMap<u32, f64> = Default::default();
        // Deterministic pseudo-random updates.
        let mut x = 12345u64;
        for step in 0..500 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let id = (x >> 33) as u32 % 40;
            let bump = ((x >> 11) % 1000) as f64 / 100.0;
            let old = scores.get(&id).copied();
            let new = old.unwrap_or(0.0) + bump;
            scores.insert(id, new);
            tracker.update(id, old, new);

            let mut vals: Vec<f64> = scores.values().copied().collect();
            vals.sort_by(|a, b| b.total_cmp(a));
            let want = if vals.len() >= 3 { vals[2] } else { 0.0 };
            assert_eq!(tracker.threshold(), want, "step {step}");
        }
        assert_eq!(tracker.len(), scores.len());
        assert!(!tracker.is_empty());
    }

    #[test]
    fn tracker_under_k_reports_zero() {
        let mut t = TopKTracker::<u32>::new(2);
        assert_eq!(t.threshold(), 0.0);
        t.update(1, None, 5.0);
        assert_eq!(t.threshold(), 0.0);
        t.update(2, None, 3.0);
        assert_eq!(t.threshold(), 3.0);
        t.update(2, Some(3.0), 7.0);
        assert_eq!(t.threshold(), 5.0);
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn tracker_rejects_k_zero() {
        TopKTracker::<u32>::new(0);
    }

    #[test]
    fn matches_full_sort_on_larger_input() {
        let data: Vec<ScoredItem<u32>> = (0..200)
            .map(|i| ScoredItem::new(i, ((i * 7919) % 101) as f64 / 101.0))
            .collect();
        let k = 17;
        let via_topk = top_k_by_score(data.clone(), k);
        let mut full = data;
        full.sort_by(|a, b| a.rank_cmp(b));
        full.truncate(k);
        assert_eq!(via_topk, full);
    }
}
