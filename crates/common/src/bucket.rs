//! Stable counting (bucket) sort for densely numbered keys.
//!
//! The offline index builds sort packed integer entries whose significant
//! digits are *dense* ids — grid cells, interned keywords, POI/segment ids.
//! A stable counting sort places `n` items into `k` buckets in `O(n + k)`
//! with two linear passes, far cheaper than an `O(n log n)` comparison sort
//! when `k` is comparable to `n`. Because each pass is stable, chaining
//! passes from the least- to the most-significant digit yields a full
//! lexicographic sort (LSD radix), and because the placement is a pure
//! function of the input order, the result is deterministic.

/// Stably sorts `items` by `bucket_of` into `num_buckets` dense buckets.
///
/// Items mapping to the same bucket keep their relative input order, so a
/// pre-sorted minor digit survives the pass. Returns the reordered items.
///
/// # Panics
/// Panics if `bucket_of` returns a value `>= num_buckets`.
pub fn bucket_sort_stable<T: Copy + Default, F: Fn(&T) -> u32>(
    items: &[T],
    num_buckets: u32,
    bucket_of: F,
) -> Vec<T> {
    debug_assert!(u32::try_from(items.len()).is_ok(), "too many items");
    let mut counts = vec![0u32; num_buckets as usize];
    for it in items {
        counts[bucket_of(it) as usize] += 1;
    }
    // Exclusive prefix sum: counts[b] becomes bucket b's write cursor.
    let mut sum = 0u32;
    for c in counts.iter_mut() {
        let n = *c;
        *c = sum;
        sum += n;
    }
    let mut out = vec![T::default(); items.len()];
    for it in items {
        let b = bucket_of(it) as usize;
        out[counts[b] as usize] = *it;
        counts[b] += 1;
    }
    out
}

/// True when a counting sort over `num_buckets` is a sensible replacement
/// for a comparison sort of `len` items: the histogram must not dwarf the
/// data (degenerate for huge sparse key spaces and tiny inputs).
pub fn bucket_sort_worthwhile(len: usize, num_buckets: usize) -> bool {
    u32::try_from(len).is_ok()
        && u32::try_from(num_buckets).is_ok()
        && num_buckets <= 8 * len + 1024
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_by_bucket_and_is_stable() {
        let items: Vec<(u32, u32)> = vec![(2, 0), (0, 1), (2, 2), (1, 3), (0, 4), (2, 5)];
        let out = bucket_sort_stable(&items, 3, |&(b, _)| b);
        assert_eq!(out, vec![(0, 1), (0, 4), (1, 3), (2, 0), (2, 2), (2, 5)]);
    }

    #[test]
    fn chained_passes_sort_lexicographically() {
        // LSD radix over (hi, lo) packed into u64: sort by lo, then by hi.
        let mut x: u64 = 0x2545_F491_4F6C_DD1D;
        let mut items: Vec<u64> = (0..2000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 32 & 0xFF) << 32 | (x & 0x3F)
            })
            .collect();
        let lo_pass = bucket_sort_stable(&items, 64, |&e| e as u32 & 0x3F);
        let sorted = bucket_sort_stable(&lo_pass, 256, |&e| (e >> 32) as u32);
        items.sort_unstable();
        assert_eq!(sorted, items);
    }

    #[test]
    fn empty_and_single_bucket() {
        assert_eq!(
            bucket_sort_stable::<u32, _>(&[], 4, |&x| x),
            Vec::<u32>::new()
        );
        let out = bucket_sort_stable(&[7u32, 3, 5], 1, |_| 0);
        assert_eq!(out, vec![7, 3, 5]);
    }

    #[test]
    fn worthwhile_heuristic() {
        assert!(bucket_sort_worthwhile(100_000, 50_000));
        assert!(bucket_sort_worthwhile(10, 1000));
        assert!(!bucket_sort_worthwhile(10, 2000));
        assert!(!bucket_sort_worthwhile(usize::MAX, 10));
    }
}
