//! Deterministic data-parallel building blocks.
//!
//! Offline construction (index builds, bulk loads) and the batched query
//! engine fan work out over scoped threads. Everything here is designed so
//! that **results are independent of the thread count**: inputs are split
//! into contiguous chunks, per-chunk results are combined in chunk order,
//! and the parallel sort is a stable merge sort whose output is identical to
//! `slice::sort_by`. A build with 8 threads is therefore byte-identical to a
//! build with 1.
//!
//! The thread count resolves from an explicit request, the `SOI_THREADS`
//! environment variable, or [`std::thread::available_parallelism`], in that
//! order.

use crossbeam::thread as cb;
use std::cmp::Ordering;

/// Upper bound on worker threads, a guard against absurd requests.
pub const MAX_THREADS: usize = 256;

/// Resolves the effective thread count.
///
/// Priority: `requested` (if `Some` and non-zero) → the `SOI_THREADS`
/// environment variable → the machine's available parallelism. The result is
/// clamped to `1..=MAX_THREADS`. Thread count never affects results, only
/// wall-clock time.
pub fn effective_threads(requested: Option<usize>) -> usize {
    let n = match requested {
        Some(n) if n > 0 => n,
        _ => std::env::var("SOI_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            }),
    };
    n.clamp(1, MAX_THREADS)
}

/// Splits `len` items into at most `threads` contiguous chunks of
/// near-equal size, returning the `(start, end)` ranges in order.
pub fn chunk_ranges(len: usize, threads: usize) -> Vec<(usize, usize)> {
    let threads = threads.clamp(1, MAX_THREADS);
    if len == 0 {
        return Vec::new();
    }
    let chunks = threads.min(len);
    let base = len / chunks;
    let extra = len % chunks;
    let mut out = Vec::with_capacity(chunks);
    let mut start = 0;
    for i in 0..chunks {
        let size = base + usize::from(i < extra);
        out.push((start, start + size));
        start += size;
    }
    out
}

/// Runs `f` over contiguous chunks of `items` on `threads` scoped threads
/// and returns the per-chunk results **in chunk order**.
///
/// `f` receives `(chunk_start_index, chunk_slice)`. With one thread (or a
/// single chunk) it runs inline with no thread spawned, so the sequential
/// path is zero-overhead. A panicking chunk propagates the panic.
pub fn par_chunk_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    let ranges = chunk_ranges(items.len(), threads);
    if ranges.len() <= 1 {
        return ranges
            .into_iter()
            .map(|(s, e)| f(s, &items[s..e]))
            .collect();
    }
    let mut slots: Vec<Option<R>> = ranges.iter().map(|_| None).collect();
    let result = cb::scope(|scope| {
        for (slot, &(s, e)) in slots.iter_mut().zip(ranges.iter()) {
            let f = &f;
            scope.spawn(move |_| {
                *slot = Some(f(s, &items[s..e]));
            });
        }
    });
    if let Err(panic) = result {
        std::panic::resume_unwind(panic);
    }
    slots
        .into_iter()
        .map(|s| match s {
            Some(r) => r,
            // Unreachable: every spawned chunk either filled its slot or
            // panicked (propagated above).
            None => unreachable!("chunk worker exited without a result"),
        })
        .collect()
}

/// Runs `f` on disjoint mutable chunks of `data` (each of `chunk_size`
/// elements, the last possibly shorter) across `threads` scoped threads.
///
/// Chunks are disjoint `&mut` slices, so no synchronisation is needed; the
/// chunk index is passed alongside. Results are discarded (mutate in place).
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_size: usize, threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_size > 0, "chunk_size must be positive");
    if threads <= 1 || data.len() <= chunk_size {
        for (i, chunk) in data.chunks_mut(chunk_size).enumerate() {
            f(i, chunk);
        }
        return;
    }
    let result = cb::scope(|scope| {
        // Hand each spawned worker every `threads`-th chunk (round-robin) so
        // the chunk count need not match the thread count.
        let chunks: Vec<(usize, &mut [T])> = data.chunks_mut(chunk_size).enumerate().collect();
        let mut per_worker: Vec<Vec<(usize, &mut [T])>> =
            (0..threads).map(|_| Vec::new()).collect();
        for (i, chunk) in chunks {
            per_worker[i % threads].push((i, chunk));
        }
        for worker_chunks in per_worker {
            let f = &f;
            scope.spawn(move |_| {
                for (i, chunk) in worker_chunks {
                    f(i, chunk);
                }
            });
        }
    });
    if let Err(panic) = result {
        std::panic::resume_unwind(panic);
    }
}

/// Stable parallel merge sort: output is **identical** to `v.sort_by(cmp)`
/// for every thread count (stability plus a deterministic comparator fully
/// determine the permutation).
///
/// Chunks are sorted concurrently with the standard library's stable sort,
/// then merged pairwise with a left-biased (stable) merge. Falls back to
/// `sort_by` for small inputs or one thread.
pub fn par_sort_by<T, F>(v: &mut Vec<T>, threads: usize, cmp: F)
where
    T: Send,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    const MIN_PARALLEL_LEN: usize = 8192;
    let threads = threads.clamp(1, MAX_THREADS);
    if threads <= 1 || v.len() < MIN_PARALLEL_LEN {
        v.sort_by(cmp);
        return;
    }
    let ranges = chunk_ranges(v.len(), threads);
    {
        let mut rest: &mut [T] = v.as_mut_slice();
        let mut parts: Vec<&mut [T]> = Vec::with_capacity(ranges.len());
        for &(s, e) in &ranges {
            let (head, tail) = rest.split_at_mut(e - s);
            parts.push(head);
            rest = tail;
        }
        let result = cb::scope(|scope| {
            for part in parts {
                let cmp = &cmp;
                scope.spawn(move |_| part.sort_by(cmp));
            }
        });
        if let Err(panic) = result {
            std::panic::resume_unwind(panic);
        }
    }
    // Pairwise stable merges of the sorted runs until one run remains.
    let mut runs: Vec<Vec<T>> = Vec::with_capacity(ranges.len());
    let mut drain = std::mem::take(v).into_iter();
    for &(s, e) in &ranges {
        runs.push(drain.by_ref().take(e - s).collect());
    }
    while runs.len() > 1 {
        let mut merged: Vec<Vec<T>> = Vec::with_capacity(runs.len().div_ceil(2));
        let mut it = runs.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => merged.push(stable_merge(a, b, &cmp)),
                None => merged.push(a),
            }
        }
        runs = merged;
    }
    *v = runs.pop().unwrap_or_default();
}

/// Parallel unstable sort for keys under a **total order with no duplicates**
/// (e.g. packed unique integer keys): output is identical to
/// `v.sort_unstable_by(cmp)` and to [`par_sort_by`] for every thread count,
/// because a duplicate-free total order admits exactly one sorted permutation.
///
/// Chunks are sorted concurrently with the standard library's unstable
/// (allocation-free, integer-friendly) sort, then merged pairwise. Falls back
/// to `sort_unstable_by` for small inputs or one thread.
pub fn par_sort_unstable_by<T, F>(v: &mut Vec<T>, threads: usize, cmp: F)
where
    T: Send,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    const MIN_PARALLEL_LEN: usize = 8192;
    let threads = threads.clamp(1, MAX_THREADS);
    if threads <= 1 || v.len() < MIN_PARALLEL_LEN {
        v.sort_unstable_by(cmp);
        return;
    }
    let ranges = chunk_ranges(v.len(), threads);
    {
        let mut rest: &mut [T] = v.as_mut_slice();
        let mut parts: Vec<&mut [T]> = Vec::with_capacity(ranges.len());
        for &(s, e) in &ranges {
            let (head, tail) = rest.split_at_mut(e - s);
            parts.push(head);
            rest = tail;
        }
        let result = cb::scope(|scope| {
            for part in parts {
                let cmp = &cmp;
                scope.spawn(move |_| part.sort_unstable_by(cmp));
            }
        });
        if let Err(panic) = result {
            std::panic::resume_unwind(panic);
        }
    }
    let mut runs: Vec<Vec<T>> = Vec::with_capacity(ranges.len());
    let mut drain = std::mem::take(v).into_iter();
    for &(s, e) in &ranges {
        runs.push(drain.by_ref().take(e - s).collect());
    }
    while runs.len() > 1 {
        let mut merged: Vec<Vec<T>> = Vec::with_capacity(runs.len().div_ceil(2));
        let mut it = runs.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => merged.push(stable_merge(a, b, &cmp)),
                None => merged.push(a),
            }
        }
        runs = merged;
    }
    *v = runs.pop().unwrap_or_default();
}

/// Left-biased merge of two sorted runs (equal elements keep `a` first).
fn stable_merge<T, F: Fn(&T, &T) -> Ordering>(a: Vec<T>, b: Vec<T>, cmp: &F) -> Vec<T> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let mut a = a.into_iter().peekable();
    let mut b = b.into_iter().peekable();
    loop {
        match (a.peek(), b.peek()) {
            (Some(x), Some(y)) => {
                if cmp(x, y) == Ordering::Greater {
                    out.extend(b.next());
                } else {
                    out.extend(a.next());
                }
            }
            (Some(_), None) => {
                out.extend(a);
                break;
            }
            (None, _) => {
                out.extend(b);
                break;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_threads_clamps() {
        assert_eq!(effective_threads(Some(3)), 3);
        assert_eq!(effective_threads(Some(100_000)), MAX_THREADS);
        assert!(effective_threads(None) >= 1);
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        for len in [0usize, 1, 7, 64, 1000] {
            for threads in [1usize, 2, 3, 8, 64] {
                let ranges = chunk_ranges(len, threads);
                let mut expect = 0;
                for &(s, e) in &ranges {
                    assert_eq!(s, expect);
                    assert!(e > s);
                    expect = e;
                }
                assert_eq!(expect, len);
                assert!(ranges.len() <= threads.max(1));
            }
        }
    }

    #[test]
    fn par_chunk_map_preserves_order() {
        let items: Vec<u32> = (0..1000).collect();
        for threads in [1usize, 2, 7] {
            let sums = par_chunk_map(&items, threads, |start, chunk| {
                (start, chunk.iter().sum::<u32>())
            });
            let total: u32 = sums.iter().map(|&(_, s)| s).sum();
            assert_eq!(total, items.iter().sum::<u32>());
            // Chunk order preserved: starts ascending.
            assert!(sums.windows(2).all(|w| w[0].0 < w[1].0));
        }
    }

    #[test]
    fn par_chunks_mut_touches_every_chunk() {
        let mut data = vec![0u32; 100];
        par_chunks_mut(&mut data, 7, 3, |i, chunk| {
            for v in chunk.iter_mut() {
                *v = i as u32 + 1;
            }
        });
        assert!(data.iter().all(|&v| v > 0));
        assert_eq!(data[0], 1);
        assert_eq!(data[99], 100usize.div_ceil(7) as u32);
    }

    #[test]
    fn par_sort_matches_sequential_stable_sort() {
        // Pseudo-random data with many duplicate keys to exercise stability.
        let mut x: u64 = 0x243F_6A88_85A3_08D3;
        let data: Vec<(u32, u32)> = (0..20_000)
            .map(|i| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                ((x % 64) as u32, i)
            })
            .collect();
        let mut want = data.clone();
        want.sort_by_key(|a| a.0); // stable: payload order kept
        for threads in [1usize, 2, 3, 8] {
            let mut got = data.clone();
            par_sort_by(&mut got, threads, |a, b| a.0.cmp(&b.0));
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn par_sort_unstable_matches_sequential_on_unique_keys() {
        let mut x: u64 = 0xB7E1_5162_8AED_2A6A;
        let data: Vec<u64> = (0..20_000u64)
            .map(|i| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x << 20) | i // low bits make every key unique
            })
            .collect();
        let mut want = data.clone();
        want.sort_unstable();
        for threads in [1usize, 2, 3, 8] {
            let mut got = data.clone();
            par_sort_unstable_by(&mut got, threads, |a, b| a.cmp(b));
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn par_sort_small_input() {
        let mut v = vec![3, 1, 2];
        par_sort_by(&mut v, 8, |a, b| a.cmp(b));
        assert_eq!(v, vec![1, 2, 3]);
    }
}
