//! Lightweight timers for per-phase runtime breakdowns.
//!
//! The paper's Figure 4 reports the SOI algorithm's runtime split into three
//! phases (source-list construction, filtering, refinement). [`PhaseTimer`]
//! accumulates wall-clock time per named phase so the experiment harness can
//! reproduce that breakdown.
//!
//! [`PhaseTimer`] is also a trace source: when tracing is enabled
//! (`soi_obs::trace::set_enabled`), every phase entry/exit emits a
//! begin/end event pair, so any algorithm that already times its phases
//! shows them as spans in a Chrome trace for free. Phases are not
//! lexically scoped (a phase closes at the *next* `enter`), hence the
//! `B`/`E` pair form rather than an RAII span.

use std::time::{Duration, Instant};

/// A simple restartable stopwatch.
#[derive(Debug, Clone)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Starts a new stopwatch.
    pub fn start() -> Self {
        Self {
            started: Instant::now(),
        }
    }

    /// Returns the elapsed time since start (or last restart).
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Restarts the stopwatch and returns the time elapsed before restart.
    pub fn lap(&mut self) -> Duration {
        let now = Instant::now();
        let elapsed = now.duration_since(self.started);
        self.started = now;
        elapsed
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}

/// Accumulates wall-clock durations under named phases.
///
/// Phases are identified by `&'static str` labels; a phase may be entered
/// multiple times and its durations accumulate. Phase order of first entry is
/// preserved for reporting.
#[derive(Debug, Default, Clone)]
pub struct PhaseTimer {
    phases: Vec<(&'static str, Duration)>,
    current: Option<(&'static str, Instant)>,
}

impl PhaseTimer {
    /// Creates an empty timer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enters `phase`, closing any currently open phase first.
    pub fn enter(&mut self, phase: &'static str) {
        self.finish_current();
        soi_obs::trace::begin(phase);
        self.current = Some((phase, Instant::now()));
    }

    /// Closes the currently open phase, if any.
    pub fn stop(&mut self) {
        self.finish_current();
    }

    fn finish_current(&mut self) {
        if let Some((phase, started)) = self.current.take() {
            soi_obs::trace::end(phase);
            let elapsed = started.elapsed();
            if let Some(entry) = self.phases.iter_mut().find(|(name, _)| *name == phase) {
                entry.1 += elapsed;
            } else {
                self.phases.push((phase, elapsed));
            }
        }
    }

    /// Returns the accumulated duration of `phase` (zero if never entered).
    pub fn duration(&self, phase: &str) -> Duration {
        self.phases
            .iter()
            .find(|(name, _)| *name == phase)
            .map(|(_, d)| *d)
            .unwrap_or_default()
    }

    /// Returns all phases in first-entry order with accumulated durations.
    ///
    /// The currently open phase (if any) is not included until closed.
    pub fn phases(&self) -> &[(&'static str, Duration)] {
        &self.phases
    }

    /// Total accumulated time across all closed phases.
    pub fn total(&self) -> Duration {
        self.phases.iter().map(|(_, d)| *d).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread::sleep;

    #[test]
    fn stopwatch_measures_time() {
        let mut sw = Stopwatch::start();
        sleep(Duration::from_millis(5));
        let lap = sw.lap();
        assert!(lap >= Duration::from_millis(4));
        // After lap the stopwatch restarts.
        assert!(sw.elapsed() < lap + Duration::from_millis(50));
    }

    #[test]
    fn phase_timer_accumulates_and_preserves_order() {
        let mut t = PhaseTimer::new();
        t.enter("build");
        sleep(Duration::from_millis(2));
        t.enter("filter");
        sleep(Duration::from_millis(2));
        t.enter("build");
        sleep(Duration::from_millis(2));
        t.stop();

        let names: Vec<&str> = t.phases().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["build", "filter"]);
        assert!(t.duration("build") >= Duration::from_millis(3));
        assert!(t.duration("filter") >= Duration::from_millis(1));
        assert_eq!(t.duration("missing"), Duration::ZERO);
        assert!(t.total() >= t.duration("build"));
    }

    #[test]
    fn entering_new_phase_closes_previous() {
        let mut t = PhaseTimer::new();
        t.enter("a");
        t.enter("b");
        t.stop();
        assert_eq!(t.phases().len(), 2);
    }

    #[test]
    fn stop_without_enter_is_noop() {
        let mut t = PhaseTimer::new();
        t.stop();
        assert!(t.phases().is_empty());
        assert_eq!(t.total(), Duration::ZERO);
    }
}
