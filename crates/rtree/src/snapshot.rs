//! Snapshot encode/decode for the R-tree's structural skeleton.
//!
//! Items and summaries are domain types the tree is generic over, so this
//! module splits the work: it persists everything the tree itself owns —
//! node rectangles, child ranges, the root, the fanout — and the caller
//! persists items and summaries with their own sections, then reassembles
//! via [`RTree::from_raw_parts`]. Sections under a caller-chosen prefix:
//!
//! | section         | type  | content                                      |
//! |-----------------|-------|----------------------------------------------|
//! | `{p}.meta`      | `u64` | `[num_items, num_nodes, root + 1, fanout]`   |
//! | `{p}.rects`     | `f64` | per node: `min.x, min.y, max.x, max.y`       |
//! | `{p}.kind`      | `u32` | per node: 1 = leaf, 0 = internal             |
//! | `{p}.start`     | `u32` | per node: child range start                  |
//! | `{p}.len`       | `u32` | per node: child range length                 |
//!
//! `root + 1` encodes `Option<usize>` with 0 = empty tree. Rect bounds are
//! stored bit-exact (`f64` byte copies), so a reassembled tree makes
//! byte-identical pruning decisions.

use soi_common::Result;
use soi_geo::{Point, Rect};
use soi_snapshot::{corrupt, Snapshot, SnapshotWriter};

use crate::tree::{RTree, RawNodeOwned};

/// The decoded structural skeleton of a tree.
#[derive(Debug)]
pub struct TreeStructure {
    /// Expected number of items (the caller's item sections must match).
    pub num_items: usize,
    /// Per node: rect, leaf flag, child range.
    pub nodes: Vec<(Rect, bool, usize, usize)>,
    /// Root node index.
    pub root: Option<usize>,
    /// Maximum node fanout.
    pub fanout: usize,
}

impl TreeStructure {
    /// Reassembles the tree from this skeleton plus the caller-decoded
    /// items and per-node summaries.
    ///
    /// # Errors
    /// Count mismatches and any invariant violation caught by
    /// [`RTree::from_raw_parts`] (`Data` category).
    pub fn assemble<T, S>(self, items: Vec<T>, summaries: Vec<S>) -> Result<RTree<T, S>> {
        let bad = |msg: String| soi_common::SoiError::parse(0, format!("r-tree snapshot: {msg}"));
        if items.len() != self.num_items {
            return Err(bad(format!(
                "expected {} items, caller decoded {}",
                self.num_items,
                items.len()
            )));
        }
        if summaries.len() != self.nodes.len() {
            return Err(bad(format!(
                "expected {} summaries, caller decoded {}",
                self.nodes.len(),
                summaries.len()
            )));
        }
        let nodes = self
            .nodes
            .into_iter()
            .zip(summaries)
            .map(|((rect, is_leaf, start, len), summary)| RawNodeOwned {
                rect,
                summary,
                is_leaf,
                start,
                len,
            })
            .collect();
        RTree::from_raw_parts(items, nodes, self.root, self.fanout)
    }
}

/// Writes the structural skeleton of `tree` under `prefix`.
///
/// # Errors
/// Writer-side section errors.
pub fn write_structure<T: crate::BoundedItem, S: crate::Summary<T>>(
    writer: &mut SnapshotWriter,
    prefix: &str,
    tree: &RTree<T, S>,
) -> Result<()> {
    let n = tree.num_nodes();
    let mut rects = Vec::with_capacity(4 * n);
    let mut kinds = Vec::with_capacity(n);
    let mut starts = Vec::with_capacity(n);
    let mut lens = Vec::with_capacity(n);
    for node in tree.raw_nodes() {
        rects.extend_from_slice(&[
            node.rect.min.x,
            node.rect.min.y,
            node.rect.max.x,
            node.rect.max.y,
        ]);
        kinds.push(node.is_leaf as u32);
        starts.push(node.start as u32);
        lens.push(node.len as u32);
    }
    writer.u64s(
        &format!("{prefix}.meta"),
        &[
            tree.len() as u64,
            n as u64,
            tree.root_index().map_or(0, |r| r as u64 + 1),
            tree.fanout() as u64,
        ],
    )?;
    writer.f64s(&format!("{prefix}.rects"), &rects)?;
    writer.u32s(&format!("{prefix}.kind"), &kinds)?;
    writer.u32s(&format!("{prefix}.start"), &starts)?;
    writer.u32s(&format!("{prefix}.len"), &lens)?;
    Ok(())
}

/// Reads the structural skeleton stored under `prefix`.
///
/// # Errors
/// Missing sections or shape mismatches (`Data` category). Child-range
/// validation happens later, in [`RTree::from_raw_parts`].
pub fn read_structure(snapshot: &Snapshot, prefix: &str) -> Result<TreeStructure> {
    let meta = snapshot.u64s(&format!("{prefix}.meta"))?;
    let rects = snapshot.f64s(&format!("{prefix}.rects"))?;
    let kinds = snapshot.u32s(&format!("{prefix}.kind"))?;
    let starts = snapshot.u32s(&format!("{prefix}.start"))?;
    let lens = snapshot.u32s(&format!("{prefix}.len"))?;
    let bad = |msg: String| corrupt(snapshot.path(), msg);

    let &[num_items, num_nodes, root_plus_one, fanout] = meta else {
        return Err(bad(format!("`{prefix}.meta` must hold exactly 4 values")));
    };
    let n = num_nodes as usize;
    if kinds.len() != n || starts.len() != n || lens.len() != n || rects.len() != 4 * n {
        return Err(bad(format!(
            "`{prefix}`: node arrays disagree ({n} nodes, {} kinds, {} starts, {} lens, {} rect values)",
            kinds.len(),
            starts.len(),
            lens.len(),
            rects.len()
        )));
    }
    let nodes = (0..n)
        .map(|i| {
            let r = &rects[4 * i..4 * i + 4];
            (
                Rect::new(Point::new(r[0], r[1]), Point::new(r[2], r[3])),
                kinds[i] == 1,
                starts[i] as usize,
                lens[i] as usize,
            )
        })
        .collect();
    Ok(TreeStructure {
        num_items: num_items as usize,
        nodes,
        root: (root_plus_one > 0).then(|| root_plus_one as usize - 1),
        fanout: fanout as usize,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NoSummary;

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "soi-rtreesnap-{}-{name}.soisnap",
            std::process::id()
        ))
    }

    fn sample_tree(n: usize) -> RTree<Point> {
        let pts: Vec<Point> = (0..n)
            .map(|i| Point::new((i % 17) as f64 * 0.37, (i / 17) as f64 * 0.11))
            .collect();
        RTree::bulk_load(pts)
    }

    fn round_trip(tree: &RTree<Point>, name: &str) -> RTree<Point> {
        let path = temp_path(name);
        let mut w = SnapshotWriter::new();
        write_structure(&mut w, "t", tree).unwrap();
        // Items: points as flat f64 pairs (the caller's job).
        let xy: Vec<f64> = tree.items().iter().flat_map(|p| [p.x, p.y]).collect();
        w.f64s("t.items", &xy).unwrap();
        w.write_to(&path).unwrap();

        let snap = Snapshot::open(&path).unwrap();
        let structure = read_structure(&snap, "t").unwrap();
        let items: Vec<Point> = snap
            .f64s("t.items")
            .unwrap()
            .chunks_exact(2)
            .map(|c| Point::new(c[0], c[1]))
            .collect();
        let summaries = vec![NoSummary; structure.nodes.len()];
        let back = structure.assemble(items, summaries).unwrap();
        std::fs::remove_file(&path).ok();
        back
    }

    #[test]
    fn round_trip_preserves_queries() {
        for n in [0usize, 1, 5, 100, 1000] {
            let tree = sample_tree(n);
            let back = round_trip(&tree, &format!("rt{n}"));
            assert_eq!(back.len(), tree.len());
            assert_eq!(back.num_nodes(), tree.num_nodes());
            assert_eq!(back.root_index(), tree.root_index());
            assert_eq!(back.fanout(), tree.fanout());

            let query = Rect::new(Point::new(0.3, 0.1), Point::new(3.1, 0.9));
            let collect = |t: &RTree<Point>| {
                let mut hits: Vec<(u64, u64)> = Vec::new();
                t.search_rect(&query, |p| hits.push((p.x.to_bits(), p.y.to_bits())));
                hits
            };
            assert_eq!(collect(&back), collect(&tree), "n={n}");

            let near_a: Vec<_> = tree
                .nearest_k(Point::new(1.0, 0.5), 7)
                .into_iter()
                .map(|(p, d)| (p.x.to_bits(), p.y.to_bits(), d.to_bits()))
                .collect();
            let near_b: Vec<_> = back
                .nearest_k(Point::new(1.0, 0.5), 7)
                .into_iter()
                .map(|(p, d)| (p.x.to_bits(), p.y.to_bits(), d.to_bits()))
                .collect();
            assert_eq!(near_a, near_b, "n={n}");
        }
    }

    #[test]
    fn from_raw_parts_rejects_bad_structure() {
        // Leaf range past items.
        let nodes = vec![RawNodeOwned {
            rect: Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0)),
            summary: NoSummary,
            is_leaf: true,
            start: 0,
            len: 5,
        }];
        let err = RTree::<Point>::from_raw_parts(vec![Point::new(0.0, 0.0)], nodes, Some(0), 16)
            .unwrap_err();
        assert_eq!(err.category(), soi_common::ErrorCategory::Data);

        // Internal node referencing itself (cycle).
        let nodes = vec![RawNodeOwned {
            rect: Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0)),
            summary: NoSummary,
            is_leaf: false,
            start: 0,
            len: 1,
        }];
        assert!(RTree::<Point>::from_raw_parts(Vec::new(), nodes, Some(0), 16).is_err());

        // Root out of range.
        assert!(
            RTree::<Point, NoSummary>::from_raw_parts(Vec::new(), Vec::new(), Some(3), 16).is_err()
        );

        // Empty tree is fine.
        assert!(
            RTree::<Point, NoSummary>::from_raw_parts(Vec::new(), Vec::new(), None, 16).is_ok()
        );
    }
}
