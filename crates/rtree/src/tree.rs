//! The STR-packed static R-tree.

use soi_common::{effective_threads, par_chunks_mut, par_sort_by, OrderedF64, Result, SoiError};
use soi_geo::{Point, Rect};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// An item storable in the tree: anything with a bounding rectangle.
pub trait BoundedItem {
    /// The item's bounding rectangle (a degenerate rect for points).
    fn rect(&self) -> Rect;
}

/// A per-node aggregate, merged bottom-up at build time.
///
/// Summaries let traversals prune whole subtrees on non-spatial criteria —
/// the hybrid spatio-textual index stores the union of subtree keywords.
pub trait Summary<T>: Clone {
    /// The empty aggregate.
    fn empty() -> Self;
    /// Folds one item into the aggregate.
    fn add_item(&mut self, item: &T);
    /// Merges a child aggregate into this one.
    fn merge(&mut self, other: &Self);
}

/// The trivial summary (no aggregation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoSummary;

impl<T> Summary<T> for NoSummary {
    fn empty() -> Self {
        NoSummary
    }
    fn add_item(&mut self, _: &T) {}
    fn merge(&mut self, _: &Self) {}
}

#[derive(Debug, Clone, Copy)]
enum Children {
    /// Leaf: a contiguous range of `items`.
    Items { start: usize, len: usize },
    /// Internal: a contiguous range of `nodes`.
    Nodes { start: usize, len: usize },
}

#[derive(Debug, Clone)]
struct Node<S> {
    rect: Rect,
    summary: S,
    children: Children,
}

/// A static R-tree bulk-loaded with the Sort-Tile-Recursive algorithm.
///
/// Items are stored once, grouped by leaf; internal levels are rebuilt
/// bottom-up with STR tiling per level. The tree is immutable after
/// construction (street segments, POIs, and photos are static in this
/// system, as the paper notes).
///
/// ```
/// use soi_geo::{Point, Rect};
/// use soi_rtree::RTree;
///
/// let pts: Vec<Point> = (0..100)
///     .map(|i| Point::new((i % 10) as f64, (i / 10) as f64))
///     .collect();
/// let tree: RTree<Point> = RTree::bulk_load(pts);
///
/// // Range query.
/// let mut hits = 0;
/// tree.search_rect(&Rect::new(Point::new(1.5, 1.5), Point::new(3.5, 3.5)), |_| hits += 1);
/// assert_eq!(hits, 4);
///
/// // Nearest neighbours.
/// let near = tree.nearest_k(Point::new(4.2, 4.2), 1);
/// assert_eq!(near[0].0, &Point::new(4.0, 4.0));
/// ```
#[derive(Debug, Clone)]
pub struct RTree<T, S = NoSummary> {
    items: Vec<T>,
    nodes: Vec<Node<S>>,
    root: Option<usize>,
    fanout: usize,
}

/// Default maximum entries per node.
pub const DEFAULT_FANOUT: usize = 16;

impl<T: BoundedItem, S: Summary<T>> RTree<T, S> {
    /// Bulk-loads a tree from `items` with the default fanout.
    pub fn bulk_load(items: Vec<T>) -> Self {
        Self::bulk_load_with_fanout(items, DEFAULT_FANOUT)
    }

    /// Bulk-loads a tree with an explicit `fanout` (≥ 2).
    ///
    /// # Panics
    /// Panics if `fanout < 2`.
    pub fn bulk_load_with_fanout(items: Vec<T>, fanout: usize) -> Self {
        assert!(fanout >= 2, "fanout must be at least 2");
        let mut tree = Self {
            items,
            nodes: Vec::new(),
            root: None,
            fanout,
        };
        if tree.items.is_empty() {
            return tree;
        }

        // --- STR tiling of the items into leaves.
        let n = tree.items.len();
        let slab_capacity = Self::leaf_slab_capacity(n, fanout);
        tree.items
            .sort_by(|a, b| a.rect().center().x.total_cmp(&b.rect().center().x));
        let mut start = 0;
        while start < n {
            let end = (start + slab_capacity).min(n);
            tree.items[start..end]
                .sort_by(|a, b| a.rect().center().y.total_cmp(&b.rect().center().y));
            start = end;
        }

        tree.build_levels();
        tree
    }

    /// Item count of one vertical STR slab for `n` items.
    fn leaf_slab_capacity(n: usize, fanout: usize) -> usize {
        let num_leaves = n.div_ceil(fanout);
        let slabs = (num_leaves as f64).sqrt().ceil() as usize;
        slabs * fanout
    }

    /// Builds the leaf and internal node levels over `self.items`, which must
    /// already be STR-tiled (sorted by center x, then by center y per slab).
    fn build_levels(&mut self) {
        let tree = self;
        let fanout = tree.fanout;
        let n = tree.items.len();
        let num_leaves = n.div_ceil(fanout);

        // --- Leaf level.
        let mut level: Vec<usize> = Vec::with_capacity(num_leaves);
        let mut offset = 0;
        while offset < n {
            let len = fanout.min(n - offset);
            let slice = &tree.items[offset..offset + len];
            let mut rect = slice[0].rect();
            let mut summary = S::empty();
            for item in slice {
                rect = rect.union(&item.rect());
                summary.add_item(item);
            }
            tree.nodes.push(Node {
                rect,
                summary,
                children: Children::Items { start: offset, len },
            });
            level.push(tree.nodes.len() - 1);
            offset += len;
        }

        // --- Internal levels: STR-tile the previous level's nodes.
        while level.len() > 1 {
            // Tile by node centers: sort by x, slab-sort by y.
            let num_parents = level.len().div_ceil(fanout);
            let slabs = (num_parents as f64).sqrt().ceil() as usize;
            let slab_capacity = slabs * fanout;
            level.sort_by(|&a, &b| {
                tree.nodes[a]
                    .rect
                    .center()
                    .x
                    .total_cmp(&tree.nodes[b].rect.center().x)
            });
            let mut start = 0;
            while start < level.len() {
                let end = (start + slab_capacity).min(level.len());
                level[start..end].sort_by(|&a, &b| {
                    tree.nodes[a]
                        .rect
                        .center()
                        .y
                        .total_cmp(&tree.nodes[b].rect.center().y)
                });
                start = end;
            }

            // Children of one parent must be contiguous in `nodes`: append
            // the tiled level in order, then group.
            let level_start = tree.nodes.len();
            let tiled: Vec<Node<S>> = level.iter().map(|&i| tree.nodes[i].clone()).collect();
            tree.nodes.extend(tiled);

            let mut parents: Vec<usize> = Vec::with_capacity(num_parents);
            let mut offset = 0;
            let level_len = level.len();
            while offset < level_len {
                let len = fanout.min(level_len - offset);
                let child_start = level_start + offset;
                let mut rect = tree.nodes[child_start].rect;
                let mut summary = tree.nodes[child_start].summary.clone();
                for i in 1..len {
                    rect = rect.union(&tree.nodes[child_start + i].rect);
                    let child_summary = tree.nodes[child_start + i].summary.clone();
                    summary.merge(&child_summary);
                }
                tree.nodes.push(Node {
                    rect,
                    summary,
                    children: Children::Nodes {
                        start: child_start,
                        len,
                    },
                });
                parents.push(tree.nodes.len() - 1);
                offset += len;
            }
            level = parents;
        }
        tree.root = Some(level[0]);
    }

    /// Number of stored items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns true if the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The stored items (in leaf order, not insertion order).
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Bounding rectangle of all items (`None` if empty).
    pub fn bounds(&self) -> Option<Rect> {
        self.root.map(|r| self.nodes[r].rect)
    }

    /// The maximum node fanout.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Calls `visit` for every item whose rect intersects `query`.
    pub fn search_rect<V: FnMut(&T)>(&self, query: &Rect, mut visit: V) {
        self.search_pruned(
            |rect, _| rect.intersects(query),
            |item| {
                if item.rect().intersects(query) {
                    visit(item);
                }
            },
        );
    }

    /// Calls `visit` for every item whose rect lies within `dist` of `p`.
    pub fn search_within_dist<V: FnMut(&T)>(&self, p: Point, dist: f64, mut visit: V) {
        self.search_pruned(
            |rect, _| rect.mindist_to_point(p) <= dist,
            |item| {
                if item.rect().mindist_to_point(p) <= dist {
                    visit(item);
                }
            },
        );
    }

    /// Generic pruned traversal: descends into a node only when
    /// `descend(rect, summary)` holds; `visit` receives every item of the
    /// surviving leaves (apply item-level filtering in the visitor).
    pub fn search_pruned<D, V>(&self, mut descend: D, mut visit: V)
    where
        D: FnMut(&Rect, &S) -> bool,
        V: FnMut(&T),
    {
        let Some(root) = self.root else { return };
        let mut stack = vec![root];
        while let Some(idx) = stack.pop() {
            let node = &self.nodes[idx];
            if !descend(&node.rect, &node.summary) {
                continue;
            }
            match node.children {
                Children::Items { start, len } => {
                    for item in &self.items[start..start + len] {
                        visit(item);
                    }
                }
                Children::Nodes { start, len } => {
                    stack.extend(start..start + len);
                }
            }
        }
    }

    /// The `k` items nearest to `p` (by rect mindist; exact distance for
    /// point items), with their distances, nearest first.
    ///
    /// Ties are broken by traversal order (deterministic for a given tree).
    pub fn nearest_k(&self, p: Point, k: usize) -> Vec<(&T, f64)> {
        self.nearest_k_pruned(p, k, |_, _| true, |_| true)
    }

    /// Best-first k-nearest with subtree and item predicates: nodes failing
    /// `descend` are skipped wholesale; items failing `accept` are skipped.
    ///
    /// This is the traversal of the hybrid spatio-textual index: `descend`
    /// checks the node keyword summary, `accept` the item's own keywords.
    pub fn nearest_k_pruned<D, A>(
        &self,
        p: Point,
        k: usize,
        mut descend: D,
        mut accept: A,
    ) -> Vec<(&T, f64)>
    where
        D: FnMut(&Rect, &S) -> bool,
        A: FnMut(&T) -> bool,
    {
        let mut out: Vec<(&T, f64)> = Vec::with_capacity(k.min(self.items.len()));
        if k == 0 {
            return out;
        }
        let Some(root) = self.root else { return out };

        // Heap entries: (distance, is_item, index). `index` is a node index
        // or an item index depending on `is_item`.
        let mut heap: BinaryHeap<Reverse<(OrderedF64, bool, usize)>> = BinaryHeap::new();
        if descend(&self.nodes[root].rect, &self.nodes[root].summary) {
            let d = self.nodes[root].rect.mindist_to_point(p);
            heap.push(Reverse((OrderedF64::new(d), false, root)));
        }
        while let Some(Reverse((dist, is_item, idx))) = heap.pop() {
            if is_item {
                out.push((&self.items[idx], dist.get()));
                if out.len() == k {
                    break;
                }
                continue;
            }
            match self.nodes[idx].children {
                Children::Items { start, len } => {
                    for (i, item) in self.items[start..start + len].iter().enumerate() {
                        if accept(item) {
                            let d = item.rect().mindist_to_point(p);
                            heap.push(Reverse((OrderedF64::new(d), true, start + i)));
                        }
                    }
                }
                Children::Nodes { start, len } => {
                    for child in start..start + len {
                        let node = &self.nodes[child];
                        if descend(&node.rect, &node.summary) {
                            let d = node.rect.mindist_to_point(p);
                            heap.push(Reverse((OrderedF64::new(d), false, child)));
                        }
                    }
                }
            }
        }
        out
    }
}

impl<T: BoundedItem + Send, S: Summary<T>> RTree<T, S> {
    /// Bulk-loads a tree with an explicit `fanout` (≥ 2) using up to
    /// `threads` worker threads for the two STR sorting passes (`0` =
    /// resolve automatically, see [`soi_common::effective_threads`]).
    ///
    /// The global x-sort uses a stable parallel merge sort and the per-slab
    /// y-sorts run on disjoint slabs with a stable sort each, so the item
    /// order — and therefore the whole tree — is identical to
    /// [`RTree::bulk_load_with_fanout`] for every thread count.
    ///
    /// # Panics
    /// Panics if `fanout < 2`.
    pub fn bulk_load_with_threads(items: Vec<T>, fanout: usize, threads: usize) -> Self {
        assert!(fanout >= 2, "fanout must be at least 2");
        let threads = effective_threads((threads > 0).then_some(threads));
        let mut tree = Self {
            items,
            nodes: Vec::new(),
            root: None,
            fanout,
        };
        if tree.items.is_empty() {
            return tree;
        }

        let n = tree.items.len();
        let slab_capacity = Self::leaf_slab_capacity(n, fanout);
        par_sort_by(&mut tree.items, threads, |a, b| {
            a.rect().center().x.total_cmp(&b.rect().center().x)
        });
        par_chunks_mut(&mut tree.items, slab_capacity, threads, |_, slab| {
            slab.sort_by(|a, b| a.rect().center().y.total_cmp(&b.rect().center().y));
        });

        tree.build_levels();
        tree
    }
}

/// Structural view of one tree node, exposed for snapshot encoding.
#[derive(Debug, Clone, Copy)]
pub struct RawNode<'a, S> {
    /// The node's bounding rectangle.
    pub rect: Rect,
    /// The node's aggregated summary.
    pub summary: &'a S,
    /// Whether the child range indexes items (leaf) or nodes (internal).
    pub is_leaf: bool,
    /// Start of the child range.
    pub start: usize,
    /// Length of the child range.
    pub len: usize,
}

/// Owned structural form of one node, the input to
/// [`RTree::from_raw_parts`].
#[derive(Debug, Clone)]
pub struct RawNodeOwned<S> {
    /// The node's bounding rectangle.
    pub rect: Rect,
    /// The node's aggregated summary.
    pub summary: S,
    /// Whether the child range indexes items (leaf) or nodes (internal).
    pub is_leaf: bool,
    /// Start of the child range.
    pub start: usize,
    /// Length of the child range.
    pub len: usize,
}

impl<T, S> RTree<T, S> {
    /// Number of nodes in the node array (including nodes orphaned by the
    /// level-retiling copies — indices must be preserved verbatim for a
    /// reassembled tree to be identical).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The node array in storage order, as structural views.
    pub fn raw_nodes(&self) -> impl Iterator<Item = RawNode<'_, S>> + '_ {
        self.nodes.iter().map(|n| {
            let (is_leaf, start, len) = match n.children {
                Children::Items { start, len } => (true, start, len),
                Children::Nodes { start, len } => (false, start, len),
            };
            RawNode {
                rect: n.rect,
                summary: &n.summary,
                is_leaf,
                start,
                len,
            }
        })
    }

    /// Index of the root node, if the tree is non-empty.
    pub fn root_index(&self) -> Option<usize> {
        self.root
    }

    /// Reassembles a tree from its structural parts (the inverse of
    /// [`RTree::raw_nodes`] + [`RTree::items`]), validating every child
    /// range so a corrupt snapshot cannot cause out-of-bounds panics or
    /// traversal cycles later.
    ///
    /// # Errors
    /// A `Data`-category error for: fanout < 2, a root index out of range,
    /// a missing root on a non-empty tree, leaf ranges outside `items`, or
    /// internal ranges not strictly below the parent's own index (bulk
    /// loading always appends children before their parent, which also
    /// guarantees acyclicity).
    pub fn from_raw_parts(
        items: Vec<T>,
        nodes: Vec<RawNodeOwned<S>>,
        root: Option<usize>,
        fanout: usize,
    ) -> Result<Self> {
        let bad = |msg: String| SoiError::parse(0, format!("r-tree raw parts: {msg}"));
        if fanout < 2 {
            return Err(bad(format!("fanout {fanout} < 2")));
        }
        match root {
            Some(r) if r >= nodes.len() => {
                return Err(bad(format!(
                    "root {r} out of range ({} nodes)",
                    nodes.len()
                )));
            }
            None if !items.is_empty() => {
                return Err(bad(format!("no root but {} items", items.len())));
            }
            _ => {}
        }
        for (i, n) in nodes.iter().enumerate() {
            let end = n
                .start
                .checked_add(n.len)
                .ok_or_else(|| bad(format!("node {i}: child range overflows")))?;
            if n.is_leaf {
                if end > items.len() {
                    return Err(bad(format!(
                        "node {i}: leaf range {}..{end} outside {} items",
                        n.start,
                        items.len()
                    )));
                }
            } else if end > i {
                return Err(bad(format!(
                    "node {i}: child nodes {}..{end} not strictly below parent",
                    n.start
                )));
            }
        }
        let nodes = nodes
            .into_iter()
            .map(|n| Node {
                rect: n.rect,
                summary: n.summary,
                children: if n.is_leaf {
                    Children::Items {
                        start: n.start,
                        len: n.len,
                    }
                } else {
                    Children::Nodes {
                        start: n.start,
                        len: n.len,
                    }
                },
            })
            .collect();
        Ok(RTree {
            items,
            nodes,
            root,
            fanout,
        })
    }
}

impl BoundedItem for Point {
    fn rect(&self) -> Rect {
        Rect::new(*self, *self)
    }
}

impl BoundedItem for Rect {
    fn rect(&self) -> Rect {
        *self
    }
}

impl<B: BoundedItem, X> BoundedItem for (B, X) {
    fn rect(&self) -> Rect {
        self.0.rect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_points(nx: usize, ny: usize) -> Vec<Point> {
        let mut pts = Vec::new();
        for y in 0..ny {
            for x in 0..nx {
                pts.push(Point::new(x as f64, y as f64));
            }
        }
        pts
    }

    fn collect_rect(tree: &RTree<Point>, q: &Rect) -> Vec<Point> {
        let mut out = Vec::new();
        tree.search_rect(q, |p| out.push(*p));
        out.sort_by(|a, b| a.x.total_cmp(&b.x).then(a.y.total_cmp(&b.y)));
        out
    }

    #[test]
    fn empty_tree() {
        let tree: RTree<Point> = RTree::bulk_load(vec![]);
        assert!(tree.is_empty());
        assert!(tree.bounds().is_none());
        assert!(tree.nearest_k(Point::ORIGIN, 3).is_empty());
        let mut count = 0;
        tree.search_rect(&Rect::new(Point::ORIGIN, Point::new(1.0, 1.0)), |_| {
            count += 1
        });
        assert_eq!(count, 0);
    }

    #[test]
    fn single_item() {
        let tree: RTree<Point> = RTree::bulk_load(vec![Point::new(2.0, 3.0)]);
        assert_eq!(tree.len(), 1);
        let near = tree.nearest_k(Point::ORIGIN, 5);
        assert_eq!(near.len(), 1);
        assert!((near[0].1 - 13.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn range_query_matches_brute_force() {
        let pts = grid_points(20, 20);
        let tree: RTree<Point> = RTree::bulk_load(pts.clone());
        assert_eq!(tree.len(), 400);
        for q in [
            Rect::new(Point::new(2.5, 2.5), Point::new(7.5, 4.5)),
            Rect::new(Point::new(-10.0, -10.0), Point::new(50.0, 50.0)),
            Rect::new(Point::new(100.0, 100.0), Point::new(101.0, 101.0)),
            Rect::new(Point::new(3.0, 3.0), Point::new(3.0, 3.0)),
        ] {
            let got = collect_rect(&tree, &q);
            let mut want: Vec<Point> = pts.iter().copied().filter(|p| q.contains(*p)).collect();
            want.sort_by(|a, b| a.x.total_cmp(&b.x).then(a.y.total_cmp(&b.y)));
            assert_eq!(got, want, "query {q}");
        }
    }

    #[test]
    fn within_dist_matches_brute_force() {
        let pts = grid_points(15, 15);
        let tree: RTree<Point> = RTree::bulk_load(pts.clone());
        let center = Point::new(7.3, 6.8);
        for dist in [0.5, 2.0, 5.5] {
            let mut got = Vec::new();
            tree.search_within_dist(center, dist, |p| got.push(*p));
            got.sort_by(|a, b| a.x.total_cmp(&b.x).then(a.y.total_cmp(&b.y)));
            let mut want: Vec<Point> = pts
                .iter()
                .copied()
                .filter(|p| p.dist(center) <= dist)
                .collect();
            want.sort_by(|a, b| a.x.total_cmp(&b.x).then(a.y.total_cmp(&b.y)));
            assert_eq!(got, want, "dist {dist}");
        }
    }

    #[test]
    fn nearest_k_matches_brute_force() {
        let pts = grid_points(12, 9);
        let tree: RTree<Point> = RTree::bulk_load(pts.clone());
        let q = Point::new(4.4, 3.9);
        for k in [1usize, 5, 20, 200] {
            let got: Vec<f64> = tree.nearest_k(q, k).iter().map(|&(_, d)| d).collect();
            let mut want: Vec<f64> = pts.iter().map(|p| p.dist(q)).collect();
            want.sort_by(f64::total_cmp);
            want.truncate(k);
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(want.iter()) {
                assert!((g - w).abs() < 1e-12, "k={k}");
            }
            // Distances must be non-decreasing.
            for pair in got.windows(2) {
                assert!(pair[0] <= pair[1]);
            }
        }
    }

    #[test]
    fn nearest_k_pruned_filters_items() {
        // Only points with even x accepted.
        let pts = grid_points(10, 1);
        let tree: RTree<Point> = RTree::bulk_load(pts);
        let near = tree.nearest_k_pruned(
            Point::new(0.0, 0.0),
            3,
            |_, _| true,
            |p| (p.x as i64) % 2 == 0,
        );
        let xs: Vec<f64> = near.iter().map(|(p, _)| p.x).collect();
        assert_eq!(xs, vec![0.0, 2.0, 4.0]);
    }

    #[test]
    fn summaries_aggregate_counts() {
        #[derive(Clone)]
        struct Count(usize);
        impl Summary<Point> for Count {
            fn empty() -> Self {
                Count(0)
            }
            fn add_item(&mut self, _: &Point) {
                self.0 += 1;
            }
            fn merge(&mut self, other: &Self) {
                self.0 += other.0;
            }
        }
        let pts = grid_points(9, 7);
        let tree: RTree<Point, Count> = RTree::bulk_load(pts);
        // The root summary must count everything.
        let mut visited = 0;
        tree.search_pruned(
            |_, s| {
                if visited == 0 {
                    assert_eq!(s.0, 63);
                }
                visited += 1;
                true
            },
            |_| {},
        );
        assert!(visited > 1);
    }

    #[test]
    fn bounded_item_impls() {
        let p = Point::new(1.0, 2.0);
        assert_eq!(BoundedItem::rect(&p).min, p);
        let r = Rect::new(Point::ORIGIN, Point::new(1.0, 1.0));
        assert_eq!(BoundedItem::rect(&r), r);
        let pair = (p, "payload");
        assert_eq!(BoundedItem::rect(&pair).min, p);
    }

    #[test]
    fn small_fanout_still_correct() {
        let pts = grid_points(8, 8);
        let tree: RTree<Point> = RTree::bulk_load_with_fanout(pts.clone(), 2);
        let q = Rect::new(Point::new(1.5, 1.5), Point::new(4.5, 6.5));
        let got = collect_rect(&tree, &q);
        let want = pts.iter().copied().filter(|p| q.contains(*p)).count();
        assert_eq!(got.len(), want);
    }

    #[test]
    #[should_panic(expected = "fanout must be at least 2")]
    fn fanout_one_panics() {
        let _: RTree<Point> = RTree::bulk_load_with_fanout(vec![Point::ORIGIN], 1);
    }

    #[test]
    fn parallel_bulk_load_identical_to_sequential() {
        // Pseudo-random points with duplicate coordinates to exercise the
        // stability of the tiling sorts.
        let mut x: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut pts = Vec::with_capacity(3000);
        for _ in 0..3000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            pts.push(Point::new((x % 97) as f64, ((x >> 17) % 89) as f64));
        }
        for fanout in [2usize, 16] {
            let sequential: RTree<Point> = RTree::bulk_load_with_fanout(pts.clone(), fanout);
            for threads in [1usize, 2, 8] {
                let parallel: RTree<Point> =
                    RTree::bulk_load_with_threads(pts.clone(), fanout, threads);
                assert_eq!(sequential.items(), parallel.items(), "threads {threads}");
                assert_eq!(sequential.bounds(), parallel.bounds());
                let near_s: Vec<(Point, f64)> = sequential
                    .nearest_k(Point::new(41.5, 40.5), 25)
                    .into_iter()
                    .map(|(p, d)| (*p, d))
                    .collect();
                let near_p: Vec<(Point, f64)> = parallel
                    .nearest_k(Point::new(41.5, 40.5), 25)
                    .into_iter()
                    .map(|(p, d)| (*p, d))
                    .collect();
                assert_eq!(near_s, near_p, "threads {threads}");
            }
        }
    }
}
