//! A static, bulk-loaded R-tree.
//!
//! The spatio-textual retrieval literature the paper builds on (Sec. 2.1,
//! e.g. the location-aware top-k text retrieval of Cong et al. \[11\])
//! integrates inverted files with an R-tree. This crate provides that
//! spatial substrate: an STR-packed (Sort-Tile-Recursive) static R-tree
//! over rectangle-bounded items with
//!
//! - rectangle **range** queries,
//! - **within-distance** queries around a point,
//! - best-first **k-nearest** queries, and
//! - per-node **summaries** (a user-defined monoid aggregated bottom-up),
//!   the hook the hybrid IR-tree in `soi-index` uses to prune
//!   subtrees without the query keywords.
//!
//! POIs and photos in this workspace are points; items with true extents
//! (e.g. street-segment bounding boxes) work the same way.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code must surface failures as `SoiError`, never panic: unwrap and
// expect are compile errors outside of test code.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod snapshot;
pub mod tree;

pub use tree::{BoundedItem, NoSummary, RTree, RawNode, RawNodeOwned, Summary, DEFAULT_FANOUT};
