//! Property-based tests: every R-tree query must agree with brute force on
//! random point sets, for several fanouts.

use proptest::prelude::*;
use soi_geo::{Point, Rect};
use soi_rtree::RTree;

fn points() -> impl Strategy<Value = Vec<Point>> {
    proptest::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 0..120)
        .prop_map(|v| v.into_iter().map(|(x, y)| Point::new(x, y)).collect())
}

proptest! {
    #[test]
    fn range_matches_brute_force(
        pts in points(),
        q in ((-60.0f64..60.0), (-60.0f64..60.0), (0.0f64..40.0), (0.0f64..40.0)),
        fanout in 2usize..20,
    ) {
        let rect = Rect::new(
            Point::new(q.0, q.1),
            Point::new(q.0 + q.2, q.1 + q.3),
        );
        let tree: RTree<Point> = RTree::bulk_load_with_fanout(pts.clone(), fanout);
        let mut got = 0usize;
        tree.search_rect(&rect, |_| got += 1);
        let want = pts.iter().filter(|p| rect.contains(**p)).count();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn within_dist_matches_brute_force(
        pts in points(),
        center in ((-60.0f64..60.0), (-60.0f64..60.0)),
        dist in 0.0f64..30.0,
        fanout in 2usize..20,
    ) {
        let c = Point::new(center.0, center.1);
        let tree: RTree<Point> = RTree::bulk_load_with_fanout(pts.clone(), fanout);
        let mut got = 0usize;
        tree.search_within_dist(c, dist, |_| got += 1);
        let want = pts.iter().filter(|p| p.dist(c) <= dist).count();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn nearest_k_matches_brute_force(
        pts in points(),
        q in ((-60.0f64..60.0), (-60.0f64..60.0)),
        k in 0usize..15,
        fanout in 2usize..20,
    ) {
        let qp = Point::new(q.0, q.1);
        let tree: RTree<Point> = RTree::bulk_load_with_fanout(pts.clone(), fanout);
        let got: Vec<f64> = tree.nearest_k(qp, k).iter().map(|&(_, d)| d).collect();
        let mut want: Vec<f64> = pts.iter().map(|p| p.dist(qp)).collect();
        want.sort_by(f64::total_cmp);
        want.truncate(k);
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(want.iter()) {
            prop_assert!((g - w).abs() < 1e-9);
        }
    }

    #[test]
    fn bounds_cover_all_items(pts in points(), fanout in 2usize..20) {
        let tree: RTree<Point> = RTree::bulk_load_with_fanout(pts.clone(), fanout);
        match tree.bounds() {
            None => prop_assert!(pts.is_empty()),
            Some(b) => {
                for p in &pts {
                    prop_assert!(b.contains(*p));
                }
            }
        }
    }
}
