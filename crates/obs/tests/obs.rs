//! Integration tests for the observability substrate: cross-thread span
//! collection, end-to-end trace serde, and the disabled-overhead guard
//! that keeps "near-zero cost when off" an enforced property rather than
//! a comment.

use soi_obs::json;
use soi_obs::metrics::{self, DEFAULT_LATENCY_BUCKETS};
use soi_obs::trace::{self, EventKind};
use std::sync::Mutex;

/// Tracing state is process-global; tests that enable it serialize here
/// and drain both sides so they cannot observe each other's events.
fn with_tracing<R>(f: impl FnOnce() -> R) -> R {
    static GUARD: Mutex<()> = Mutex::new(());
    let _guard = GUARD.lock().unwrap_or_else(|e| e.into_inner());
    let _ = trace::take_events();
    trace::set_enabled(true);
    let out = f();
    trace::set_enabled(false);
    let _ = trace::take_events();
    out
}

#[test]
fn spans_nest_within_and_across_threads() {
    with_tracing(|| {
        // Engine-shaped workload: an outer batch span on the main thread,
        // worker threads each running nested query spans.
        let outer = trace::span("engine.batch");
        let handles: Vec<_> = (0..3)
            .map(|i| {
                std::thread::spawn(move || {
                    let _q = trace::span("engine.query");
                    assert_eq!(trace::current_depth(), 1, "fresh thread starts at depth 0");
                    let _inner = trace::span("soi.query");
                    assert_eq!(trace::current_depth(), 2);
                    std::hint::black_box(i)
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        drop(outer);

        let events = trace::take_events();
        // 1 batch span + 3 × (engine.query + soi.query), all flushed by
        // worker-thread exit without an explicit drain call.
        assert_eq!(events.len(), 7);
        let count = |n: &str| events.iter().filter(|e| e.name == n).count();
        assert_eq!(count("engine.batch"), 1);
        assert_eq!(count("engine.query"), 3);
        assert_eq!(count("soi.query"), 3);

        // Per thread, soi.query nests inside engine.query.
        let dur = |e: &soi_obs::TraceEvent| match e.kind {
            EventKind::Complete { dur_ns } => dur_ns,
            _ => panic!("span events are Complete"),
        };
        for worker in events.iter().filter(|e| e.name == "engine.query") {
            let inner = events
                .iter()
                .find(|e| e.name == "soi.query" && e.tid == worker.tid)
                .expect("matching inner span on the same thread");
            assert!(worker.ts_ns <= inner.ts_ns);
            assert!(worker.ts_ns + dur(worker) >= inner.ts_ns + dur(inner));
        }
        // The batch span encloses every worker span.
        let batch = events.iter().find(|e| e.name == "engine.batch").unwrap();
        for e in &events {
            assert!(batch.ts_ns <= e.ts_ns);
            assert!(batch.ts_ns + dur(batch) >= e.ts_ns + dur(e));
        }
    });
}

#[test]
fn chrome_trace_round_trips_through_the_parser() {
    with_tracing(|| {
        trace::begin("construction");
        trace::counter("soi.UB", 12.5);
        trace::counter("soi.LBk", 3.0);
        trace::end("construction");
        {
            let _s = trace::span("soi.query");
        }
        let events = trace::take_events();
        let doc = trace::chrome_trace_json(&events);
        let parsed = json::parse(&doc).expect("trace JSON parses");
        let items = parsed
            .get("traceEvents")
            .and_then(|v| v.as_arr())
            .expect("traceEvents present");
        assert_eq!(items.len(), events.len());
        // Rebuild (name, ph) pairs from the JSON and compare against the
        // in-memory events — the round trip must preserve identity, order,
        // and kind.
        for (ev, obj) in events.iter().zip(items) {
            assert_eq!(obj.get("name").and_then(|v| v.as_str()), Some(ev.name));
            let ph = obj.get("ph").and_then(|v| v.as_str()).unwrap();
            let expect_ph = match ev.kind {
                EventKind::Complete { .. } => "X",
                EventKind::Begin => "B",
                EventKind::End => "E",
                EventKind::Counter { .. } => "C",
            };
            assert_eq!(ph, expect_ph);
            let ts_us = obj.get("ts").and_then(|v| v.as_f64()).unwrap();
            assert!((ts_us - ev.ts_ns as f64 / 1e3).abs() < 1e-6);
            if let EventKind::Counter { value } = ev.kind {
                assert_eq!(
                    obj.get("args")
                        .and_then(|a| a.get("value"))
                        .and_then(|v| v.as_f64()),
                    Some(value)
                );
            }
        }
    });
}

#[test]
fn histogram_percentiles_track_a_known_distribution() {
    let h = metrics::register_histogram(
        "obs_it_latency_seconds",
        "integration-test latencies",
        DEFAULT_LATENCY_BUCKETS,
    );
    // 100 observations: 50 fast (~0.8 ms), 45 medium (~8 ms), 5 slow (~80 ms).
    for _ in 0..50 {
        h.observe(0.0008);
    }
    for _ in 0..45 {
        h.observe(0.008);
    }
    for _ in 0..5 {
        h.observe(0.08);
    }
    let snap = h.snapshot();
    assert_eq!(snap.count, 100);
    let p50 = snap.p50().unwrap();
    let p95 = snap.p95().unwrap();
    let p99 = snap.p99().unwrap();
    assert!(p50 <= 0.001, "p50 {p50} should sit in the fast bucket");
    assert!(p95 <= 0.01, "p95 {p95} should sit in the medium bucket");
    assert!(
        p99 > 0.01 && p99 <= 0.1,
        "p99 {p99} should sit in the slow bucket"
    );
    assert!(p50 <= p95 && p95 <= p99);

    // And the rendered exposition is internally consistent: +Inf bucket
    // equals _count, buckets are cumulative.
    let text = metrics::gather_prefixed("obs_it_latency_seconds");
    assert!(text.contains("# TYPE obs_it_latency_seconds histogram"));
    assert!(text.contains("obs_it_latency_seconds_bucket{le=\"+Inf\"} 100"));
    assert!(text.contains("obs_it_latency_seconds_count 100"));
}

/// Metrics hygiene golden test: one instrument of every kind goes into
/// the registry, then the full export (including everything other tests
/// and `publish_process_metrics` registered) must lint clean — every
/// sample preceded by `# HELP` and `# TYPE`. Catches any new instrument
/// kind or sub-series (like the histogram `_overflow` guard) that ships
/// without documentation.
#[test]
fn full_exposition_lints_clean() {
    metrics::register_counter("obs_lint_events_total", "lint-test counter").inc();
    metrics::register_gauge("obs_lint_depth", "lint-test gauge").set(2.0);
    metrics::register_histogram(
        "obs_lint_latency_seconds",
        "lint-test histogram",
        DEFAULT_LATENCY_BUCKETS,
    )
    .observe(0.003);
    metrics::register_windowed_histogram(
        "obs_lint_latency_window_seconds",
        "lint-test windowed histogram",
        DEFAULT_LATENCY_BUCKETS,
        4,
        10,
    )
    .observe(0.004);
    metrics::register_windowed_counter(
        "obs_lint_events_window",
        "lint-test windowed counter",
        4,
        10,
    )
    .inc();
    metrics::register_info("obs_lint_info", "lint-test info", &[("flavour", "golden")]);
    metrics::publish_process_metrics("lint-test");
    let text = metrics::gather();
    let problems = metrics::lint_exposition(&text);
    assert!(
        problems.is_empty(),
        "metrics export has undocumented series:\n{}",
        problems.join("\n")
    );
    // The lint must have real samples to walk, including the overflow
    // sub-series that historically shipped untyped.
    assert!(text.contains("obs_lint_latency_seconds_overflow"));
    assert!(text.contains("# TYPE obs_lint_latency_seconds_overflow counter"));
}

/// `WindowedHistogram` after a long idle gap (several whole wheel
/// revolutions between observations): old observations must be excluded
/// from the merged snapshot even though their slots were never rotated
/// by intervening traffic.
#[test]
fn windowed_histogram_survives_long_idle_gaps() {
    let h = metrics::register_windowed_histogram(
        "obs_it_idle_gap_window_seconds",
        "idle-gap windowed histogram",
        DEFAULT_LATENCY_BUCKETS,
        4,
        10,
    );
    // Fill every slot of the wheel at ticks 0..4.
    for tick in 0..4u64 {
        h.observe_at(tick, 0.002);
    }
    assert_eq!(h.snapshot_at(3).count, 4, "wheel full before the gap");
    // Idle for three whole revolutions, then a single observation.
    let late = 3 * 4 * 4 + 1; // tick 49: slots still hold ticks 0..4
    h.observe_at(late, 0.08);
    let snap = h.snapshot_at(late);
    assert_eq!(
        snap.count, 1,
        "stale slots from before the gap must be excluded"
    );
    assert!((snap.sum - 0.08).abs() < 1e-12, "sum {} is stale", snap.sum);
    // A snapshot strictly after the window drains back to empty.
    assert_eq!(h.snapshot_at(late + 4).count, 0);
    // And traffic resumes normally: the next revolution refills cleanly.
    for tick in (late + 10)..(late + 14) {
        h.observe_at(tick, 0.001);
    }
    assert_eq!(h.snapshot_at(late + 13).count, 4);
}

/// Disabled instrumentation must be within noise of no instrumentation.
/// This bounds the *absolute* cost of a disabled span pair (create+drop)
/// instead of comparing two timed loops, which is robust to scheduler
/// jitter: one relaxed load plus a branch has no business costing even a
/// fraction of a microsecond.
#[test]
fn disabled_instrumentation_is_near_free() {
    assert!(!trace::enabled(), "test assumes the disabled path");
    const ITERS: u32 = 200_000;
    // Warm up.
    for _ in 0..1000 {
        let s = trace::span("soi.query");
        std::hint::black_box(&s);
    }
    let start = std::time::Instant::now();
    for _ in 0..ITERS {
        let s = trace::span("soi.query");
        trace::counter("soi.UB", 1.0);
        std::hint::black_box(&s);
    }
    let per_iter_ns = start.elapsed().as_nanos() as f64 / ITERS as f64;
    // Generous ceiling (real cost is a few ns): catches any regression
    // that puts a lock, a syscall, or a TLS-destructor registration on
    // the disabled path, while staying robust on slow shared CI runners.
    assert!(
        per_iter_ns < 1000.0,
        "disabled span+counter costs {per_iter_ns:.1} ns/iter; the off path must stay trivial"
    );
    assert!(
        trace::take_events().is_empty(),
        "disabled path recorded events"
    );
}
