//! End-to-end tests for the sampling profiler: a live session over
//! multi-threaded span-stack traffic, session exclusivity, and the
//! disabled-profiler overhead guard (the profiling sibling of the
//! disabled-tracing guard in `obs.rs`).

use soi_obs::{profile, trace};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Profiler sessions are process-global; every test that starts one (or
/// asserts none is running) serializes here.
fn with_profiler_lock<R>(f: impl FnOnce() -> R) -> R {
    static GUARD: Mutex<()> = Mutex::new(());
    let _guard = GUARD.lock().unwrap_or_else(|e| e.into_inner());
    f()
}

/// Engine-shaped worker: an outer span per iteration with begin/end
/// phases nested inside, plus allocation traffic for the odometer.
fn busy_worker(stop: &AtomicBool) {
    while !stop.load(Ordering::Relaxed) {
        let _q = trace::span("engine.query");
        trace::begin("filtering");
        let v: Vec<u64> = (0..32_768).collect(); // ~256 KiB
        std::hint::black_box(&v);
        trace::end("filtering");
        trace::begin("refinement");
        let mut acc = 0u64;
        for i in 0..20_000u64 {
            acc = acc.wrapping_add(i.wrapping_mul(i));
        }
        std::hint::black_box(acc);
        trace::end("refinement");
    }
}

#[test]
fn profiled_session_resolves_nested_spans() {
    with_profiler_lock(|| {
        profile::start(500).expect("session starts");
        // One window at a time: a second start must refuse.
        assert_eq!(profile::start(99), Err(profile::StartError::AlreadyRunning));
        assert!(profile::active());

        let stop = Arc::new(AtomicBool::new(false));
        let workers: Vec<_> = (0..3)
            .map(|_| {
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || busy_worker(&stop))
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(600));
        stop.store(true, Ordering::Relaxed);
        for w in workers {
            w.join().expect("worker joins");
        }

        let report = profile::stop().expect("session was running");
        assert!(!profile::active());
        assert!(profile::stop().is_none(), "second stop is a no-op");
        assert_eq!(
            profile::last_report().expect("report retained").samples,
            report.samples
        );

        assert!(report.samples > 0, "no samples over a 600ms busy window");
        // Resolution below the outer span: some stack must show a phase
        // nested under engine.query.
        assert!(
            report
                .stacks
                .iter()
                .any(|s| s.frames.len() >= 2 && s.frames[0] == "engine.query"),
            "no nested stack in {:?}",
            report.stacks
        );
        // Self times partition the busy samples.
        let self_sum: u64 = report.frames.iter().map(|f| f.self_samples).sum();
        assert_eq!(self_sum, report.samples);
        // Every sampled frame belongs to the canonical taxonomy.
        for frame in &report.frames {
            assert!(
                soi_obs::names::is_known_span(&frame.name),
                "unknown frame {}",
                frame.name
            );
        }
        // The filtering phase allocates ~256 KiB per iteration; the
        // odometer must have attributed some of it.
        let total_alloc: u64 = report.frames.iter().map(|f| f.self_alloc_bytes).sum();
        assert!(total_alloc > 0, "allocation deltas never attributed");

        // All three artifact formats render from the same report.
        let folded = report.folded_text();
        assert!(folded.lines().count() == report.stacks.len());
        assert!(folded.contains("engine.query"));
        let svg = report.flamegraph_svg();
        assert!(svg.starts_with("<svg") && svg.contains("engine.query"));
        let json = soi_obs::json::parse(&report.to_json()).expect("JSON artifact parses");
        let prof = json.get("profile").expect("profile object");
        assert_eq!(
            prof.get("samples").and_then(|v| v.as_f64()),
            Some(report.samples as f64)
        );

        // The sampler also feeds the metrics registry.
        let metrics = soi_obs::metrics::gather_prefixed("soi_profile_");
        assert!(metrics.contains("soi_profile_samples_total"));
        assert!(metrics.contains("soi_profile_dropped_samples_total"));
    });
}

/// A second session must not inherit stale stacks from the first: frames
/// pushed during (or before) session A are invisible to session B.
#[test]
fn sessions_do_not_leak_stale_stacks() {
    with_profiler_lock(|| {
        profile::start(200).expect("first session starts");
        let leaked = trace::span("engine.batch"); // held across the boundary
        std::thread::sleep(std::time::Duration::from_millis(30));
        profile::stop().expect("first session stops");

        profile::start(200).expect("second session starts");
        std::thread::sleep(std::time::Duration::from_millis(100));
        let report = profile::stop().expect("second session stops");
        drop(leaked);
        // This thread's published stack came from session one; session
        // two must see it as idle, not as a phantom engine.batch.
        assert!(
            report
                .stacks
                .iter()
                .all(|s| !s.frames.contains(&"engine.batch".to_string())),
            "stale frame leaked across sessions: {:?}",
            report.stacks
        );
    });
}

/// The profiling-off span path must stay trivial: one relaxed atomic load
/// and a branch on top of the (already guarded) disabled-tracing cost.
/// Same absolute-bound style as `disabled_instrumentation_is_near_free`.
#[test]
fn disabled_profiler_is_near_free() {
    with_profiler_lock(|| {
        assert!(!profile::active(), "test assumes no session");
        assert!(!trace::enabled(), "test assumes tracing off");
        const ITERS: u32 = 200_000;
        for _ in 0..1000 {
            let s = trace::span("soi.query");
            std::hint::black_box(&s);
        }
        let start = std::time::Instant::now();
        for _ in 0..ITERS {
            let s = trace::span("soi.query");
            trace::begin("filtering");
            trace::end("filtering");
            std::hint::black_box(&s);
        }
        let per_iter_ns = start.elapsed().as_nanos() as f64 / ITERS as f64;
        assert!(
            per_iter_ns < 1000.0,
            "span+begin/end with profiler off costs {per_iter_ns:.1} ns/iter; \
             the off path must stay one load and a branch"
        );
        assert!(
            trace::take_events().is_empty(),
            "disabled path recorded trace events"
        );
    });
}
