//! Structured event logging: human-readable text or JSON lines.
//!
//! Call sites describe an event once — a dotted name, a human message,
//! and typed fields — and the process-wide mode decides the rendering:
//!
//! - [`LogMode::Text`] (default) keeps the CLI's historical stderr style:
//!   the message followed by `key=value` fields.
//! - [`LogMode::Json`] (`--log-json`, `SOI_LOG=json`) renders one JSON
//!   object per line on stderr with `ts_ms`, `event`, `msg`, and the
//!   fields as typed members — greppable with `jq` and safe to pipe into
//!   log collectors.
//!
//! ```
//! use soi_obs::log::{self, Value};
//! log::event("batch.done", "batch finished", &[
//!     ("queries", Value::U64(128)),
//!     ("elapsed_ms", Value::F64(41.5)),
//! ]);
//! ```

use crate::json::JsonWriter;
use std::sync::atomic::{AtomicU8, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// How log events are rendered on stderr.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogMode {
    /// Human-readable: `msg (key=value, ...)`. The default.
    Text,
    /// One JSON object per line.
    Json,
    /// Drop everything (quiet runs, benchmark harnesses).
    Off,
}

static MODE: AtomicU8 = AtomicU8::new(0);

/// Sets the process-wide log mode.
pub fn set_mode(mode: LogMode) {
    let v = match mode {
        LogMode::Text => 0,
        LogMode::Json => 1,
        LogMode::Off => 2,
    };
    MODE.store(v, Ordering::Relaxed);
}

/// Current process-wide log mode.
pub fn mode() -> LogMode {
    match MODE.load(Ordering::Relaxed) {
        1 => LogMode::Json,
        2 => LogMode::Off,
        _ => LogMode::Text,
    }
}

/// Reads `SOI_LOG` (`json`, `text`, `off`) and applies it; unset or
/// unrecognised values leave the mode untouched. Binaries without their
/// own flag parsing (experiment runners, benches) call this at startup.
pub fn init_from_env() {
    match std::env::var("SOI_LOG").as_deref() {
        Ok("json") => set_mode(LogMode::Json),
        Ok("text") => set_mode(LogMode::Text),
        Ok("off") => set_mode(LogMode::Off),
        _ => {}
    }
}

/// A typed log field value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value<'a> {
    /// A string field.
    Str(&'a str),
    /// An unsigned integer field.
    U64(u64),
    /// A signed integer field.
    I64(i64),
    /// A float field.
    F64(f64),
    /// A boolean field.
    Bool(bool),
}

fn unix_millis() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Renders an event in the given mode (without emitting it). Exposed so
/// tests can assert on the exact bytes; [`event`] is the emitting form.
pub fn render(
    mode: LogMode,
    ts_ms: u64,
    name: &str,
    msg: &str,
    fields: &[(&str, Value<'_>)],
) -> Option<String> {
    match mode {
        LogMode::Off => None,
        LogMode::Text => {
            let mut line = String::from(msg);
            if !fields.is_empty() {
                line.push_str(" (");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        line.push_str(", ");
                    }
                    line.push_str(k);
                    line.push('=');
                    match v {
                        Value::Str(s) => line.push_str(s),
                        Value::U64(n) => line.push_str(&n.to_string()),
                        Value::I64(n) => line.push_str(&n.to_string()),
                        Value::F64(x) => crate::json::write_f64(&mut line, *x),
                        Value::Bool(b) => line.push_str(if *b { "true" } else { "false" }),
                    }
                }
                line.push(')');
            }
            Some(line)
        }
        LogMode::Json => {
            let mut obj = JsonWriter::object();
            obj.field_u64("ts_ms", ts_ms);
            obj.field_str("event", name);
            obj.field_str("msg", msg);
            for (k, v) in fields {
                match v {
                    Value::Str(s) => obj.field_str(k, s),
                    Value::U64(n) => obj.field_u64(k, *n),
                    Value::I64(n) => obj.field_i64(k, *n),
                    Value::F64(x) => obj.field_f64(k, *x),
                    Value::Bool(b) => obj.field_bool(k, *b),
                }
            }
            Some(obj.finish())
        }
    }
}

/// Emits one event to stderr in the current mode. `name` is a stable
/// dotted identifier (`"cli.load"`, `"batch.done"`); `msg` is the human
/// sentence; `fields` carry the machine-readable payload.
pub fn event(name: &str, msg: &str, fields: &[(&str, Value<'_>)]) {
    if let Some(line) = render(mode(), unix_millis(), name, msg, fields) {
        eprintln!("{line}");
    }
}

/// Emits a plain informational message with no fields.
pub fn info(name: &str, msg: &str) {
    event(name, msg, &[]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn text_mode_is_human_readable() {
        let line = render(
            LogMode::Text,
            0,
            "batch.done",
            "batch finished",
            &[("queries", Value::U64(3)), ("ok", Value::Bool(true))],
        )
        .unwrap();
        assert_eq!(line, "batch finished (queries=3, ok=true)");
        assert_eq!(
            render(LogMode::Text, 0, "x", "no fields", &[]).unwrap(),
            "no fields"
        );
    }

    #[test]
    fn json_mode_is_parseable_and_typed() {
        let line = render(
            LogMode::Json,
            1234,
            "batch.done",
            "batch \"finished\"",
            &[
                ("queries", Value::U64(3)),
                ("delta", Value::I64(-2)),
                ("p50_ms", Value::F64(4.5)),
                ("city", Value::Str("berlin")),
                ("ok", Value::Bool(true)),
            ],
        )
        .unwrap();
        let parsed = json::parse(&line).expect("log line parses");
        assert_eq!(parsed.get("ts_ms").and_then(|v| v.as_f64()), Some(1234.0));
        assert_eq!(
            parsed.get("event").and_then(|v| v.as_str()),
            Some("batch.done")
        );
        assert_eq!(
            parsed.get("msg").and_then(|v| v.as_str()),
            Some("batch \"finished\"")
        );
        assert_eq!(parsed.get("queries").and_then(|v| v.as_f64()), Some(3.0));
        assert_eq!(parsed.get("delta").and_then(|v| v.as_f64()), Some(-2.0));
        assert_eq!(parsed.get("p50_ms").and_then(|v| v.as_f64()), Some(4.5));
        assert_eq!(parsed.get("city").and_then(|v| v.as_str()), Some("berlin"));
    }

    #[test]
    fn off_mode_renders_nothing() {
        assert!(render(LogMode::Off, 0, "x", "y", &[]).is_none());
    }

    #[test]
    fn mode_roundtrip() {
        let initial = mode();
        for m in [LogMode::Json, LogMode::Off, LogMode::Text] {
            set_mode(m);
            assert_eq!(mode(), m);
        }
        set_mode(initial);
    }
}
