//! Memory accounting: a counting global allocator and scoped measurement.
//!
//! Declaring this crate's [`CountingAlloc`] as the `#[global_allocator]`
//! (done below, so every workspace binary gets it by linking `soi-obs`)
//! routes all heap traffic through the system allocator while maintaining
//! two sets of counters:
//!
//! - **process-wide totals** ([`totals`]): allocation/deallocation counts,
//!   cumulative allocated bytes, live bytes, and the live-bytes peak,
//!   updated with relaxed atomics — these back the `soi_alloc_*` gauges
//!   that [`publish_metrics`] exports for `soi metrics`;
//! - **per-thread counters** backing [`AllocScope`]: a scope started and
//!   finished on one thread reports exactly that thread's allocation work
//!   between the two points, including the scope-local live-bytes peak.
//!   This is what the query engine wraps around each query and the index
//!   build wraps around construction.
//!
//! The recording cost is a handful of relaxed atomic adds plus a
//! const-initialised thread-local update per allocator call — small
//! compared to the allocation itself, and the workspace's hot query paths
//! are deliberately allocation-lean (scratch reuse), so steady-state
//! queries see almost no accounting traffic at all.
//!
//! ### Caveats
//! - [`AllocScope`] is strictly thread-local: allocations performed by
//!   other threads (e.g. the parallel index build's workers) are invisible
//!   to a scope on the coordinating thread. Use [`totals`] deltas for
//!   whole-process accounting of multi-threaded phases.
//! - `realloc` is accounted as a dealloc of the old size plus an alloc of
//!   the new size, so cumulative "allocated bytes" counts re-grown buffers
//!   repeatedly; live bytes stay exact.

// The one place in the observability stack that genuinely needs `unsafe`:
// implementing `GlobalAlloc` (an unsafe trait) by delegation to `System`.
// Every unsafe block below only forwards the caller's own contract.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

static GLOBAL_ALLOCS: AtomicU64 = AtomicU64::new(0);
static GLOBAL_DEALLOCS: AtomicU64 = AtomicU64::new(0);
static GLOBAL_ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static GLOBAL_LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
static GLOBAL_PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

/// Per-thread allocator counters (plain `Copy` snapshot).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct ThreadCounters {
    allocs: u64,
    deallocs: u64,
    alloc_bytes: u64,
    /// Live bytes allocated by this thread minus bytes it freed (may dip
    /// below zero when a thread frees buffers another thread allocated,
    /// hence signed).
    live_bytes: i64,
    /// High-water mark of `live_bytes` since the innermost scope began.
    peak_bytes: i64,
}

thread_local! {
    // `const` initialisation keeps the first access allocation-free, which
    // matters because this is read from inside the allocator itself.
    static THREAD: Cell<ThreadCounters> = const { Cell::new(ThreadCounters {
        allocs: 0,
        deallocs: 0,
        alloc_bytes: 0,
        live_bytes: 0,
        peak_bytes: 0,
    }) };
}

#[inline]
fn record_alloc(size: usize) {
    let size = size as u64;
    GLOBAL_ALLOCS.fetch_add(1, Relaxed);
    GLOBAL_ALLOC_BYTES.fetch_add(size, Relaxed);
    let live = GLOBAL_LIVE_BYTES
        .fetch_add(size, Relaxed)
        .saturating_add(size);
    GLOBAL_PEAK_BYTES.fetch_max(live, Relaxed);
    // During thread teardown the TLS slot may already be destroyed; the
    // global counters above still see the traffic.
    let _ = THREAD.try_with(|c| {
        let mut t = c.get();
        t.allocs += 1;
        t.alloc_bytes += size;
        t.live_bytes += size as i64;
        t.peak_bytes = t.peak_bytes.max(t.live_bytes);
        c.set(t);
    });
    // Feed the sampling profiler's per-thread allocation odometer (a
    // relaxed load when no session is active; never allocates).
    crate::profile::note_alloc(size as usize);
}

#[inline]
fn record_dealloc(size: usize) {
    let size = size as u64;
    GLOBAL_DEALLOCS.fetch_add(1, Relaxed);
    GLOBAL_LIVE_BYTES.fetch_sub(size, Relaxed);
    let _ = THREAD.try_with(|c| {
        let mut t = c.get();
        t.deallocs += 1;
        t.live_bytes -= size as i64;
        c.set(t);
    });
}

/// A counting allocator delegating to [`System`].
///
/// Installed as the workspace-wide `#[global_allocator]` by this crate;
/// every binary linking `soi-obs` gets memory accounting for free.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingAlloc;

// SAFETY: every method forwards to `System` with the caller's layout
// unchanged; the counter updates never allocate through this allocator
// (atomics and a const-initialised TLS `Cell`).
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            record_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            record_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        record_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            record_dealloc(layout.size());
            record_alloc(new_size);
        }
        p
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Process-wide allocator totals at one point in time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocTotals {
    /// Allocations performed (including the alloc half of reallocs).
    pub allocs: u64,
    /// Deallocations performed (including the dealloc half of reallocs).
    pub deallocs: u64,
    /// Cumulative bytes handed out.
    pub allocated_bytes: u64,
    /// Bytes currently live (allocated minus freed).
    pub live_bytes: u64,
    /// High-water mark of `live_bytes` over the process lifetime.
    pub peak_bytes: u64,
}

/// Snapshot of the process-wide allocator counters.
pub fn totals() -> AllocTotals {
    AllocTotals {
        allocs: GLOBAL_ALLOCS.load(Relaxed),
        deallocs: GLOBAL_DEALLOCS.load(Relaxed),
        allocated_bytes: GLOBAL_ALLOC_BYTES.load(Relaxed),
        live_bytes: GLOBAL_LIVE_BYTES.load(Relaxed),
        peak_bytes: GLOBAL_PEAK_BYTES.load(Relaxed),
    }
}

/// What one [`AllocScope`] measured on its thread.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Allocations performed inside the scope.
    pub allocs: u64,
    /// Deallocations performed inside the scope.
    pub deallocs: u64,
    /// Cumulative bytes allocated inside the scope.
    pub allocated_bytes: u64,
    /// Peak of (this thread's live bytes − live bytes at scope entry):
    /// the scope's own high-water memory demand.
    pub peak_bytes: u64,
    /// Net live-byte change across the scope (negative when the scope
    /// freed more than it allocated).
    pub net_bytes: i64,
}

/// Measures the current thread's allocation work between [`AllocScope::start`]
/// and [`AllocScope::finish`]. Scopes nest: an inner scope's traffic is
/// contained in the outer scope's stats, and the outer peak is preserved
/// across inner scopes.
#[derive(Debug)]
pub struct AllocScope {
    start: ThreadCounters,
    /// The thread peak at entry, restored (monotonically) at finish so an
    /// enclosing scope still sees its own high-water mark.
    saved_peak: i64,
}

impl AllocScope {
    /// Starts measuring on the current thread.
    pub fn start() -> Self {
        let (start, saved_peak) = THREAD
            .try_with(|c| {
                let mut t = c.get();
                let saved = t.peak_bytes;
                // Reset the high-water mark to "now" so the scope measures
                // its own peak, not history.
                t.peak_bytes = t.live_bytes;
                c.set(t);
                (t, saved)
            })
            .unwrap_or_default();
        Self { start, saved_peak }
    }

    /// Stops measuring and returns the scope's stats.
    pub fn finish(self) -> AllocStats {
        THREAD
            .try_with(|c| {
                let mut end = c.get();
                let stats = AllocStats {
                    allocs: end.allocs - self.start.allocs,
                    deallocs: end.deallocs - self.start.deallocs,
                    allocated_bytes: end.alloc_bytes - self.start.alloc_bytes,
                    peak_bytes: (end.peak_bytes - self.start.live_bytes).max(0) as u64,
                    net_bytes: end.live_bytes - self.start.live_bytes,
                };
                end.peak_bytes = end.peak_bytes.max(self.saved_peak);
                c.set(end);
                stats
            })
            .unwrap_or_default()
    }
}

/// Runs `f` under an [`AllocScope`] and returns its result with the stats.
pub fn measure<R>(f: impl FnOnce() -> R) -> (R, AllocStats) {
    let scope = AllocScope::start();
    let r = f();
    (r, scope.finish())
}

/// Registers the `soi_alloc_*` gauges and refreshes them from the current
/// process-wide totals. Call before `metrics::gather` (the `soi metrics`
/// command does) so the exposition reflects the moment of the scrape.
pub fn publish_metrics() {
    use crate::metrics::register_gauge;
    let t = totals();
    register_gauge(
        "soi_alloc_allocations_total",
        "Heap allocations since process start (counting allocator)",
    )
    .set(t.allocs as f64);
    register_gauge(
        "soi_alloc_deallocations_total",
        "Heap deallocations since process start (counting allocator)",
    )
    .set(t.deallocs as f64);
    register_gauge(
        "soi_alloc_allocated_bytes_total",
        "Cumulative heap bytes allocated since process start",
    )
    .set(t.allocated_bytes as f64);
    register_gauge("soi_alloc_live_bytes", "Heap bytes currently live").set(t.live_bytes as f64);
    register_gauge(
        "soi_alloc_peak_bytes",
        "High-water mark of live heap bytes over the process lifetime",
    )
    .set(t.peak_bytes as f64);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_counts_this_threads_allocations() {
        let (v, stats) = measure(|| {
            let mut v: Vec<u64> = Vec::with_capacity(1024);
            v.push(7);
            v
        });
        assert_eq!(v[0], 7);
        assert!(stats.allocs >= 1, "Vec allocation not counted");
        assert!(stats.allocated_bytes >= 8 * 1024);
        assert!(stats.peak_bytes >= 8 * 1024);
        assert!(stats.net_bytes >= 8 * 1024, "v is still live");
        drop(v);
    }

    #[test]
    fn scope_peak_sees_freed_transients() {
        let (_, stats) = measure(|| {
            let big: Vec<u8> = vec![0; 1 << 20];
            drop(big);
        });
        assert!(
            stats.peak_bytes >= 1 << 20,
            "peak {} missed the 1MiB transient",
            stats.peak_bytes
        );
        assert!(stats.net_bytes < 1 << 20, "transient was freed");
    }

    #[test]
    fn nested_scopes_preserve_outer_peak() {
        let outer = AllocScope::start();
        let a: Vec<u8> = vec![0; 1 << 18];
        drop(a);
        // Inner scope resets the thread high-water mark...
        let (_, inner) = measure(|| {
            let b: Vec<u8> = vec![0; 1 << 10];
            drop(b);
        });
        assert!(inner.peak_bytes >= 1 << 10);
        assert!(inner.peak_bytes < 1 << 18, "inner saw only its own peak");
        // ...but the outer scope still reports the earlier 256KiB spike.
        let stats = outer.finish();
        assert!(
            stats.peak_bytes >= 1 << 18,
            "outer peak {} lost across the inner scope",
            stats.peak_bytes
        );
    }

    #[test]
    fn totals_are_monotone_and_nonzero() {
        let before = totals();
        let v: Vec<u8> = vec![0; 4096];
        let after = totals();
        assert!(after.allocs > 0);
        assert!(after.allocs >= before.allocs);
        assert!(after.allocated_bytes >= before.allocated_bytes + 4096);
        assert!(after.peak_bytes >= after.live_bytes.saturating_sub(1));
        drop(v);
    }

    #[test]
    fn other_threads_do_not_leak_into_a_scope() {
        let scope = AllocScope::start();
        std::thread::spawn(|| {
            let v: Vec<u8> = vec![0; 1 << 20];
            drop(v);
        })
        .join()
        .ok();
        let stats = scope.finish();
        assert!(
            stats.allocated_bytes < 1 << 20,
            "scope saw another thread's 1MiB allocation"
        );
    }

    #[test]
    fn publish_metrics_exports_gauges() {
        publish_metrics();
        let text = crate::metrics::gather_prefixed("soi_alloc_");
        for name in [
            "soi_alloc_allocations_total",
            "soi_alloc_deallocations_total",
            "soi_alloc_allocated_bytes_total",
            "soi_alloc_live_bytes",
            "soi_alloc_peak_bytes",
        ] {
            assert!(text.contains(name), "{name} missing:\n{text}");
        }
    }
}
