//! Minimal JSON writing and parsing.
//!
//! The workspace's `serde` is an offline marker shim with no data format,
//! so the observability layer produces its JSON by hand through
//! [`JsonWriter`] and validates artifacts (CI, tests) with the small
//! recursive-descent [`parse`] below. Both cover exactly the JSON subset
//! the layer emits: objects, arrays, strings, finite numbers, booleans,
//! and null.

use std::fmt::Write as _;

/// Appends `s` to `out` as a JSON string literal (quoted, escaped).
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` to `out` as a JSON number (non-finite values become `null`,
/// which no metric or timing here should ever produce).
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{:?}` is the shortest representation that round-trips.
        let _ = write!(out, "{v:?}");
    } else {
        out.push_str("null");
    }
}

/// An incremental writer for one JSON object or array.
///
/// ```
/// use soi_obs::json::JsonWriter;
/// let mut w = JsonWriter::object();
/// w.field_str("name", "soi");
/// w.field_u64("k", 10);
/// assert_eq!(w.finish(), r#"{"name":"soi","k":10}"#);
/// ```
#[derive(Debug)]
pub struct JsonWriter {
    buf: String,
    first: bool,
    close: char,
}

impl JsonWriter {
    /// Starts an object (`{…}`).
    pub fn object() -> Self {
        Self {
            buf: String::from("{"),
            first: true,
            close: '}',
        }
    }

    /// Starts an array (`[…]`).
    pub fn array() -> Self {
        Self {
            buf: String::from("["),
            first: true,
            close: ']',
        }
    }

    fn sep(&mut self) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
    }

    fn key(&mut self, name: &str) {
        self.sep();
        write_escaped(&mut self.buf, name);
        self.buf.push(':');
    }

    /// Adds a string field.
    pub fn field_str(&mut self, name: &str, v: &str) {
        self.key(name);
        write_escaped(&mut self.buf, v);
    }

    /// Adds an unsigned integer field.
    pub fn field_u64(&mut self, name: &str, v: u64) {
        self.key(name);
        let _ = write!(self.buf, "{v}");
    }

    /// Adds a signed integer field.
    pub fn field_i64(&mut self, name: &str, v: i64) {
        self.key(name);
        let _ = write!(self.buf, "{v}");
    }

    /// Adds a float field.
    pub fn field_f64(&mut self, name: &str, v: f64) {
        self.key(name);
        write_f64(&mut self.buf, v);
    }

    /// Adds a boolean field.
    pub fn field_bool(&mut self, name: &str, v: bool) {
        self.key(name);
        self.buf.push_str(if v { "true" } else { "false" });
    }

    /// Adds a field whose value is already-rendered JSON (an object, array,
    /// or scalar produced by another writer).
    pub fn field_raw(&mut self, name: &str, raw: &str) {
        self.key(name);
        self.buf.push_str(raw);
    }

    /// Adds an array element of already-rendered JSON.
    pub fn elem_raw(&mut self, raw: &str) {
        self.sep();
        self.buf.push_str(raw);
    }

    /// Adds a float array element.
    pub fn elem_f64(&mut self, v: f64) {
        self.sep();
        write_f64(&mut self.buf, v);
    }

    /// Closes the object/array and returns the rendered JSON.
    pub fn finish(mut self) -> String {
        self.buf.push(self.close);
        self.buf
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys preserved).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object (first occurrence).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses a complete JSON document (trailing whitespace allowed, anything
/// else after the value is an error).
///
/// # Errors
/// Returns a human-readable description of the first syntax error, with
/// its byte offset.
pub fn parse(src: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

/// Maximum nesting depth accepted by [`parse`] (stack-overflow guard).
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        if self.depth >= MAX_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_DEPTH} at byte {}",
                self.pos
            ));
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(format!("unexpected byte {:?} at {}", b as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    break;
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
        self.depth -= 1;
        Ok(Json::Obj(fields))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    break;
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
        self.depth -= 1;
        Ok(Json::Arr(items))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err("unterminated string".to_string());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err("unterminated escape".to_string());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| {
                                    format!("invalid \\u escape at byte {}", self.pos)
                                })?;
                            self.pos += 4;
                            // Surrogate pairs are not emitted by this
                            // crate's writer; map lone surrogates to the
                            // replacement character rather than erroring.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("invalid escape at byte {}", self.pos)),
                    }
                }
                _ => {
                    // Multi-byte UTF-8: copy the full character.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| format!("invalid UTF-8 at byte {start}"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid number at byte {start}"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_builds_nested_documents() {
        let mut inner = JsonWriter::array();
        inner.elem_f64(1.5);
        inner.elem_f64(2.0);
        let mut w = JsonWriter::object();
        w.field_str("name", "a \"quoted\"\nvalue");
        w.field_u64("count", 3);
        w.field_i64("delta", -4);
        w.field_bool("ok", true);
        w.field_raw("xs", &inner.finish());
        let text = w.finish();
        let v = parse(&text).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("a \"quoted\"\nvalue"));
        assert_eq!(v.get("count").unwrap().as_f64(), Some(3.0));
        assert_eq!(v.get("delta").unwrap().as_f64(), Some(-4.0));
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(
            v.get("xs").unwrap().as_arr().unwrap(),
            &[Json::Num(1.5), Json::Num(2.0)]
        );
    }

    #[test]
    fn floats_round_trip_shortest() {
        let mut out = String::new();
        write_f64(&mut out, 0.001);
        assert_eq!(out, "0.001");
        let mut out = String::new();
        write_f64(&mut out, 2.5e-5);
        let v = parse(&out).unwrap();
        assert_eq!(v.as_f64(), Some(2.5e-5));
        let mut out = String::new();
        write_f64(&mut out, f64::NAN);
        assert_eq!(out, "null");
    }

    #[test]
    fn parses_scalars_and_structures() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-1.25e2").unwrap(), Json::Num(-125.0));
        assert_eq!(parse(r#""hi\u0041""#).unwrap(), Json::Str("hiA".into()));
        assert_eq!(parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(parse("{}").unwrap(), Json::Obj(vec![]));
        assert_eq!(
            parse(r#"{"a":[1,{"b":null}]}"#).unwrap().get("a").unwrap(),
            &Json::Arr(vec![
                Json::Num(1.0),
                Json::Obj(vec![("b".into(), Json::Null)])
            ])
        );
        assert_eq!(parse("\"héllo→\"").unwrap(), Json::Str("héllo→".into()));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "", "{", "[1,", "{\"a\"}", "{\"a\":}", "tru", "1 2", "\"\\x\"", "[1]]",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn depth_limit_guards_recursion() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&ok).is_ok());
    }
}
