//! Spans and trace recording.
//!
//! Recording is off by default; [`set_enabled`]`(true)` (the CLI's
//! `--trace-out`, the bench harness) turns it on process-wide. Every entry
//! point first checks one relaxed atomic load, so instrumentation compiled
//! into a release binary is near-free while disabled — the overhead guard
//! test in `tests/obs.rs` and BENCH_PR3.json keep that honest.
//!
//! While enabled, events go into a **per-thread** buffer (a plain
//! `RefCell<Vec<_>>` push: no locks, no atomics on the record path). A
//! thread's buffer is flushed into the global drain list when the thread
//! exits (worker threads of an engine batch) or when the thread itself
//! calls [`take_events`] / [`flush_thread`]. Draining therefore sees every
//! event of joined threads plus the calling thread; long-lived helper
//! threads should call [`flush_thread`] at a quiescent point.
//!
//! [`chrome_trace_json`] renders drained events as Chrome `trace_event`
//! JSON — open the file at `chrome://tracing` or <https://ui.perfetto.dev>.
//! Span guards emit complete (`"X"`) events; [`begin`]/[`end`] emit `"B"`/
//! `"E"` pairs (used by `PhaseTimer`, whose phases are not lexically
//! scoped); [`counter`] emits `"C"` counter tracks (sampled UB/LBk values).
//!
//! ### Per-request capture
//!
//! Besides the process-wide switch, a caller can scope recording to one
//! unit of work with [`capture`]: events recorded on the calling thread
//! inside the closure go into a private buffer returned to the caller,
//! without touching the global enable flag — concurrent threads that are
//! not capturing keep paying only the single relaxed load of the disabled
//! path. The serving layer uses this for `"trace": true` requests, so one
//! traced request never taxes its neighbours. While capturing (or inside
//! [`with_request_id`]), recorded events carry the request id in
//! [`TraceEvent::req`], rendered as `args.request_id` in the Chrome JSON.

use crate::json::JsonWriter;
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Cap on buffered events per thread; beyond it events are dropped and
/// counted in [`dropped_events`] (a runaway trace must not OOM the
/// process).
const MAX_EVENTS_PER_THREAD: usize = 1 << 21;

/// Cap on events buffered by one [`capture`] scope; beyond it events are
/// dropped and counted in [`dropped_events`] (a single traced request must
/// stay bounded in memory).
const MAX_EVENTS_PER_CAPTURE: usize = 1 << 16;

static ENABLED: AtomicBool = AtomicBool::new(false);
static DROPPED: AtomicU64 = AtomicU64::new(0);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn drained() -> &'static Mutex<Vec<TraceEvent>> {
    static DRAINED: OnceLock<Mutex<Vec<TraceEvent>>> = OnceLock::new();
    DRAINED.get_or_init(|| Mutex::new(Vec::new()))
}

fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// Turns trace recording on or off process-wide.
///
/// Enabling also pins the trace epoch (timestamps are nanoseconds since
/// the first enable). Disabling does not discard already-buffered events.
pub fn set_enabled(on: bool) {
    if on {
        // Pin the epoch before any event can be recorded.
        let _ = epoch();
    }
    ENABLED.store(on, Ordering::Release);
}

/// Whether trace recording is currently on.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Number of events dropped because a thread buffer hit its cap.
pub fn dropped_events() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// What a [`TraceEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A span with a known duration (Chrome `"X"`).
    Complete {
        /// Span duration in nanoseconds.
        dur_ns: u64,
    },
    /// A span opening (Chrome `"B"`), closed by a matching [`EventKind::End`].
    Begin,
    /// A span closing (Chrome `"E"`).
    End,
    /// A sampled counter value (Chrome `"C"`), plotted as a track.
    Counter {
        /// The sampled value.
        value: f64,
    },
}

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event (span / track) name — one of [`crate::names`].
    pub name: &'static str,
    /// Nanoseconds since the trace epoch.
    pub ts_ns: u64,
    /// Recording thread (small dense ids, 1 = first recording thread).
    pub tid: u64,
    /// Request id in effect when the event was recorded (see
    /// [`with_request_id`] / [`capture`]); `0` = no request association.
    pub req: u64,
    /// Payload.
    pub kind: EventKind,
}

struct LocalBuf {
    tid: u64,
    depth: Cell<usize>,
    events: RefCell<Vec<TraceEvent>>,
}

impl LocalBuf {
    fn push(&self, ev: TraceEvent) {
        let mut events = self.events.borrow_mut();
        if events.len() >= MAX_EVENTS_PER_THREAD {
            DROPPED.fetch_add(1, Ordering::Relaxed);
            return;
        }
        events.push(ev);
    }
}

impl Drop for LocalBuf {
    fn drop(&mut self) {
        let events = self.events.get_mut();
        if !events.is_empty() {
            if let Ok(mut sink) = drained().lock() {
                sink.append(events);
            }
        }
    }
}

thread_local! {
    static LOCAL: LocalBuf = LocalBuf {
        tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
        depth: Cell::new(0),
        events: RefCell::new(Vec::new()),
    };
    /// Request id stamped into events recorded on this thread (0 = none).
    /// Const-initialised `Cell`s: reading them costs a TLS address load,
    /// no lazy-init branch and no destructor registration.
    static CURRENT_REQ: Cell<u64> = const { Cell::new(0) };
    /// Whether a [`capture`] scope is active on this thread.
    static CAPTURING: Cell<bool> = const { Cell::new(false) };
    /// The active capture scope's private event buffer.
    static CAPTURED: RefCell<Vec<TraceEvent>> = const { RefCell::new(Vec::new()) };
}

/// Whether the calling thread is inside a [`capture`] scope.
#[inline]
fn capturing() -> bool {
    CAPTURING.with(Cell::get)
}

/// Whether the record path is live for the calling thread: the global
/// switch first (one relaxed load — the only cost of the fully disabled
/// path), then the thread's capture flag.
#[inline]
fn recording() -> bool {
    enabled() || capturing()
}

fn record(name: &'static str, kind: EventKind, ts_ns: u64) {
    let req = CURRENT_REQ.with(Cell::get);
    let tid = LOCAL.with(|local| local.tid);
    let ev = TraceEvent {
        name,
        ts_ns,
        tid,
        req,
        kind,
    };
    if capturing() {
        CAPTURED.with(|captured| {
            let mut events = captured.borrow_mut();
            if events.len() >= MAX_EVENTS_PER_CAPTURE {
                DROPPED.fetch_add(1, Ordering::Relaxed);
            } else {
                events.push(ev.clone());
            }
        });
    }
    if enabled() {
        LOCAL.with(|local| local.push(ev));
    }
}

/// Runs `f` with `request_id` stamped into every event the calling thread
/// records (global trace or capture) for the duration of the call.
///
/// Scopes nest: the previous id is restored on exit. When recording is
/// fully off this is two thread-local stores around the call.
pub fn with_request_id<R>(request_id: u64, f: impl FnOnce() -> R) -> R {
    let previous = CURRENT_REQ.with(|cell| cell.replace(request_id));
    let out = f();
    CURRENT_REQ.with(|cell| cell.set(previous));
    out
}

/// The request id currently stamped on the calling thread (0 = none).
pub fn current_request_id() -> u64 {
    CURRENT_REQ.with(Cell::get)
}

/// Runs `f` with per-request trace capture active on the calling thread
/// and returns its result alongside the events recorded inside the scope.
///
/// Capture is independent of the global [`set_enabled`] switch: it records
/// even while the process-wide trace is off, and its events go into a
/// private buffer (bounded by an internal cap, overflow counted in
/// [`dropped_events`]) — they are *not* added to the global drain list
/// unless the global trace is also enabled. Events carry `request_id` in
/// [`TraceEvent::req`]. Scopes do not nest (the work of one request is a
/// single scope); a nested call records into the outer scope's buffer.
///
/// Other threads are untouched: a thread that is neither capturing nor
/// globally enabled still pays only one relaxed atomic load per probe.
pub fn capture<R>(request_id: u64, f: impl FnOnce() -> R) -> (R, Vec<TraceEvent>) {
    // Pin the epoch so captured timestamps are meaningful even when the
    // global trace was never enabled.
    let _ = epoch();
    let nested = CAPTURING.with(|cell| cell.replace(true));
    let out = with_request_id(request_id, f);
    if nested {
        // Outer scope owns the buffer; report no events here.
        return (out, Vec::new());
    }
    CAPTURING.with(|cell| cell.set(false));
    let mut events = CAPTURED.with(|captured| std::mem::take(&mut *captured.borrow_mut()));
    events.sort_by_key(|e| e.ts_ns);
    (out, events)
}

/// An RAII span guard: records a complete event from creation to drop.
///
/// Created by [`span`]; a disabled guard is inert (no timestamp taken, no
/// event recorded on drop).
#[derive(Debug)]
#[must_use = "a span measures until it is dropped"]
pub struct Span {
    name: &'static str,
    start_ns: Option<u64>,
    profiled: bool,
}

impl Span {
    /// The span's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Whether this guard is actually recording.
    pub fn is_recording(&self) -> bool {
        self.start_ns.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.profiled {
            crate::profile::pop_frame(self.name);
        }
        let Some(start_ns) = self.start_ns else {
            return;
        };
        let dur_ns = now_ns().saturating_sub(start_ns);
        LOCAL.with(|local| local.depth.set(local.depth.get().saturating_sub(1)));
        record(self.name, EventKind::Complete { dur_ns }, start_ns);
    }
}

/// Opens a span named `name`, measured until the returned guard drops.
///
/// When tracing is disabled (globally and for this thread's capture
/// scope) this is one relaxed atomic load plus a thread-local read and
/// returns an inert guard.
#[inline]
pub fn span(name: &'static str) -> Span {
    // The profiler publishes the span stack independently of trace
    // recording (one relaxed load when no session is active).
    let profiled = crate::profile::push_frame(name);
    if !recording() {
        return Span {
            name,
            start_ns: None,
            profiled,
        };
    }
    LOCAL.with(|local| local.depth.set(local.depth.get() + 1));
    Span {
        name,
        start_ns: Some(now_ns()),
        profiled,
    }
}

/// Current span-stack depth of the calling thread (recording spans only).
pub fn current_depth() -> usize {
    LOCAL.with(|local| local.depth.get())
}

/// Records the opening of a non-lexical span (Chrome `"B"`). Pair with
/// [`end`] on the same thread; used by `PhaseTimer`, whose phases close at
/// the next `enter` rather than at scope exit.
#[inline]
pub fn begin(name: &'static str) {
    crate::profile::push_frame(name);
    if !recording() {
        return;
    }
    record(name, EventKind::Begin, now_ns());
}

/// Records the closing of a non-lexical span (Chrome `"E"`).
#[inline]
pub fn end(name: &'static str) {
    crate::profile::pop_frame(name);
    if !recording() {
        return;
    }
    record(name, EventKind::End, now_ns());
}

/// Records a sampled counter value (Chrome `"C"` track), e.g. the UB/LBk
/// convergence during Alg. 1 filtering.
#[inline]
pub fn counter(name: &'static str, value: f64) {
    if !recording() {
        return;
    }
    record(name, EventKind::Counter { value }, now_ns());
}

/// Flushes the calling thread's buffered events into the global drain
/// list. Worker threads that exit (engine batches, scoped pools) flush
/// automatically; call this from long-lived threads at quiescent points.
pub fn flush_thread() {
    LOCAL.with(|local| {
        let mut events = local.events.borrow_mut();
        if !events.is_empty() {
            if let Ok(mut sink) = drained().lock() {
                sink.append(&mut events);
            }
        }
    });
}

/// Drains every flushed event (joined threads + the calling thread),
/// ordered by timestamp. Buffers of other still-live threads are not
/// included until they flush.
pub fn take_events() -> Vec<TraceEvent> {
    flush_thread();
    let mut events = match drained().lock() {
        Ok(mut sink) => std::mem::take(&mut *sink),
        Err(_) => Vec::new(),
    };
    events.sort_by_key(|e| e.ts_ns);
    events
}

/// Renders events as a Chrome `trace_event` JSON document (the
/// "JSON object format": `{"traceEvents": [...]}`).
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut arr = JsonWriter::array();
    for ev in events {
        let mut obj = JsonWriter::object();
        obj.field_str("name", ev.name);
        obj.field_str("cat", category_of(ev.name));
        let ph = match ev.kind {
            EventKind::Complete { .. } => "X",
            EventKind::Begin => "B",
            EventKind::End => "E",
            EventKind::Counter { .. } => "C",
        };
        obj.field_str("ph", ph);
        // Chrome expects microseconds; keep nanosecond precision as a
        // fractional part.
        obj.field_f64("ts", ev.ts_ns as f64 / 1e3);
        if let EventKind::Complete { dur_ns } = ev.kind {
            obj.field_f64("dur", dur_ns as f64 / 1e3);
        }
        obj.field_u64("pid", 1);
        obj.field_u64("tid", ev.tid);
        let mut args = JsonWriter::object();
        let mut has_args = false;
        if let EventKind::Counter { value } = ev.kind {
            args.field_f64("value", value);
            has_args = true;
        }
        if ev.req != 0 {
            args.field_u64("request_id", ev.req);
            has_args = true;
        }
        if has_args {
            obj.field_raw("args", &args.finish());
        }
        arr.elem_raw(&obj.finish());
    }
    let mut doc = JsonWriter::object();
    doc.field_raw("traceEvents", &arr.finish());
    doc.field_str("displayTimeUnit", "ms");
    doc.finish()
}

/// The span taxonomy's top-level layer (`soi.filtering` → `soi`), used as
/// the Chrome trace category.
fn category_of(name: &'static str) -> &'static str {
    match name.split_once('.') {
        Some((layer, _)) => layer,
        // Bare phase names ("filtering") come from PhaseTimer.
        None => "phase",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    static GUARD: Mutex<()> = Mutex::new(());

    // Tracing state is process-global; every test here serializes on this
    // lock and drains before and after to stay independent of its siblings.
    fn with_tracing<R>(f: impl FnOnce() -> R) -> R {
        let _guard = GUARD.lock().unwrap_or_else(|e| e.into_inner());
        let _ = take_events();
        set_enabled(true);
        let out = f();
        set_enabled(false);
        let _ = take_events();
        out
    }

    // Same serialization, but with the global trace left *off* — the
    // capture tests assert exactly that scoped capture works without it.
    fn without_tracing<R>(f: impl FnOnce() -> R) -> R {
        let _guard = GUARD.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(false);
        let _ = take_events();
        let out = f();
        let _ = take_events();
        out
    }

    #[test]
    fn disabled_records_nothing() {
        with_tracing(|| {
            set_enabled(false);
            let s = span("soi.query");
            assert!(!s.is_recording());
            drop(s);
            begin("filtering");
            end("filtering");
            counter("soi.UB", 1.0);
            assert!(take_events().is_empty());
        });
    }

    #[test]
    fn span_guard_records_complete_event() {
        with_tracing(|| {
            {
                let _outer = span("engine.batch");
                let _inner = span("soi.query");
                assert_eq!(current_depth(), 2);
            }
            assert_eq!(current_depth(), 0);
            let events = take_events();
            assert_eq!(events.len(), 2);
            // Drop order: inner closes first but sorting is by start ts, so
            // the outer span comes first.
            assert_eq!(events[0].name, "engine.batch");
            assert_eq!(events[1].name, "soi.query");
            for e in &events {
                assert!(matches!(e.kind, EventKind::Complete { .. }));
            }
            // The outer span encloses the inner one.
            let dur = |e: &TraceEvent| match e.kind {
                EventKind::Complete { dur_ns } => dur_ns,
                _ => 0,
            };
            assert!(events[0].ts_ns <= events[1].ts_ns);
            assert!(events[0].ts_ns + dur(&events[0]) >= events[1].ts_ns + dur(&events[1]));
        });
    }

    #[test]
    fn begin_end_and_counter_events() {
        with_tracing(|| {
            begin("construction");
            counter("soi.UB", 41.5);
            end("construction");
            let events = take_events();
            assert_eq!(
                events.iter().map(|e| &e.kind).collect::<Vec<_>>(),
                vec![
                    &EventKind::Begin,
                    &EventKind::Counter { value: 41.5 },
                    &EventKind::End
                ]
            );
        });
    }

    #[test]
    fn threads_flush_on_exit_and_keep_distinct_tids() {
        with_tracing(|| {
            let main_tid = LOCAL.with(|l| l.tid);
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    std::thread::spawn(|| {
                        let _s = span("engine.query");
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            let _s = span("engine.batch");
            drop(_s);
            let events = take_events();
            assert_eq!(events.len(), 3);
            let tids: std::collections::BTreeSet<u64> = events.iter().map(|e| e.tid).collect();
            assert_eq!(tids.len(), 3, "each thread gets its own tid");
            assert!(tids.contains(&main_tid));
        });
    }

    #[test]
    fn chrome_json_is_valid_and_typed() {
        with_tracing(|| {
            {
                let _s = span("soi.query");
                counter("soi.LBk", 3.25);
            }
            let events = take_events();
            let doc = chrome_trace_json(&events);
            let parsed = json::parse(&doc).expect("chrome trace parses");
            let items = parsed
                .get("traceEvents")
                .and_then(|v| v.as_arr())
                .expect("traceEvents array");
            assert_eq!(items.len(), 2);
            let phs: Vec<&str> = items
                .iter()
                .map(|e| e.get("ph").and_then(|p| p.as_str()).unwrap())
                .collect();
            assert!(phs.contains(&"X"));
            assert!(phs.contains(&"C"));
            for e in items {
                assert!(e.get("ts").and_then(|t| t.as_f64()).is_some());
                assert_eq!(e.get("pid").and_then(|p| p.as_f64()), Some(1.0));
            }
            let x = items
                .iter()
                .find(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
                .unwrap();
            assert_eq!(x.get("cat").and_then(|c| c.as_str()), Some("soi"));
            assert!(x.get("dur").and_then(|d| d.as_f64()).is_some());
            let c = items
                .iter()
                .find(|e| e.get("ph").and_then(|p| p.as_str()) == Some("C"))
                .unwrap();
            assert_eq!(
                c.get("args")
                    .and_then(|a| a.get("value"))
                    .and_then(|v| v.as_f64()),
                Some(3.25)
            );
        });
    }

    #[test]
    fn capture_scopes_events_to_the_caller() {
        without_tracing(|| {
            let ((), events) = capture(42, || {
                let _s = span("soi.query");
                counter("soi.UB", 2.0);
            });
            assert_eq!(events.len(), 2);
            assert!(events.iter().all(|e| e.req == 42));
            assert!(events.iter().any(|e| e.name == "soi.query"));
            // Nothing leaked into the global drain while tracing was off.
            assert!(take_events().is_empty());
        });
    }

    #[test]
    fn capture_and_global_trace_both_see_events() {
        with_tracing(|| {
            let ((), events) = capture(7, || {
                let _s = span("engine.query");
            });
            assert_eq!(events.len(), 1);
            assert_eq!(events[0].req, 7);
            let global = take_events();
            assert_eq!(global.len(), 1, "global trace keeps its own copy");
            assert_eq!(global[0].req, 7);
        });
    }

    #[test]
    fn nested_capture_yields_outer_buffer_only() {
        without_tracing(|| {
            let ((), outer) = capture(1, || {
                let ((), inner) = capture(2, || {
                    let _s = span("soi.query");
                });
                assert!(inner.is_empty(), "nested capture defers to the outer");
            });
            assert_eq!(outer.len(), 1);
            // The inner scope still re-stamps the request id for its extent.
            assert_eq!(outer[0].req, 2);
        });
    }

    #[test]
    fn capture_overflow_counts_dropped_events() {
        without_tracing(|| {
            let before = dropped_events();
            let ((), events) = capture(9, || {
                for _ in 0..(MAX_EVENTS_PER_CAPTURE + 5) {
                    counter("soi.UB", 1.0);
                }
            });
            assert_eq!(events.len(), MAX_EVENTS_PER_CAPTURE);
            assert_eq!(dropped_events() - before, 5);
        });
    }

    #[test]
    fn with_request_id_restores_previous_id() {
        without_tracing(|| {
            assert_eq!(current_request_id(), 0);
            with_request_id(5, || {
                assert_eq!(current_request_id(), 5);
                with_request_id(6, || assert_eq!(current_request_id(), 6));
                assert_eq!(current_request_id(), 5);
            });
            assert_eq!(current_request_id(), 0);
        });
    }

    #[test]
    fn chrome_json_carries_request_id_args() {
        without_tracing(|| {
            let ((), events) = capture(31, || {
                let _s = span("soi.query");
            });
            let doc = chrome_trace_json(&events);
            let parsed = json::parse(&doc).expect("chrome trace parses");
            let items = parsed
                .get("traceEvents")
                .and_then(|v| v.as_arr())
                .expect("traceEvents array");
            assert_eq!(items.len(), 1);
            assert_eq!(
                items[0]
                    .get("args")
                    .and_then(|a| a.get("request_id"))
                    .and_then(|v| v.as_f64()),
                Some(31.0)
            );
        });
    }

    #[test]
    fn empty_trace_still_renders_valid_json() {
        let doc = chrome_trace_json(&[]);
        let parsed = json::parse(&doc).unwrap();
        assert_eq!(
            parsed
                .get("traceEvents")
                .and_then(|v| v.as_arr())
                .map(<[_]>::len),
            Some(0)
        );
    }
}
