//! In-repo observability for the streets-of-interest workspace.
//!
//! This crate is the single substrate every other crate instruments
//! against. It is deliberately dependency-free (it must build offline and
//! sit below `soi-common` in the crate graph) and designed so that
//! instrumentation left compiled into release binaries costs near nothing
//! while disabled:
//!
//! - [`trace`]: spans ([`trace::span`] RAII guards, [`trace::begin`] /
//!   [`trace::end`] pairs for non-lexical phases) and sampled counter
//!   tracks, recorded into lock-free per-thread buffers and drained into
//!   Chrome `trace_event` JSON (load the file at `chrome://tracing` or
//!   <https://ui.perfetto.dev>). When tracing is off — the default — every
//!   entry point is one relaxed atomic load.
//! - [`metrics`]: a process-wide registry of named counters, gauges, and
//!   fixed-bucket latency histograms (with p50/p95/p99 estimation),
//!   rendered in the Prometheus text exposition format by
//!   [`metrics::gather`]. Metrics are always on: the recording cost is an
//!   atomic add, and the hot query loops batch their counts locally (in
//!   `QueryStats`-style structs) and absorb them once per query.
//! - [`log`]: a structured event log that renders either as human-readable
//!   text (the default, preserving the CLI's `eprintln!` behaviour) or as
//!   machine-readable JSON lines (`--log-json`), one event per line on
//!   stderr.
//! - [`json`]: the minimal JSON writer and parser backing the trace and
//!   log output (the workspace's `serde` is an offline marker shim, so the
//!   bytes are produced by hand), plus validation for CI artifact checks.
//! - [`names`]: the canonical span taxonomy and algorithm phase names, so
//!   spans, per-query stats, and logs all agree on the same strings.
//! - [`alloc`]: memory accounting — a counting `#[global_allocator]`
//!   wrapper around the system allocator (installed workspace-wide by
//!   linking this crate) with process totals, thread-local counters, and
//!   scoped [`alloc::AllocScope`] measurement for per-query and per-build
//!   accounting.
//! - [`profile`]: a sampling profiler riding the span machinery — threads
//!   publish their live span stacks seqlock-style, a sampler folds them
//!   at a fixed rate, and sessions render JSON / folded-text / SVG
//!   flamegraph artifacts. One relaxed atomic load per span when off.

// `unsafe` is denied crate-wide and allowed in exactly one place: the
// `alloc` module's `GlobalAlloc` delegation (an unsafe trait by design).
#![deny(unsafe_code)]
#![warn(missing_docs)]
// Observability must never take a process down: unwrap and expect are
// compile errors outside of test code.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod alloc;
pub mod json;
pub mod log;
pub mod metrics;
pub mod names;
pub mod profile;
pub mod trace;

pub use alloc::{AllocScope, AllocStats};
pub use metrics::{Counter, Gauge, Histogram};
pub use names::phases;
pub use trace::{Span, TraceEvent};
