//! Continuous span-stack sampling profiler.
//!
//! Answers "where does wall-clock time go across the whole workload" —
//! the aggregate complement to per-request traces (`trace.rs`). It rides
//! the existing RAII span machinery: every [`crate::trace::span`] /
//! [`crate::trace::begin`] call pushes its span name onto a per-thread
//! **published stack** while a profiling session is active, and a sampler
//! thread snapshots every published stack at a fixed rate (default 99 Hz)
//! into folded-stack counts keyed by the span-name path.
//!
//! ### Publication: slot pool + seqlock
//!
//! Each thread that records a span while profiling is on claims one slot
//! from a fixed pool ([`MAX_THREADS`] entries, allocated once). A slot
//! holds the thread's live span stack as interned name ids behind a
//! seqlock-style sequence counter: the owning thread bumps the counter to
//! odd, mutates, bumps back to even; the sampler retries reads that
//! observe an odd or changed counter. Every field is an atomic, so a
//! torn read is impossible at the language level and an inconsistent one
//! is caught by the sequence check (a bounded number of retries, then the
//! sample is counted as dropped). The span hot path therefore stays
//! lock-free, and **pays one relaxed atomic load when profiling is off**
//! — the disabled-profiler overhead guard in `tests/profile.rs` enforces
//! that, like the trace guard before it.
//!
//! Allocation attribution rides the counting allocator: while a session
//! is active, [`note_alloc`] adds each allocation's bytes to the owning
//! thread's slot, and the sampler attributes the delta since its previous
//! pass to the leaf frame of the sampled stack. Best-effort by design —
//! a slot reused by a new thread mid-window contributes one noisy delta.
//!
//! ### Artifacts
//!
//! A finished session yields a [`ProfileReport`]: folded stacks with
//! per-frame self/total sample counts (and estimated seconds at the
//! sampling rate) plus allocation deltas. Render it as a JSON artifact
//! ([`ProfileReport::to_json`]), Brendan-Gregg folded text
//! ([`ProfileReport::folded_text`], `a;b;c 42` per line — pipe into any
//! flamegraph toolchain), or a self-contained SVG flamegraph
//! ([`ProfileReport::flamegraph_svg`], hand-rolled, no scripts, hover
//! titles). The CLI exposes this as `--profile-out FILE` on every
//! command; `soi serve` exposes `GET /debug/profile?seconds=N`.

use crate::json::JsonWriter;
use crate::metrics::{register_counter, Counter};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Deepest span stack a slot can publish; deeper frames are dropped and
/// counted in [`ProfileReport::truncated_frames`].
pub const MAX_DEPTH: usize = 32;

/// Slots in the registration pool — the most threads that can publish
/// stacks concurrently. Far above any engine worker count; threads beyond
/// it simply go unprofiled (counted, never blocked).
pub const MAX_THREADS: usize = 256;

/// The default sampling rate (the classic off-by-one-from-100 that keeps
/// samples out of lockstep with 10ms-periodic work).
pub const DEFAULT_HZ: u32 = 99;

/// Sampling-rate bounds accepted by [`start`].
pub const MIN_HZ: u32 = 1;
/// See [`MIN_HZ`].
pub const MAX_HZ: u32 = 1000;

/// Sentinel for "this thread holds no slot".
const NO_SLOT: u32 = u32::MAX;

/// Seqlock read retries before the sampler counts a dropped sample.
const READ_RETRIES: usize = 8;

/// Whether a profiling session is active (the only cost on the span hot
/// path while profiling is off is one relaxed load of this flag).
static ACTIVE: AtomicBool = AtomicBool::new(false);

/// Session generation: bumped by every [`start`] so slots whose published
/// stack belongs to a previous session are reset on first touch instead
/// of leaking stale frames into the new one.
static SESSION_GEN: AtomicU64 = AtomicU64::new(0);

/// Frames not pushed because a stack hit [`MAX_DEPTH`].
static TRUNCATED: AtomicU64 = AtomicU64::new(0);

/// Pushes that found the slot pool exhausted.
static UNREGISTERED: AtomicU64 = AtomicU64::new(0);

/// One thread's published span stack.
struct StackSlot {
    /// Seqlock sequence: odd while the owner is writing.
    seq: AtomicU64,
    /// Live stack depth (prefix of `frames`).
    len: AtomicU32,
    /// Interned span-name ids, bottom of the stack first.
    frames: [AtomicU32; MAX_DEPTH],
    /// Cumulative bytes allocated by the owning thread while profiling
    /// (fed by [`note_alloc`]; the sampler differences successive reads).
    alloc_bytes: AtomicU64,
    /// Session generation the published stack belongs to.
    session: AtomicU64,
    /// Slot ownership flag (claimed by CAS, released on thread exit).
    in_use: AtomicBool,
}

impl StackSlot {
    fn new() -> Self {
        Self {
            seq: AtomicU64::new(0),
            len: AtomicU32::new(0),
            frames: std::array::from_fn(|_| AtomicU32::new(0)),
            alloc_bytes: AtomicU64::new(0),
            session: AtomicU64::new(0),
            in_use: AtomicBool::new(false),
        }
    }
}

/// The slot pool storage. [`start`] initialises it before flipping
/// [`ACTIVE`]; the allocator hook only ever calls the non-initialising
/// accessor [`slots_if_init`].
static SLOTS: OnceLock<Vec<StackSlot>> = OnceLock::new();

/// The slot pool, allocated on first use (never from inside the
/// allocator: [`note_alloc`] only reads an already-initialised pool).
fn slots() -> &'static [StackSlot] {
    SLOTS.get_or_init(|| (0..MAX_THREADS).map(|_| StackSlot::new()).collect())
}

/// The already-initialised slot pool, if any (allocation-free accessor
/// for the allocator hook; `OnceLock::get` never allocates).
fn slots_if_init() -> Option<&'static [StackSlot]> {
    SLOTS.get().map(Vec::as_slice)
}

/// Interned span names, id = index. Names are `&'static str`, so the
/// table never copies; the per-thread cache below keeps the hot path off
/// this lock.
fn names() -> &'static Mutex<Vec<&'static str>> {
    static NAMES: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    NAMES.get_or_init(|| Mutex::new(Vec::new()))
}

fn intern_global(name: &'static str) -> u32 {
    let mut table = match names().lock() {
        Ok(t) => t,
        Err(poisoned) => poisoned.into_inner(),
    };
    if let Some(pos) = table.iter().position(|n| *n == name) {
        return pos as u32;
    }
    table.push(name);
    (table.len() - 1) as u32
}

thread_local! {
    /// This thread's slot index (`NO_SLOT` = none). Const-initialised so
    /// the allocator hook can read it without a lazy-init branch.
    static SLOT_ID: Cell<u32> = const { Cell::new(NO_SLOT) };
    /// Releases the slot when the thread exits.
    static SLOT_GUARD: RefCell<Option<SlotGuard>> = const { RefCell::new(None) };
    /// Per-thread intern cache keyed by the name's pointer identity
    /// (distinct static strings with equal text resolve to one id via the
    /// global table; duplicate pointers just cost one extra cache entry).
    static NAME_CACHE: RefCell<Vec<(usize, u32)>> = const { RefCell::new(Vec::new()) };
}

struct SlotGuard {
    idx: u32,
}

impl Drop for SlotGuard {
    fn drop(&mut self) {
        // Stop the allocator hook first, then zero the published stack
        // under the seqlock, then release ownership.
        let _ = SLOT_ID.try_with(|id| id.set(NO_SLOT));
        if let Some(slots) = slots_if_init() {
            let slot = &slots[self.idx as usize];
            slot.seq.fetch_add(1, Ordering::Release);
            slot.len.store(0, Ordering::Relaxed);
            slot.seq.fetch_add(1, Ordering::Release);
            slot.in_use.store(false, Ordering::Release);
        }
    }
}

fn intern(name: &'static str) -> u32 {
    let key = name.as_ptr() as usize;
    NAME_CACHE
        .try_with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some(&(_, id)) = cache.iter().find(|(k, _)| *k == key) {
                return id;
            }
            let id = intern_global(name);
            cache.push((key, id));
            id
        })
        .unwrap_or_else(|_| intern_global(name))
}

/// Claims (or returns) the calling thread's slot index.
fn my_slot() -> Option<u32> {
    let current = SLOT_ID.try_with(Cell::get).ok()?;
    if current != NO_SLOT {
        return Some(current);
    }
    let pool = slots();
    for (i, slot) in pool.iter().enumerate() {
        if slot
            .in_use
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            let idx = i as u32;
            // Fresh ownership: reset the allocation odometer so the
            // sampler's first delta for this slot starts from zero.
            slot.alloc_bytes.store(0, Ordering::Relaxed);
            slot.session.store(0, Ordering::Relaxed);
            let installed = SLOT_GUARD
                .try_with(|guard| {
                    *guard.borrow_mut() = Some(SlotGuard { idx });
                })
                .is_ok();
            if !installed {
                // Thread is tearing down; hand the slot straight back.
                slot.in_use.store(false, Ordering::Release);
                return None;
            }
            let _ = SLOT_ID.try_with(|id| id.set(idx));
            return Some(idx);
        }
    }
    UNREGISTERED.fetch_add(1, Ordering::Relaxed);
    None
}

/// Pushes `name` onto the calling thread's published stack. Returns
/// whether a frame was actually pushed (the span guard pops only then).
///
/// When no session is active this is one relaxed load and a branch.
#[inline]
pub(crate) fn push_frame(name: &'static str) -> bool {
    if !ACTIVE.load(Ordering::Relaxed) {
        return false;
    }
    push_frame_slow(name)
}

#[cold]
fn push_frame_slow(name: &'static str) -> bool {
    let Some(idx) = my_slot() else {
        return false;
    };
    let slot = &slots()[idx as usize];
    // Stale stack from a previous session: reset before the first push.
    let gen = SESSION_GEN.load(Ordering::Relaxed);
    let mut len = slot.len.load(Ordering::Relaxed);
    if slot.session.load(Ordering::Relaxed) != gen {
        slot.session.store(gen, Ordering::Relaxed);
        len = 0;
    }
    if len as usize >= MAX_DEPTH {
        TRUNCATED.fetch_add(1, Ordering::Relaxed);
        return false;
    }
    let name_id = intern(name);
    slot.seq.fetch_add(1, Ordering::Release);
    slot.frames[len as usize].store(name_id, Ordering::Relaxed);
    slot.len.store(len + 1, Ordering::Relaxed);
    slot.seq.fetch_add(1, Ordering::Release);
    true
}

/// Pops the most recent frame named `name` from the published stack
/// (truncating anything above it — tolerant of unbalanced `begin`/`end`
/// pairs and of frames pushed before the session started).
#[inline]
pub(crate) fn pop_frame(name: &'static str) {
    if !ACTIVE.load(Ordering::Relaxed) {
        return;
    }
    pop_frame_slow(name);
}

#[cold]
fn pop_frame_slow(name: &'static str) {
    let Ok(idx) = SLOT_ID.try_with(Cell::get) else {
        return;
    };
    if idx == NO_SLOT {
        return;
    }
    let slot = &slots()[idx as usize];
    if slot.session.load(Ordering::Relaxed) != SESSION_GEN.load(Ordering::Relaxed) {
        return;
    }
    let name_id = intern(name);
    let len = slot.len.load(Ordering::Relaxed);
    let mut new_len = len;
    for i in (0..len).rev() {
        if slot.frames[i as usize].load(Ordering::Relaxed) == name_id {
            new_len = i;
            break;
        }
    }
    if new_len == len {
        return; // no matching open frame (pushed before the session began)
    }
    slot.seq.fetch_add(1, Ordering::Release);
    slot.len.store(new_len, Ordering::Relaxed);
    slot.seq.fetch_add(1, Ordering::Release);
}

/// Adds an allocation's bytes to the calling thread's slot while a
/// session is active. Called from inside the global allocator: must not
/// allocate, take locks, or lazily initialise anything.
#[inline]
pub(crate) fn note_alloc(bytes: usize) {
    if !ACTIVE.load(Ordering::Relaxed) {
        return;
    }
    let Ok(idx) = SLOT_ID.try_with(Cell::get) else {
        return;
    };
    if idx == NO_SLOT {
        return;
    }
    if let Some(slots) = slots_if_init() {
        slots[idx as usize]
            .alloc_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }
}

/// Profiler metric instruments (`soi_profile_*`).
pub struct ProfileMetrics {
    /// `soi_profile_samples_total`: stack snapshots taken by the sampler
    /// (busy and idle).
    pub samples: &'static Counter,
    /// `soi_profile_dropped_samples_total`: snapshots abandoned after the
    /// seqlock retry budget.
    pub dropped: &'static Counter,
}

/// Registers (idempotently) and returns the profiler metrics.
pub fn metrics() -> &'static ProfileMetrics {
    static METRICS: OnceLock<ProfileMetrics> = OnceLock::new();
    METRICS.get_or_init(|| ProfileMetrics {
        samples: register_counter(
            "soi_profile_samples_total",
            "Span-stack snapshots taken by the sampling profiler",
        ),
        dropped: register_counter(
            "soi_profile_dropped_samples_total",
            "Profiler snapshots dropped after exhausting seqlock read retries",
        ),
    })
}

/// Why [`start`] refused to begin a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StartError {
    /// Another session is already running (one window at a time).
    AlreadyRunning,
    /// The requested rate is outside `[MIN_HZ, MAX_HZ]`.
    BadRate(u32),
}

impl std::fmt::Display for StartError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StartError::AlreadyRunning => write!(f, "a profiling session is already running"),
            StartError::BadRate(hz) => {
                write!(f, "profile rate {hz} Hz outside [{MIN_HZ}, {MAX_HZ}]")
            }
        }
    }
}

/// What the sampler accumulated for one folded stack.
#[derive(Debug, Default, Clone, Copy)]
struct StackAgg {
    count: u64,
    alloc_bytes: u64,
}

/// Everything the sampler thread counts over a session.
#[derive(Debug, Default)]
struct Accum {
    stacks: HashMap<Vec<u32>, StackAgg>,
    samples: u64,
    idle_samples: u64,
    dropped_samples: u64,
}

struct Session {
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<Accum>,
    hz: u32,
    started: Instant,
}

fn session_cell() -> &'static Mutex<Option<Session>> {
    static SESSION: OnceLock<Mutex<Option<Session>>> = OnceLock::new();
    SESSION.get_or_init(|| Mutex::new(None))
}

fn last_report_cell() -> &'static Mutex<Option<Arc<ProfileReport>>> {
    static LAST: OnceLock<Mutex<Option<Arc<ProfileReport>>>> = OnceLock::new();
    LAST.get_or_init(|| Mutex::new(None))
}

/// Whether a profiling session is currently active.
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Starts a profiling session sampling every published span stack at
/// `hz`. One session at a time, process-wide.
///
/// # Errors
/// [`StartError::AlreadyRunning`] when a session is in progress (the
/// serve layer maps this to 503); [`StartError::BadRate`] for an
/// out-of-range rate.
pub fn start(hz: u32) -> Result<(), StartError> {
    if !(MIN_HZ..=MAX_HZ).contains(&hz) {
        return Err(StartError::BadRate(hz));
    }
    let mut session = match session_cell().lock() {
        Ok(s) => s,
        Err(poisoned) => poisoned.into_inner(),
    };
    if session.is_some() {
        return Err(StartError::AlreadyRunning);
    }
    // Initialise the pool and the metrics outside the hot path (the
    // allocator hook relies on the pool existing before ACTIVE flips).
    let _ = slots();
    let _ = metrics();
    SESSION_GEN.fetch_add(1, Ordering::Relaxed);
    let stop = Arc::new(AtomicBool::new(false));
    let sampler_stop = Arc::clone(&stop);
    let handle = std::thread::Builder::new()
        .name("soi-profiler".to_string())
        .spawn(move || sampler_loop(&sampler_stop, hz))
        .map_err(|_| StartError::AlreadyRunning)?;
    *session = Some(Session {
        stop,
        handle,
        hz,
        started: Instant::now(),
    });
    // Only now do spans start publishing: the sampler exists, the pool is
    // initialised.
    ACTIVE.store(true, Ordering::Release);
    Ok(())
}

/// Stops the active session and returns its report (also retained for
/// [`last_report`]). `None` when no session was running.
pub fn stop() -> Option<Arc<ProfileReport>> {
    let taken = {
        let mut session = match session_cell().lock() {
            Ok(s) => s,
            Err(poisoned) => poisoned.into_inner(),
        };
        session.take()?
    };
    // Order matters: silence the hot path, then stop the sampler.
    ACTIVE.store(false, Ordering::Release);
    taken.stop.store(true, Ordering::Release);
    let accum = taken.handle.join().unwrap_or_default();
    let report = Arc::new(ProfileReport::build(
        taken.hz,
        taken.started.elapsed(),
        &accum,
    ));
    if let Ok(mut last) = last_report_cell().lock() {
        *last = Some(Arc::clone(&report));
    }
    Some(report)
}

/// The most recent completed session's report, if any (powers the
/// `/status` self-time table).
pub fn last_report() -> Option<Arc<ProfileReport>> {
    last_report_cell().lock().ok()?.clone()
}

/// One seqlock-consistent snapshot of a slot: (frames, alloc odometer).
fn read_slot(slot: &StackSlot, buf: &mut Vec<u32>) -> Option<u64> {
    for _ in 0..READ_RETRIES {
        let s1 = slot.seq.load(Ordering::Acquire);
        if !s1.is_multiple_of(2) {
            std::hint::spin_loop();
            continue;
        }
        buf.clear();
        let len = (slot.len.load(Ordering::Relaxed) as usize).min(MAX_DEPTH);
        for frame in &slot.frames[..len] {
            buf.push(frame.load(Ordering::Relaxed));
        }
        let alloc = slot.alloc_bytes.load(Ordering::Relaxed);
        let s2 = slot.seq.load(Ordering::Acquire);
        if s1 == s2 {
            return Some(alloc);
        }
    }
    None
}

fn sampler_loop(stop: &AtomicBool, hz: u32) -> Accum {
    let period = Duration::from_secs_f64(1.0 / f64::from(hz));
    let mut accum = Accum::default();
    let mut buf: Vec<u32> = Vec::with_capacity(MAX_DEPTH);
    // Per-slot allocation odometer reading from the previous pass.
    let mut last_alloc: Vec<Option<u64>> = vec![None; MAX_THREADS];
    let gen = SESSION_GEN.load(Ordering::Relaxed);
    let m = metrics();
    let mut next = Instant::now() + period;
    loop {
        if stop.load(Ordering::Acquire) {
            return accum;
        }
        let now = Instant::now();
        if now < next {
            std::thread::sleep(next - now);
        }
        next += period;
        for (i, slot) in slots().iter().enumerate() {
            if !slot.in_use.load(Ordering::Acquire) {
                last_alloc[i] = None;
                continue;
            }
            if slot.session.load(Ordering::Relaxed) != gen {
                continue; // registered, but has not pushed this session
            }
            match read_slot(slot, &mut buf) {
                None => {
                    accum.dropped_samples += 1;
                    m.dropped.inc();
                }
                Some(alloc) => {
                    m.samples.inc();
                    let delta = match last_alloc[i] {
                        // `saturating_sub` guards slot reuse between passes.
                        Some(prev) => alloc.saturating_sub(prev),
                        None => 0,
                    };
                    last_alloc[i] = Some(alloc);
                    if buf.is_empty() {
                        accum.idle_samples += 1;
                    } else {
                        accum.samples += 1;
                        let agg = accum.stacks.entry(buf.clone()).or_default();
                        agg.count += 1;
                        agg.alloc_bytes += delta;
                    }
                }
            }
        }
    }
}

/// One folded stack: the span-name path root-first, how many samples
/// landed on it, and the allocation bytes attributed to it.
#[derive(Debug, Clone, PartialEq)]
pub struct FoldedStack {
    /// Span names, root (outermost) first.
    pub frames: Vec<String>,
    /// Samples observed with exactly this stack.
    pub count: u64,
    /// Allocation bytes attributed to this stack's leaf.
    pub alloc_bytes: u64,
}

/// Aggregate attribution for one span name across all stacks.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameStat {
    /// The span name.
    pub name: String,
    /// Samples where this frame was the leaf (own time).
    pub self_samples: u64,
    /// Samples where this frame was anywhere on the stack.
    pub total_samples: u64,
    /// Allocation bytes attributed while this frame was the leaf.
    pub self_alloc_bytes: u64,
}

/// A finished profiling session.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// Sampling rate the session ran at.
    pub hz: u32,
    /// Session wall-clock length in seconds.
    pub duration_secs: f64,
    /// Samples that landed on a non-empty stack.
    pub samples: u64,
    /// Samples of registered threads with an empty stack (between spans).
    pub idle_samples: u64,
    /// Samples abandoned after the seqlock retry budget.
    pub dropped_samples: u64,
    /// Frames not published because a stack hit [`MAX_DEPTH`]
    /// (process-lifetime counter snapshot).
    pub truncated_frames: u64,
    /// Folded stacks, most sampled first.
    pub stacks: Vec<FoldedStack>,
    /// Per-frame attribution, largest self time first.
    pub frames: Vec<FrameStat>,
}

impl ProfileReport {
    fn build(hz: u32, duration: Duration, accum: &Accum) -> Self {
        let table: Vec<&'static str> = match names().lock() {
            Ok(t) => t.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        };
        let resolve = |id: u32| -> String {
            table
                .get(id as usize)
                .copied()
                .unwrap_or("<unknown>")
                .to_string()
        };
        let mut stacks: Vec<FoldedStack> = accum
            .stacks
            .iter()
            .map(|(ids, agg)| FoldedStack {
                frames: ids.iter().map(|&id| resolve(id)).collect(),
                count: agg.count,
                alloc_bytes: agg.alloc_bytes,
            })
            .collect();
        stacks.sort_by(|a, b| b.count.cmp(&a.count).then_with(|| a.frames.cmp(&b.frames)));

        let mut by_name: HashMap<&str, FrameStat> = HashMap::new();
        for stack in &stacks {
            for (depth, name) in stack.frames.iter().enumerate() {
                // Count each name once per stack for total time, even if
                // it appears at several depths (recursion).
                if stack.frames[..depth].iter().any(|n| n == name) {
                    continue;
                }
                let entry = by_name.entry(name).or_insert_with(|| FrameStat {
                    name: name.clone(),
                    self_samples: 0,
                    total_samples: 0,
                    self_alloc_bytes: 0,
                });
                entry.total_samples += stack.count;
            }
            if let Some(leaf) = stack.frames.last() {
                if let Some(entry) = by_name.get_mut(leaf.as_str()) {
                    entry.self_samples += stack.count;
                    entry.self_alloc_bytes += stack.alloc_bytes;
                }
            }
        }
        let mut frames: Vec<FrameStat> = by_name.into_values().collect();
        frames.sort_by(|a, b| {
            b.self_samples
                .cmp(&a.self_samples)
                .then_with(|| b.total_samples.cmp(&a.total_samples))
                .then_with(|| a.name.cmp(&b.name))
        });

        Self {
            hz,
            duration_secs: duration.as_secs_f64(),
            samples: accum.samples,
            idle_samples: accum.idle_samples,
            dropped_samples: accum.dropped_samples,
            truncated_frames: TRUNCATED.load(Ordering::Relaxed),
            stacks,
            frames,
        }
    }

    /// Estimated seconds represented by `samples` at this session's rate.
    pub fn samples_to_secs(&self, samples: u64) -> f64 {
        samples as f64 / f64::from(self.hz)
    }

    /// Renders the JSON artifact (what `--profile-out FILE` writes and
    /// `soi check-artifacts --profile` validates).
    pub fn to_json(&self) -> String {
        let mut prof = JsonWriter::object();
        prof.field_u64("hz", u64::from(self.hz));
        prof.field_f64("duration_secs", self.duration_secs);
        prof.field_u64("samples", self.samples);
        prof.field_u64("idle_samples", self.idle_samples);
        prof.field_u64("dropped_samples", self.dropped_samples);
        prof.field_u64("truncated_frames", self.truncated_frames);
        let mut stacks = JsonWriter::array();
        for stack in &self.stacks {
            let mut obj = JsonWriter::object();
            obj.field_str("stack", &stack.frames.join(";"));
            obj.field_u64("count", stack.count);
            obj.field_u64("alloc_bytes", stack.alloc_bytes);
            stacks.elem_raw(&obj.finish());
        }
        prof.field_raw("stacks", &stacks.finish());
        let mut frames = JsonWriter::array();
        for frame in &self.frames {
            let mut obj = JsonWriter::object();
            obj.field_str("name", &frame.name);
            obj.field_u64("self_samples", frame.self_samples);
            obj.field_u64("total_samples", frame.total_samples);
            obj.field_f64("self_secs", self.samples_to_secs(frame.self_samples));
            obj.field_f64("total_secs", self.samples_to_secs(frame.total_samples));
            obj.field_u64("self_alloc_bytes", frame.self_alloc_bytes);
            frames.elem_raw(&obj.finish());
        }
        prof.field_raw("frames", &frames.finish());
        let mut doc = JsonWriter::object();
        doc.field_raw("profile", &prof.finish());
        doc.finish()
    }

    /// Renders Brendan-Gregg folded text: one `root;...;leaf count` line
    /// per stack, ready for any flamegraph toolchain.
    pub fn folded_text(&self) -> String {
        let mut out = String::new();
        for stack in &self.stacks {
            out.push_str(&stack.frames.join(";"));
            out.push(' ');
            out.push_str(&stack.count.to_string());
            out.push('\n');
        }
        out
    }

    /// Renders a self-contained SVG flamegraph (icicle layout, root at
    /// the top; hover a frame for name, samples, and share). No external
    /// assets, no scripts — viewable in any browser.
    pub fn flamegraph_svg(&self) -> String {
        flamegraph_svg(self)
    }
}

// --- SVG flamegraph rendering -------------------------------------------

struct FlameNode {
    name: String,
    total: u64,
    children: Vec<FlameNode>,
}

impl FlameNode {
    fn child(&mut self, name: &str) -> &mut FlameNode {
        // Positional find to keep the borrow checker out of recursion.
        if let Some(pos) = self.children.iter().position(|c| c.name == name) {
            return &mut self.children[pos];
        }
        self.children.push(FlameNode {
            name: name.to_string(),
            total: 0,
            children: Vec::new(),
        });
        let last = self.children.len() - 1;
        &mut self.children[last]
    }

    fn depth(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(FlameNode::depth)
            .max()
            .unwrap_or(0)
    }
}

/// A warm, deterministic fill colour derived from the frame name.
fn frame_color(name: &str) -> String {
    let mut hash: u32 = 2166136261;
    for byte in name.bytes() {
        hash ^= u32::from(byte);
        hash = hash.wrapping_mul(16777619);
    }
    let r = 205 + (hash % 50);
    let g = 80 + ((hash >> 8) % 120);
    let b = (hash >> 16) % 60;
    format!("rgb({r},{g},{b})")
}

fn xml_escape(text: &str) -> String {
    text.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

const SVG_WIDTH: f64 = 1200.0;
const FRAME_HEIGHT: f64 = 17.0;
const HEADER_HEIGHT: f64 = 34.0;

fn flamegraph_svg(report: &ProfileReport) -> String {
    let mut root = FlameNode {
        name: "all".to_string(),
        total: 0,
        children: Vec::new(),
    };
    root.total = report.stacks.iter().map(|s| s.count).sum();
    for stack in &report.stacks {
        let mut node = &mut root;
        for frame in &stack.frames {
            node = node.child(frame);
            node.total += stack.count;
        }
    }
    let depth = root.depth();
    let height = HEADER_HEIGHT + depth as f64 * FRAME_HEIGHT + 10.0;
    let mut svg = String::new();
    svg.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{SVG_WIDTH:.0}\" \
         height=\"{height:.0}\" viewBox=\"0 0 {SVG_WIDTH:.0} {height:.0}\" \
         font-family=\"monospace\" font-size=\"11\">\n"
    ));
    svg.push_str(&format!(
        "<rect x=\"0\" y=\"0\" width=\"{SVG_WIDTH:.0}\" height=\"{height:.0}\" \
         fill=\"#f8f8f8\"/>\n"
    ));
    svg.push_str(&format!(
        "<text x=\"8\" y=\"16\">soi profile: {} samples at {} Hz over {:.2}s \
         ({} idle, {} dropped)</text>\n",
        report.samples,
        report.hz,
        report.duration_secs,
        report.idle_samples,
        report.dropped_samples
    ));
    if root.total > 0 {
        render_node(&mut svg, &root, 0.0, SVG_WIDTH, 0, root.total);
    } else {
        svg.push_str("<text x=\"8\" y=\"48\">no samples landed on a span stack</text>\n");
    }
    svg.push_str("</svg>\n");
    svg
}

fn render_node(svg: &mut String, node: &FlameNode, x: f64, width: f64, depth: usize, total: u64) {
    if width < 0.5 {
        return;
    }
    let y = HEADER_HEIGHT + depth as f64 * FRAME_HEIGHT;
    let pct = 100.0 * node.total as f64 / total as f64;
    let name = xml_escape(&node.name);
    svg.push_str(&format!(
        "<g><title>{name}: {} samples ({pct:.1}%)</title>\
         <rect x=\"{x:.2}\" y=\"{y:.1}\" width=\"{width:.2}\" height=\"{:.1}\" \
         fill=\"{}\" stroke=\"#f8f8f8\" stroke-width=\"0.5\"/>",
        node.total,
        FRAME_HEIGHT - 1.0,
        frame_color(&node.name),
    ));
    // Label only frames wide enough to hold a few characters.
    if width >= 40.0 {
        let max_chars = ((width - 6.0) / 6.7) as usize;
        let label: String = if name.len() > max_chars {
            name.chars()
                .take(max_chars.saturating_sub(1))
                .chain("…".chars())
                .collect()
        } else {
            name.clone()
        };
        svg.push_str(&format!(
            "<text x=\"{:.2}\" y=\"{:.1}\" fill=\"#222\">{label}</text>",
            x + 3.0,
            y + FRAME_HEIGHT - 5.0,
        ));
    }
    svg.push_str("</g>\n");
    let mut child_x = x;
    for child in &node.children {
        let child_width = width * child.total as f64 / node.total as f64;
        render_node(svg, child, child_x, child_width, depth + 1, total);
        child_x += child_width;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_from(stacks: Vec<(Vec<&str>, u64, u64)>) -> ProfileReport {
        // Build through the public path: intern names, fold, then build.
        let mut accum = Accum::default();
        for (frames, count, alloc) in stacks {
            let ids: Vec<u32> = frames.iter().map(|n| intern_global(leak(n))).collect();
            let agg = accum.stacks.entry(ids).or_default();
            agg.count += count;
            agg.alloc_bytes += alloc;
            accum.samples += count;
        }
        ProfileReport::build(99, Duration::from_secs(1), &accum)
    }

    fn leak(s: &str) -> &'static str {
        Box::leak(s.to_string().into_boxed_str())
    }

    #[test]
    fn folded_text_and_self_total_attribution() {
        let report = report_from(vec![
            (vec!["cli.query", "soi.query", "filtering"], 30, 300),
            (vec!["cli.query", "soi.query", "refinement"], 10, 0),
            (vec!["cli.query", "soi.query"], 10, 0),
        ]);
        assert_eq!(report.samples, 50);
        let folded = report.folded_text();
        assert!(folded.contains("cli.query;soi.query;filtering 30"));
        assert!(folded.contains("cli.query;soi.query;refinement 10"));
        let soi = report
            .frames
            .iter()
            .find(|f| f.name == "soi.query")
            .expect("soi.query frame");
        assert_eq!(soi.total_samples, 50);
        assert_eq!(soi.self_samples, 10);
        let filtering = report
            .frames
            .iter()
            .find(|f| f.name == "filtering")
            .expect("filtering frame");
        assert_eq!(filtering.self_samples, 30);
        assert_eq!(filtering.total_samples, 30);
        assert_eq!(filtering.self_alloc_bytes, 300);
        // Self times partition the samples.
        let self_sum: u64 = report.frames.iter().map(|f| f.self_samples).sum();
        assert_eq!(self_sum, report.samples);
    }

    #[test]
    fn json_artifact_is_valid_and_consistent() {
        let report = report_from(vec![
            (vec!["cli.batch", "engine.batch"], 7, 0),
            (vec!["cli.batch"], 3, 128),
        ]);
        let doc = crate::json::parse(&report.to_json()).expect("profile JSON parses");
        let prof = doc.get("profile").expect("profile object");
        assert_eq!(prof.get("samples").and_then(|v| v.as_f64()), Some(10.0));
        let stacks = prof
            .get("stacks")
            .and_then(|v| v.as_arr())
            .expect("stacks array");
        let total: f64 = stacks
            .iter()
            .map(|s| s.get("count").and_then(|v| v.as_f64()).unwrap_or(0.0))
            .sum();
        assert_eq!(total, 10.0);
        assert!(prof.get("frames").and_then(|v| v.as_arr()).is_some());
    }

    #[test]
    fn svg_renders_nested_frames() {
        let report = report_from(vec![
            (vec!["serve.request", "engine.query", "soi.query"], 90, 0),
            (vec!["serve.request"], 10, 0),
        ]);
        let svg = report.flamegraph_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.contains("soi.query"));
        assert!(svg.contains("<title>serve.request: 100 samples (100.0%)</title>"));
    }

    #[test]
    fn recursion_counts_total_once_per_stack() {
        let report = report_from(vec![(vec!["a", "b", "a"], 5, 0)]);
        let a = report.frames.iter().find(|f| f.name == "a").unwrap();
        assert_eq!(a.total_samples, 5, "recursive frame counted once");
        assert_eq!(a.self_samples, 5, "leaf self time still attributed");
    }

    #[test]
    fn start_rejects_bad_rates_and_overlap() {
        assert_eq!(start(0), Err(StartError::BadRate(0)));
        assert_eq!(start(MAX_HZ + 1), Err(StartError::BadRate(MAX_HZ + 1)));
        // Overlap behaviour is exercised end-to-end in tests/profile.rs
        // (session state is process-global; unit tests stay session-free).
    }

    #[test]
    fn empty_report_renders_everywhere() {
        let report = report_from(Vec::new());
        assert_eq!(report.samples, 0);
        assert!(report.folded_text().is_empty());
        assert!(report.flamegraph_svg().contains("no samples"));
        assert!(crate::json::parse(&report.to_json()).is_ok());
    }
}
