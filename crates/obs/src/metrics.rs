//! Process-wide metrics: counters, gauges, and latency histograms.
//!
//! Metrics are registered once by name ([`register_counter`],
//! [`register_gauge`], [`register_histogram`]) and live for the process
//! (`Box::leak`), so instruments are plain `&'static` handles that hot
//! paths can cache in `OnceLock`s and bump with a single atomic op — no
//! locking and no hashing on the record path. Registration is idempotent:
//! re-registering a name returns the existing instrument, which keeps
//! per-crate `register_metrics()` hooks and parallel tests safe.
//!
//! [`gather`] renders the whole registry in the Prometheus text
//! exposition format (the `soi metrics` CLI command); [`gather_prefixed`]
//! restricts to one name prefix, which tests use to stay independent of
//! whatever else the process has recorded.

use crate::json::write_f64;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Default histogram buckets for query-scale latencies, in seconds
/// (100 µs – 10 s, roughly logarithmic; Prometheus-style `le` bounds).
pub const DEFAULT_LATENCY_BUCKETS: &[f64] = &[
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
    5.0, 10.0,
];

/// Default histogram buckets for per-query heap-allocation counts
/// (roughly logarithmic; a warm scratch-reusing query sits in the low
/// thousands, a cold one an order of magnitude higher).
pub const ALLOC_COUNT_BUCKETS: &[f64] = &[
    16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0, 262144.0, 1048576.0,
];

/// Default histogram buckets for per-query peak heap bytes (4 KiB – 1 GiB,
/// powers of four).
pub const ALLOC_BYTES_BUCKETS: &[f64] = &[
    4096.0,
    16384.0,
    65536.0,
    262144.0,
    1048576.0,
    4194304.0,
    16777216.0,
    67108864.0,
    268435456.0,
    1073741824.0,
];

/// A monotonically increasing integer counter.
#[derive(Debug)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    const fn new() -> Self {
        Self {
            value: AtomicU64::new(0),
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways (thread counts, cache sizes).
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    const fn new() -> Self {
        Self {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: f64) {
        let _ = self
            .bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                Some((f64::from_bits(bits) + delta).to_bits())
            });
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket histogram with cumulative (`le`) bucket counts, in the
/// Prometheus style. Percentiles ([`HistogramSnapshot::quantile`]) are
/// estimated by linear interpolation inside the owning bucket.
#[derive(Debug)]
pub struct Histogram {
    /// Upper bounds, strictly increasing; an implicit `+Inf` bucket
    /// follows the last bound.
    bounds: Vec<f64>,
    /// Non-cumulative per-bucket counts, one per bound plus the `+Inf`
    /// overflow bucket.
    counts: Vec<AtomicU64>,
    /// Sum of observed values, as f64 bits (CAS-updated).
    sum_bits: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        let bounds: Vec<f64> = bounds.to_vec();
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        let counts = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Self {
            bounds,
            counts,
            sum_bits: AtomicU64::new(0f64.to_bits()),
            count: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let _ = self
            .sum_bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                Some((f64::from_bits(bits) + v).to_bits())
            });
    }

    /// Records one observation given as a [`std::time::Duration`].
    pub fn observe_duration(&self, d: std::time::Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Observations that exceeded the top finite bucket bound (landed in
    /// the implicit `+Inf` bucket). A non-zero overflow means the bucket
    /// layout saturates: quantile estimates are clamped to the top bound
    /// and under-report the true tail.
    pub fn overflow(&self) -> u64 {
        self.counts.last().map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// A consistent-enough point-in-time copy for rendering and
    /// percentile estimation.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            sum: self.sum(),
            count: self.count(),
        }
    }
}

/// Point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds (the final `+Inf` bucket is implicit).
    pub bounds: Vec<f64>,
    /// Non-cumulative per-bucket counts; `counts.len() == bounds.len()+1`.
    pub counts: Vec<u64>,
    /// Sum of observations.
    pub sum: f64,
    /// Number of observations.
    pub count: u64,
}

impl HistogramSnapshot {
    /// Observations above the top finite bound (the `+Inf` bucket count):
    /// the saturation counterpart of [`Histogram::overflow`]. When this is
    /// non-zero, [`quantile`](Self::quantile) estimates touching the tail
    /// are clamped to the largest finite bound.
    pub fn overflow(&self) -> u64 {
        self.counts.last().copied().unwrap_or(0)
    }

    /// Estimates the `q`-quantile (`0.0 ≤ q ≤ 1.0`) by linear
    /// interpolation inside the bucket that holds the target rank. Returns
    /// `None` when the histogram is empty. Values landing in the `+Inf`
    /// bucket are reported as the largest finite bound.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = q.clamp(0.0, 1.0) * self.count as f64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let upto = seen + c;
            if (upto as f64) >= rank {
                let Some(&hi) = self.bounds.get(i) else {
                    // +Inf bucket: the honest answer is "beyond the last
                    // bound"; report that bound.
                    return self.bounds.last().copied();
                };
                let lo = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let frac = ((rank - seen as f64) / c as f64).clamp(0.0, 1.0);
                return Some(lo + (hi - lo) * frac);
            }
            seen = upto;
        }
        self.bounds.last().copied()
    }

    /// Median estimate.
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> Option<f64> {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }
}

enum Instrument {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

struct Entry {
    name: &'static str,
    help: &'static str,
    instrument: Instrument,
}

fn registry() -> &'static Mutex<Vec<Entry>> {
    static REGISTRY: OnceLock<Mutex<Vec<Entry>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

fn with_registry<R>(f: impl FnOnce(&mut Vec<Entry>) -> R) -> R {
    // A poisoned registry only means some other panicking thread held the
    // lock mid-push; the Vec itself is still usable.
    let mut entries = match registry().lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    f(&mut entries)
}

/// Registers (or fetches) the counter `name`. The first registration wins;
/// later calls return the existing instrument and ignore `help`.
pub fn register_counter(name: &'static str, help: &'static str) -> &'static Counter {
    with_registry(|entries| {
        for e in entries.iter() {
            if e.name == name {
                if let Instrument::Counter(c) = e.instrument {
                    return c;
                }
            }
        }
        let c: &'static Counter = Box::leak(Box::new(Counter::new()));
        entries.push(Entry {
            name,
            help,
            instrument: Instrument::Counter(c),
        });
        c
    })
}

/// Registers (or fetches) the gauge `name`.
pub fn register_gauge(name: &'static str, help: &'static str) -> &'static Gauge {
    with_registry(|entries| {
        for e in entries.iter() {
            if e.name == name {
                if let Instrument::Gauge(g) = e.instrument {
                    return g;
                }
            }
        }
        let g: &'static Gauge = Box::leak(Box::new(Gauge::new()));
        entries.push(Entry {
            name,
            help,
            instrument: Instrument::Gauge(g),
        });
        g
    })
}

/// Registers (or fetches) the histogram `name` with the given bucket
/// upper bounds (strictly increasing; a `+Inf` bucket is implicit).
pub fn register_histogram(
    name: &'static str,
    help: &'static str,
    buckets: &[f64],
) -> &'static Histogram {
    with_registry(|entries| {
        for e in entries.iter() {
            if e.name == name {
                if let Instrument::Histogram(h) = e.instrument {
                    return h;
                }
            }
        }
        let h: &'static Histogram = Box::leak(Box::new(Histogram::new(buckets)));
        entries.push(Entry {
            name,
            help,
            instrument: Instrument::Histogram(h),
        });
        h
    })
}

fn fmt_bound(b: f64) -> String {
    let mut s = String::new();
    write_f64(&mut s, b);
    s
}

fn render_entry(out: &mut String, e: &Entry) {
    let _ = writeln!(out, "# HELP {} {}", e.name, e.help);
    match e.instrument {
        Instrument::Counter(c) => {
            let _ = writeln!(out, "# TYPE {} counter", e.name);
            let _ = writeln!(out, "{} {}", e.name, c.get());
        }
        Instrument::Gauge(g) => {
            let _ = writeln!(out, "# TYPE {} gauge", e.name);
            let mut v = String::new();
            write_f64(&mut v, g.get());
            let _ = writeln!(out, "{} {}", e.name, v);
        }
        Instrument::Histogram(h) => {
            let _ = writeln!(out, "# TYPE {} histogram", e.name);
            let snap = h.snapshot();
            let mut cumulative = 0u64;
            for (i, &b) in snap.bounds.iter().enumerate() {
                cumulative += snap.counts[i];
                let _ = writeln!(
                    out,
                    "{}_bucket{{le=\"{}\"}} {}",
                    e.name,
                    fmt_bound(b),
                    cumulative
                );
            }
            let _ = writeln!(out, "{}_bucket{{le=\"+Inf\"}} {}", e.name, snap.count);
            let mut sum = String::new();
            write_f64(&mut sum, snap.sum);
            let _ = writeln!(out, "{}_sum {}", e.name, sum);
            let _ = writeln!(out, "{}_count {}", e.name, snap.count);
            // Saturation guard: how many observations exceeded the top
            // finite bucket (quantiles are clamped for these).
            let _ = writeln!(out, "{}_overflow {}", e.name, snap.overflow());
        }
    }
}

/// Renders every registered metric in the Prometheus text exposition
/// format, sorted by name.
pub fn gather() -> String {
    gather_prefixed("")
}

/// Renders registered metrics whose name starts with `prefix` (tests use
/// a unique prefix to stay independent of the shared registry).
pub fn gather_prefixed(prefix: &str) -> String {
    with_registry(|entries| {
        let mut selected: Vec<&Entry> = entries
            .iter()
            .filter(|e| e.name.starts_with(prefix))
            .collect();
        selected.sort_by_key(|e| e.name);
        let mut out = String::new();
        for e in selected {
            render_entry(&mut out, e);
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts_and_registration_is_idempotent() {
        let a = register_counter("obs_test_counter_total", "test counter");
        let b = register_counter("obs_test_counter_total", "other help");
        assert!(std::ptr::eq(a, b));
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = register_gauge("obs_test_gauge", "test gauge");
        g.set(4.0);
        g.add(-1.5);
        assert_eq!(g.get(), 2.5);
    }

    #[test]
    fn histogram_buckets_and_percentiles() {
        let h = Histogram::new(&[1.0, 2.0, 4.0, 8.0]);
        for v in [0.5, 1.5, 1.5, 3.0, 3.0, 3.0, 5.0, 5.0, 7.0, 100.0] {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 10);
        assert_eq!(snap.counts, vec![1, 2, 3, 3, 1]);
        assert!((snap.sum - 129.5).abs() < 1e-9);
        // Rank 5 of 10 falls in the (2,4] bucket.
        let p50 = snap.p50().unwrap();
        assert!(p50 > 2.0 && p50 <= 4.0, "p50 = {p50}");
        // Rank 9.5 of 10 falls in the (4,8] bucket.
        let p95 = snap.p95().unwrap();
        assert!(p95 > 4.0 && p95 <= 8.0, "p95 = {p95}");
        // Rank 9.9 lands in the +Inf bucket → clamped to the last bound.
        assert_eq!(snap.p99(), Some(8.0));
        assert_eq!(Histogram::new(&[1.0]).snapshot().p50(), None);
    }

    #[test]
    fn overflow_counts_saturated_observations() {
        let h = Histogram::new(&[1.0, 10.0]);
        assert_eq!(h.overflow(), 0);
        h.observe(0.5);
        h.observe(10.0); // le="10" exactly: not overflow
        assert_eq!(h.overflow(), 0);
        h.observe(11.0);
        h.observe(1e9);
        assert_eq!(h.overflow(), 2);
        let snap = h.snapshot();
        assert_eq!(snap.overflow(), 2);
        // The tail quantile is clamped to the top finite bound — the
        // overflow count is what flags that the estimate saturated.
        assert_eq!(snap.quantile(1.0), Some(10.0));
        // And the saturation count reaches the text exposition.
        let hr = register_histogram("obs_sat_overflow_test", "saturation", &[1.0]);
        hr.observe(5.0);
        let text = gather_prefixed("obs_sat_overflow_test");
        assert!(
            text.contains("obs_sat_overflow_test_overflow 1"),
            "overflow line missing:\n{text}"
        );
    }

    #[test]
    fn quantile_interpolates_within_bucket() {
        let h = Histogram::new(&[10.0, 20.0]);
        for _ in 0..10 {
            h.observe(15.0);
        }
        let snap = h.snapshot();
        // All mass in (10,20]: q=0.5 → 10 + 10*0.5 = 15.
        assert!((snap.quantile(0.5).unwrap() - 15.0).abs() < 1e-9);
        assert!((snap.quantile(1.0).unwrap() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn prometheus_text_format() {
        let c = register_counter("obs_fmt_requests_total", "requests seen");
        c.add(7);
        let h = register_histogram("obs_fmt_latency_seconds", "latency", &[0.001, 0.01, 0.1]);
        h.observe(0.0005);
        h.observe(0.05);
        h.observe(3.0);
        let text = gather_prefixed("obs_fmt_");
        let expected = "\
# HELP obs_fmt_latency_seconds latency
# TYPE obs_fmt_latency_seconds histogram
obs_fmt_latency_seconds_bucket{le=\"0.001\"} 1
obs_fmt_latency_seconds_bucket{le=\"0.01\"} 1
obs_fmt_latency_seconds_bucket{le=\"0.1\"} 2
obs_fmt_latency_seconds_bucket{le=\"+Inf\"} 3
obs_fmt_latency_seconds_sum 3.0505
obs_fmt_latency_seconds_count 3
obs_fmt_latency_seconds_overflow 1
# HELP obs_fmt_requests_total requests seen
# TYPE obs_fmt_requests_total counter
obs_fmt_requests_total 7
";
        assert_eq!(text, expected);
    }

    #[test]
    fn gather_prefixed_filters() {
        register_counter("obs_filter_a_total", "a");
        register_counter("obs_filter_b_total", "b");
        let text = gather_prefixed("obs_filter_a");
        assert!(text.contains("obs_filter_a_total"));
        assert!(!text.contains("obs_filter_b_total"));
    }

    #[test]
    fn default_latency_buckets_are_increasing() {
        assert!(DEFAULT_LATENCY_BUCKETS.windows(2).all(|w| w[0] < w[1]));
        assert!(ALLOC_COUNT_BUCKETS.windows(2).all(|w| w[0] < w[1]));
        assert!(ALLOC_BYTES_BUCKETS.windows(2).all(|w| w[0] < w[1]));
    }
}
