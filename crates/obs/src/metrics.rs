//! Process-wide metrics: counters, gauges, and latency histograms.
//!
//! Metrics are registered once by name ([`register_counter`],
//! [`register_gauge`], [`register_histogram`]) and live for the process
//! (`Box::leak`), so instruments are plain `&'static` handles that hot
//! paths can cache in `OnceLock`s and bump with a single atomic op — no
//! locking and no hashing on the record path. Registration is idempotent:
//! re-registering a name returns the existing instrument, which keeps
//! per-crate `register_metrics()` hooks and parallel tests safe.
//!
//! [`gather`] renders the whole registry in the Prometheus text
//! exposition format (the `soi metrics` CLI command); [`gather_prefixed`]
//! restricts to one name prefix, which tests use to stay independent of
//! whatever else the process has recorded.

use crate::json::write_f64;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// The instant the process metrics clock was first touched. Callers that
/// care about accurate uptime ([`publish_process_metrics`]) should call
/// this (or that) once early at startup to pin the epoch.
pub fn process_epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Default histogram buckets for query-scale latencies, in seconds
/// (100 µs – 10 s, roughly logarithmic; Prometheus-style `le` bounds).
pub const DEFAULT_LATENCY_BUCKETS: &[f64] = &[
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
    5.0, 10.0,
];

/// Default histogram buckets for per-query heap-allocation counts
/// (roughly logarithmic; a warm scratch-reusing query sits in the low
/// thousands, a cold one an order of magnitude higher).
pub const ALLOC_COUNT_BUCKETS: &[f64] = &[
    16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0, 262144.0, 1048576.0,
];

/// Default histogram buckets for per-query peak heap bytes (4 KiB – 1 GiB,
/// powers of four).
pub const ALLOC_BYTES_BUCKETS: &[f64] = &[
    4096.0,
    16384.0,
    65536.0,
    262144.0,
    1048576.0,
    4194304.0,
    16777216.0,
    67108864.0,
    268435456.0,
    1073741824.0,
];

/// A monotonically increasing integer counter.
#[derive(Debug)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    const fn new() -> Self {
        Self {
            value: AtomicU64::new(0),
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways (thread counts, cache sizes).
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    const fn new() -> Self {
        Self {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: f64) {
        let _ = self
            .bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                Some((f64::from_bits(bits) + delta).to_bits())
            });
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket histogram with cumulative (`le`) bucket counts, in the
/// Prometheus style. Percentiles ([`HistogramSnapshot::quantile`]) are
/// estimated by linear interpolation inside the owning bucket.
#[derive(Debug)]
pub struct Histogram {
    /// Upper bounds, strictly increasing; an implicit `+Inf` bucket
    /// follows the last bound.
    bounds: Vec<f64>,
    /// Non-cumulative per-bucket counts, one per bound plus the `+Inf`
    /// overflow bucket.
    counts: Vec<AtomicU64>,
    /// Sum of observed values, as f64 bits (CAS-updated).
    sum_bits: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        let bounds: Vec<f64> = bounds.to_vec();
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        let counts = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Self {
            bounds,
            counts,
            sum_bits: AtomicU64::new(0f64.to_bits()),
            count: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let _ = self
            .sum_bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                Some((f64::from_bits(bits) + v).to_bits())
            });
    }

    /// Records one observation given as a [`std::time::Duration`].
    pub fn observe_duration(&self, d: std::time::Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Observations that exceeded the top finite bucket bound (landed in
    /// the implicit `+Inf` bucket). A non-zero overflow means the bucket
    /// layout saturates: quantile estimates are clamped to the top bound
    /// and under-report the true tail.
    pub fn overflow(&self) -> u64 {
        self.counts.last().map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// A consistent-enough point-in-time copy for rendering and
    /// percentile estimation.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            sum: self.sum(),
            count: self.count(),
        }
    }
}

/// Point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds (the final `+Inf` bucket is implicit).
    pub bounds: Vec<f64>,
    /// Non-cumulative per-bucket counts; `counts.len() == bounds.len()+1`.
    pub counts: Vec<u64>,
    /// Sum of observations.
    pub sum: f64,
    /// Number of observations.
    pub count: u64,
}

impl HistogramSnapshot {
    /// Observations above the top finite bound (the `+Inf` bucket count):
    /// the saturation counterpart of [`Histogram::overflow`]. When this is
    /// non-zero, [`quantile`](Self::quantile) estimates touching the tail
    /// are clamped to the largest finite bound.
    pub fn overflow(&self) -> u64 {
        self.counts.last().copied().unwrap_or(0)
    }

    /// Estimates the `q`-quantile (`0.0 ≤ q ≤ 1.0`) by linear
    /// interpolation inside the bucket that holds the target rank. Returns
    /// `None` when the histogram is empty. Values landing in the `+Inf`
    /// bucket are reported as the largest finite bound.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = q.clamp(0.0, 1.0) * self.count as f64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let upto = seen + c;
            if (upto as f64) >= rank {
                let Some(&hi) = self.bounds.get(i) else {
                    // +Inf bucket: the honest answer is "beyond the last
                    // bound"; report that bound.
                    return self.bounds.last().copied();
                };
                let lo = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let frac = ((rank - seen as f64) / c as f64).clamp(0.0, 1.0);
                return Some(lo + (hi - lo) * frac);
            }
            seen = upto;
        }
        self.bounds.last().copied()
    }

    /// Median estimate.
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> Option<f64> {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }
}

/// Sentinel tick marking a wheel slot that has never been written.
const EMPTY_SLOT: u64 = u64::MAX;

/// One slot of a [`WindowedHistogram`] wheel: a plain bucket array tagged
/// with the tick it currently belongs to.
#[derive(Debug)]
struct HistogramSlot {
    /// Tick this slot's contents belong to; [`EMPTY_SLOT`] = never used.
    tick: AtomicU64,
    counts: Vec<AtomicU64>,
    sum_bits: AtomicU64,
    count: AtomicU64,
}

impl HistogramSlot {
    fn new(n_counts: usize) -> Self {
        Self {
            tick: AtomicU64::new(EMPTY_SLOT),
            counts: (0..n_counts).map(|_| AtomicU64::new(0)).collect(),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            count: AtomicU64::new(0),
        }
    }

    /// Rotates the slot to `tick` if it still holds an older one. Exactly
    /// one racing thread wins the CAS and zeroes the slot; observations
    /// racing with the zeroing may be lost, which is acceptable for a
    /// rolling-window estimate (never for the cumulative instruments).
    fn rotate_to(&self, tick: u64) {
        let held = self.tick.load(Ordering::Acquire);
        if held == tick {
            return;
        }
        if self
            .tick
            .compare_exchange(held, tick, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
        {
            for c in &self.counts {
                c.store(0, Ordering::Relaxed);
            }
            self.sum_bits.store(0f64.to_bits(), Ordering::Relaxed);
            self.count.store(0, Ordering::Relaxed);
        }
    }
}

/// A rolling-window latency histogram: a wheel of `slots` sub-histograms,
/// each covering `slot_secs` seconds. Observations land in the slot for
/// the current tick (`elapsed / slot_secs`); a snapshot merges only the
/// slots whose tick is inside the window, so the merged view reflects the
/// last `slots × slot_secs` seconds rather than process lifetime.
///
/// Rotation is lock-free: the first observer of a new tick CAS-claims the
/// stale slot and zeroes it. Ticks are injectable ([`Self::observe_at`],
/// [`Self::snapshot_at`]) so rotation and merge behavior are
/// deterministically testable; the wall-clock entry points derive the
/// tick from [`process_epoch`].
#[derive(Debug)]
pub struct WindowedHistogram {
    bounds: Vec<f64>,
    slot_secs: u64,
    slots: Vec<HistogramSlot>,
}

impl WindowedHistogram {
    fn new(bounds: &[f64], slots: usize, slot_secs: u64) -> Self {
        debug_assert!(slots >= 1 && slot_secs >= 1);
        let bounds: Vec<f64> = bounds.to_vec();
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        let n_counts = bounds.len() + 1;
        Self {
            bounds,
            slot_secs,
            slots: (0..slots.max(1))
                .map(|_| HistogramSlot::new(n_counts))
                .collect(),
        }
    }

    /// Length of the full window in seconds (`slots × slot_secs`).
    pub fn window_secs(&self) -> u64 {
        self.slots.len() as u64 * self.slot_secs
    }

    fn current_tick(&self) -> u64 {
        process_epoch().elapsed().as_secs() / self.slot_secs
    }

    /// Records one observation at wall-clock time.
    pub fn observe(&self, v: f64) {
        self.observe_at(self.current_tick(), v);
    }

    /// Records one observation given as a [`std::time::Duration`].
    pub fn observe_duration(&self, d: std::time::Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Records one observation at an explicit tick (tests; monotone ticks
    /// expected — an observation older than the wheel is simply lost).
    pub fn observe_at(&self, tick: u64, v: f64) {
        let slot = &self.slots[(tick % self.slots.len() as u64) as usize];
        slot.rotate_to(tick);
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        slot.counts[idx].fetch_add(1, Ordering::Relaxed);
        slot.count.fetch_add(1, Ordering::Relaxed);
        let _ = slot
            .sum_bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                Some((f64::from_bits(bits) + v).to_bits())
            });
    }

    /// Merged snapshot of the window ending at wall-clock now.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.snapshot_at(self.current_tick())
    }

    /// Merged snapshot of the window `(now_tick - slots, now_tick]`: slots
    /// holding a tick outside that range are stale and excluded.
    pub fn snapshot_at(&self, now_tick: u64) -> HistogramSnapshot {
        let n = self.slots.len() as u64;
        let oldest = now_tick.saturating_sub(n - 1);
        let mut counts = vec![0u64; self.bounds.len() + 1];
        let mut sum = 0.0f64;
        let mut count = 0u64;
        for slot in &self.slots {
            let tick = slot.tick.load(Ordering::Acquire);
            if tick == EMPTY_SLOT || tick < oldest || tick > now_tick {
                continue;
            }
            for (acc, c) in counts.iter_mut().zip(&slot.counts) {
                *acc += c.load(Ordering::Relaxed);
            }
            sum += f64::from_bits(slot.sum_bits.load(Ordering::Relaxed));
            count += slot.count.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts,
            sum,
            count,
        }
    }
}

/// A rolling-window counter: the windowed sibling of [`Counter`], built on
/// the same tick wheel as [`WindowedHistogram`]. [`Self::sum`] reports
/// events inside the last `slots × slot_secs` seconds and therefore moves
/// both ways — it renders as a Prometheus gauge.
#[derive(Debug)]
pub struct WindowedCounter {
    slot_secs: u64,
    slots: Vec<(AtomicU64, AtomicU64)>, // (tick, value)
}

impl WindowedCounter {
    fn new(slots: usize, slot_secs: u64) -> Self {
        debug_assert!(slots >= 1 && slot_secs >= 1);
        Self {
            slot_secs,
            slots: (0..slots.max(1))
                .map(|_| (AtomicU64::new(EMPTY_SLOT), AtomicU64::new(0)))
                .collect(),
        }
    }

    /// Length of the full window in seconds (`slots × slot_secs`).
    pub fn window_secs(&self) -> u64 {
        self.slots.len() as u64 * self.slot_secs
    }

    fn current_tick(&self) -> u64 {
        process_epoch().elapsed().as_secs() / self.slot_secs
    }

    /// Adds one at wall-clock time.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` at wall-clock time.
    pub fn add(&self, n: u64) {
        self.add_at(self.current_tick(), n);
    }

    /// Adds `n` at an explicit tick (tests).
    pub fn add_at(&self, tick: u64, n: u64) {
        let (slot_tick, value) = &self.slots[(tick % self.slots.len() as u64) as usize];
        let held = slot_tick.load(Ordering::Acquire);
        if held != tick
            && slot_tick
                .compare_exchange(held, tick, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
        {
            value.store(0, Ordering::Relaxed);
        }
        value.fetch_add(n, Ordering::Relaxed);
    }

    /// Events within the window ending at wall-clock now.
    pub fn sum(&self) -> u64 {
        self.sum_at(self.current_tick())
    }

    /// Events within the window `(now_tick - slots, now_tick]`.
    pub fn sum_at(&self, now_tick: u64) -> u64 {
        let n = self.slots.len() as u64;
        let oldest = now_tick.saturating_sub(n - 1);
        self.slots
            .iter()
            .filter(|(tick, _)| {
                let t = tick.load(Ordering::Acquire);
                t != EMPTY_SLOT && t >= oldest && t <= now_tick
            })
            .map(|(_, v)| v.load(Ordering::Relaxed))
            .sum()
    }
}

/// A constant "info" metric: a gauge fixed at `1` whose payload is its
/// label set (the `soi_build_info{version="…"} 1` idiom).
#[derive(Debug)]
pub struct Info {
    labels: Vec<(&'static str, String)>,
}

enum Instrument {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
    WindowedHistogram(&'static WindowedHistogram),
    WindowedCounter(&'static WindowedCounter),
    Info(&'static Info),
}

struct Entry {
    name: &'static str,
    help: &'static str,
    instrument: Instrument,
}

fn registry() -> &'static Mutex<Vec<Entry>> {
    static REGISTRY: OnceLock<Mutex<Vec<Entry>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

fn with_registry<R>(f: impl FnOnce(&mut Vec<Entry>) -> R) -> R {
    // A poisoned registry only means some other panicking thread held the
    // lock mid-push; the Vec itself is still usable.
    let mut entries = match registry().lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    f(&mut entries)
}

/// Registers (or fetches) the counter `name`. The first registration wins;
/// later calls return the existing instrument and ignore `help`.
pub fn register_counter(name: &'static str, help: &'static str) -> &'static Counter {
    with_registry(|entries| {
        for e in entries.iter() {
            if e.name == name {
                if let Instrument::Counter(c) = e.instrument {
                    return c;
                }
            }
        }
        let c: &'static Counter = Box::leak(Box::new(Counter::new()));
        entries.push(Entry {
            name,
            help,
            instrument: Instrument::Counter(c),
        });
        c
    })
}

/// Registers (or fetches) the gauge `name`.
pub fn register_gauge(name: &'static str, help: &'static str) -> &'static Gauge {
    with_registry(|entries| {
        for e in entries.iter() {
            if e.name == name {
                if let Instrument::Gauge(g) = e.instrument {
                    return g;
                }
            }
        }
        let g: &'static Gauge = Box::leak(Box::new(Gauge::new()));
        entries.push(Entry {
            name,
            help,
            instrument: Instrument::Gauge(g),
        });
        g
    })
}

/// Registers (or fetches) the histogram `name` with the given bucket
/// upper bounds (strictly increasing; a `+Inf` bucket is implicit).
pub fn register_histogram(
    name: &'static str,
    help: &'static str,
    buckets: &[f64],
) -> &'static Histogram {
    with_registry(|entries| {
        for e in entries.iter() {
            if e.name == name {
                if let Instrument::Histogram(h) = e.instrument {
                    return h;
                }
            }
        }
        let h: &'static Histogram = Box::leak(Box::new(Histogram::new(buckets)));
        entries.push(Entry {
            name,
            help,
            instrument: Instrument::Histogram(h),
        });
        h
    })
}

/// Registers (or fetches) the rolling-window histogram `name`: a wheel of
/// `slots` sub-histograms of `slot_secs` seconds each.
pub fn register_windowed_histogram(
    name: &'static str,
    help: &'static str,
    buckets: &[f64],
    slots: usize,
    slot_secs: u64,
) -> &'static WindowedHistogram {
    with_registry(|entries| {
        for e in entries.iter() {
            if e.name == name {
                if let Instrument::WindowedHistogram(h) = e.instrument {
                    return h;
                }
            }
        }
        let h: &'static WindowedHistogram =
            Box::leak(Box::new(WindowedHistogram::new(buckets, slots, slot_secs)));
        entries.push(Entry {
            name,
            help,
            instrument: Instrument::WindowedHistogram(h),
        });
        h
    })
}

/// Registers (or fetches) the rolling-window counter `name` (rendered as a
/// gauge: the windowed sum moves both ways).
pub fn register_windowed_counter(
    name: &'static str,
    help: &'static str,
    slots: usize,
    slot_secs: u64,
) -> &'static WindowedCounter {
    with_registry(|entries| {
        for e in entries.iter() {
            if e.name == name {
                if let Instrument::WindowedCounter(c) = e.instrument {
                    return c;
                }
            }
        }
        let c: &'static WindowedCounter =
            Box::leak(Box::new(WindowedCounter::new(slots, slot_secs)));
        entries.push(Entry {
            name,
            help,
            instrument: Instrument::WindowedCounter(c),
        });
        c
    })
}

/// Registers (or fetches) the info metric `name`: a constant `1` gauge
/// whose payload is its label set. The first registration's labels win.
pub fn register_info(name: &'static str, help: &'static str, labels: &[(&'static str, &str)]) {
    with_registry(|entries| {
        if entries.iter().any(|e| e.name == name) {
            return;
        }
        let info: &'static Info = Box::leak(Box::new(Info {
            labels: labels.iter().map(|&(k, v)| (k, v.to_string())).collect(),
        }));
        entries.push(Entry {
            name,
            help,
            instrument: Instrument::Info(info),
        });
    });
}

/// Publishes (and refreshes) process-level metrics: uptime since
/// [`process_epoch`], a `soi_build_info{version=…}` info gauge, and the
/// cumulative trace-drop counter mirrored from
/// [`crate::trace::dropped_events`]. Call once early at startup to pin the
/// uptime epoch, then again right before each [`gather`] so the snapshot
/// values are current.
pub fn publish_process_metrics(version: &str) {
    let uptime = register_gauge(
        "soi_process_uptime_seconds",
        "Seconds since the process metrics epoch was pinned.",
    );
    uptime.set(process_epoch().elapsed().as_secs_f64());
    // `register_info` requires 'static label values; leak the version
    // once (idempotent registration means at most one leak per name).
    with_registry(|entries| {
        if !entries.iter().any(|e| e.name == "soi_build_info") {
            let info: &'static Info = Box::leak(Box::new(Info {
                labels: vec![("version", version.to_string())],
            }));
            entries.push(Entry {
                name: "soi_build_info",
                help: "Build information (constant 1; payload is the labels).",
                instrument: Instrument::Info(info),
            });
        }
    });
    let dropped = register_counter(
        "soi_trace_dropped_events_total",
        "Trace events dropped by backpressure caps (global drain or per-request capture).",
    );
    let seen = crate::trace::dropped_events();
    dropped.add(seen.saturating_sub(dropped.get()));
}

fn fmt_bound(b: f64) -> String {
    let mut s = String::new();
    write_f64(&mut s, b);
    s
}

fn render_entry(out: &mut String, e: &Entry) {
    let _ = writeln!(out, "# HELP {} {}", e.name, e.help);
    match e.instrument {
        Instrument::Counter(c) => {
            let _ = writeln!(out, "# TYPE {} counter", e.name);
            let _ = writeln!(out, "{} {}", e.name, c.get());
        }
        Instrument::Gauge(g) => {
            let _ = writeln!(out, "# TYPE {} gauge", e.name);
            let mut v = String::new();
            write_f64(&mut v, g.get());
            let _ = writeln!(out, "{} {}", e.name, v);
        }
        Instrument::Histogram(h) => {
            let _ = writeln!(out, "# TYPE {} histogram", e.name);
            render_histogram_snapshot(out, e.name, &h.snapshot());
        }
        Instrument::WindowedHistogram(h) => {
            // Windowed contents shrink as slots expire, so strictly this
            // is a gauge histogram; the classic text format has no such
            // type, and `histogram` keeps scrapers working.
            let _ = writeln!(out, "# TYPE {} histogram", e.name);
            render_histogram_snapshot(out, e.name, &h.snapshot());
        }
        Instrument::WindowedCounter(c) => {
            let _ = writeln!(out, "# TYPE {} gauge", e.name);
            let _ = writeln!(out, "{} {}", e.name, c.sum());
        }
        Instrument::Info(info) => {
            let _ = writeln!(out, "# TYPE {} gauge", e.name);
            let mut labels = String::new();
            for (i, (k, v)) in info.labels.iter().enumerate() {
                if i > 0 {
                    labels.push(',');
                }
                let _ = write!(
                    labels,
                    "{k}=\"{}\"",
                    v.replace('\\', "\\\\").replace('"', "\\\"")
                );
            }
            let _ = writeln!(out, "{}{{{labels}}} 1", e.name);
        }
    }
}

fn render_histogram_snapshot(out: &mut String, name: &str, snap: &HistogramSnapshot) {
    let mut cumulative = 0u64;
    for (i, &b) in snap.bounds.iter().enumerate() {
        cumulative += snap.counts[i];
        let _ = writeln!(
            out,
            "{}_bucket{{le=\"{}\"}} {}",
            name,
            fmt_bound(b),
            cumulative
        );
    }
    let _ = writeln!(out, "{}_bucket{{le=\"+Inf\"}} {}", name, snap.count);
    let mut sum = String::new();
    write_f64(&mut sum, snap.sum);
    let _ = writeln!(out, "{name}_sum {sum}");
    let _ = writeln!(out, "{name}_count {}", snap.count);
    // Saturation guard: how many observations exceeded the top finite
    // bucket (quantiles are clamped for these). `_overflow` is not a
    // standard histogram sub-series, so it carries its own HELP/TYPE.
    let _ = writeln!(
        out,
        "# HELP {name}_overflow Observations above the top finite bucket of {name}"
    );
    let _ = writeln!(out, "# TYPE {name}_overflow counter");
    let _ = writeln!(out, "{name}_overflow {}", snap.overflow());
}

/// Renders every registered metric in the Prometheus text exposition
/// format, sorted by name.
pub fn gather() -> String {
    gather_prefixed("")
}

/// Renders registered metrics whose name starts with `prefix` (tests use
/// a unique prefix to stay independent of the shared registry).
pub fn gather_prefixed(prefix: &str) -> String {
    with_registry(|entries| {
        let mut selected: Vec<&Entry> = entries
            .iter()
            .filter(|e| e.name.starts_with(prefix))
            .collect();
        selected.sort_by_key(|e| e.name);
        let mut out = String::new();
        for e in selected {
            render_entry(&mut out, e);
        }
        out
    })
}

/// Lints a Prometheus text exposition: every sample must be preceded by
/// `# HELP` and `# TYPE` lines for its metric (histogram `_bucket` /
/// `_sum` / `_count` sub-series inherit their base series' metadata).
/// Returns one message per violation; empty means the export is clean.
///
/// Used by the metrics-hygiene golden test and by the serve e2e suite
/// against a live `/metrics` scrape, so a new series registered without
/// documentation fails CI instead of shipping untyped.
pub fn lint_exposition(text: &str) -> Vec<String> {
    use std::collections::HashSet;
    let mut helped: HashSet<&str> = HashSet::new();
    let mut typed: HashSet<&str> = HashSet::new();
    let mut problems = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split_whitespace().next().unwrap_or("");
            if rest.split_whitespace().nth(1).is_none() {
                problems.push(format!("line {lineno}: HELP for {name} has no text"));
            }
            helped.insert(name);
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().unwrap_or("");
            let kind = parts.next().unwrap_or("");
            if !matches!(
                kind,
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                problems.push(format!("line {lineno}: {name} has invalid type {kind:?}"));
            }
            typed.insert(name);
            continue;
        }
        if line.starts_with('#') {
            continue; // plain comment
        }
        // A sample: `name{labels} value` or `name value`.
        let name_end = line
            .find(|c: char| c == '{' || c.is_whitespace())
            .unwrap_or(line.len());
        let sample = &line[..name_end];
        if sample.is_empty() {
            problems.push(format!("line {lineno}: unparsable sample line {line:?}"));
            continue;
        }
        let base = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suffix| {
                let stripped = sample.strip_suffix(suffix)?;
                // Only inherit when the stripped name is itself a
                // documented series (e.g. a histogram base).
                (helped.contains(stripped) || typed.contains(stripped)).then_some(stripped)
            })
            .unwrap_or(sample);
        if !helped.contains(base) {
            problems.push(format!("line {lineno}: {sample} has no # HELP"));
        }
        if !typed.contains(base) {
            problems.push(format!("line {lineno}: {sample} has no # TYPE"));
        }
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts_and_registration_is_idempotent() {
        let a = register_counter("obs_test_counter_total", "test counter");
        let b = register_counter("obs_test_counter_total", "other help");
        assert!(std::ptr::eq(a, b));
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
    }

    #[test]
    fn lint_accepts_documented_series_and_histogram_suffixes() {
        let clean = "# HELP soi_x_total things\n# TYPE soi_x_total counter\nsoi_x_total 3\n\
                     # HELP soi_lat_seconds latency\n# TYPE soi_lat_seconds histogram\n\
                     soi_lat_seconds_bucket{le=\"+Inf\"} 1\nsoi_lat_seconds_sum 0.5\n\
                     soi_lat_seconds_count 1\n";
        assert!(lint_exposition(clean).is_empty());
    }

    #[test]
    fn lint_flags_untyped_undocumented_and_bogus_series() {
        let problems = lint_exposition("soi_mystery 1\n");
        assert_eq!(problems.len(), 2, "{problems:?}");
        let problems = lint_exposition("# TYPE soi_y gauge\nsoi_y 1\n");
        assert_eq!(problems.len(), 1, "missing HELP: {problems:?}");
        let problems = lint_exposition("# HELP soi_z z\n# TYPE soi_z flavour\nsoi_z 1\n");
        assert!(
            problems.iter().any(|p| p.contains("invalid type")),
            "{problems:?}"
        );
        // `_sum` does not inherit from an undocumented base.
        let problems = lint_exposition("soi_w_sum 1\n");
        assert_eq!(problems.len(), 2, "{problems:?}");
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = register_gauge("obs_test_gauge", "test gauge");
        g.set(4.0);
        g.add(-1.5);
        assert_eq!(g.get(), 2.5);
    }

    #[test]
    fn histogram_buckets_and_percentiles() {
        let h = Histogram::new(&[1.0, 2.0, 4.0, 8.0]);
        for v in [0.5, 1.5, 1.5, 3.0, 3.0, 3.0, 5.0, 5.0, 7.0, 100.0] {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 10);
        assert_eq!(snap.counts, vec![1, 2, 3, 3, 1]);
        assert!((snap.sum - 129.5).abs() < 1e-9);
        // Rank 5 of 10 falls in the (2,4] bucket.
        let p50 = snap.p50().unwrap();
        assert!(p50 > 2.0 && p50 <= 4.0, "p50 = {p50}");
        // Rank 9.5 of 10 falls in the (4,8] bucket.
        let p95 = snap.p95().unwrap();
        assert!(p95 > 4.0 && p95 <= 8.0, "p95 = {p95}");
        // Rank 9.9 lands in the +Inf bucket → clamped to the last bound.
        assert_eq!(snap.p99(), Some(8.0));
        assert_eq!(Histogram::new(&[1.0]).snapshot().p50(), None);
    }

    #[test]
    fn overflow_counts_saturated_observations() {
        let h = Histogram::new(&[1.0, 10.0]);
        assert_eq!(h.overflow(), 0);
        h.observe(0.5);
        h.observe(10.0); // le="10" exactly: not overflow
        assert_eq!(h.overflow(), 0);
        h.observe(11.0);
        h.observe(1e9);
        assert_eq!(h.overflow(), 2);
        let snap = h.snapshot();
        assert_eq!(snap.overflow(), 2);
        // The tail quantile is clamped to the top finite bound — the
        // overflow count is what flags that the estimate saturated.
        assert_eq!(snap.quantile(1.0), Some(10.0));
        // And the saturation count reaches the text exposition.
        let hr = register_histogram("obs_sat_overflow_test", "saturation", &[1.0]);
        hr.observe(5.0);
        let text = gather_prefixed("obs_sat_overflow_test");
        assert!(
            text.contains("obs_sat_overflow_test_overflow 1"),
            "overflow line missing:\n{text}"
        );
    }

    #[test]
    fn quantile_interpolates_within_bucket() {
        let h = Histogram::new(&[10.0, 20.0]);
        for _ in 0..10 {
            h.observe(15.0);
        }
        let snap = h.snapshot();
        // All mass in (10,20]: q=0.5 → 10 + 10*0.5 = 15.
        assert!((snap.quantile(0.5).unwrap() - 15.0).abs() < 1e-9);
        assert!((snap.quantile(1.0).unwrap() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn prometheus_text_format() {
        let c = register_counter("obs_fmt_requests_total", "requests seen");
        c.add(7);
        let h = register_histogram("obs_fmt_latency_seconds", "latency", &[0.001, 0.01, 0.1]);
        h.observe(0.0005);
        h.observe(0.05);
        h.observe(3.0);
        let text = gather_prefixed("obs_fmt_");
        let expected = "\
# HELP obs_fmt_latency_seconds latency
# TYPE obs_fmt_latency_seconds histogram
obs_fmt_latency_seconds_bucket{le=\"0.001\"} 1
obs_fmt_latency_seconds_bucket{le=\"0.01\"} 1
obs_fmt_latency_seconds_bucket{le=\"0.1\"} 2
obs_fmt_latency_seconds_bucket{le=\"+Inf\"} 3
obs_fmt_latency_seconds_sum 3.0505
obs_fmt_latency_seconds_count 3
# HELP obs_fmt_latency_seconds_overflow Observations above the top finite bucket of obs_fmt_latency_seconds
# TYPE obs_fmt_latency_seconds_overflow counter
obs_fmt_latency_seconds_overflow 1
# HELP obs_fmt_requests_total requests seen
# TYPE obs_fmt_requests_total counter
obs_fmt_requests_total 7
";
        assert_eq!(text, expected);
    }

    #[test]
    fn gather_prefixed_filters() {
        register_counter("obs_filter_a_total", "a");
        register_counter("obs_filter_b_total", "b");
        let text = gather_prefixed("obs_filter_a");
        assert!(text.contains("obs_filter_a_total"));
        assert!(!text.contains("obs_filter_b_total"));
    }

    #[test]
    fn quantile_of_empty_histogram_is_none() {
        let snap = Histogram::new(&[1.0, 2.0]).snapshot();
        for q in [0.0, 0.5, 0.95, 1.0] {
            assert_eq!(snap.quantile(q), None);
        }
        assert_eq!(snap.overflow(), 0);
    }

    #[test]
    fn quantile_of_single_observation_interpolates_its_bucket() {
        let h = Histogram::new(&[1.0, 2.0, 4.0]);
        h.observe(1.5);
        let snap = h.snapshot();
        // The single observation lives in (1,2]: every quantile must land
        // inside that bucket, whatever the interpolated fraction.
        for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
            let v = snap.quantile(q).unwrap();
            assert!((1.0..=2.0).contains(&v), "q={q} -> {v}");
        }
        assert_eq!(snap.quantile(1.0), Some(2.0));
    }

    #[test]
    fn quantile_with_all_mass_in_overflow_clamps_to_top_bound() {
        let h = Histogram::new(&[1.0, 2.0]);
        h.observe(50.0);
        h.observe(60.0);
        let snap = h.snapshot();
        assert_eq!(snap.overflow(), 2);
        // Everything saturated: the honest clamp is the top finite bound,
        // for every quantile.
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(snap.quantile(q), Some(2.0), "q={q}");
        }
    }

    #[test]
    fn windowed_histogram_merges_live_slots() {
        let w = WindowedHistogram::new(&[1.0, 10.0], 4, 15);
        assert_eq!(w.window_secs(), 60);
        w.observe_at(100, 0.5);
        w.observe_at(101, 5.0);
        w.observe_at(103, 20.0);
        let snap = w.snapshot_at(103);
        assert_eq!(snap.count, 3);
        assert_eq!(snap.counts, vec![1, 1, 1]);
        assert!((snap.sum - 25.5).abs() < 1e-9);
        assert_eq!(snap.overflow(), 1);
        // Quantile machinery is shared with the cumulative histogram.
        assert!(snap.p50().is_some());
    }

    #[test]
    fn windowed_histogram_expires_stale_slots() {
        let w = WindowedHistogram::new(&[1.0], 4, 15);
        w.observe_at(100, 0.5);
        w.observe_at(100, 0.5);
        // Still visible while tick 100 is inside (now-4, now].
        assert_eq!(w.snapshot_at(103).count, 2);
        // One tick later the slot has aged out, even though its wheel
        // position has not yet been reclaimed by a new observation.
        assert_eq!(w.snapshot_at(104).count, 0);
    }

    #[test]
    fn windowed_histogram_rotation_zeroes_reused_slots() {
        let w = WindowedHistogram::new(&[1.0], 2, 1);
        w.observe_at(10, 0.5);
        w.observe_at(11, 0.5);
        assert_eq!(w.snapshot_at(11).count, 2);
        // Tick 12 reuses tick 10's wheel position; the old contents must
        // not bleed into the fresh slot.
        w.observe_at(12, 2.0);
        let snap = w.snapshot_at(12);
        assert_eq!(snap.count, 2, "tick 11 + tick 12 only");
        assert_eq!(snap.counts, vec![1, 1]);
    }

    #[test]
    fn windowed_counter_rolls_off() {
        let c = WindowedCounter::new(3, 15);
        assert_eq!(c.window_secs(), 45);
        c.add_at(50, 2);
        c.add_at(51, 1);
        assert_eq!(c.sum_at(51), 3);
        assert_eq!(c.sum_at(52), 3);
        // Tick 50 ages out of the 3-slot window…
        assert_eq!(c.sum_at(53), 1);
        // …and its position is zeroed on reuse.
        c.add_at(53, 5);
        assert_eq!(c.sum_at(53), 6);
        assert_eq!(c.sum_at(60), 0);
    }

    #[test]
    fn windowed_and_info_render_in_text_format() {
        let w = register_windowed_histogram("obs_win_latency_seconds", "windowed", &[0.1], 8, 15);
        w.observe_at(0, 0.05);
        let c = register_windowed_counter("obs_win_sheds", "windowed sheds", 8, 15);
        c.add_at(0, 4);
        register_info(
            "obs_win_info",
            "info",
            &[("version", "1.2.3"), ("q", "a\"b")],
        );
        let text = gather_prefixed("obs_win_");
        assert!(text.contains("# TYPE obs_win_latency_seconds histogram"));
        assert!(text.contains("obs_win_latency_seconds_bucket{le=\"0.1\"} 1"));
        assert!(text.contains("obs_win_latency_seconds_count 1"));
        assert!(text.contains("# TYPE obs_win_sheds gauge"));
        assert!(text.contains("obs_win_sheds 4"));
        assert!(
            text.contains("obs_win_info{version=\"1.2.3\",q=\"a\\\"b\"} 1"),
            "info line missing or mis-escaped:\n{text}"
        );
    }

    #[test]
    fn process_metrics_publish_and_refresh() {
        publish_process_metrics("0.0-test");
        let text = gather_prefixed("soi_process_uptime_seconds");
        assert!(text.contains("# TYPE soi_process_uptime_seconds gauge"));
        let info = gather_prefixed("soi_build_info");
        assert!(
            info.contains("soi_build_info{version=\"0.0-test\"} 1"),
            "{info}"
        );
        let dropped = gather_prefixed("soi_trace_dropped_events_total");
        assert!(dropped.contains("# TYPE soi_trace_dropped_events_total counter"));
        // Re-publishing is idempotent and keeps the first build label.
        publish_process_metrics("9.9-other");
        let info = gather_prefixed("soi_build_info");
        assert!(info.contains("version=\"0.0-test\""));
        assert!(!info.contains("9.9-other"));
    }

    #[test]
    fn default_latency_buckets_are_increasing() {
        assert!(DEFAULT_LATENCY_BUCKETS.windows(2).all(|w| w[0] < w[1]));
        assert!(ALLOC_COUNT_BUCKETS.windows(2).all(|w| w[0] < w[1]));
        assert!(ALLOC_BYTES_BUCKETS.windows(2).all(|w| w[0] < w[1]));
    }
}
