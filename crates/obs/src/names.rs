//! Canonical span and phase names.
//!
//! Every layer that times, traces, or logs a unit of work refers to it by
//! one of these constants, so a phase shows up under the same string in
//! `QueryStats` timers, Chrome traces, metric labels, and JSON logs. The
//! full taxonomy (and how to read a trace built from it) is documented in
//! DESIGN.md § Observability.

/// Algorithm phase names (the paper's per-phase runtime breakdowns).
pub mod phases {
    /// Alg. 1 source-list construction (lines 1–7).
    pub const CONSTRUCTION: &str = "construction";
    /// Alg. 1 filtering: source accesses until `UB ≤ LBk` (lines 8–24);
    /// also Alg. 2's per-step cell-bound filtering.
    pub const FILTERING: &str = "filtering";
    /// Alg. 1 refinement: finalising seen segments (lines 25–28); also
    /// Alg. 2's exact-`mmr` refinement of surviving cells.
    pub const REFINEMENT: &str = "refinement";
    /// Whole-scan phase of the BL baselines.
    pub const SCAN: &str = "scan";
}

/// Span names (dotted hierarchy: `layer.operation[.phase]`).
pub mod spans {
    /// One k-SOI query evaluation (`run_soi`), all phases.
    pub const SOI_QUERY: &str = "soi.query";
    /// One diversified-description query (`st_rel_div`), all steps.
    pub const DESCRIBE_QUERY: &str = "describe.query";
    /// Alg. 1 source-list assembly inside construction (SL1/SL2/SL3/SLf).
    pub const SOI_SOURCES: &str = "soi.sources";
    /// Alg. 1 street-level aggregation and top-k ranking after refinement.
    pub const SOI_RANK: &str = "soi.rank";
    /// One greedy diversification round of Alg. 2 (per selected photo).
    pub const DESCRIBE_ROUND: &str = "describe.round";
    /// One engine batch, fan-out to join.
    pub const ENGINE_BATCH: &str = "engine.batch";
    /// One query inside an engine batch (per worker thread).
    pub const ENGINE_QUERY: &str = "engine.query";
    /// One engine worker thread's chunk-claim loop inside a batch.
    pub const ENGINE_WORKER: &str = "engine.worker";
    /// Offline POI index construction, all phases.
    pub const INDEX_BUILD: &str = "index.build";
    /// Index build phase 1: per-POI flatten into packed keys + CSR sidecar.
    pub const INDEX_BUILD_FLATTEN: &str = "index.build.flatten";
    /// Index build phase 2: per-cell structures (local inverted indexes).
    pub const INDEX_BUILD_CELLS: &str = "index.build.cells";
    /// Index build phase 3: global inverted index.
    pub const INDEX_BUILD_GLOBAL: &str = "index.build.global";
    /// Index build phase 4: raster cell↔segment map.
    pub const INDEX_BUILD_RASTER: &str = "index.build.raster";
    /// Index build phase 5: length-sorted segment list.
    pub const INDEX_BUILD_LENGTHS: &str = "index.build.lengths";
    /// Query-time ε-augmented map construction (an ε-cache miss).
    pub const EPS_MAPS_BUILD: &str = "index.eps_maps.build";
    /// Loading an index bundle from a snapshot file (cold start).
    pub const SNAPSHOT_LOAD: &str = "index.snapshot.load";
    /// Writing an index bundle to a snapshot file.
    pub const SNAPSHOT_WRITE: &str = "index.snapshot.write";
    /// A whole CLI command (`cli.query`, `cli.batch`, … are derived by
    /// appending the subcommand to this prefix).
    pub const CLI_PREFIX: &str = "cli.";
    /// Dataset load from disk.
    pub const CLI_LOAD: &str = "cli.load";
    /// One HTTP request handled by the serving layer (parse to response).
    pub const SERVE_REQUEST: &str = "serve.request";
    /// One admission-queue drain: dequeue, batch, execute, publish.
    pub const SERVE_DISPATCH: &str = "serve.dispatch";
}

/// Whether `name` belongs to the canonical span taxonomy: a phase name, a
/// span constant, or a CLI command span (`cli.<command>`). The profiler
/// artifact validator (`soi check-artifacts --profile`) uses this to
/// reject artifacts whose frames drifted from the taxonomy.
pub fn is_known_span(name: &str) -> bool {
    let fixed = [
        phases::CONSTRUCTION,
        phases::FILTERING,
        phases::REFINEMENT,
        phases::SCAN,
        spans::SOI_QUERY,
        spans::DESCRIBE_QUERY,
        spans::SOI_SOURCES,
        spans::SOI_RANK,
        spans::DESCRIBE_ROUND,
        spans::ENGINE_BATCH,
        spans::ENGINE_QUERY,
        spans::ENGINE_WORKER,
        spans::INDEX_BUILD,
        spans::INDEX_BUILD_FLATTEN,
        spans::INDEX_BUILD_CELLS,
        spans::INDEX_BUILD_GLOBAL,
        spans::INDEX_BUILD_RASTER,
        spans::INDEX_BUILD_LENGTHS,
        spans::EPS_MAPS_BUILD,
        spans::SNAPSHOT_LOAD,
        spans::SNAPSHOT_WRITE,
        spans::CLI_LOAD,
        spans::SERVE_REQUEST,
        spans::SERVE_DISPATCH,
    ];
    fixed.contains(&name) || name.starts_with(spans::CLI_PREFIX)
}

/// Counter-track names (sampled values plotted over time in a trace).
pub mod tracks {
    /// Alg. 1 unseen upper bound `UB`, sampled during filtering.
    pub const SOI_UB: &str = "soi.UB";
    /// Alg. 1 k-th seen lower bound `LBk`, sampled during filtering.
    pub const SOI_LBK: &str = "soi.LBk";
    /// Worker-thread count of an index build.
    pub const INDEX_BUILD_THREADS: &str = "index.build.threads";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_names_are_distinct() {
        let all = [
            phases::CONSTRUCTION,
            phases::FILTERING,
            phases::REFINEMENT,
            phases::SCAN,
        ];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn span_names_follow_dotted_taxonomy() {
        for name in [
            spans::SOI_QUERY,
            spans::DESCRIBE_QUERY,
            spans::ENGINE_BATCH,
            spans::ENGINE_QUERY,
            spans::INDEX_BUILD,
            spans::INDEX_BUILD_FLATTEN,
            spans::INDEX_BUILD_CELLS,
            spans::INDEX_BUILD_GLOBAL,
            spans::INDEX_BUILD_RASTER,
            spans::INDEX_BUILD_LENGTHS,
            spans::EPS_MAPS_BUILD,
            spans::SNAPSHOT_LOAD,
            spans::SNAPSHOT_WRITE,
            spans::CLI_LOAD,
            spans::SERVE_REQUEST,
            spans::SERVE_DISPATCH,
            spans::SOI_SOURCES,
            spans::SOI_RANK,
            spans::DESCRIBE_ROUND,
            spans::ENGINE_WORKER,
        ] {
            assert!(name.contains('.'), "{name} is not dotted");
            assert!(is_known_span(name), "{name} missing from is_known_span");
        }
    }

    #[test]
    fn known_span_covers_phases_and_cli_commands() {
        assert!(is_known_span(phases::FILTERING));
        assert!(is_known_span("cli.batch"));
        assert!(is_known_span("cli.command"));
        assert!(!is_known_span("mystery.frame"));
        assert!(!is_known_span(""));
    }
}
