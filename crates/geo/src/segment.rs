//! Line segments and segment distance computations.

use crate::point::Point;
use crate::rect::Rect;

/// A line segment between two endpoints.
///
/// Street segments (the links `ℓ ∈ L` of the paper's road network) are
/// represented by this geometry; `dist(p, ℓ)` of Definition 1 is
/// [`LineSeg::dist_to_point`].
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LineSeg {
    /// First endpoint.
    pub a: Point,
    /// Second endpoint.
    pub b: Point,
}

impl LineSeg {
    /// Creates a segment from its endpoints.
    #[inline]
    pub const fn new(a: Point, b: Point) -> Self {
        Self { a, b }
    }

    /// Segment length (Euclidean distance between endpoints).
    #[inline]
    pub fn len(&self) -> f64 {
        self.a.dist(self.b)
    }

    /// Squared segment length.
    #[inline]
    pub fn len_sq(&self) -> f64 {
        self.a.dist_sq(self.b)
    }

    /// Returns true if the segment is degenerate (both endpoints equal).
    #[inline]
    pub fn is_degenerate(&self) -> bool {
        self.a == self.b
    }

    /// Midpoint of the segment.
    #[inline]
    pub fn midpoint(&self) -> Point {
        self.a.lerp(self.b, 0.5)
    }

    /// The clamped projection parameter `t ∈ [0, 1]` of `p` onto the segment:
    /// the closest point on the segment is `a + t·(b − a)`.
    #[inline]
    pub fn project_t(&self, p: Point) -> f64 {
        let d = self.b - self.a;
        let len_sq = d.dot(d);
        if len_sq == 0.0 {
            return 0.0;
        }
        ((p - self.a).dot(d) / len_sq).clamp(0.0, 1.0)
    }

    /// The point on the segment closest to `p`.
    #[inline]
    pub fn closest_point(&self, p: Point) -> Point {
        self.a.lerp(self.b, self.project_t(p))
    }

    /// Minimum Euclidean distance from `p` to any point on the segment
    /// (Definition 1's `dist(p, ℓ)`).
    #[inline]
    pub fn dist_to_point(&self, p: Point) -> f64 {
        self.dist_sq_to_point(p).sqrt()
    }

    /// Squared minimum distance from `p` to the segment.
    #[inline]
    pub fn dist_sq_to_point(&self, p: Point) -> f64 {
        self.closest_point(p).dist_sq(p)
    }

    /// Tight axis-aligned bounding rectangle of the segment.
    #[inline]
    pub fn bounding_rect(&self) -> Rect {
        Rect::from_corners(self.a, self.b)
    }

    /// Returns true if this segment properly or improperly intersects `other`.
    pub fn intersects(&self, other: &LineSeg) -> bool {
        // Orientation-based test with collinear overlap handling.
        fn orient(a: Point, b: Point, c: Point) -> f64 {
            (b - a).cross(c - a)
        }
        fn on_segment(s: &LineSeg, p: Point) -> bool {
            p.x >= s.a.x.min(s.b.x)
                && p.x <= s.a.x.max(s.b.x)
                && p.y >= s.a.y.min(s.b.y)
                && p.y <= s.a.y.max(s.b.y)
        }

        let d1 = orient(other.a, other.b, self.a);
        let d2 = orient(other.a, other.b, self.b);
        let d3 = orient(self.a, self.b, other.a);
        let d4 = orient(self.a, self.b, other.b);

        if ((d1 > 0.0 && d2 < 0.0) || (d1 < 0.0 && d2 > 0.0))
            && ((d3 > 0.0 && d4 < 0.0) || (d3 < 0.0 && d4 > 0.0))
        {
            return true;
        }
        (d1 == 0.0 && on_segment(other, self.a))
            || (d2 == 0.0 && on_segment(other, self.b))
            || (d3 == 0.0 && on_segment(self, other.a))
            || (d4 == 0.0 && on_segment(self, other.b))
    }

    /// Returns true if the segment intersects the closed rectangle
    /// (Liang–Barsky slab clipping; much cheaper than edge-wise tests).
    pub fn intersects_rect(&self, r: &Rect) -> bool {
        let d = self.b - self.a;
        let mut t0 = 0.0f64;
        let mut t1 = 1.0f64;
        for (p0, delta, min, max) in [
            (self.a.x, d.x, r.min.x, r.max.x),
            (self.a.y, d.y, r.min.y, r.max.y),
        ] {
            if delta == 0.0 {
                if p0 < min || p0 > max {
                    return false;
                }
            } else {
                let (mut ta, mut tb) = ((min - p0) / delta, (max - p0) / delta);
                if ta > tb {
                    std::mem::swap(&mut ta, &mut tb);
                }
                t0 = t0.max(ta);
                t1 = t1.min(tb);
                if t0 > t1 {
                    return false;
                }
            }
        }
        true
    }

    /// Minimum Euclidean distance between two segments (0 if they intersect).
    pub fn dist_to_segment(&self, other: &LineSeg) -> f64 {
        if self.intersects(other) {
            return 0.0;
        }
        let d1 = self.dist_sq_to_point(other.a);
        let d2 = self.dist_sq_to_point(other.b);
        let d3 = other.dist_sq_to_point(self.a);
        let d4 = other.dist_sq_to_point(self.b);
        d1.min(d2).min(d3).min(d4).sqrt()
    }
}

impl std::fmt::Display for LineSeg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{} -> {}]", self.a, self.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> LineSeg {
        LineSeg::new(Point::new(ax, ay), Point::new(bx, by))
    }

    #[test]
    fn length() {
        assert_eq!(seg(0.0, 0.0, 3.0, 4.0).len(), 5.0);
        assert_eq!(seg(1.0, 1.0, 1.0, 1.0).len(), 0.0);
        assert!(seg(1.0, 1.0, 1.0, 1.0).is_degenerate());
    }

    #[test]
    fn point_distance_interior_projection() {
        // Perpendicular foot lands inside the segment.
        let s = seg(0.0, 0.0, 10.0, 0.0);
        assert_eq!(s.dist_to_point(Point::new(5.0, 3.0)), 3.0);
        assert_eq!(s.closest_point(Point::new(5.0, 3.0)), Point::new(5.0, 0.0));
    }

    #[test]
    fn point_distance_clamps_to_endpoints() {
        let s = seg(0.0, 0.0, 10.0, 0.0);
        assert_eq!(s.dist_to_point(Point::new(-3.0, 4.0)), 5.0);
        assert_eq!(s.dist_to_point(Point::new(13.0, 4.0)), 5.0);
        assert_eq!(s.project_t(Point::new(-3.0, 4.0)), 0.0);
        assert_eq!(s.project_t(Point::new(13.0, 4.0)), 1.0);
    }

    #[test]
    fn point_on_segment_has_zero_distance() {
        let s = seg(0.0, 0.0, 4.0, 4.0);
        assert_eq!(s.dist_to_point(Point::new(2.0, 2.0)), 0.0);
        assert_eq!(s.dist_to_point(Point::new(0.0, 0.0)), 0.0);
        assert_eq!(s.dist_to_point(Point::new(4.0, 4.0)), 0.0);
    }

    #[test]
    fn degenerate_segment_distance_is_point_distance() {
        let s = seg(2.0, 2.0, 2.0, 2.0);
        assert_eq!(s.dist_to_point(Point::new(5.0, 6.0)), 5.0);
    }

    #[test]
    fn intersection_cases() {
        // Crossing.
        assert!(seg(0.0, 0.0, 2.0, 2.0).intersects(&seg(0.0, 2.0, 2.0, 0.0)));
        // Touching at an endpoint.
        assert!(seg(0.0, 0.0, 1.0, 1.0).intersects(&seg(1.0, 1.0, 2.0, 0.0)));
        // Collinear overlap.
        assert!(seg(0.0, 0.0, 3.0, 0.0).intersects(&seg(2.0, 0.0, 5.0, 0.0)));
        // Collinear but disjoint.
        assert!(!seg(0.0, 0.0, 1.0, 0.0).intersects(&seg(2.0, 0.0, 3.0, 0.0)));
        // Parallel.
        assert!(!seg(0.0, 0.0, 2.0, 0.0).intersects(&seg(0.0, 1.0, 2.0, 1.0)));
    }

    #[test]
    fn segment_to_segment_distance() {
        // Parallel horizontal segments one unit apart.
        assert_eq!(
            seg(0.0, 0.0, 2.0, 0.0).dist_to_segment(&seg(0.0, 1.0, 2.0, 1.0)),
            1.0
        );
        // Intersecting => 0.
        assert_eq!(
            seg(0.0, 0.0, 2.0, 2.0).dist_to_segment(&seg(0.0, 2.0, 2.0, 0.0)),
            0.0
        );
        // Endpoint-to-endpoint gap.
        assert_eq!(
            seg(0.0, 0.0, 1.0, 0.0).dist_to_segment(&seg(4.0, 4.0, 5.0, 4.0)),
            5.0
        );
    }

    #[test]
    fn bounding_rect_contains_both_endpoints() {
        let s = seg(3.0, -1.0, 1.0, 5.0);
        let r = s.bounding_rect();
        assert_eq!(r.min, Point::new(1.0, -1.0));
        assert_eq!(r.max, Point::new(3.0, 5.0));
    }
}
