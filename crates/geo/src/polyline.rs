//! Polylines: point chains used for street geometry.

use crate::point::Point;
use crate::rect::Rect;
use crate::segment::LineSeg;

/// An open polygonal chain of two or more points.
///
/// Streets in the paper are simple paths of consecutive segments; a
/// `Polyline` is the geometric view of such a path. Distances to a polyline
/// are the minimum over its constituent segments, matching
/// `dist(p, s) = min_{ℓ∈s} dist(p, ℓ)` of Section 3.1.
#[derive(Debug, Clone, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Polyline {
    points: Vec<Point>,
}

impl Polyline {
    /// Creates a polyline from a point chain.
    ///
    /// Chains with fewer than 2 points are permitted (they have no segments
    /// and infinite distance to everything); this mirrors incremental
    /// construction during network building.
    pub fn new(points: Vec<Point>) -> Self {
        Self { points }
    }

    /// The underlying points.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Appends a point to the chain.
    pub fn push(&mut self, p: Point) {
        self.points.push(p);
    }

    /// Number of segments (`points - 1`, saturating).
    pub fn num_segments(&self) -> usize {
        self.points.len().saturating_sub(1)
    }

    /// Iterates over the constituent segments.
    pub fn segments(&self) -> impl Iterator<Item = LineSeg> + '_ {
        self.points.windows(2).map(|w| LineSeg::new(w[0], w[1]))
    }

    /// Total length: sum of segment lengths.
    pub fn len(&self) -> f64 {
        self.segments().map(|s| s.len()).sum()
    }

    /// Returns true if the polyline has no segments.
    pub fn is_empty(&self) -> bool {
        self.num_segments() == 0
    }

    /// Minimum distance from `p` to the polyline (infinity if empty).
    pub fn dist_to_point(&self, p: Point) -> f64 {
        self.segments()
            .map(|s| s.dist_sq_to_point(p))
            .fold(f64::INFINITY, f64::min)
            .sqrt()
    }

    /// Bounding rectangle of the chain (`None` if no points).
    pub fn bounding_rect(&self) -> Option<Rect> {
        Rect::bounding(self.points.iter().copied())
    }

    /// The point at arc-length `t·len()` along the chain, `t ∈ [0, 1]`.
    ///
    /// Returns `None` for an empty polyline.
    pub fn point_at_fraction(&self, t: f64) -> Option<Point> {
        if self.is_empty() {
            return None;
        }
        let total = self.len();
        if total == 0.0 {
            return Some(self.points[0]);
        }
        let target = t.clamp(0.0, 1.0) * total;
        let mut walked = 0.0;
        for seg in self.segments() {
            let l = seg.len();
            if walked + l >= target {
                let local = if l == 0.0 { 0.0 } else { (target - walked) / l };
                return Some(seg.a.lerp(seg.b, local));
            }
            walked += l;
        }
        self.points.last().copied()
    }
}

impl From<Vec<Point>> for Polyline {
    fn from(points: Vec<Point>) -> Self {
        Self::new(points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l_shape() -> Polyline {
        Polyline::new(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 3.0),
        ])
    }

    #[test]
    fn length_and_segments() {
        let p = l_shape();
        assert_eq!(p.num_segments(), 2);
        assert_eq!(p.len(), 7.0);
        assert!(!p.is_empty());
    }

    #[test]
    fn empty_and_single_point() {
        let e = Polyline::new(vec![]);
        assert!(e.is_empty());
        assert_eq!(e.len(), 0.0);
        assert_eq!(e.dist_to_point(Point::ORIGIN), f64::INFINITY);

        let single = Polyline::new(vec![Point::new(1.0, 1.0)]);
        assert!(single.is_empty());
        assert_eq!(single.num_segments(), 0);
    }

    #[test]
    fn distance_is_min_over_segments() {
        let p = l_shape();
        // Closest to the horizontal leg.
        assert_eq!(p.dist_to_point(Point::new(2.0, -2.0)), 2.0);
        // Closest to the vertical leg.
        assert_eq!(p.dist_to_point(Point::new(6.0, 2.0)), 2.0);
        // On the corner.
        assert_eq!(p.dist_to_point(Point::new(4.0, 0.0)), 0.0);
    }

    #[test]
    fn bounding_rect() {
        let r = l_shape().bounding_rect().unwrap();
        assert_eq!(r.min, Point::new(0.0, 0.0));
        assert_eq!(r.max, Point::new(4.0, 3.0));
        assert!(Polyline::new(vec![]).bounding_rect().is_none());
    }

    #[test]
    fn point_at_fraction_walks_arclength() {
        let p = l_shape();
        assert_eq!(p.point_at_fraction(0.0), Some(Point::new(0.0, 0.0)));
        assert_eq!(p.point_at_fraction(1.0), Some(Point::new(4.0, 3.0)));
        // 4/7 of the way: exactly the corner.
        let corner = p.point_at_fraction(4.0 / 7.0).unwrap();
        assert!(corner.dist(Point::new(4.0, 0.0)) < 1e-12);
        // Halfway: 3.5 along, on the horizontal leg.
        let mid = p.point_at_fraction(0.5).unwrap();
        assert!(mid.dist(Point::new(3.5, 0.0)) < 1e-12);
        assert_eq!(Polyline::new(vec![]).point_at_fraction(0.5), None);
    }

    #[test]
    fn push_extends_chain() {
        let mut p = Polyline::default();
        p.push(Point::new(0.0, 0.0));
        p.push(Point::new(1.0, 0.0));
        assert_eq!(p.num_segments(), 1);
        assert_eq!(p.len(), 1.0);
    }
}
