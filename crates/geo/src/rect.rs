//! Axis-aligned rectangles with distance queries.

use crate::point::Point;
use crate::segment::LineSeg;

/// An axis-aligned rectangle defined by its minimum and maximum corners.
///
/// Rectangles serve two roles in the system: grid-cell extents (with
/// half-open membership semantics handled by the grid itself) and street
/// minimum bounding rectangles. Distance queries (`mindist`, `maxdist`)
/// treat the rectangle as a closed region, which keeps the derived bounds
/// conservative in both directions.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Rect {
    /// Lower-left corner.
    pub min: Point,
    /// Upper-right corner.
    pub max: Point,
}

impl Rect {
    /// Creates a rectangle from min/max corners. Debug-asserts validity.
    #[inline]
    pub fn new(min: Point, max: Point) -> Self {
        debug_assert!(min.x <= max.x && min.y <= max.y, "invalid rect corners");
        Self { min, max }
    }

    /// Creates the rectangle spanned by two arbitrary corners.
    #[inline]
    pub fn from_corners(a: Point, b: Point) -> Self {
        Self {
            min: a.min(b),
            max: a.max(b),
        }
    }

    /// The smallest rectangle containing all `points`.
    ///
    /// Returns `None` for an empty iterator.
    pub fn bounding<I: IntoIterator<Item = Point>>(points: I) -> Option<Self> {
        let mut it = points.into_iter();
        let first = it.next()?;
        let mut min = first;
        let mut max = first;
        for p in it {
            min = min.min(p);
            max = max.max(p);
        }
        Some(Self { min, max })
    }

    /// Rectangle width.
    #[inline]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Rectangle height.
    #[inline]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Center point.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new(
            (self.min.x + self.max.x) / 2.0,
            (self.min.y + self.max.y) / 2.0,
        )
    }

    /// Length of the diagonal.
    #[inline]
    pub fn diagonal(&self) -> f64 {
        self.min.dist(self.max)
    }

    /// Rectangle area.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// The rectangle expanded by `buffer` on every side.
    ///
    /// Used to compute `maxD(s)`: the street MBR "extended with a buffer of
    /// size ε" (Definition 5).
    #[inline]
    pub fn expand(&self, buffer: f64) -> Rect {
        Rect {
            min: Point::new(self.min.x - buffer, self.min.y - buffer),
            max: Point::new(self.max.x + buffer, self.max.y + buffer),
        }
    }

    /// Smallest rectangle containing both `self` and `other`.
    #[inline]
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// Closed-region containment test.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Returns true if the closed rectangles overlap.
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
    }

    /// Minimum distance from `p` to the closed rectangle (0 if inside).
    #[inline]
    pub fn mindist_to_point(&self, p: Point) -> f64 {
        let dx = (self.min.x - p.x).max(0.0).max(p.x - self.max.x);
        let dy = (self.min.y - p.y).max(0.0).max(p.y - self.max.y);
        (dx * dx + dy * dy).sqrt()
    }

    /// Maximum distance from `p` to any point of the closed rectangle.
    ///
    /// This is the `maxdist(r, c)` of Eq. 16: the distance to the farthest
    /// corner.
    #[inline]
    pub fn maxdist_to_point(&self, p: Point) -> f64 {
        let dx = (p.x - self.min.x).abs().max((p.x - self.max.x).abs());
        let dy = (p.y - self.min.y).abs().max((p.y - self.max.y).abs());
        (dx * dx + dy * dy).sqrt()
    }

    /// The four edges of the rectangle as segments.
    pub fn edges(&self) -> [LineSeg; 4] {
        let bl = self.min;
        let br = Point::new(self.max.x, self.min.y);
        let tr = self.max;
        let tl = Point::new(self.min.x, self.max.y);
        [
            LineSeg::new(bl, br),
            LineSeg::new(br, tr),
            LineSeg::new(tr, tl),
            LineSeg::new(tl, bl),
        ]
    }

    /// Exact test `mindist(self, seg) ≤ dist` — the `dist(c, ℓ) ≤ ε`
    /// predicate used to build the ε-augmented cell↔segment maps
    /// (Sec. 3.2.1) — computed as "does the
    /// segment intersect the `dist`-rounded rectangle": the rounded rect is
    /// the union of the two axis bands and four corner discs, so the test
    /// is two slab clips plus at most four point–segment distances — far
    /// cheaper than computing the distance itself.
    pub fn within_dist_of_segment(&self, seg: &LineSeg, dist: f64) -> bool {
        debug_assert!(dist >= 0.0);
        // Horizontal band: rect widened vertically by dist.
        let band_y = Rect {
            min: Point::new(self.min.x, self.min.y - dist),
            max: Point::new(self.max.x, self.max.y + dist),
        };
        if seg.intersects_rect(&band_y) {
            return true;
        }
        // Vertical band: rect widened horizontally by dist.
        let band_x = Rect {
            min: Point::new(self.min.x - dist, self.min.y),
            max: Point::new(self.max.x + dist, self.max.y),
        };
        if seg.intersects_rect(&band_x) {
            return true;
        }
        // Corner discs.
        let d2 = dist * dist;
        let corners = [
            self.min,
            Point::new(self.max.x, self.min.y),
            self.max,
            Point::new(self.min.x, self.max.y),
        ];
        corners.into_iter().any(|q| seg.dist_sq_to_point(q) <= d2)
    }

    /// Minimum distance between the closed rectangle and a segment
    /// (0 if the segment touches or enters the rectangle).
    ///
    /// Prefer [`Rect::within_dist_of_segment`] when only a threshold test
    /// is needed — it is considerably cheaper.
    pub fn mindist_to_segment(&self, seg: &LineSeg) -> f64 {
        if self.contains(seg.a) || self.contains(seg.b) {
            return 0.0;
        }
        let mut best = f64::INFINITY;
        for edge in self.edges() {
            if edge.intersects(seg) {
                return 0.0;
            }
            best = best.min(edge.dist_to_segment(seg));
        }
        best
    }
}

impl std::fmt::Display for Rect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{} .. {}]", self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rect(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect {
        Rect::new(Point::new(x0, y0), Point::new(x1, y1))
    }

    #[test]
    fn construction_and_metrics() {
        let r = Rect::from_corners(Point::new(3.0, 0.0), Point::new(1.0, 4.0));
        assert_eq!(r.min, Point::new(1.0, 0.0));
        assert_eq!(r.max, Point::new(3.0, 4.0));
        assert_eq!(r.width(), 2.0);
        assert_eq!(r.height(), 4.0);
        assert_eq!(r.area(), 8.0);
        assert_eq!(r.center(), Point::new(2.0, 2.0));
        assert!((r.diagonal() - 20.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn bounding_of_points() {
        let pts = vec![
            Point::new(1.0, 5.0),
            Point::new(-2.0, 0.0),
            Point::new(4.0, 2.0),
        ];
        let r = Rect::bounding(pts).unwrap();
        assert_eq!(r.min, Point::new(-2.0, 0.0));
        assert_eq!(r.max, Point::new(4.0, 5.0));
        assert!(Rect::bounding(std::iter::empty()).is_none());
    }

    #[test]
    fn expand_buffers_every_side() {
        let r = rect(0.0, 0.0, 2.0, 2.0).expand(0.5);
        assert_eq!(r.min, Point::new(-0.5, -0.5));
        assert_eq!(r.max, Point::new(2.5, 2.5));
    }

    #[test]
    fn union_covers_both() {
        let r = rect(0.0, 0.0, 1.0, 1.0).union(&rect(2.0, -1.0, 3.0, 0.5));
        assert_eq!(r.min, Point::new(0.0, -1.0));
        assert_eq!(r.max, Point::new(3.0, 1.0));
    }

    #[test]
    fn containment_and_intersection() {
        let r = rect(0.0, 0.0, 2.0, 2.0);
        assert!(r.contains(Point::new(1.0, 1.0)));
        assert!(r.contains(Point::new(2.0, 2.0))); // closed boundary
        assert!(!r.contains(Point::new(2.1, 1.0)));
        assert!(r.intersects(&rect(1.0, 1.0, 3.0, 3.0)));
        assert!(r.intersects(&rect(2.0, 2.0, 3.0, 3.0))); // corner touch
        assert!(!r.intersects(&rect(2.5, 2.5, 3.0, 3.0)));
    }

    #[test]
    fn mindist_to_point() {
        let r = rect(0.0, 0.0, 2.0, 2.0);
        assert_eq!(r.mindist_to_point(Point::new(1.0, 1.0)), 0.0);
        assert_eq!(r.mindist_to_point(Point::new(5.0, 1.0)), 3.0);
        assert_eq!(r.mindist_to_point(Point::new(5.0, 6.0)), 5.0);
    }

    #[test]
    fn maxdist_to_point() {
        let r = rect(0.0, 0.0, 2.0, 2.0);
        // Farthest corner from the origin-corner is the opposite corner.
        assert!((r.maxdist_to_point(Point::new(0.0, 0.0)) - 8.0_f64.sqrt()).abs() < 1e-12);
        // Point inside: farthest corner still counted.
        assert!((r.maxdist_to_point(Point::new(1.0, 1.0)) - 2.0_f64.sqrt()).abs() < 1e-12);
        assert_eq!(r.maxdist_to_point(Point::new(5.0, 1.0)), {
            let dx: f64 = 5.0;
            let dy: f64 = 1.0;
            (dx * dx + dy * dy).sqrt()
        });
    }

    #[test]
    fn mindist_point_never_exceeds_maxdist() {
        let r = rect(-1.0, -2.0, 3.0, 1.0);
        for &(x, y) in &[(0.0, 0.0), (10.0, 10.0), (-5.0, 0.5), (3.0, 1.0)] {
            let p = Point::new(x, y);
            assert!(r.mindist_to_point(p) <= r.maxdist_to_point(p));
        }
    }

    #[test]
    fn mindist_to_segment() {
        let r = rect(0.0, 0.0, 2.0, 2.0);
        // Segment crossing the rect.
        assert_eq!(
            r.mindist_to_segment(&LineSeg::new(Point::new(-1.0, 1.0), Point::new(3.0, 1.0))),
            0.0
        );
        // Segment with an endpoint inside.
        assert_eq!(
            r.mindist_to_segment(&LineSeg::new(Point::new(1.0, 1.0), Point::new(5.0, 5.0))),
            0.0
        );
        // Vertical segment to the right, 1 away.
        assert_eq!(
            r.mindist_to_segment(&LineSeg::new(Point::new(3.0, -1.0), Point::new(3.0, 3.0))),
            1.0
        );
        // Diagonal far away: corner-to-endpoint distance.
        let d = r.mindist_to_segment(&LineSeg::new(Point::new(5.0, 6.0), Point::new(7.0, 8.0)));
        assert!((d - 5.0).abs() < 1e-12);
    }
}
