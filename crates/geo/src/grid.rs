//! A uniform grid with half-open cells.
//!
//! Both of the paper's index structures are built on a uniform spatial grid:
//! the POI index of Section 3.2.1 ("a spatial grid index with arbitrary cell
//! size") and the photo index of Section 4.2.1 (cell side ρ/2). This module
//! provides the shared grid geometry:
//!
//! - point → cell assignment with **half-open** cells
//!   `[x₀+i·h, x₀+(i+1)·h) × [y₀+j·h, y₀+(j+1)·h)`, so every point belongs to
//!   exactly one cell and the 5×5-neighbourhood bound of Eq. 12 is a true
//!   upper bound;
//! - cell ↔ linear [`CellId`] mapping (row-major);
//! - rectangle and ε-dilated-segment → cell-range queries, used to build the
//!   augmented `Lε(c)` / `Cε(ℓ)` maps.

use crate::point::Point;
use crate::rect::Rect;
use crate::segment::LineSeg;
use soi_common::CellId;

/// Integer coordinates of a grid cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CellCoord {
    /// Column index (0-based).
    pub ix: u32,
    /// Row index (0-based).
    pub iy: u32,
}

impl CellCoord {
    /// Creates a cell coordinate.
    #[inline]
    pub const fn new(ix: u32, iy: u32) -> Self {
        Self { ix, iy }
    }

    /// Chebyshev (max-axis) distance in cells to another coordinate.
    #[inline]
    pub fn chebyshev(self, other: CellCoord) -> u32 {
        let dx = (self.ix as i64 - other.ix as i64).unsigned_abs();
        let dy = (self.iy as i64 - other.iy as i64).unsigned_abs();
        dx.max(dy) as u32
    }
}

/// A uniform grid over a rectangular extent.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Grid {
    origin: Point,
    cell_size: f64,
    nx: u32,
    ny: u32,
}

impl Grid {
    /// Creates a grid with the given origin, cell size, and cell counts.
    ///
    /// # Panics
    /// Panics if `cell_size` is not strictly positive or a cell count is 0.
    pub fn new(origin: Point, cell_size: f64, nx: u32, ny: u32) -> Self {
        assert!(
            cell_size > 0.0 && cell_size.is_finite(),
            "cell_size must be positive and finite"
        );
        assert!(
            nx > 0 && ny > 0,
            "grid must have at least one cell per axis"
        );
        assert!(
            (nx as u64) * (ny as u64) <= u32::MAX as u64,
            "grid too large for CellId"
        );
        Self {
            origin,
            cell_size,
            nx,
            ny,
        }
    }

    /// Creates the smallest grid of `cell_size` cells that covers `extent`,
    /// with one extra cell per axis so that points on the maximum boundary
    /// still fall strictly inside a cell.
    pub fn covering(extent: Rect, cell_size: f64) -> Self {
        assert!(
            cell_size > 0.0 && cell_size.is_finite(),
            "cell_size must be positive and finite"
        );
        let nx = (extent.width() / cell_size).ceil() as u32 + 1;
        let ny = (extent.height() / cell_size).ceil() as u32 + 1;
        Self::new(extent.min, cell_size, nx.max(1), ny.max(1))
    }

    /// Grid origin (minimum corner).
    #[inline]
    pub fn origin(&self) -> Point {
        self.origin
    }

    /// Side length of each (square) cell.
    #[inline]
    pub fn cell_size(&self) -> f64 {
        self.cell_size
    }

    /// Number of columns.
    #[inline]
    pub fn nx(&self) -> u32 {
        self.nx
    }

    /// Number of rows.
    #[inline]
    pub fn ny(&self) -> u32 {
        self.ny
    }

    /// Total number of cells.
    #[inline]
    pub fn num_cells(&self) -> usize {
        self.nx as usize * self.ny as usize
    }

    /// The full extent covered by the grid.
    pub fn extent(&self) -> Rect {
        Rect::new(
            self.origin,
            Point::new(
                self.origin.x + self.nx as f64 * self.cell_size,
                self.origin.y + self.ny as f64 * self.cell_size,
            ),
        )
    }

    /// Linearises a cell coordinate (row-major).
    #[inline]
    pub fn cell_id(&self, c: CellCoord) -> CellId {
        debug_assert!(c.ix < self.nx && c.iy < self.ny, "cell out of range");
        CellId(c.iy * self.nx + c.ix)
    }

    /// Inverse of [`Grid::cell_id`].
    #[inline]
    pub fn coord_of(&self, id: CellId) -> CellCoord {
        let raw = id.raw();
        debug_assert!((raw as usize) < self.num_cells(), "cell id out of range");
        CellCoord::new(raw % self.nx, raw / self.nx)
    }

    /// The cell containing `p` under half-open semantics, or `None` if `p`
    /// lies outside the grid extent.
    #[inline]
    pub fn cell_containing(&self, p: Point) -> Option<CellCoord> {
        let fx = ((p.x - self.origin.x) / self.cell_size).floor();
        let fy = ((p.y - self.origin.y) / self.cell_size).floor();
        if fx < 0.0 || fy < 0.0 || fx >= self.nx as f64 || fy >= self.ny as f64 {
            return None;
        }
        Some(CellCoord::new(fx as u32, fy as u32))
    }

    /// The closed rectangle spanned by cell `c`.
    ///
    /// Membership is half-open (the max edges belong to the next cell), but
    /// distance queries treat the rect as closed, which keeps lower bounds
    /// conservative.
    #[inline]
    pub fn cell_rect(&self, c: CellCoord) -> Rect {
        let min = Point::new(
            self.origin.x + c.ix as f64 * self.cell_size,
            self.origin.y + c.iy as f64 * self.cell_size,
        );
        Rect::new(
            min,
            Point::new(min.x + self.cell_size, min.y + self.cell_size),
        )
    }

    /// Inclusive cell-coordinate ranges of cells overlapping `r`, clipped to
    /// the grid. Returns `None` if `r` lies entirely outside.
    fn clip_range(&self, r: &Rect) -> Option<(u32, u32, u32, u32)> {
        let x0 = ((r.min.x - self.origin.x) / self.cell_size).floor();
        let y0 = ((r.min.y - self.origin.y) / self.cell_size).floor();
        let x1 = ((r.max.x - self.origin.x) / self.cell_size).floor();
        let y1 = ((r.max.y - self.origin.y) / self.cell_size).floor();
        if x1 < 0.0 || y1 < 0.0 || x0 >= self.nx as f64 || y0 >= self.ny as f64 {
            return None;
        }
        let x0 = x0.max(0.0) as u32;
        let y0 = y0.max(0.0) as u32;
        let x1 = (x1.min((self.nx - 1) as f64)) as u32;
        let y1 = (y1.min((self.ny - 1) as f64)) as u32;
        Some((x0, y0, x1, y1))
    }

    /// Inclusive `(x0, y0, x1, y1)` cell-index range of cells overlapping
    /// `r`, clipped to the grid (`None` if fully outside).
    pub fn cell_range_in_rect(&self, r: &Rect) -> Option<(u32, u32, u32, u32)> {
        self.clip_range(r)
    }

    /// Number of cells whose (closed) rect overlaps rectangle `r` — the
    /// O(1) counting version of [`Grid::cells_in_rect`].
    pub fn count_cells_in_rect(&self, r: &Rect) -> usize {
        match self.clip_range(r) {
            Some((x0, y0, x1, y1)) => ((x1 - x0 + 1) as usize) * ((y1 - y0 + 1) as usize),
            None => 0,
        }
    }

    /// All cells whose (closed) rect overlaps rectangle `r`, row-major order.
    pub fn cells_in_rect(&self, r: &Rect) -> Vec<CellCoord> {
        let Some((x0, y0, x1, y1)) = self.clip_range(r) else {
            return Vec::new();
        };
        let mut out = Vec::with_capacity(((x1 - x0 + 1) as usize) * ((y1 - y0 + 1) as usize));
        for iy in y0..=y1 {
            for ix in x0..=x1 {
                out.push(CellCoord::new(ix, iy));
            }
        }
        out
    }

    /// All cells within distance `dist` of segment `seg`
    /// (`mindist(cell, seg) ≤ dist`), in row-major order.
    ///
    /// This is the ε-dilation used to build `Cε(ℓ)`: every POI within `dist`
    /// of the segment is guaranteed to lie in one of the returned cells.
    pub fn cells_near_segment(&self, seg: &LineSeg, dist: f64) -> Vec<CellCoord> {
        let mut out = Vec::new();
        self.for_each_cell_near_segment(seg, dist, |c| out.push(c));
        out
    }

    /// Visitor form of [`Grid::cells_near_segment`]: calls `f` for every
    /// cell within `dist` of `seg`, row-major, without allocating.
    pub fn for_each_cell_near_segment<F: FnMut(CellCoord)>(
        &self,
        seg: &LineSeg,
        dist: f64,
        mut f: F,
    ) {
        let bbox = seg.bounding_rect().expand(dist.max(0.0));
        let Some((x0, y0, x1, y1)) = self.clip_range(&bbox) else {
            return;
        };
        for iy in y0..=y1 {
            for ix in x0..=x1 {
                let c = CellCoord::new(ix, iy);
                if self.cell_rect(c).within_dist_of_segment(seg, dist) {
                    f(c);
                }
            }
        }
    }

    /// Cells within Chebyshev radius `radius` of `c`, clipped to the grid,
    /// in row-major order (includes `c` itself).
    ///
    /// The photo-index spatial-relevance upper bound (Eq. 12) sums counts
    /// over the radius-2 neighbourhood.
    pub fn neighborhood(&self, c: CellCoord, radius: u32) -> Vec<CellCoord> {
        let mut out = Vec::new();
        self.for_each_in_neighborhood(c, radius, |n| out.push(n));
        out
    }

    /// Visitor form of [`Grid::neighborhood`]: calls `f` for every cell in
    /// the clipped Chebyshev-`radius` neighbourhood, row-major, without
    /// allocating.
    pub fn for_each_in_neighborhood<F: FnMut(CellCoord)>(
        &self,
        c: CellCoord,
        radius: u32,
        mut f: F,
    ) {
        let x0 = c.ix.saturating_sub(radius);
        let y0 = c.iy.saturating_sub(radius);
        let x1 = (c.ix + radius).min(self.nx - 1);
        let y1 = (c.iy + radius).min(self.ny - 1);
        for iy in y0..=y1 {
            for ix in x0..=x1 {
                f(CellCoord::new(ix, iy));
            }
        }
    }

    /// Iterates over every cell coordinate, row-major.
    pub fn all_cells(&self) -> impl Iterator<Item = CellCoord> + '_ {
        (0..self.ny).flat_map(move |iy| (0..self.nx).map(move |ix| CellCoord::new(ix, iy)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_grid() -> Grid {
        // 4x3 grid of unit cells with origin at (0,0).
        Grid::new(Point::ORIGIN, 1.0, 4, 3)
    }

    #[test]
    fn cell_assignment_is_half_open() {
        let g = unit_grid();
        assert_eq!(
            g.cell_containing(Point::new(0.0, 0.0)),
            Some(CellCoord::new(0, 0))
        );
        // A point exactly on an interior boundary belongs to the next cell.
        assert_eq!(
            g.cell_containing(Point::new(1.0, 0.5)),
            Some(CellCoord::new(1, 0))
        );
        assert_eq!(
            g.cell_containing(Point::new(0.5, 2.0)),
            Some(CellCoord::new(0, 2))
        );
        // Outside the extent.
        assert_eq!(g.cell_containing(Point::new(-0.1, 0.0)), None);
        assert_eq!(g.cell_containing(Point::new(4.0, 0.0)), None);
        assert_eq!(g.cell_containing(Point::new(0.0, 3.0)), None);
    }

    #[test]
    fn cell_id_roundtrip() {
        let g = unit_grid();
        for iy in 0..3 {
            for ix in 0..4 {
                let c = CellCoord::new(ix, iy);
                assert_eq!(g.coord_of(g.cell_id(c)), c);
            }
        }
        assert_eq!(g.cell_id(CellCoord::new(0, 0)).raw(), 0);
        assert_eq!(g.cell_id(CellCoord::new(3, 2)).raw(), 11);
        assert_eq!(g.num_cells(), 12);
    }

    #[test]
    fn covering_includes_boundary_points() {
        let extent = Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 5.0));
        let g = Grid::covering(extent, 1.0);
        // Every point of the extent, including the max corner, maps to a cell.
        assert!(g.cell_containing(Point::new(10.0, 5.0)).is_some());
        assert!(g.cell_containing(Point::new(0.0, 0.0)).is_some());
        assert!(g.extent().contains(Point::new(10.0, 5.0)));
    }

    #[test]
    fn cell_rect_matches_assignment() {
        let g = unit_grid();
        let c = CellCoord::new(2, 1);
        let r = g.cell_rect(c);
        assert_eq!(r.min, Point::new(2.0, 1.0));
        assert_eq!(r.max, Point::new(3.0, 2.0));
        // Interior points of the rect map back to the cell.
        assert_eq!(g.cell_containing(r.center()), Some(c));
    }

    #[test]
    fn cells_in_rect_clips_to_grid() {
        let g = unit_grid();
        let all = g.cells_in_rect(&Rect::new(Point::new(-5.0, -5.0), Point::new(50.0, 50.0)));
        assert_eq!(all.len(), 12);
        let none = g.cells_in_rect(&Rect::new(Point::new(10.0, 10.0), Point::new(11.0, 11.0)));
        assert!(none.is_empty());
        let some = g.cells_in_rect(&Rect::new(Point::new(0.5, 0.5), Point::new(1.5, 0.6)));
        assert_eq!(some, vec![CellCoord::new(0, 0), CellCoord::new(1, 0)]);
    }

    #[test]
    fn count_cells_matches_enumeration() {
        let g = unit_grid();
        for rect in [
            Rect::new(Point::new(-5.0, -5.0), Point::new(50.0, 50.0)),
            Rect::new(Point::new(0.5, 0.5), Point::new(1.5, 0.6)),
            Rect::new(Point::new(10.0, 10.0), Point::new(11.0, 11.0)),
            Rect::new(Point::new(1.0, 1.0), Point::new(1.0, 1.0)),
        ] {
            assert_eq!(g.count_cells_in_rect(&rect), g.cells_in_rect(&rect).len());
        }
    }

    #[test]
    fn cells_near_segment_covers_epsilon_band() {
        let g = unit_grid();
        // Horizontal segment through the middle of row 1.
        let seg = LineSeg::new(Point::new(0.5, 1.5), Point::new(3.5, 1.5));
        let near = g.cells_near_segment(&seg, 0.4);
        // Only row 1 is within 0.4.
        assert!(near.iter().all(|c| c.iy == 1));
        assert_eq!(near.len(), 4);
        // With dist 0.6, rows 0 and 2 are reachable too.
        let wider = g.cells_near_segment(&seg, 0.6);
        assert_eq!(wider.len(), 12);
    }

    #[test]
    fn cells_near_segment_contains_cells_of_near_points() {
        // Coverage invariant: any point within dist of the segment lies in a
        // returned cell.
        let g = Grid::new(Point::ORIGIN, 0.5, 20, 20);
        let seg = LineSeg::new(Point::new(1.3, 2.7), Point::new(7.9, 6.1));
        let dist = 0.9;
        let cells = g.cells_near_segment(&seg, dist);
        for i in 0..200 {
            let t = i as f64 / 199.0;
            let on = seg.a.lerp(seg.b, t);
            // Offset perpendicular-ish by almost dist.
            let p = Point::new(on.x + 0.6, on.y - 0.6);
            if seg.dist_to_point(p) <= dist {
                let c = g.cell_containing(p).expect("inside grid");
                assert!(cells.contains(&c), "cell {c:?} missing for point {p}");
            }
        }
    }

    #[test]
    fn neighborhood_clips_at_edges() {
        let g = unit_grid();
        let n = g.neighborhood(CellCoord::new(0, 0), 2);
        // 3x3 clipped corner block (radius 2 => 3 cols x 3 rows available).
        assert_eq!(n.len(), 9);
        assert!(n.contains(&CellCoord::new(0, 0)));
        assert!(n.contains(&CellCoord::new(2, 2)));
        let center = g.neighborhood(CellCoord::new(2, 1), 1);
        assert_eq!(center.len(), 9);
    }

    #[test]
    fn chebyshev_distance() {
        assert_eq!(CellCoord::new(1, 1).chebyshev(CellCoord::new(4, 3)), 3);
        assert_eq!(CellCoord::new(4, 3).chebyshev(CellCoord::new(1, 1)), 3);
        assert_eq!(CellCoord::new(2, 2).chebyshev(CellCoord::new(2, 2)), 0);
    }

    #[test]
    fn all_cells_enumerates_row_major() {
        let g = Grid::new(Point::ORIGIN, 1.0, 2, 2);
        let cells: Vec<CellCoord> = g.all_cells().collect();
        assert_eq!(
            cells,
            vec![
                CellCoord::new(0, 0),
                CellCoord::new(1, 0),
                CellCoord::new(0, 1),
                CellCoord::new(1, 1),
            ]
        );
    }

    #[test]
    #[should_panic(expected = "cell_size must be positive")]
    fn zero_cell_size_panics() {
        Grid::new(Point::ORIGIN, 0.0, 1, 1);
    }
}
