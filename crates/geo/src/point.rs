//! 2-D points with vector arithmetic.

use std::ops::{Add, Div, Mul, Neg, Sub};

/// A point (or vector) in the planar coordinate space.
///
/// Coordinates are in the dataset's native unit (degrees for the paper's
/// city datasets); all distances are Euclidean.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Point {
    /// Horizontal coordinate (longitude-like).
    pub x: f64,
    /// Vertical coordinate (latitude-like).
    pub y: f64,
}

impl Point {
    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// The origin.
    pub const ORIGIN: Point = Point::new(0.0, 0.0);

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(self, other: Point) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Squared Euclidean distance to `other` (cheaper; use for comparisons).
    #[inline]
    pub fn dist_sq(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Dot product, treating both points as vectors.
    #[inline]
    pub fn dot(self, other: Point) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Z-component of the cross product, treating both points as vectors.
    #[inline]
    pub fn cross(self, other: Point) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Euclidean norm, treating the point as a vector.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Linear interpolation: `self + t * (other - self)`.
    #[inline]
    pub fn lerp(self, other: Point, t: f64) -> Point {
        Point::new(
            self.x + t * (other.x - self.x),
            self.y + t * (other.y - self.y),
        )
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, other: Point) -> Point {
        Point::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, other: Point) -> Point {
        Point::new(self.x.max(other.x), self.y.max(other.y))
    }

    /// Returns true if both coordinates are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Add for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    #[inline]
    fn mul(self, rhs: f64) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f64> for Point {
    type Output = Point;
    #[inline]
    fn div(self, rhs: f64) -> Point {
        Point::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Point {
    type Output = Point;
    #[inline]
    fn neg(self) -> Point {
        Point::new(-self.x, -self.y)
    }
}

impl From<(f64, f64)> for Point {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl From<Point> for (f64, f64) {
    #[inline]
    fn from(p: Point) -> (f64, f64) {
        (p.x, p.y)
    }
}

impl std::fmt::Display for Point {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.dist(b), 5.0);
        assert_eq!(a.dist_sq(b), 25.0);
        assert_eq!(b.dist(a), 5.0);
    }

    #[test]
    fn arithmetic() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, -1.0);
        assert_eq!(a + b, Point::new(4.0, 1.0));
        assert_eq!(a - b, Point::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Point::new(2.0, 4.0));
        assert_eq!(a / 2.0, Point::new(0.5, 1.0));
        assert_eq!(-a, Point::new(-1.0, -2.0));
    }

    #[test]
    fn dot_and_cross() {
        let a = Point::new(1.0, 0.0);
        let b = Point::new(0.0, 1.0);
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(a.cross(b), 1.0);
        assert_eq!(b.cross(a), -1.0);
        assert_eq!(Point::new(3.0, 4.0).norm(), 5.0);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(2.0, 4.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Point::new(1.0, 2.0));
    }

    #[test]
    fn min_max_componentwise() {
        let a = Point::new(1.0, 5.0);
        let b = Point::new(2.0, 3.0);
        assert_eq!(a.min(b), Point::new(1.0, 3.0));
        assert_eq!(a.max(b), Point::new(2.0, 5.0));
    }

    #[test]
    fn conversions() {
        let p: Point = (1.5, 2.5).into();
        assert_eq!(p, Point::new(1.5, 2.5));
        let t: (f64, f64) = p.into();
        assert_eq!(t, (1.5, 2.5));
    }

    #[test]
    fn finiteness() {
        assert!(Point::new(1.0, 2.0).is_finite());
        assert!(!Point::new(f64::NAN, 0.0).is_finite());
        assert!(!Point::new(0.0, f64::INFINITY).is_finite());
    }
}
