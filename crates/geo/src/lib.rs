//! Planar geometry primitives for the streets-of-interest system.
//!
//! The paper works in a planar Euclidean space whose unit is degrees (its
//! distance threshold is ε = 0.0005° ≈ 55 m); this crate follows suit: all
//! coordinates are `f64` pairs and all distances are Euclidean.
//!
//! Contents:
//! - [`Point`]: a 2-D point with vector arithmetic.
//! - [`LineSeg`]: a line segment with point/segment distance computations —
//!   the distance `dist(p, ℓ)` of Definition 1 lives here.
//! - [`Rect`]: an axis-aligned rectangle with `mindist`/`maxdist` queries,
//!   used for grid-cell bounds (Eqs. 15–16) and street MBRs (`maxD(s)`,
//!   Definition 5).
//! - [`Polyline`]: a chain of points (street geometry helper).
//! - [`Grid`]: the uniform grid shared by the POI index (Sec. 3.2.1) and the
//!   photo index (Sec. 4.2.1), with half-open cells and ε-dilation of
//!   segments over cells.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code must surface failures as `SoiError`, never panic: unwrap and
// expect are compile errors outside of test code.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod grid;
pub mod point;
pub mod polyline;
pub mod rect;
pub mod segment;

pub use grid::{CellCoord, Grid};
pub use point::Point;
pub use polyline::Polyline;
pub use rect::Rect;
pub use segment::LineSeg;
