//! Property-based tests for the geometry primitives.
//!
//! These check the metric and bounding invariants the indexing layer relies
//! on: point–segment distance behaves like a metric projection, rect
//! mindist/maxdist sandwich true distances, and grid dilation covers every
//! nearby point.

use proptest::prelude::*;
use soi_geo::{Grid, LineSeg, Point, Polyline, Rect};

const COORD: std::ops::Range<f64> = -100.0..100.0;

fn point() -> impl Strategy<Value = Point> {
    (COORD, COORD).prop_map(|(x, y)| Point::new(x, y))
}

fn segment() -> impl Strategy<Value = LineSeg> {
    (point(), point()).prop_map(|(a, b)| LineSeg::new(a, b))
}

fn rect() -> impl Strategy<Value = Rect> {
    (point(), point()).prop_map(|(a, b)| Rect::from_corners(a, b))
}

proptest! {
    #[test]
    fn point_distance_symmetry(a in point(), b in point()) {
        prop_assert!((a.dist(b) - b.dist(a)).abs() < 1e-9);
    }

    #[test]
    fn point_distance_triangle_inequality(a in point(), b in point(), c in point()) {
        prop_assert!(a.dist(c) <= a.dist(b) + b.dist(c) + 1e-9);
    }

    #[test]
    fn segment_distance_at_most_endpoint_distance(s in segment(), p in point()) {
        let d = s.dist_to_point(p);
        prop_assert!(d <= p.dist(s.a) + 1e-9);
        prop_assert!(d <= p.dist(s.b) + 1e-9);
        prop_assert!(d >= 0.0);
    }

    #[test]
    fn closest_point_lies_on_segment_and_realises_distance(s in segment(), p in point()) {
        let cp = s.closest_point(p);
        // cp is on the segment: distance from segment to cp is ~0.
        prop_assert!(s.dist_to_point(cp) < 1e-7);
        // cp realises the reported distance.
        prop_assert!((cp.dist(p) - s.dist_to_point(p)).abs() < 1e-9);
    }

    #[test]
    fn interior_sample_distance_never_below_segment_distance(
        s in segment(), p in point(), t in 0.0f64..1.0
    ) {
        // The distance to any sampled segment point upper-bounds dist(p, s).
        let sample = s.a.lerp(s.b, t);
        prop_assert!(s.dist_to_point(p) <= sample.dist(p) + 1e-9);
    }

    #[test]
    fn segment_pair_distance_symmetric_and_bounded(s1 in segment(), s2 in segment()) {
        let d12 = s1.dist_to_segment(&s2);
        let d21 = s2.dist_to_segment(&s1);
        prop_assert!((d12 - d21).abs() < 1e-9);
        // Bounded above by any endpoint pair distance.
        prop_assert!(d12 <= s1.a.dist(s2.a) + 1e-9);
        prop_assert!(d12 <= s1.b.dist(s2.b) + 1e-9);
    }

    #[test]
    fn rect_min_max_dist_sandwich(r in rect(), p in point(), q in point()) {
        // For any point q inside the rect, mindist <= dist(p, q) <= maxdist.
        let clamped = Point::new(
            q.x.clamp(r.min.x, r.max.x),
            q.y.clamp(r.min.y, r.max.y),
        );
        let d = p.dist(clamped);
        prop_assert!(r.mindist_to_point(p) <= d + 1e-9);
        prop_assert!(d <= r.maxdist_to_point(p) + 1e-9);
    }

    #[test]
    fn rect_mindist_to_segment_consistent_with_samples(r in rect(), s in segment()) {
        let d = r.mindist_to_segment(&s);
        // Sampling points along the segment: their rect-mindist can never be
        // below the segment mindist.
        for i in 0..=10 {
            let t = i as f64 / 10.0;
            let p = s.a.lerp(s.b, t);
            prop_assert!(r.mindist_to_point(p) + 1e-9 >= d);
        }
    }

    #[test]
    fn within_dist_of_segment_matches_mindist(r in rect(), s in segment(), d in 0.0f64..20.0) {
        let fast = r.within_dist_of_segment(&s, d);
        let exact = r.mindist_to_segment(&s) <= d;
        // Allow disagreement only within floating-point slack of the
        // boundary.
        if fast != exact {
            prop_assert!((r.mindist_to_segment(&s) - d).abs() < 1e-9);
        }
    }

    #[test]
    fn segment_rect_intersection_matches_mindist_zero(r in rect(), s in segment()) {
        let slab = s.intersects_rect(&r);
        let exact = r.mindist_to_segment(&s) == 0.0;
        prop_assert_eq!(slab, exact);
    }

    #[test]
    fn rect_expand_monotone(r in rect(), buf in 0.0f64..10.0, p in point()) {
        let e = r.expand(buf);
        prop_assert!(e.mindist_to_point(p) <= r.mindist_to_point(p) + 1e-9);
        prop_assert!(e.contains(p) || !r.contains(p));
    }

    #[test]
    fn grid_assignment_unique_and_consistent(p in (0.0f64..9.99, 0.0f64..9.99)) {
        let g = Grid::covering(Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0)), 0.7);
        let p = Point::new(p.0, p.1);
        let c = g.cell_containing(p).expect("inside extent");
        let r = g.cell_rect(c);
        // Half-open membership: min-corner inclusive, max-corner exclusive.
        prop_assert!(p.x >= r.min.x - 1e-12 && p.x < r.max.x + 1e-12);
        prop_assert!(p.y >= r.min.y - 1e-12 && p.y < r.max.y + 1e-12);
    }

    #[test]
    fn grid_dilation_covers_near_points(
        seg in ((0.5f64..9.5), (0.5f64..9.5), (0.5f64..9.5), (0.5f64..9.5)),
        off in ((-0.4f64..0.4), (-0.4f64..0.4)),
        t in 0.0f64..1.0,
    ) {
        let g = Grid::covering(Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0)), 0.33);
        let s = LineSeg::new(Point::new(seg.0, seg.1), Point::new(seg.2, seg.3));
        let dist = 0.45;
        let p = s.a.lerp(s.b, t) + Point::new(off.0, off.1);
        if s.dist_to_point(p) <= dist {
            if let Some(c) = g.cell_containing(p) {
                let cells = g.cells_near_segment(&s, dist);
                prop_assert!(cells.contains(&c), "dilation missed cell {c:?}");
            }
        }
    }

    #[test]
    fn polyline_distance_is_min_over_segment_distances(
        pts in proptest::collection::vec(point(), 2..6),
        p in point(),
    ) {
        let poly = Polyline::new(pts);
        let expected = poly
            .segments()
            .map(|s| s.dist_to_point(p))
            .fold(f64::INFINITY, f64::min);
        prop_assert!((poly.dist_to_point(p) - expected).abs() < 1e-9);
    }

    #[test]
    fn polyline_length_additive(pts in proptest::collection::vec(point(), 2..6)) {
        let poly = Polyline::new(pts.clone());
        let sum: f64 = pts.windows(2).map(|w| w[0].dist(w[1])).sum();
        prop_assert!((poly.len() - sum).abs() < 1e-9);
    }
}
