//! k-SOI identification: query types, the SOI algorithm, and baselines.

pub mod algorithm;
pub mod baseline;
pub mod explain;
pub mod interest;
pub mod query;
pub mod stats;
pub mod strategy;

pub use algorithm::{
    run_soi, run_soi_budgeted, run_soi_explained, run_soi_full, run_soi_with_scratch, SoiScratch,
};
pub use baseline::{brute_force, exact_street_interests, run_baseline};
pub use explain::{ExplainRow, SoiExplain};
pub use interest::{segment_interest, StreetAggregate};
pub use query::{SoiConfig, SoiOutcome, SoiQuery, StreetResult};
pub use stats::QueryStats;
pub use strategy::AccessStrategy;
