//! Interest scores (Definitions 2 and 3).

/// Segment interest (Definition 2): the mass density
/// `int(ℓ) = mass(ℓ) / (2ε·len(ℓ) + πε²)`,
/// i.e. mass divided by the area of the ε-buffer around the segment.
///
/// `eps` must be strictly positive (validated at query construction), so
/// the denominator is always positive and the score finite.
#[inline]
pub fn segment_interest(mass: f64, seg_len: f64, eps: f64) -> f64 {
    debug_assert!(eps > 0.0, "eps must be positive");
    mass / (2.0 * eps * seg_len + std::f64::consts::PI * eps * eps)
}

/// How a street's interest aggregates over its segments' interests.
///
/// The paper uses the maximum (Definition 3) and notes that "there exist
/// several alternatives"; the extra variants support the ablation study.
/// Only [`StreetAggregate::Max`] admits the SOI algorithm's pruning bounds;
/// the others are evaluated by the exhaustive baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StreetAggregate {
    /// `int(s) = max_{ℓ∈s} int(ℓ)` — the paper's Definition 3.
    #[default]
    Max,
    /// Arithmetic mean of segment interests.
    Mean,
    /// Length-weighted mean: `Σ int(ℓ)·len(ℓ) / Σ len(ℓ)`.
    LengthWeighted,
}

impl StreetAggregate {
    /// Human-readable name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            StreetAggregate::Max => "max",
            StreetAggregate::Mean => "mean",
            StreetAggregate::LengthWeighted => "length-weighted",
        }
    }

    /// Aggregates `(interest, len)` pairs of a street's segments.
    ///
    /// Returns 0 for an empty street.
    pub fn aggregate(self, segments: &[(f64, f64)]) -> f64 {
        if segments.is_empty() {
            return 0.0;
        }
        match self {
            StreetAggregate::Max => segments.iter().map(|&(i, _)| i).fold(0.0, f64::max),
            StreetAggregate::Mean => {
                segments.iter().map(|&(i, _)| i).sum::<f64>() / segments.len() as f64
            }
            StreetAggregate::LengthWeighted => {
                let total_len: f64 = segments.iter().map(|&(_, l)| l).sum();
                if total_len == 0.0 {
                    0.0
                } else {
                    segments.iter().map(|&(i, l)| i * l).sum::<f64>() / total_len
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn interest_formula() {
        // mass 4, len 10, eps 0.5: area = 2*0.5*10 + pi*0.25.
        let got = segment_interest(4.0, 10.0, 0.5);
        let want = 4.0 / (10.0 + PI * 0.25);
        assert!((got - want).abs() < 1e-12);
    }

    #[test]
    fn zero_length_segment_still_finite() {
        let got = segment_interest(2.0, 0.0, 0.5);
        assert!((got - 2.0 / (PI * 0.25)).abs() < 1e-12);
    }

    #[test]
    fn interest_monotone_in_mass_antitone_in_len() {
        assert!(segment_interest(3.0, 5.0, 0.5) > segment_interest(2.0, 5.0, 0.5));
        assert!(segment_interest(3.0, 5.0, 0.5) > segment_interest(3.0, 6.0, 0.5));
    }

    #[test]
    fn aggregates() {
        let segs = [(1.0, 10.0), (3.0, 2.0), (2.0, 8.0)];
        assert_eq!(StreetAggregate::Max.aggregate(&segs), 3.0);
        assert_eq!(StreetAggregate::Mean.aggregate(&segs), 2.0);
        let lw = StreetAggregate::LengthWeighted.aggregate(&segs);
        assert!((lw - (1.0 * 10.0 + 3.0 * 2.0 + 2.0 * 8.0) / 20.0).abs() < 1e-12);
    }

    #[test]
    fn empty_street_aggregates_to_zero() {
        assert_eq!(StreetAggregate::Max.aggregate(&[]), 0.0);
        assert_eq!(StreetAggregate::Mean.aggregate(&[]), 0.0);
        assert_eq!(StreetAggregate::LengthWeighted.aggregate(&[]), 0.0);
    }

    #[test]
    fn names() {
        assert_eq!(StreetAggregate::Max.name(), "max");
        assert_eq!(StreetAggregate::Mean.name(), "mean");
        assert_eq!(StreetAggregate::LengthWeighted.name(), "length-weighted");
    }
}
