//! The BL baseline and an index-free brute-force reference.
//!
//! The paper's baseline "uses only the spatial grid index to efficiently
//! compute the interest of every segment, and then determines the k-SOIs"
//! (Sec. 5.2.1). [`run_baseline`] is that algorithm; it is exact by
//! construction and therefore also serves as the correctness oracle for
//! [`run_soi`](crate::soi::run_soi). [`brute_force`] additionally bypasses
//! the grid (O(#POIs · #segments)), validating the index layer itself on
//! small inputs.

use crate::soi::interest::{segment_interest, StreetAggregate};
use crate::soi::query::{SoiOutcome, SoiQuery, StreetResult};
use crate::soi::stats::{phases, QueryStats};
use soi_common::{top_k_by_score, FxHashMap, ScoredItem, SegmentId, StreetId};
use soi_data::PoiView;
use soi_index::IndexView;
use soi_network::RoadNetwork;

/// Evaluates a k-SOI query by scanning every segment through the grid.
///
/// `aggregate` selects the street-level aggregation; the paper's
/// Definition 3 is [`StreetAggregate::Max`]. Streets with zero interest are
/// omitted from the result, mirroring [`run_soi`](crate::soi::run_soi).
pub fn run_baseline<'a>(
    network: &RoadNetwork,
    pois: impl Into<PoiView<'a>>,
    index: impl Into<IndexView<'a>>,
    query: &SoiQuery,
    aggregate: StreetAggregate,
) -> SoiOutcome {
    let pois: PoiView<'a> = pois.into();
    let index: IndexView<'a> = index.into();
    let mut stats = QueryStats::default();
    stats.timer.enter(phases::SCAN);
    // Per street: collected (interest, len) pairs plus the best segment.
    let mut per_street: FxHashMap<StreetId, Vec<(f64, f64)>> = FxHashMap::default();
    let mut best_seg: FxHashMap<StreetId, (f64, SegmentId, f64)> = FxHashMap::default();

    for seg in network.segments() {
        let mass = index.segment_mass_lazy(pois, network, seg.id, &query.keywords, query.eps);
        stats.segments_popped += 1;
        let len = seg.len();
        let int = segment_interest(mass, len, query.eps);
        per_street.entry(seg.street).or_default().push((int, len));
        let entry = best_seg.entry(seg.street).or_insert((0.0, seg.id, 0.0));
        if int > entry.0 || (int == entry.0 && seg.id < entry.1) {
            *entry = (int, seg.id, mass);
        }
    }

    let ranked = top_k_by_score(
        per_street.iter().filter_map(|(&st, segs)| {
            let score = aggregate.aggregate(segs);
            (score > 0.0).then(|| ScoredItem::new(st, score))
        }),
        query.k,
    );
    let results = ranked
        .into_iter()
        .map(|item| {
            let (_, seg, mass) = best_seg[&item.id];
            StreetResult {
                street: item.id,
                interest: item.score.get(),
                best_segment: seg,
                best_segment_mass: mass,
            }
        })
        .collect();

    stats.timer.stop();
    SoiOutcome {
        results,
        stats,
        partial: false,
    }
}

/// Index-free exact street interests (Definition 3, `Max` aggregation) for
/// *every* street, including zero-interest ones. Test oracle.
pub fn exact_street_interests<'a>(
    network: &RoadNetwork,
    pois: impl Into<PoiView<'a>>,
    query: &SoiQuery,
) -> FxHashMap<StreetId, f64> {
    let pois: PoiView<'a> = pois.into();
    let eps_sq = query.eps * query.eps;
    let relevant: Vec<(soi_geo::Point, f64)> = pois
        .iter()
        .filter(|p| p.keywords.intersects(&query.keywords))
        .map(|p| (p.pos, p.weight))
        .collect();
    let mut out: FxHashMap<StreetId, f64> = FxHashMap::default();
    for seg in network.segments() {
        let mass: f64 = relevant
            .iter()
            .filter(|(pos, _)| seg.geom.dist_sq_to_point(*pos) <= eps_sq)
            .map(|&(_, w)| w)
            .sum();
        let int = segment_interest(mass, seg.len(), query.eps);
        let entry = out.entry(seg.street).or_insert(0.0);
        if int > *entry {
            *entry = int;
        }
    }
    for street in network.streets() {
        out.entry(street.id).or_insert(0.0);
    }
    out
}

/// Index-free exact evaluation: every (POI, segment) pair is tested.
///
/// Only intended for tests and tiny datasets.
pub fn brute_force<'a>(
    network: &RoadNetwork,
    pois: impl Into<PoiView<'a>>,
    query: &SoiQuery,
) -> SoiOutcome {
    let pois: PoiView<'a> = pois.into();
    let mut stats = QueryStats::default();
    stats.timer.enter(phases::SCAN);
    let eps_sq = query.eps * query.eps;

    let relevant: Vec<(soi_geo::Point, f64)> = pois
        .iter()
        .filter(|p| p.keywords.intersects(&query.keywords))
        .map(|p| (p.pos, p.weight))
        .collect();

    let mut best: FxHashMap<StreetId, (f64, SegmentId, f64)> = FxHashMap::default();
    for seg in network.segments() {
        let mass: f64 = relevant
            .iter()
            .filter(|(pos, _)| seg.geom.dist_sq_to_point(*pos) <= eps_sq)
            .map(|&(_, w)| w)
            .sum();
        let int = segment_interest(mass, seg.len(), query.eps);
        let entry = best.entry(seg.street).or_insert((0.0, seg.id, 0.0));
        if int > entry.0 || (int == entry.0 && seg.id < entry.1) {
            *entry = (int, seg.id, mass);
        }
    }

    let ranked = top_k_by_score(
        best.iter()
            .filter(|(_, &(int, _, _))| int > 0.0)
            .map(|(&st, &(int, _, _))| ScoredItem::new(st, int)),
        query.k,
    );
    let results = ranked
        .into_iter()
        .map(|item| {
            let (int, seg, mass) = best[&item.id];
            StreetResult {
                street: item.id,
                interest: int,
                best_segment: seg,
                best_segment_mass: mass,
            }
        })
        .collect();

    stats.timer.stop();
    SoiOutcome {
        results,
        stats,
        partial: false,
    }
}
