//! The SOI algorithm (paper Algorithm 1).
//!
//! Top-k style evaluation of the k-SOI query over the spatio-textual POI
//! index. The algorithm draws from three ranked source lists —
//!
//! - **SL1**: cells sorted decreasingly on (an upper bound of) the number
//!   of query-relevant POIs they contain,
//! - **SL2**: segments sorted decreasingly on `|Cε(ℓ)|`, the number of
//!   occupied cells within ε,
//! - **SL3**: segments sorted increasingly on length,
//!
//! — maintaining for every *seen* segment a partial mass `mass⁻(ℓ)` (a
//! lower bound of its true mass) and tracking
//!
//! - `LBk`: the k-th best street-level interest lower bound among seen
//!   segments (Lemma 1, first case), and
//! - `UB`: an upper bound on the interest of any unseen segment (Lemma 1,
//!   second case).
//!
//! Accesses stop once `UB ≤ LBk`; the refinement phase then finalises all
//! seen segments and extracts the answer.
//!
//! ### Upper bounds
//! Popping a cell from SL1 touches (marks *seen*) every segment within ε of
//! it, so all ε-cells of an unseen segment are still unpopped, each holding
//! at most `top(SL1)` relevant weight. The paper's bound combines the list
//! heads: `UB_paper = top(SL1)·top(SL2) / (2ε·top(SL3) + πε²)`, pairing the
//! largest surviving cell count with the smallest surviving length — sound
//! but loose, since no single segment attains both extremes. We additionally
//! maintain the *coupled* bound
//! `UB_f = top(SL1) · max_unseen |Cε(ℓ)| / (2ε·len(ℓ) + πε²)`,
//! read off a fourth ranked list sorted by that per-segment factor, and use
//! `UB = min(UB_paper, UB_f)`. Both are upper bounds for every unseen
//! segment, so the combination preserves correctness while terminating much
//! earlier (the ablation bench quantifies the difference).

use crate::budget::{QueryBudget, BUDGET_CHECK_EVERY};
use crate::soi::explain::{ExplainRow, SoiExplain};
use crate::soi::interest::segment_interest;
use crate::soi::query::{SoiConfig, SoiOutcome, SoiQuery, StreetResult};
use crate::soi::stats::{phases, QueryStats};
use crate::soi::strategy::Source;
use soi_common::{
    top_k_by_score, CellId, FxHashMap, Result, ScoredItem, SegmentId, StreetId, TopKTracker,
};
use soi_data::PoiView;
use soi_index::IndexView;
use soi_network::RoadNetwork;

/// Source accesses between sampled UB/LBk trace-counter emissions: dense
/// enough to show the convergence curve, sparse enough to stay invisible
/// in the timings (a power of two so the modulo folds to a mask).
const UB_SAMPLE_EVERY: usize = 64;

/// Per-segment state during filtering: the *partial* / *final* states of
/// Section 3.2.2.
struct SegState {
    /// Accumulated (lower-bound) mass from visited cells.
    mass: f64,
    /// `Cε(ℓ)`: the occupied cells within ε (ascending), computed lazily
    /// when the segment is first seen (the query-time augmentation of
    /// Sec. 3.2.1).
    cells: Vec<CellId>,
    /// Bitset over `cells`: which ones were already accounted for.
    visited_bits: Vec<u64>,
    /// Number of set bits.
    visited_count: usize,
    /// True once every cell has been visited (exact interest known).
    finalized: bool,
}

impl SegState {
    fn new(cells: Vec<CellId>) -> Self {
        let finalized = cells.is_empty();
        let words = cells.len().div_ceil(64);
        Self {
            mass: 0.0,
            cells,
            visited_bits: vec![0; words],
            visited_count: 0,
            finalized,
        }
    }

    /// Marks `cell` visited; returns false if it was already visited or is
    /// not one of the segment's ε-cells.
    fn visit(&mut self, cell: CellId) -> bool {
        let Ok(idx) = self.cells.binary_search(&cell) else {
            return false;
        };
        let (word, bit) = (idx / 64, 1u64 << (idx % 64));
        if self.visited_bits[word] & bit != 0 {
            return false;
        }
        self.visited_bits[word] |= bit;
        self.visited_count += 1;
        true
    }

    /// Iterates over the not-yet-visited cells.
    fn unvisited(&self) -> impl Iterator<Item = CellId> + '_ {
        self.cells.iter().enumerate().filter_map(|(i, &c)| {
            (self.visited_bits[i / 64] & (1u64 << (i % 64)) == 0).then_some(c)
        })
    }

    /// Upper bound on the segment's true mass: accumulated mass plus the
    /// full relevant weight of every unvisited cell.
    fn upper_mass(&self, relcount: &FxHashMap<CellId, f64>) -> f64 {
        self.mass
            + self
                .unvisited()
                .map(|c| relcount.get(&c).copied().unwrap_or(0.0))
                .sum::<f64>()
    }
}

/// Mutable algorithm state shared by the access handlers.
struct Filtering {
    states: FxHashMap<SegmentId, SegState>,
    /// Best per-street interest lower bound among seen segments.
    street_best: FxHashMap<StreetId, f64>,
    /// Incremental k-th-largest tracker over `street_best`: `LBk`
    /// (Alg. 1 lines 23–24) is always fresh at O(log S) per update.
    lbk: TopKTracker<StreetId>,
}

impl Filtering {
    /// Raises `street`'s lower bound to `int_lower` if it improves.
    fn raise_street_bound(&mut self, street: StreetId, int_lower: f64) {
        let entry = self.street_best.entry(street).or_insert(f64::NEG_INFINITY);
        if int_lower > *entry {
            let old = (*entry > f64::NEG_INFINITY).then_some(*entry);
            *entry = int_lower;
            self.lbk.update(street, old, int_lower);
        }
    }
}

/// Query-time 2-D prefix sums over the per-cell relevant weights, giving an
/// O(1) upper bound on the relevant mass inside any rectangle. Lets the
/// algorithm dismiss hopeless segments before even rasterising their ε-cell
/// lists.
struct RelPrefix {
    nx: usize,
    ny: usize,
    /// `(nx+1) × (ny+1)` inclusive prefix sums, row-major.
    sums: Vec<f64>,
}

impl RelPrefix {
    /// Builds the prefix sums into `sums` (a reusable scratch vector).
    fn build(grid: &soi_geo::Grid, relcount: &FxHashMap<CellId, f64>, mut sums: Vec<f64>) -> Self {
        let (nx, ny) = (grid.nx() as usize, grid.ny() as usize);
        sums.clear();
        sums.resize((nx + 1) * (ny + 1), 0.0);
        for (&cell, &w) in relcount {
            let coord = grid.coord_of(cell);
            sums[(coord.iy as usize + 1) * (nx + 1) + coord.ix as usize + 1] = w;
        }
        for y in 1..=ny {
            let mut row_acc = 0.0;
            for x in 1..=nx {
                row_acc += sums[y * (nx + 1) + x];
                sums[y * (nx + 1) + x] = sums[(y - 1) * (nx + 1) + x] + row_acc;
            }
        }
        Self { nx, ny, sums }
    }

    /// Total relevant weight of cells in the inclusive index range.
    fn rect_sum(&self, (x0, y0, x1, y1): (u32, u32, u32, u32)) -> f64 {
        debug_assert!(x1 < self.nx as u32 && y1 < self.ny as u32);
        let at = |x: usize, y: usize| self.sums[y * (self.nx + 1) + x];
        let (x0, y0, x1, y1) = (x0 as usize, y0 as usize, x1 as usize, y1 as usize);
        // Tiny relative head-room guards against prefix-sum rounding making
        // the upper bound minutely smaller than the true sum.
        (at(x1 + 1, y1 + 1) - at(x0, y1 + 1) - at(x1 + 1, y0) + at(x0, y0)).max(0.0) * (1.0 + 1e-9)
    }
}

/// Reusable allocations for [`run_soi`], letting a batch of queries share
/// buffers instead of re-allocating the source lists, bound tables, and
/// per-segment state maps on every call.
///
/// Hold one per worker thread and pass it to
/// [`run_soi_with_scratch`]; results are identical to [`run_soi`] (the
/// buffers are cleared on entry, never read).
#[derive(Default)]
pub struct SoiScratch {
    cell_weights: FxHashMap<CellId, f64>,
    prefix_sums: Vec<f64>,
    cell_count_ub: Vec<usize>,
    sl1: Vec<(CellId, f64)>,
    sl2: Vec<SegmentId>,
    slf: Vec<(SegmentId, f64)>,
    states: FxHashMap<SegmentId, SegState>,
    street_best: FxHashMap<StreetId, f64>,
    segs_near_cell: Vec<SegmentId>,
    unvisited: Vec<CellId>,
    seen: Vec<SegmentId>,
}

impl std::fmt::Debug for SoiScratch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SoiScratch").finish_non_exhaustive()
    }
}

/// Evaluates a k-SOI query with the SOI algorithm.
///
/// Returns the ranked streets (interest desc, street id asc; zero-interest
/// streets omitted) together with per-phase timings and work counters.
///
/// This is a total function over its inputs: hostile parameters are rejected
/// with a typed error, and degenerate datasets (no streets, no POIs, a
/// keyword set matching nothing) produce an empty result rather than a
/// panic.
///
/// `pois` and `index` accept either the plain base structures (`&PoiCollection`,
/// `&PoiIndex`) or live base+delta views ([`PoiView`], [`IndexView`]); the
/// algorithm reads exclusively through the views, so an epoch's pending
/// delta participates in every bound and mass with rebuild-identical
/// values.
///
/// # Errors
/// Returns [`SoiError::InvalidInput`](soi_common::SoiError::InvalidInput)
/// when the query violates its invariants (`k = 0`, non-positive or
/// non-finite ε) — see [`SoiQuery::validate`].
pub fn run_soi<'a>(
    network: &RoadNetwork,
    pois: impl Into<PoiView<'a>>,
    index: impl Into<IndexView<'a>>,
    query: &SoiQuery,
    config: &SoiConfig,
) -> Result<SoiOutcome> {
    run_soi_with_scratch(
        network,
        pois.into(),
        index.into(),
        query,
        config,
        &mut SoiScratch::default(),
    )
}

/// [`run_soi`] with caller-provided scratch space (see [`SoiScratch`]).
///
/// # Errors
/// Same contract as [`run_soi`].
pub fn run_soi_with_scratch<'a>(
    network: &RoadNetwork,
    pois: impl Into<PoiView<'a>>,
    index: impl Into<IndexView<'a>>,
    query: &SoiQuery,
    config: &SoiConfig,
    scratch: &mut SoiScratch,
) -> Result<SoiOutcome> {
    run_soi_explained(
        network,
        pois.into(),
        index.into(),
        query,
        config,
        scratch,
        None,
    )
}

/// [`run_soi_with_scratch`] with an opt-in explain collector.
///
/// When `explain` is `Some`, the run records its bound trajectory (one
/// [`ExplainRow`] per source access, decimated), the post-construction
/// source-list sizes, ε-cache deltas, and a final termination row into the
/// collector; results are identical to [`run_soi`]. With `None` this *is*
/// [`run_soi_with_scratch`] — the hooks are a branch on an `Option`.
///
/// # Errors
/// Same contract as [`run_soi`].
pub fn run_soi_explained<'a>(
    network: &RoadNetwork,
    pois: impl Into<PoiView<'a>>,
    index: impl Into<IndexView<'a>>,
    query: &SoiQuery,
    config: &SoiConfig,
    scratch: &mut SoiScratch,
    explain: Option<&mut SoiExplain>,
) -> Result<SoiOutcome> {
    run_soi_full(
        network,
        pois.into(),
        index.into(),
        query,
        config,
        scratch,
        explain,
        QueryBudget::unlimited(),
    )
}

/// [`run_soi_with_scratch`] under an execution budget: anytime semantics.
///
/// The deadline is checked every [`BUDGET_CHECK_EVERY`] source-list
/// accesses. On expiry the run stops accessing, skips refinement, and
/// returns the *current* lower-bound top-k with
/// [`partial`](SoiOutcome::partial) set: every returned street's interest
/// is a valid lower bound of its true interest and is at least the
/// recorded `LBk` ([`QueryStats::termination_lb`]) — Alg. 1 maintains a
/// correct lower-bound ranking at every access, so a deadline hit degrades
/// the answer instead of erroring. An unlimited budget is bit-identical to
/// [`run_soi_with_scratch`].
///
/// # Errors
/// Same contract as [`run_soi`] — a deadline hit is *not* an error.
pub fn run_soi_budgeted<'a>(
    network: &RoadNetwork,
    pois: impl Into<PoiView<'a>>,
    index: impl Into<IndexView<'a>>,
    query: &SoiQuery,
    config: &SoiConfig,
    scratch: &mut SoiScratch,
    budget: QueryBudget,
) -> Result<SoiOutcome> {
    run_soi_full(
        network,
        pois.into(),
        index.into(),
        query,
        config,
        scratch,
        None,
        budget,
    )
}

/// The full-surface entry point: explain collector *and* execution budget
/// (see [`run_soi_explained`] and [`run_soi_budgeted`]).
///
/// # Errors
/// Same contract as [`run_soi`].
#[allow(clippy::too_many_arguments)]
pub fn run_soi_full<'a>(
    network: &RoadNetwork,
    pois: impl Into<PoiView<'a>>,
    index: impl Into<IndexView<'a>>,
    query: &SoiQuery,
    config: &SoiConfig,
    scratch: &mut SoiScratch,
    mut explain: Option<&mut SoiExplain>,
    budget: QueryBudget,
) -> Result<SoiOutcome> {
    let pois: PoiView<'a> = pois.into();
    let index: IndexView<'a> = index.into();
    query.validate()?;
    let _query_span = soi_obs::trace::span(soi_obs::names::spans::SOI_QUERY);
    if let Some(ex) = explain.as_deref_mut() {
        ex.begin(query.k, query.eps, query.keywords.iter().count());
    }
    let mut stats = QueryStats::default();
    stats.timer.enter(phases::CONSTRUCTION);

    let eps = query.eps;

    // Detach the scratch buffers so each behaves as a plain local; they are
    // handed back (with their capacity) before returning.
    let mut cell_weights = std::mem::take(&mut scratch.cell_weights);
    let mut cell_count_ub = std::mem::take(&mut scratch.cell_count_ub);
    let mut sl1 = std::mem::take(&mut scratch.sl1);
    let mut sl2 = std::mem::take(&mut scratch.sl2);
    let mut slf = std::mem::take(&mut scratch.slf);
    let mut states = std::mem::take(&mut scratch.states);
    let mut street_best = std::mem::take(&mut scratch.street_best);
    let mut segs_near_cell = std::mem::take(&mut scratch.segs_near_cell);
    let mut unvisited = std::mem::take(&mut scratch.unvisited);
    let mut seen = std::mem::take(&mut scratch.seen);
    cell_weights.clear();
    cell_count_ub.clear();
    sl1.clear();
    sl2.clear();
    slf.clear();
    states.clear();
    street_best.clear();

    let sources_span = soi_obs::trace::span(soi_obs::names::spans::SOI_SOURCES);

    // --- SL1: cells by relevant-POI weight, descending (Alg. 1 lines 1–3).
    for k in query.keywords.iter() {
        for &(cell, w) in index.global_postings(k) {
            *cell_weights.entry(cell).or_insert(0.0) += w;
        }
    }
    for (cell, sum) in cell_weights.iter_mut() {
        let cap = index.cell_total_weight(*cell);
        *sum = sum.min(cap);
    }
    // relcount(c): upper bound on the relevant weight a cell can contribute
    // to any segment's mass; reused for the per-segment mass upper bounds.
    let relcount = &cell_weights;
    let relprefix = RelPrefix::build(
        index.grid(),
        relcount,
        std::mem::take(&mut scratch.prefix_sums),
    );
    sl1.extend(relcount.iter().map(|(&c, &w)| (c, w)));
    sl1.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));

    // --- SL2: segments by (an O(1) upper bound of) |Cε(ℓ)| descending
    // (lines 6–7). Any sound upper bound keeps the UB valid, and avoids
    // rasterising every segment at query time.
    cell_count_ub.extend(
        network
            .segments()
            .iter()
            .map(|s| index.upper_cell_count(&s.geom, eps)),
    );
    sl2.extend(network.segments().iter().map(|s| s.id));
    sl2.sort_by(|&a, &b| {
        cell_count_ub[b.index()]
            .cmp(&cell_count_ub[a.index()])
            .then_with(|| a.cmp(&b))
    });

    // --- SL3: segments by length ascending (precomputed offline).
    let sl3: &[SegmentId] = index.segments_by_len();

    // --- SLf: segments by the coupled factor |Cε(ℓ)|/(2ε·len+πε²), desc.
    // Never popped; peeked (skipping seen segments) for the tight UB.
    slf.extend(network.segments().iter().map(|s| {
        let f = segment_interest(cell_count_ub[s.id.index()] as f64, s.len(), eps);
        (s.id, f)
    }));
    slf.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    drop(sources_span);

    if let Some(ex) = explain.as_deref_mut() {
        ex.record_lists(sl1.len(), sl2.len(), sl3.len());
    }

    let mut fil = Filtering {
        states,
        street_best,
        lbk: TopKTracker::new(query.k),
    };
    let mut cursor1 = 0usize;
    let mut cursor2 = 0usize;
    let mut cursor3 = 0usize;
    let mut cursor_f = 0usize;

    stats.timer.enter(phases::FILTERING);

    // Effective `UpdateInterest` (procedure in Alg. 1): accounts cell `cell`
    // for segment `seg` once, keeping the street-level lower bound current.
    let update_interest =
        |seg: SegmentId, cell: CellId, lbk: f64, fil: &mut Filtering, stats: &mut QueryStats| {
            let state = fil.states.entry(seg).or_insert_with(|| {
                stats.segments_seen += 1;
                let s = network.segment(seg);
                // O(1) pre-rasterisation bound: if the full relevant weight
                // of the dilated bbox cannot lift the segment above LBk,
                // its exact cells are never needed.
                if lbk > 0.0 {
                    if let Some(range) = index
                        .grid()
                        .cell_range_in_rect(&s.geom.bounding_rect().expand(eps))
                    {
                        let upper = relprefix.rect_sum(range);
                        if segment_interest(upper, s.len(), eps) <= lbk {
                            stats.segments_bounded_out += 1;
                            stats.segments_finalized_filtering += 1;
                            return SegState::new(Vec::new());
                        }
                    }
                }
                SegState::new(index.occupied_cells_near_segment(&s.geom, eps))
            });
            if state.finalized || !state.visit(cell) {
                stats.duplicate_visits += 1;
                return;
            }
            let s = network.segment(seg);
            let gained = index.cell_mass_for_segment(pois, cell, &s.geom, &query.keywords, eps);
            state.mass += gained;
            stats.cell_visits += 1;
            if state.visited_count == state.cells.len() {
                state.finalized = true;
                stats.segments_finalized_filtering += 1;
            }
            if gained > 0.0 {
                let int_lower = segment_interest(state.mass, s.len(), eps);
                fil.raise_street_bound(s.street, int_lower);
            }
        };

    let cycle = config.strategy.cycle();
    let mut cycle_pos = 0usize;
    let mut lbk = fil.lbk.threshold();
    let mut ub = f64::INFINITY;
    // A deadline that expired before the access loop still yields a valid
    // (empty) lower-bound answer: the loop is simply never entered.
    let mut expired = budget.expired();

    while !expired {
        // Advance cursors past finalised (SL2/SL3) or seen (SLf) segments so
        // that peeks reflect the best still-relevant entry of each list.
        while cursor2 < sl2.len() && fil.states.get(&sl2[cursor2]).is_some_and(|s| s.finalized) {
            cursor2 += 1;
        }
        while cursor3 < sl3.len() && fil.states.get(&sl3[cursor3]).is_some_and(|s| s.finalized) {
            cursor3 += 1;
        }
        while cursor_f < slf.len() && fil.states.contains_key(&slf[cursor_f].0) {
            cursor_f += 1;
        }

        // Unseen upper bound (line 22). Exhausted SL1 means every cell with
        // relevant POIs was popped, so every segment with positive mass is
        // seen; exhausted SL2/SL3/SLf means no unseen segments remain.
        let top1 = sl1.get(cursor1).map_or(0.0, |&(_, w)| w);
        let top2 = sl2
            .get(cursor2)
            .map_or(0.0, |&s| cell_count_ub[s.index()] as f64);
        let top3 = sl3.get(cursor3).map(|&s| network.segment(s).len());
        let ub_paper = match top3 {
            Some(len) if top1 > 0.0 && top2 > 0.0 => segment_interest(top1 * top2, len, eps),
            _ => 0.0,
        };
        let ub_coupled = slf.get(cursor_f).map_or(0.0, |&(_, f)| top1 * f);
        ub = if config.paper_bounds_only {
            ub_paper
        } else {
            ub_paper.min(ub_coupled)
        };
        lbk = fil.lbk.threshold();

        if ub <= lbk {
            if let Some(ex) = explain.as_deref_mut() {
                // Final row: the state that stopped the access loop. Always
                // recorded, so the table's last row satisfies UB ≤ LBk.
                ex.record(ExplainRow {
                    access: stats.accesses,
                    source: None,
                    ub,
                    ub_paper,
                    ub_coupled,
                    lbk,
                    top_sl1: top1,
                    top_sl2: top2,
                    top_sl3: top3.unwrap_or(0.0),
                    segments_seen: stats.segments_seen,
                    cells_popped: stats.cells_popped,
                });
            }
            break;
        }

        // With paper-verbatim bounds, segment dismissal is disabled by
        // passing a zero threshold to the bound-out sites.
        let prune_lbk = if config.paper_bounds_only { 0.0 } else { lbk };

        // Choose the next source per the strategy cycle, falling through to
        // any non-exhausted list.
        let preferred = cycle[cycle_pos % cycle.len()];
        cycle_pos += 1;
        let fallbacks = [
            preferred,
            Source::Cells,
            Source::SegmentsByLen,
            Source::SegmentsByCells,
        ];
        let mut accessed = None;
        for source in fallbacks {
            match source {
                Source::Cells if cursor1 < sl1.len() => {
                    let (cell, _) = sl1[cursor1];
                    cursor1 += 1;
                    stats.cells_popped += 1;
                    // Lazy Lε(c) superset: spurious touches are rejected by
                    // each segment's own Cε membership check.
                    index.segments_near_cell_superset_into(cell, eps, &mut segs_near_cell);
                    for &seg in &segs_near_cell {
                        update_interest(seg, cell, prune_lbk, &mut fil, &mut stats);
                    }
                    accessed = Some(Source::Cells);
                }
                Source::SegmentsByCells if cursor2 < sl2.len() => {
                    let seg = sl2[cursor2];
                    cursor2 += 1;
                    stats.segments_popped += 1;
                    finalize_segment(
                        seg, network, pois, index, query, eps, prune_lbk, relcount, &relprefix,
                        &mut fil, &mut stats,
                    );
                    accessed = Some(Source::SegmentsByCells);
                }
                Source::SegmentsByLen if cursor3 < sl3.len() => {
                    let seg = sl3[cursor3];
                    cursor3 += 1;
                    stats.segments_popped += 1;
                    finalize_segment(
                        seg, network, pois, index, query, eps, prune_lbk, relcount, &relprefix,
                        &mut fil, &mut stats,
                    );
                    accessed = Some(Source::SegmentsByLen);
                }
                _ => continue,
            }
            break;
        }
        let Some(accessed_source) = accessed else {
            // All lists exhausted: everything is seen; UB is 0 next round.
            continue;
        };
        stats.accesses += 1;
        if let Some(ex) = explain.as_deref_mut() {
            // Bounds and list heads are the pre-access values that selected
            // this access; progress counters are cumulative after it.
            ex.record(ExplainRow {
                access: stats.accesses,
                source: Some(accessed_source),
                ub,
                ub_paper,
                ub_coupled,
                lbk,
                top_sl1: top1,
                top_sl2: top2,
                top_sl3: top3.unwrap_or(0.0),
                segments_seen: stats.segments_seen,
                cells_popped: stats.cells_popped,
            });
        }
        // Sampled convergence tracks: with tracing on, a Chrome trace shows
        // UB descending onto LBk over the filtering phase.
        if stats.accesses % UB_SAMPLE_EVERY == 0 {
            soi_obs::trace::counter(soi_obs::names::tracks::SOI_UB, ub);
            soi_obs::trace::counter(soi_obs::names::tracks::SOI_LBK, lbk);
        }
        // Deadline check every few accesses: cheap enough to be invisible on
        // the unlimited path (a branch on `None`), frequent enough that an
        // expired budget stops within microseconds. The stale pre-access UB
        // kept here is still a valid upper bound (UB is non-increasing), and
        // the *current* LBk is recorded so returned scores validate against
        // `termination_lb`.
        if stats.accesses % BUDGET_CHECK_EVERY == 0 && budget.expired() {
            expired = true;
            lbk = fil.lbk.threshold();
        }
    }

    stats.termination_ub = ub;
    stats.termination_lb = lbk;
    stats.deadline_expired = expired;

    // --- Refinement (lines 25–28): finalise the seen segments that can
    // still matter. A partial segment whose mass upper bound cannot lift it
    // above LBk is skipped: its true interest can neither enter the top-k
    // nor change a returned street's maximum (returned values are ≥ LBk).
    //
    // Skipped entirely on deadline expiry: the anytime contract is a
    // *lower-bound* top-k, and every accumulated mass is already a valid
    // lower bound — spending more time refining would defeat the deadline.
    if !expired {
        stats.timer.enter(phases::REFINEMENT);
        lbk = if config.paper_bounds_only {
            0.0
        } else {
            fil.lbk.threshold()
        };
        seen.clear();
        seen.extend(fil.states.keys().copied());
        seen.sort_unstable();
        for &seg in &seen {
            let Some(state) = fil.states.get(&seg) else {
                continue; // unreachable: `seen` was drawn from the same map
            };
            if state.finalized {
                continue;
            }
            let s = network.segment(seg);
            if lbk > 0.0 && segment_interest(state.upper_mass(relcount), s.len(), eps) <= lbk {
                stats.segments_bounded_out += 1;
                continue;
            }
            let geom = s.geom;
            unvisited.clear();
            unvisited.extend(state.unvisited());
            let mut extra = 0.0;
            for &cell in &unvisited {
                extra += index.cell_mass_for_segment(pois, cell, &geom, &query.keywords, eps);
                stats.cell_visits += 1;
            }
            if let Some(state) = fil.states.get_mut(&seg) {
                state.mass += extra;
                state.finalized = true;
                stats.segments_finalized_refinement += 1;
            }
        }
    }

    // Street-level aggregation (Definition 3: max over segments) restricted
    // to seen segments — unseen ones have interest ≤ UB ≤ LBk and cannot
    // change the top-k membership.
    let rank_span = soi_obs::trace::span(soi_obs::names::spans::SOI_RANK);
    let mut best: FxHashMap<StreetId, (f64, SegmentId, f64)> = FxHashMap::default();
    for (&seg, state) in &fil.states {
        let s = network.segment(seg);
        let int = segment_interest(state.mass, s.len(), eps);
        let entry = best.entry(s.street).or_insert((0.0, seg, 0.0));
        if int > entry.0 || (int == entry.0 && seg < entry.1) {
            *entry = (int, seg, state.mass);
        }
    }
    let ranked = top_k_by_score(
        best.iter()
            .filter(|(_, &(int, _, _))| int > 0.0)
            .map(|(&st, &(int, _, _))| ScoredItem::new(st, int)),
        query.k,
    );
    let results = ranked
        .into_iter()
        .map(|item| {
            let (int, seg, mass) = best[&item.id];
            StreetResult {
                street: item.id,
                interest: int,
                best_segment: seg,
                best_segment_mass: mass,
            }
        })
        .collect();
    drop(rank_span);

    stats.timer.stop();

    // Hand the buffers (and their capacity) back for the next query.
    scratch.cell_weights = cell_weights;
    scratch.prefix_sums = relprefix.sums;
    scratch.cell_count_ub = cell_count_ub;
    scratch.sl1 = sl1;
    scratch.sl2 = sl2;
    scratch.slf = slf;
    scratch.states = fil.states;
    scratch.street_best = fil.street_best;
    scratch.segs_near_cell = segs_near_cell;
    scratch.unvisited = unvisited;
    scratch.seen = seen;

    crate::obs::absorb_query_stats(&stats);

    if let Some(ex) = explain {
        ex.finish(&stats);
    }

    Ok(SoiOutcome {
        results,
        stats,
        partial: expired,
    })
}

/// Pops a segment from SL2/SL3: lazily computes its Cε cells and either
/// *bounds it out* — when even attributing every unvisited cell's full
/// relevant weight cannot lift its interest above `LBk`, the segment is
/// marked final without any distance computation (its true interest can
/// affect neither the top-k membership nor a returned street's reported
/// maximum) — or visits every remaining cell.
#[allow(clippy::too_many_arguments)]
fn finalize_segment(
    seg: SegmentId,
    network: &RoadNetwork,
    pois: PoiView<'_>,
    index: IndexView<'_>,
    query: &SoiQuery,
    eps: f64,
    lbk: f64,
    relcount: &FxHashMap<CellId, f64>,
    relprefix: &RelPrefix,
    fil: &mut Filtering,
    stats: &mut QueryStats,
) {
    let s = network.segment(seg);
    let state = match fil.states.entry(seg) {
        std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
        std::collections::hash_map::Entry::Vacant(e) => {
            stats.segments_seen += 1;
            // O(1) pre-rasterisation bound (see update_interest).
            if lbk > 0.0 {
                if let Some(range) = index
                    .grid()
                    .cell_range_in_rect(&s.geom.bounding_rect().expand(eps))
                {
                    let upper = relprefix.rect_sum(range);
                    if segment_interest(upper, s.len(), eps) <= lbk {
                        stats.segments_bounded_out += 1;
                        stats.segments_finalized_filtering += 1;
                        e.insert(SegState::new(Vec::new()));
                        return;
                    }
                }
            }
            let state = SegState::new(index.occupied_cells_near_segment(&s.geom, eps));
            if state.finalized {
                stats.segments_finalized_filtering += 1;
            }
            e.insert(state)
        }
    };
    if state.finalized {
        return;
    }
    let int_upper = segment_interest(state.upper_mass(relcount), s.len(), eps);
    if int_upper <= lbk && lbk > 0.0 {
        state.finalized = true;
        stats.segments_bounded_out += 1;
        stats.segments_finalized_filtering += 1;
        return;
    }
    // Visit every remaining cell in place (no clone of the cell list). The
    // cell at position `idx` is exactly bit `idx` of the visited set, so the
    // membership binary search of `SegState::visit` is unnecessary here. The
    // street bound is raised once with the final mass, which dominates every
    // per-cell intermediate raise.
    for idx in 0..state.cells.len() {
        let (word, bit) = (idx / 64, 1u64 << (idx % 64));
        if state.visited_bits[word] & bit != 0 {
            stats.duplicate_visits += 1;
            continue;
        }
        state.visited_bits[word] |= bit;
        state.visited_count += 1;
        let cell = state.cells[idx];
        state.mass += index.cell_mass_for_segment(pois, cell, &s.geom, &query.keywords, eps);
        stats.cell_visits += 1;
    }
    state.finalized = true;
    stats.segments_finalized_filtering += 1;
    let mass = state.mass;
    if mass > 0.0 {
        fil.raise_street_bound(s.street, segment_interest(mass, s.len(), eps));
    }
}
