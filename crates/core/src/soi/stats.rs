//! Run statistics of a k-SOI evaluation.

use soi_common::PhaseTimer;
use std::time::Duration;

/// Phase names used by the SOI algorithm (matching Fig. 4's breakdown).
///
/// These are the workspace-wide canonical constants from
/// [`soi_obs::names::phases`], re-exported here so existing
/// `stats::phases::…` call sites keep working while timers, traces, and
/// logs all agree on the same strings.
pub use soi_obs::names::phases;

/// Work counters and phase timings of one query evaluation.
#[derive(Debug, Clone, Default)]
pub struct QueryStats {
    /// Wall-clock time per phase.
    pub timer: PhaseTimer,
    /// Cells popped from SL1.
    pub cells_popped: usize,
    /// Segments popped from SL2/SL3.
    pub segments_popped: usize,
    /// Effective `UpdateInterest` executions (cell newly visited for a
    /// segment).
    pub cell_visits: usize,
    /// `UpdateInterest` calls skipped because the cell was already visited.
    pub duplicate_visits: usize,
    /// Segments that entered the *partial* state (seen at least once).
    pub segments_seen: usize,
    /// Segments whose exact interest was computed during filtering.
    pub segments_finalized_filtering: usize,
    /// Segments finalised during refinement.
    pub segments_finalized_refinement: usize,
    /// Segments dismissed by the mass upper bound without distance work
    /// (their interest provably cannot reach `LBk`).
    pub segments_bounded_out: usize,
    /// The unseen upper bound at termination.
    pub termination_ub: f64,
    /// The seen lower bound at termination.
    pub termination_lb: f64,
    /// Total source-list accesses performed.
    pub accesses: usize,
    /// True when a [`QueryBudget`](crate::QueryBudget) deadline expired
    /// before `UB ≤ LBk`: the run stopped early and returned its current
    /// lower-bound top-k.
    pub deadline_expired: bool,
}

impl QueryStats {
    /// Total measured wall-clock time across phases.
    pub fn total_time(&self) -> Duration {
        self.timer.total()
    }

    /// Total segments finalised (filtering + refinement).
    pub fn segments_finalized(&self) -> usize {
        self.segments_finalized_filtering + self.segments_finalized_refinement
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_zero() {
        let s = QueryStats::default();
        assert_eq!(s.cells_popped, 0);
        assert_eq!(s.segments_finalized(), 0);
        assert_eq!(s.total_time(), Duration::ZERO);
    }

    #[test]
    fn finalized_sums() {
        let s = QueryStats {
            segments_finalized_filtering: 3,
            segments_finalized_refinement: 4,
            ..Default::default()
        };
        assert_eq!(s.segments_finalized(), 7);
    }
}
