//! Source-list access strategies.
//!
//! Algorithm 1 consumes three ranked source lists; the paper notes that
//! "each source list can be accessed in a round robin fashion; the
//! correctness of our method is not affected by the access strategy. In
//! practice, we alternate between SL1 and SL3 … We only access segments via
//! the second source SL2 in the case that a few segments with a large
//! number of neighboring cells exist." The strategies below cover the
//! pseudocode's rotation, the practical default, and two degenerate
//! baselines for the ablation bench.

/// Which source list an access targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// SL1: cells sorted decreasingly on relevant-POI count.
    Cells,
    /// SL2: segments sorted decreasingly on number of ε-neighbouring cells.
    SegmentsByCells,
    /// SL3: segments sorted increasingly on length.
    SegmentsByLen,
}

/// The order in which the SOI algorithm draws from its source lists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AccessStrategy {
    /// Alternate SL1 and SL3, visiting SL2 once per cycle — the paper's
    /// practical default ("we alternate between SL1 and SL3", with SL2
    /// consulted occasionally).
    #[default]
    AlternateSl1Sl3,
    /// Strict SL1 → SL2 → SL3 rotation, as in Algorithm 1's pseudocode.
    RoundRobin,
    /// Drain SL1 (cells) first, then fall back to segments.
    CellsFirst,
    /// Drain SL3 (short segments) first — degenerates towards a
    /// smallest-segment scan; ablation baseline.
    SegmentsFirst,
}

impl AccessStrategy {
    /// The cyclic access pattern of this strategy. The algorithm walks the
    /// cycle, falling through to any non-exhausted source when the preferred
    /// one is exhausted.
    pub fn cycle(self) -> &'static [Source] {
        match self {
            // SL2 interleaved once per four accesses.
            AccessStrategy::AlternateSl1Sl3 => &[
                Source::Cells,
                Source::SegmentsByLen,
                Source::Cells,
                Source::SegmentsByCells,
            ],
            AccessStrategy::RoundRobin => &[
                Source::Cells,
                Source::SegmentsByCells,
                Source::SegmentsByLen,
            ],
            AccessStrategy::CellsFirst => &[Source::Cells],
            AccessStrategy::SegmentsFirst => &[Source::SegmentsByLen],
        }
    }

    /// Name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            AccessStrategy::AlternateSl1Sl3 => "alternate-sl1-sl3",
            AccessStrategy::RoundRobin => "round-robin",
            AccessStrategy::CellsFirst => "cells-first",
            AccessStrategy::SegmentsFirst => "segments-first",
        }
    }

    /// All strategies (for the ablation bench).
    pub fn all() -> [AccessStrategy; 4] {
        [
            AccessStrategy::AlternateSl1Sl3,
            AccessStrategy::RoundRobin,
            AccessStrategy::CellsFirst,
            AccessStrategy::SegmentsFirst,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_are_nonempty_and_contain_declared_sources() {
        for s in AccessStrategy::all() {
            assert!(!s.cycle().is_empty(), "{}", s.name());
        }
        assert!(AccessStrategy::RoundRobin
            .cycle()
            .contains(&Source::SegmentsByCells));
        assert_eq!(AccessStrategy::CellsFirst.cycle(), &[Source::Cells]);
    }

    #[test]
    fn default_is_paper_practical_choice() {
        assert_eq!(AccessStrategy::default(), AccessStrategy::AlternateSl1Sl3);
        let cycle = AccessStrategy::AlternateSl1Sl3.cycle();
        assert_eq!(cycle[0], Source::Cells);
        assert_eq!(cycle[1], Source::SegmentsByLen);
    }

    #[test]
    fn names_unique() {
        let names: Vec<&str> = AccessStrategy::all().iter().map(|s| s.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(names.len(), dedup.len());
    }
}
