//! Query explain for Algorithm 1: opt-in collection of the bound
//! trajectory and pruning effectiveness of one k-SOI evaluation.
//!
//! A [`SoiExplain`] passed to
//! [`run_soi_explained`](crate::soi::run_soi_explained) records, per
//! source-list access, the termination bounds (`UB`, the paper bound and
//! the coupled bound it is min'd with, `LBk`) together with the surviving
//! heads of the three source lists — the raw material of a
//! bound-convergence table. Rows are decimated on the fly (stride
//! doubling) so a long filtering phase cannot grow the collector beyond
//! [`SoiExplain::max_rows`]; the final pre-termination state is always
//! recorded as its own row, so the last row of the table provably
//! satisfies `UB ≤ LBk` and matches the query's actual termination.
//!
//! The collector also captures the ε-map cache interactions of the query
//! (hit/miss/eviction deltas of the process counters) and a copy of the
//! finished [`QueryStats`], giving the `soi explain` CLI command one
//! self-contained artifact.

use crate::soi::stats::QueryStats;
use crate::soi::strategy::Source;
use soi_obs::json::JsonWriter;

/// Default row capacity of a collector (see [`SoiExplain::with_max_rows`]).
pub const DEFAULT_MAX_ROWS: usize = 1024;

/// One recorded access: the algorithm state *before* the access was
/// performed, plus which source the access then drew from.
#[derive(Debug, Clone, Copy)]
pub struct ExplainRow {
    /// 1-based access count this row describes (the access being made).
    pub access: usize,
    /// The source list the access drew from (`None` for the final
    /// termination row, where no further access happens).
    pub source: Option<Source>,
    /// The unseen upper bound `UB = min(ub_paper, ub_coupled)` in effect.
    pub ub: f64,
    /// The paper's decoupled bound `top(SL1)·top(SL2)/(2ε·top(SL3)+πε²)`.
    pub ub_paper: f64,
    /// The coupled per-segment bound read off SLf.
    pub ub_coupled: f64,
    /// The k-th best seen street lower bound `LBk`.
    pub lbk: f64,
    /// Head of SL1: largest surviving per-cell relevant weight.
    pub top_sl1: f64,
    /// Head of SL2: largest surviving `|Cε(ℓ)|` upper bound.
    pub top_sl2: f64,
    /// Head of SL3: smallest surviving segment length (0 when exhausted).
    pub top_sl3: f64,
    /// Segments in the partial/final state so far.
    pub segments_seen: usize,
    /// SL1 cells popped so far.
    pub cells_popped: usize,
}

/// Source-list sizes after Alg. 1's construction phase.
#[derive(Debug, Clone, Copy, Default)]
pub struct ListSizes {
    /// Cells in SL1 (cells holding query-relevant weight).
    pub sl1: usize,
    /// Segments in SL2 (= SL3 = SLf: every network segment).
    pub sl2: usize,
    /// Segments in SL3.
    pub sl3: usize,
}

/// The query's termination state: the bounds that stopped the access loop.
#[derive(Debug, Clone, Copy)]
pub struct Termination {
    /// Total source accesses performed.
    pub accesses: usize,
    /// Final unseen upper bound (`≤ lbk`).
    pub ub: f64,
    /// Final k-th seen lower bound.
    pub lbk: f64,
}

/// ε-map cache interaction deltas over one query.
#[derive(Debug, Clone, Copy, Default)]
pub struct EpsCacheDelta {
    /// Cache hits during the query.
    pub hits: u64,
    /// Cache misses (maps built) during the query.
    pub misses: u64,
    /// LRU evictions during the query.
    pub evictions: u64,
}

/// Collects the explain record of one k-SOI evaluation.
///
/// Create one (e.g. [`SoiExplain::default`]) and pass it to
/// [`run_soi_explained`](crate::soi::run_soi_explained); afterwards render
/// it with [`SoiExplain::to_json`] or walk [`SoiExplain::rows`] directly.
#[derive(Debug)]
pub struct SoiExplain {
    /// Bound-trajectory rows in access order (decimated; the termination
    /// row is always last).
    pub rows: Vec<ExplainRow>,
    /// Query parameters (`k`, ε, keyword count), filled in by the run.
    pub k: usize,
    /// Query ε.
    pub eps: f64,
    /// Number of query keywords.
    pub keywords: usize,
    /// Source-list sizes after construction.
    pub lists: ListSizes,
    /// Termination bounds (`None` until the run finishes).
    pub termination: Option<Termination>,
    /// ε-map cache deltas over the run.
    pub eps_cache: EpsCacheDelta,
    /// A copy of the finished run's stats.
    pub stats: Option<QueryStats>,
    max_rows: usize,
    /// Record every `stride`-th access (doubled whenever `rows` fills).
    stride: usize,
    eps_cache_start: (u64, u64, u64),
}

impl Default for SoiExplain {
    fn default() -> Self {
        Self::with_max_rows(DEFAULT_MAX_ROWS)
    }
}

impl SoiExplain {
    /// A collector keeping at most `max_rows` trajectory rows (≥ 2: the
    /// first access and the termination row are always kept).
    pub fn with_max_rows(max_rows: usize) -> Self {
        Self {
            rows: Vec::new(),
            k: 0,
            eps: 0.0,
            keywords: 0,
            lists: ListSizes::default(),
            termination: None,
            eps_cache: EpsCacheDelta::default(),
            stats: None,
            max_rows: max_rows.max(2),
            stride: 1,
            eps_cache_start: (0, 0, 0),
        }
    }

    /// The row-capacity bound this collector decimates to.
    pub fn max_rows(&self) -> usize {
        self.max_rows
    }

    pub(crate) fn begin(&mut self, k: usize, eps: f64, keywords: usize) {
        self.k = k;
        self.eps = eps;
        self.keywords = keywords;
        self.eps_cache_start = soi_index::obs::epsilon_cache_counters();
    }

    pub(crate) fn record_lists(&mut self, sl1: usize, sl2: usize, sl3: usize) {
        self.lists = ListSizes { sl1, sl2, sl3 };
    }

    /// Records one access row, decimating (drop every other row, double
    /// the stride) whenever the buffer is full.
    pub(crate) fn record(&mut self, row: ExplainRow) {
        let off_stride = |stride: usize| !(row.access - 1).is_multiple_of(stride);
        if row.source.is_some() && off_stride(self.stride) {
            return;
        }
        if self.rows.len() >= self.max_rows {
            // Keep even-indexed rows (the first row survives), then only
            // record every 2·stride-th access from here on.
            let mut i = 0;
            self.rows.retain(|_| {
                let keep = i % 2 == 0;
                i += 1;
                keep
            });
            self.stride *= 2;
            if row.source.is_some() && off_stride(self.stride) {
                return;
            }
        }
        self.rows.push(row);
    }

    pub(crate) fn finish(&mut self, stats: &QueryStats) {
        let (h, m, e) = soi_index::obs::epsilon_cache_counters();
        self.eps_cache = EpsCacheDelta {
            hits: h.saturating_sub(self.eps_cache_start.0),
            misses: m.saturating_sub(self.eps_cache_start.1),
            evictions: e.saturating_sub(self.eps_cache_start.2),
        };
        self.termination = Some(Termination {
            accesses: stats.accesses,
            ub: stats.termination_ub,
            lbk: stats.termination_lb,
        });
        self.stats = Some(stats.clone());
    }

    /// Renders the collected record as a self-contained JSON object (the
    /// `soi` section of the `soi explain --json` artifact).
    pub fn to_json(&self) -> String {
        let mut obj = JsonWriter::object();
        let mut q = JsonWriter::object();
        q.field_u64("k", self.k as u64);
        q.field_f64("eps", self.eps);
        q.field_u64("keywords", self.keywords as u64);
        obj.field_raw("query", &q.finish());
        let mut lists = JsonWriter::object();
        lists.field_u64("sl1", self.lists.sl1 as u64);
        lists.field_u64("sl2", self.lists.sl2 as u64);
        lists.field_u64("sl3", self.lists.sl3 as u64);
        obj.field_raw("lists", &lists.finish());
        let mut rows = JsonWriter::array();
        for r in &self.rows {
            let mut row = JsonWriter::object();
            row.field_u64("access", r.access as u64);
            row.field_str("source", source_label(r.source));
            row.field_f64("ub", r.ub);
            row.field_f64("ub_paper", r.ub_paper);
            row.field_f64("ub_coupled", r.ub_coupled);
            row.field_f64("lbk", r.lbk);
            row.field_f64("top_sl1", r.top_sl1);
            row.field_f64("top_sl2", r.top_sl2);
            row.field_f64("top_sl3", r.top_sl3);
            row.field_u64("segments_seen", r.segments_seen as u64);
            row.field_u64("cells_popped", r.cells_popped as u64);
            rows.elem_raw(&row.finish());
        }
        obj.field_raw("rows", &rows.finish());
        if let Some(t) = self.termination {
            let mut term = JsonWriter::object();
            term.field_u64("accesses", t.accesses as u64);
            term.field_f64("ub", t.ub);
            term.field_f64("lbk", t.lbk);
            term.field_bool("converged", t.ub <= t.lbk);
            obj.field_raw("termination", &term.finish());
        }
        if let Some(s) = &self.stats {
            let mut c = JsonWriter::object();
            c.field_u64("accesses", s.accesses as u64);
            c.field_u64("cells_popped", s.cells_popped as u64);
            c.field_u64("segments_popped", s.segments_popped as u64);
            c.field_u64("cell_visits", s.cell_visits as u64);
            c.field_u64("duplicate_visits", s.duplicate_visits as u64);
            c.field_u64("segments_seen", s.segments_seen as u64);
            c.field_u64("segments_bounded_out", s.segments_bounded_out as u64);
            c.field_u64(
                "segments_finalized_filtering",
                s.segments_finalized_filtering as u64,
            );
            c.field_u64(
                "segments_finalized_refinement",
                s.segments_finalized_refinement as u64,
            );
            obj.field_raw("counters", &c.finish());
            let mut p = JsonWriter::object();
            for phase in [
                crate::soi::stats::phases::CONSTRUCTION,
                crate::soi::stats::phases::FILTERING,
                crate::soi::stats::phases::REFINEMENT,
            ] {
                p.field_f64(phase, s.timer.duration(phase).as_secs_f64() * 1e3);
            }
            obj.field_raw("phases_ms", &p.finish());
        }
        let mut eps = JsonWriter::object();
        eps.field_u64("hits", self.eps_cache.hits);
        eps.field_u64("misses", self.eps_cache.misses);
        eps.field_u64("evictions", self.eps_cache.evictions);
        obj.field_raw("eps_cache", &eps.finish());
        obj.finish()
    }
}

/// Short human label of a source (used by the table and the JSON rows).
pub fn source_label(source: Option<Source>) -> &'static str {
    match source {
        Some(Source::Cells) => "SL1",
        Some(Source::SegmentsByCells) => "SL2",
        Some(Source::SegmentsByLen) => "SL3",
        None => "-",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(access: usize, ub: f64, lbk: f64) -> ExplainRow {
        ExplainRow {
            access,
            source: Some(Source::Cells),
            ub,
            ub_paper: ub,
            ub_coupled: ub,
            lbk,
            top_sl1: 1.0,
            top_sl2: 2.0,
            top_sl3: 3.0,
            segments_seen: access,
            cells_popped: access,
        }
    }

    #[test]
    fn decimation_keeps_first_row_and_bounds_memory() {
        let mut ex = SoiExplain::with_max_rows(8);
        for a in 1..=1000 {
            ex.record(row(a, 1000.0 - a as f64, a as f64));
        }
        assert!(ex.rows.len() <= 8, "rows grew to {}", ex.rows.len());
        assert_eq!(ex.rows[0].access, 1, "first access must survive");
        // Strictly increasing access order is preserved.
        assert!(ex.rows.windows(2).all(|w| w[0].access < w[1].access));
    }

    #[test]
    fn termination_row_is_always_recorded() {
        let mut ex = SoiExplain::with_max_rows(4);
        for a in 1..=100 {
            ex.record(row(a, 100.0 - a as f64, a as f64));
        }
        let mut term = row(101, 0.5, 50.0);
        term.source = None;
        ex.record(term);
        let last = ex.rows.last().unwrap();
        assert!(last.source.is_none());
        assert!(last.ub <= last.lbk);
    }

    #[test]
    fn json_round_trips_through_the_parser() {
        let mut ex = SoiExplain::default();
        ex.begin(10, 0.0005, 2);
        ex.record_lists(5, 7, 7);
        ex.record(row(1, 9.0, 0.0));
        let stats = QueryStats {
            accesses: 1,
            termination_ub: 0.5,
            termination_lb: 1.5,
            ..Default::default()
        };
        ex.finish(&stats);
        let doc = soi_obs::json::parse(&ex.to_json()).expect("valid JSON");
        assert_eq!(
            doc.get("query").unwrap().get("k").unwrap().as_f64(),
            Some(10.0)
        );
        assert_eq!(doc.get("rows").unwrap().as_arr().unwrap().len(), 1);
        let term = doc.get("termination").unwrap();
        assert_eq!(
            term.get("converged"),
            Some(&soi_obs::json::Json::Bool(true))
        );
        assert!(doc.get("eps_cache").is_some());
        assert!(doc.get("counters").is_some());
    }

    #[test]
    fn source_labels_are_stable() {
        assert_eq!(source_label(Some(Source::Cells)), "SL1");
        assert_eq!(source_label(Some(Source::SegmentsByCells)), "SL2");
        assert_eq!(source_label(Some(Source::SegmentsByLen)), "SL3");
        assert_eq!(source_label(None), "-");
    }
}
