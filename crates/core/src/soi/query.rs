//! k-SOI query, configuration, and result types.

use crate::soi::stats::QueryStats;
use crate::soi::strategy::AccessStrategy;
use soi_common::{Result, SegmentId, SoiError, StreetId};
use soi_text::KeywordSet;

/// The k-SOI query `q = ⟨Ψ, k, ε⟩` (Problem 1).
#[derive(Debug, Clone)]
pub struct SoiQuery {
    /// The query keyword set `Ψ` (interned ids).
    pub keywords: KeywordSet,
    /// Number of streets to return.
    pub k: usize,
    /// Distance threshold ε: a POI contributes to a segment's mass when it
    /// lies within ε of the segment.
    pub eps: f64,
}

impl SoiQuery {
    /// Creates a validated query.
    ///
    /// # Errors
    /// Rejects `k = 0` and non-positive or non-finite ε.
    pub fn new(keywords: KeywordSet, k: usize, eps: f64) -> Result<Self> {
        let q = Self { keywords, k, eps };
        q.validate()?;
        Ok(q)
    }

    /// Re-checks the query invariants (`k ≥ 1`, `ε` positive and finite).
    ///
    /// The fields are public, so [`run_soi`](crate::run_soi) revalidates at
    /// the API boundary rather than trusting construction-time checks.
    ///
    /// # Errors
    /// Rejects `k = 0` and non-positive or non-finite ε.
    pub fn validate(&self) -> Result<()> {
        if self.k == 0 {
            return Err(SoiError::invalid("k must be at least 1"));
        }
        if !(self.eps > 0.0 && self.eps.is_finite()) {
            return Err(SoiError::invalid(format!(
                "eps must be positive and finite, got {}",
                self.eps
            )));
        }
        Ok(())
    }
}

/// Tuning knobs of the SOI algorithm. The defaults follow the paper.
#[derive(Debug, Clone, Default)]
pub struct SoiConfig {
    /// Source-list access strategy (paper: correctness is unaffected).
    pub strategy: AccessStrategy,
    /// Use only the paper's verbatim termination bound
    /// `top(SL1)·top(SL2)/(2ε·top(SL3)+πε²)` and disable the coupled
    /// per-segment upper bound and the bound-based segment dismissal.
    /// Default false; the ablation bench quantifies the difference.
    pub paper_bounds_only: bool,
}

/// One ranked street in a k-SOI result.
#[derive(Debug, Clone, PartialEq)]
pub struct StreetResult {
    /// The street.
    pub street: StreetId,
    /// The street's interest (exact, per the configured aggregate).
    pub interest: f64,
    /// The segment realising the street's interest (for `Max` aggregation).
    pub best_segment: SegmentId,
    /// The mass of that segment.
    pub best_segment_mass: f64,
}

/// The outcome of a k-SOI evaluation: ranked streets plus run statistics.
#[derive(Debug, Clone)]
pub struct SoiOutcome {
    /// Streets in rank order (interest desc, street id asc). Streets with
    /// zero interest are never reported, so fewer than `k` entries may be
    /// returned.
    pub results: Vec<StreetResult>,
    /// Phase timings and work counters.
    pub stats: QueryStats,
    /// True when a [`QueryBudget`](crate::QueryBudget) deadline expired
    /// before the bounds converged: `results` holds the current
    /// lower-bound top-k (each entry's interest is a valid lower bound of
    /// the street's true interest, and at least the recorded
    /// [`QueryStats::termination_lb`]) rather than the exact answer.
    pub partial: bool,
}

impl SoiOutcome {
    /// The interest of the lowest-ranked returned street (0 if empty).
    pub fn min_interest(&self) -> f64 {
        self.results.last().map_or(0.0, |r| r.interest)
    }

    /// The returned street ids in rank order.
    pub fn street_ids(&self) -> Vec<StreetId> {
        self.results.iter().map(|r| r.street).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_validation() {
        assert!(SoiQuery::new(KeywordSet::empty(), 1, 0.5).is_ok());
        assert!(SoiQuery::new(KeywordSet::empty(), 0, 0.5).is_err());
        assert!(SoiQuery::new(KeywordSet::empty(), 1, 0.0).is_err());
        assert!(SoiQuery::new(KeywordSet::empty(), 1, -1.0).is_err());
        assert!(SoiQuery::new(KeywordSet::empty(), 1, f64::NAN).is_err());
        assert!(SoiQuery::new(KeywordSet::empty(), 1, f64::INFINITY).is_err());
    }

    #[test]
    fn default_config() {
        let c = SoiConfig::default();
        assert_eq!(c.strategy, crate::soi::AccessStrategy::AlternateSl1Sl3);
    }

    #[test]
    fn outcome_helpers() {
        let outcome = SoiOutcome {
            results: vec![
                StreetResult {
                    street: StreetId(3),
                    interest: 2.0,
                    best_segment: SegmentId(1),
                    best_segment_mass: 4.0,
                },
                StreetResult {
                    street: StreetId(1),
                    interest: 1.0,
                    best_segment: SegmentId(7),
                    best_segment_mass: 2.0,
                },
            ],
            stats: QueryStats::default(),
            partial: false,
        };
        assert_eq!(outcome.min_interest(), 1.0);
        assert_eq!(outcome.street_ids(), vec![StreetId(3), StreetId(1)]);
    }
}
