//! Route sketching over discovered streets (the paper's future work).
//!
//! Section 6 lists "route recommendations based on the discovered streets
//! of interest" as future work. This module implements a simple variant: a
//! greedy nearest-neighbour visiting order over the k-SOI result, starting
//! from the most interesting street and repeatedly hopping to the closest
//! unvisited one (by street-MBR center distance).

use crate::soi::StreetResult;
use soi_common::StreetId;
use soi_geo::Point;
use soi_network::RoadNetwork;

/// Total walking length of a route: the sum of street-MBR-center distances
/// between consecutive *located* stops.
///
/// Streets without geometry (no segments, hence no MBR) have no position
/// on the map, so they are skipped entirely: the walk proceeds from the
/// last located stop straight to the next located one. They never truncate
/// the hops around them to zero — a route `[A, ghost, B]` is exactly as
/// long as `[A, B]`.
pub fn route_length(network: &RoadNetwork, route: &[StreetId]) -> f64 {
    let mut total = 0.0;
    let mut prev: Option<Point> = None;
    for &s in route {
        let Some(center) = network.street_mbr(s).map(|m| m.center()) else {
            continue; // geometry-less stop: bridge to the next located one
        };
        if let Some(p) = prev {
            total += p.dist(center);
        }
        prev = Some(center);
    }
    total
}

/// Improves a route in place with 2-opt moves (reversing sub-tours that
/// shorten the total length) until no improving move remains.
///
/// Returns the final route length. Deterministic: moves are applied
/// first-improvement in scan order, and the loop ends at a local optimum.
///
/// Streets without geometry have no position to optimise against: the
/// route order is left untouched and the returned length is
/// [`route_length`]'s bridged walk over the located stops only.
pub fn improve_route_2opt(network: &RoadNetwork, route: &mut [StreetId]) -> f64 {
    let centers: Vec<Option<Point>> = route
        .iter()
        .map(|&s| network.street_mbr(s).map(|m| m.center()))
        .collect();
    if centers.iter().any(Option::is_none) || route.len() < 4 {
        return route_length(network, route);
    }
    let mut pts: Vec<Point> = centers.into_iter().flatten().collect();

    let mut improved = true;
    while improved {
        improved = false;
        // Keep the first stop fixed (it is the top-ranked street).
        for i in 1..route.len() - 1 {
            for j in i + 1..route.len() {
                let before = pts[i - 1].dist(pts[i])
                    + if j + 1 < pts.len() {
                        pts[j].dist(pts[j + 1])
                    } else {
                        0.0
                    };
                let after = pts[i - 1].dist(pts[j])
                    + if j + 1 < pts.len() {
                        pts[i].dist(pts[j + 1])
                    } else {
                        0.0
                    };
                if after + 1e-15 < before {
                    route[i..=j].reverse();
                    pts[i..=j].reverse();
                    improved = true;
                }
            }
        }
    }
    route_length(network, route)
}

/// Orders the streets of a k-SOI result into an exploration route.
///
/// Starts at the top-ranked street; each subsequent stop is the unvisited
/// street whose MBR center is closest to the current one (ties: higher
/// interest, then lower street id). Streets without geometry are skipped.
pub fn sketch_route(network: &RoadNetwork, results: &[StreetResult]) -> Vec<StreetId> {
    let mut stops: Vec<(StreetId, Point, f64)> = results
        .iter()
        .filter_map(|r| {
            network
                .street_mbr(r.street)
                .map(|mbr| (r.street, mbr.center(), r.interest))
        })
        .collect();
    if stops.is_empty() {
        return Vec::new();
    }

    let mut route = Vec::with_capacity(stops.len());
    // Results are rank-ordered: the first stop is the top street.
    let mut current = stops.remove(0);
    route.push(current.0);

    while !stops.is_empty() {
        let mut best_idx = 0;
        let mut best_key = (f64::INFINITY, f64::NEG_INFINITY, u32::MAX);
        for (i, &(id, center, interest)) in stops.iter().enumerate() {
            let key = (current.1.dist(center), -interest, id.raw());
            if key.0 < best_key.0
                || (key.0 == best_key.0
                    && (key.1 < best_key.1 || (key.1 == best_key.1 && key.2 < best_key.2)))
            {
                best_key = key;
                best_idx = i;
            }
        }
        current = stops.remove(best_idx);
        route.push(current.0);
    }
    route
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_common::SegmentId;

    fn result(street: u32, interest: f64) -> StreetResult {
        StreetResult {
            street: StreetId(street),
            interest,
            best_segment: SegmentId(0),
            best_segment_mass: 0.0,
        }
    }

    fn line_network() -> RoadNetwork {
        // Three parallel unit streets at x = 0, 10, 2.
        let mut b = RoadNetwork::builder();
        for &x in &[0.0, 10.0, 2.0] {
            b.add_street_from_points(format!("s{x}"), &[Point::new(x, 0.0), Point::new(x, 1.0)]);
        }
        b.build().unwrap()
    }

    #[test]
    fn route_starts_at_top_and_hops_nearest() {
        let net = line_network();
        // Rank order: street 0 (x=0) first.
        let results = vec![result(0, 3.0), result(1, 2.0), result(2, 1.0)];
        let route = sketch_route(&net, &results);
        // From x=0, nearest is x=2 (street 2), then x=10 (street 1).
        assert_eq!(route, vec![StreetId(0), StreetId(2), StreetId(1)]);
    }

    #[test]
    fn empty_results() {
        let net = line_network();
        assert!(sketch_route(&net, &[]).is_empty());
    }

    #[test]
    fn single_street() {
        let net = line_network();
        assert_eq!(sketch_route(&net, &[result(1, 1.0)]), vec![StreetId(1)]);
    }

    /// Streets at the corners of a square plus its center.
    fn square_network() -> RoadNetwork {
        let mut b = RoadNetwork::builder();
        for &(x, y) in &[
            (0.0, 0.0),
            (10.0, 0.0),
            (10.0, 10.0),
            (0.0, 10.0),
            (5.0, 5.0),
        ] {
            b.add_street_from_points(
                format!("s{x}-{y}"),
                &[Point::new(x, y), Point::new(x + 1.0, y)],
            );
        }
        b.build().unwrap()
    }

    #[test]
    fn route_length_sums_center_distances() {
        let net = square_network();
        // Corner (0,0) -> corner (10,0): centers differ by exactly 10 in x.
        let len = route_length(&net, &[StreetId(0), StreetId(1)]);
        assert!((len - 10.0).abs() < 1e-12);
        assert_eq!(route_length(&net, &[StreetId(0)]), 0.0);
        assert_eq!(route_length(&net, &[]), 0.0);
    }

    #[test]
    fn geometry_less_stops_are_bridged_not_zeroed() {
        // Square-corner streets plus one street with no segments at all.
        let mut b = RoadNetwork::builder();
        for &(x, y) in &[(0.0, 0.0), (10.0, 0.0)] {
            b.add_street_from_points(
                format!("s{x}-{y}"),
                &[Point::new(x, y), Point::new(x + 1.0, y)],
            );
        }
        let ghost = b.add_street("ghost");
        let net = b.build().unwrap();
        assert!(net.street_mbr(ghost).is_none());

        // The ghost sits between two located stops 10 apart: the walk must
        // still cover those 10 units, not drop both adjacent hops to zero.
        let mixed = [StreetId(0), ghost, StreetId(1)];
        let len = route_length(&net, &mixed);
        assert!((len - 10.0).abs() < 1e-12, "got {len}");
        // Same length as the route without the ghost.
        let plain = route_length(&net, &[StreetId(0), StreetId(1)]);
        assert_eq!(len, plain);

        // Leading/trailing ghosts contribute nothing either.
        let padded = [ghost, StreetId(0), StreetId(1), ghost];
        assert_eq!(route_length(&net, &padded), plain);
        // All-ghost and all-empty routes have zero length.
        assert_eq!(route_length(&net, &[ghost, ghost]), 0.0);

        // 2-opt leaves mixed routes untouched and reports the bridged length.
        let mut route = vec![StreetId(0), ghost, StreetId(1), StreetId(0), StreetId(1)];
        let expect = route.clone();
        let out = improve_route_2opt(&net, &mut route);
        assert_eq!(route, expect);
        assert!((out - route_length(&net, &expect)).abs() < 1e-12);
    }

    #[test]
    fn two_opt_untangles_a_crossing_route() {
        let net = square_network();
        // Visiting corners in a crossing (hourglass) order.
        let mut route = vec![StreetId(0), StreetId(2), StreetId(1), StreetId(3)];
        let before = route_length(&net, &route);
        let after = improve_route_2opt(&net, &mut route);
        assert!(after < before, "2-opt failed: {before} -> {after}");
        // The square perimeter walk (minus the closing edge) is optimal.
        assert!((after - 30.0).abs() < 1e-9, "got {after}");
        // First stop stays fixed.
        assert_eq!(route[0], StreetId(0));
    }

    #[test]
    fn two_opt_never_increases_length() {
        let net = square_network();
        for perm in [
            vec![
                StreetId(0),
                StreetId(1),
                StreetId(2),
                StreetId(3),
                StreetId(4),
            ],
            vec![
                StreetId(0),
                StreetId(4),
                StreetId(2),
                StreetId(1),
                StreetId(3),
            ],
            vec![
                StreetId(0),
                StreetId(3),
                StreetId(1),
                StreetId(4),
                StreetId(2),
            ],
        ] {
            let mut route = perm.clone();
            let before = route_length(&net, &route);
            let after = improve_route_2opt(&net, &mut route);
            assert!(after <= before + 1e-12, "{perm:?}: {before} -> {after}");
            // Same multiset of stops.
            let mut a = route.clone();
            let mut b = perm.clone();
            a.sort();
            b.sort();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn two_opt_short_routes_are_untouched() {
        let net = square_network();
        let mut route = vec![StreetId(0), StreetId(1), StreetId(2)];
        let len = improve_route_2opt(&net, &mut route);
        assert_eq!(route, vec![StreetId(0), StreetId(1), StreetId(2)]);
        assert!((len - route_length(&net, &route)).abs() < 1e-12);
    }
}
