//! The naive greedy `mmr` baseline (the paper's BL for Sec. 5.2.2).
//!
//! Builds the summary incrementally, evaluating the exact `mmr` of *every*
//! remaining photo at each step. `O(k²·|Rs|)` measure evaluations. Serves
//! both as the performance baseline and as the correctness oracle for
//! [`st_rel_div()`](crate::describe::st_rel_div()): both algorithms implement
//! the same greedy with identical tie-breaking (higher `mmr`, then lower
//! photo id), so their outputs must match exactly.

use crate::describe::context::StreetContext;
use crate::describe::objective::{mmr, objective};
use crate::describe::{DescribeOutcome, DescribeParams, DescribeStats};
use soi_common::{FxHashSet, PhotoId};
use soi_data::PhotoView;

/// Greedily selects up to `params.k` photos maximising `mmr` at each step.
pub fn greedy_select<'a>(
    ctx: &StreetContext,
    photos: impl Into<PhotoView<'a>>,
    params: &DescribeParams,
) -> DescribeOutcome {
    let photos: PhotoView<'a> = photos.into();
    let mut stats = DescribeStats::default();
    stats.timer.enter("select");

    let mut selected: Vec<PhotoId> = Vec::with_capacity(params.k.min(ctx.members.len()));
    let mut chosen: FxHashSet<PhotoId> = FxHashSet::default();

    while selected.len() < params.k && chosen.len() < ctx.members.len() {
        let mut best: Option<(f64, PhotoId)> = None;
        for &r in &ctx.members {
            if chosen.contains(&r) {
                continue;
            }
            let v = mmr(ctx, photos, params, r, &selected);
            stats.photos_evaluated += 1;
            let better = match best {
                None => true,
                Some((bv, bid)) => v > bv || (v == bv && r < bid),
            };
            if better {
                best = Some((v, r));
            }
        }
        // No candidate found (e.g. duplicate ids in `members` inflating the
        // loop bound): the selection cannot grow further.
        let Some((_, next)) = best else { break };
        selected.push(next);
        chosen.insert(next);
    }

    stats.timer.stop();
    let objective = objective(ctx, photos, params, &selected);
    DescribeOutcome {
        selected,
        objective,
        stats,
        partial: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::describe::context::{ContextBuilder, PhiSource};
    use crate::describe::measures;
    use soi_common::{KeywordId, StreetId};
    use soi_data::PhotoCollection;
    use soi_geo::Point;
    use soi_index::PhotoGrid;
    use soi_network::RoadNetwork;
    use soi_text::KeywordSet;

    fn tags(ids: &[u32]) -> KeywordSet {
        KeywordSet::from_ids(ids.iter().map(|&i| KeywordId(i)))
    }

    fn setup() -> (PhotoCollection, StreetContext) {
        let mut b = RoadNetwork::builder();
        b.add_street_from_points("Main", &[Point::new(0.0, 0.0), Point::new(10.0, 0.0)]);
        let network = b.build().unwrap();
        let mut photos = PhotoCollection::new();
        // Dense popular cluster with repeated tags (high rel).
        photos.add(Point::new(1.0, 0.0), tags(&[0, 1]));
        photos.add(Point::new(1.1, 0.0), tags(&[0, 1]));
        photos.add(Point::new(1.2, 0.0), tags(&[0]));
        // Distant, differently tagged photos (high div).
        photos.add(Point::new(9.0, 0.0), tags(&[2]));
        photos.add(Point::new(5.0, 0.3), tags(&[3]));
        let grid = PhotoGrid::build(&network, &photos, 1.0);
        let ctx = ContextBuilder {
            network: &network,
            photos: &photos,
            photo_grid: &grid,
            pois: None,
            eps: 0.5,
            rho: 0.4,
            phi_source: PhiSource::Photos,
        }
        .build(StreetId(0))
        .unwrap();
        (photos, ctx)
    }

    #[test]
    fn pure_relevance_picks_top_rel_photos() {
        let (photos, ctx) = setup();
        let params = DescribeParams::new(2, 0.0, 0.5).unwrap();
        let out = greedy_select(&ctx, &photos, &params);
        // With lambda = 0 the greedy is exactly top-k by rel.
        let mut by_rel: Vec<(f64, PhotoId)> = ctx
            .members
            .iter()
            .map(|&r| (measures::rel(&ctx, &photos, 0.5, r), r))
            .collect();
        by_rel.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        let expect: Vec<PhotoId> = by_rel.iter().take(2).map(|&(_, r)| r).collect();
        assert_eq!(out.selected, expect);
    }

    #[test]
    fn diversity_spreads_selection() {
        let (photos, ctx) = setup();
        let params = DescribeParams::new(3, 0.9, 0.5).unwrap();
        let out = greedy_select(&ctx, &photos, &params);
        assert_eq!(out.selected.len(), 3);
        // The three near-duplicates must not all be chosen.
        let cluster_count = out.selected.iter().filter(|r| r.index() <= 2).count();
        assert!(cluster_count <= 2, "selected {:?}", out.selected);
    }

    #[test]
    fn k_larger_than_members_returns_all() {
        let (photos, ctx) = setup();
        let params = DescribeParams::new(50, 0.5, 0.5).unwrap();
        let out = greedy_select(&ctx, &photos, &params);
        assert_eq!(out.selected.len(), ctx.members.len());
        // No duplicates.
        let mut ids = out.selected.clone();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), ctx.members.len());
    }

    #[test]
    fn objective_reported_matches_recomputation() {
        let (photos, ctx) = setup();
        let params = DescribeParams::new(3, 0.5, 0.5).unwrap();
        let out = greedy_select(&ctx, &photos, &params);
        let f = objective(&ctx, &photos, &params, &out.selected);
        assert_eq!(out.objective, f);
        assert!(out.stats.photos_evaluated > 0);
    }

    #[test]
    fn empty_members_returns_empty() {
        let (photos, _) = setup();
        let mut b = RoadNetwork::builder();
        b.add_street_from_points(
            "Empty",
            &[Point::new(100.0, 100.0), Point::new(101.0, 100.0)],
        );
        let network = b.build().unwrap();
        let grid = PhotoGrid::build(&network, &photos, 1.0);
        let ctx = ContextBuilder {
            network: &network,
            photos: &photos,
            photo_grid: &grid,
            pois: None,
            eps: 0.5,
            rho: 0.4,
            phi_source: PhiSource::Photos,
        }
        .build(StreetId(0))
        .unwrap();
        let params = DescribeParams::new(3, 0.5, 0.5).unwrap();
        let out = greedy_select(&ctx, &photos, &params);
        assert!(out.selected.is_empty());
        assert_eq!(out.objective, 0.0);
    }
}
