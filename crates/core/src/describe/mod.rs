//! SOI description: diversified photo selection (paper Section 4).
//!
//! Given a street's photo set `Rs`, select `k` photos maximising
//! `F(Rk) = (1−λ)·rel(Rk) + λ·div(Rk)` (Eq. 2) — an NP-hard MaxSum
//! diversification problem solved greedily via maximal marginal relevance
//! (`mmr`, Eq. 10). [`greedy_select`] is the naive greedy (the paper's BL);
//! [`st_rel_div()`](st_rel_div()) is Algorithm 2, which prunes with per-cell bounds.

pub mod bounds;
pub mod context;
pub mod exact;
pub mod explain;
pub mod greedy;
pub mod measures;
pub mod objective;
pub mod st_rel_div;
pub mod tradeoff;
pub mod variants;

pub use bounds::{cell_div_bounds, cell_mmr_bounds, cell_rel_bounds};
pub use context::{ContextBuilder, PhiSource, StreetContext};
pub use exact::exact_select;
pub use explain::{DescribeExplain, DescribeRound};
pub use greedy::greedy_select;
pub use objective::{mmr, objective, set_diversity, set_relevance};
pub use st_rel_div::{
    st_rel_div, st_rel_div_budgeted, st_rel_div_explained, st_rel_div_full,
    st_rel_div_with_scratch, DescribeScratch,
};
pub use tradeoff::{knee, sweep_lambda, TradeoffPoint};
pub use variants::{Aspect, Criterion, MethodSpec};

use soi_common::{PhaseTimer, PhotoId, Result, SoiError};

/// Parameters of a description query (Problem 2).
#[derive(Debug, Clone, Copy)]
pub struct DescribeParams {
    /// Number of photos to select (`k`; unrelated to the k of k-SOI).
    pub k: usize,
    /// Relevance–diversity trade-off `λ ∈ [0, 1]` (0 = pure relevance).
    pub lambda: f64,
    /// Spatial–textual weight `w ∈ [0, 1]` (1 = purely spatial).
    pub w: f64,
}

impl DescribeParams {
    /// Creates validated parameters.
    ///
    /// # Errors
    /// Rejects `k = 0` and λ or w outside `[0, 1]`.
    pub fn new(k: usize, lambda: f64, w: f64) -> Result<Self> {
        let p = Self { k, lambda, w };
        p.validate()?;
        Ok(p)
    }

    /// Re-checks the parameter invariants (`k ≥ 1`, `λ, w ∈ [0, 1]`).
    ///
    /// The fields are public, so [`st_rel_div()`](st_rel_div()) revalidates
    /// at the API boundary rather than trusting construction-time checks.
    /// NaN fails the range checks.
    ///
    /// # Errors
    /// Rejects `k = 0` and λ or w outside `[0, 1]`.
    pub fn validate(&self) -> Result<()> {
        if self.k == 0 {
            return Err(SoiError::invalid("k must be at least 1"));
        }
        if !(0.0..=1.0).contains(&self.lambda) {
            return Err(SoiError::invalid(format!(
                "lambda must be in [0, 1], got {}",
                self.lambda
            )));
        }
        if !(0.0..=1.0).contains(&self.w) {
            return Err(SoiError::invalid(format!(
                "w must be in [0, 1], got {}",
                self.w
            )));
        }
        Ok(())
    }

    /// The paper's defaults: k=20, λ=0.5, w=0.5.
    pub fn paper_defaults() -> Self {
        Self {
            k: 20,
            lambda: 0.5,
            w: 0.5,
        }
    }
}

/// Work counters of a description query.
#[derive(Debug, Clone, Default)]
pub struct DescribeStats {
    /// Phase timings (`filtering` / `refinement` per greedy step are
    /// accumulated across iterations).
    pub timer: PhaseTimer,
    /// Exact `mmr` evaluations performed.
    pub photos_evaluated: usize,
    /// Cells discarded by the filtering phase (Bmax < max Bmin).
    pub cells_pruned_filtering: usize,
    /// Cells skipped during refinement (bound below the running best).
    pub cells_pruned_refinement: usize,
    /// Cells whose photos were refined.
    pub cells_refined: usize,
    /// True when a [`QueryBudget`](crate::QueryBudget) deadline expired
    /// before `k` photos were selected: the run stopped between greedy
    /// rounds and returned the photos selected so far.
    pub deadline_expired: bool,
}

/// The result of a description query: the selected photo summary.
#[derive(Debug, Clone)]
pub struct DescribeOutcome {
    /// Selected photos in selection order.
    pub selected: Vec<PhotoId>,
    /// The objective value `F` of the selection under the query parameters.
    pub objective: f64,
    /// Work counters.
    pub stats: DescribeStats,
    /// True when a [`QueryBudget`](crate::QueryBudget) deadline expired
    /// mid-selection: `selected` is the prefix chosen by the completed
    /// greedy rounds (each prefix is itself the exact greedy selection for
    /// its length) rather than the full `k`-photo summary.
    pub partial: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_validation() {
        assert!(DescribeParams::new(3, 0.5, 0.5).is_ok());
        assert!(DescribeParams::new(0, 0.5, 0.5).is_err());
        assert!(DescribeParams::new(1, -0.1, 0.5).is_err());
        assert!(DescribeParams::new(1, 1.1, 0.5).is_err());
        assert!(DescribeParams::new(1, 0.5, -0.1).is_err());
        assert!(DescribeParams::new(1, 0.5, 1.5).is_err());
        assert!(DescribeParams::new(1, 0.0, 1.0).is_ok());
    }

    #[test]
    fn paper_defaults() {
        let p = DescribeParams::paper_defaults();
        assert_eq!(p.k, 20);
        assert_eq!(p.lambda, 0.5);
        assert_eq!(p.w, 0.5);
    }
}
