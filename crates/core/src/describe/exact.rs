//! Exhaustive optimal selection (for tests and quality analysis).
//!
//! MaxSum diversification is NP-hard (related to the dispersion problem
//! \[22\]); this module enumerates all `C(|Rs|, k)` subsets to find the true
//! optimum of Eq. 2 on *small* inputs, giving the test suite a yardstick
//! for the greedy heuristics.

use crate::describe::context::StreetContext;
use crate::describe::objective::objective;
use crate::describe::DescribeParams;
use soi_common::{PhotoId, Result, SoiError};
use soi_data::PhotoView;

/// Hard cap on `|Rs|` for exhaustive search.
pub const MAX_EXACT_MEMBERS: usize = 20;

/// Finds the subset of size `min(k, |Rs|)` maximising the objective `F`.
///
/// Ties are broken towards the lexicographically smallest id set. Returns
/// the optimal subset (ascending ids) and its objective value.
///
/// # Errors
/// Refuses inputs with more than [`MAX_EXACT_MEMBERS`] member photos.
pub fn exact_select<'a>(
    ctx: &StreetContext,
    photos: impl Into<PhotoView<'a>>,
    params: &DescribeParams,
) -> Result<(Vec<PhotoId>, f64)> {
    let photos: PhotoView<'a> = photos.into();
    let n = ctx.members.len();
    if n > MAX_EXACT_MEMBERS {
        return Err(SoiError::invalid(format!(
            "exact_select is exponential; refusing |Rs| = {n} > {MAX_EXACT_MEMBERS}"
        )));
    }
    let k = params.k.min(n);
    if k == 0 {
        return Ok((Vec::new(), 0.0));
    }

    let mut best_set: Vec<PhotoId> = Vec::new();
    let mut best_val = f64::NEG_INFINITY;
    let mut current: Vec<PhotoId> = Vec::with_capacity(k);

    fn recurse(
        members: &[PhotoId],
        start: usize,
        k: usize,
        current: &mut Vec<PhotoId>,
        best_set: &mut Vec<PhotoId>,
        best_val: &mut f64,
        eval: &mut dyn FnMut(&[PhotoId]) -> f64,
    ) {
        if current.len() == k {
            let v = eval(current);
            if v > *best_val {
                *best_val = v;
                *best_set = current.clone();
            }
            return;
        }
        let needed = k - current.len();
        for i in start..=members.len().saturating_sub(needed) {
            current.push(members[i]);
            recurse(members, i + 1, k, current, best_set, best_val, eval);
            current.pop();
        }
    }

    let mut eval = |set: &[PhotoId]| objective(ctx, photos, params, set);
    recurse(
        &ctx.members,
        0,
        k,
        &mut current,
        &mut best_set,
        &mut best_val,
        &mut eval,
    );
    Ok((best_set, best_val))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::describe::context::{ContextBuilder, PhiSource};
    use crate::describe::greedy::greedy_select;
    use soi_common::{KeywordId, StreetId};
    use soi_data::PhotoCollection;
    use soi_geo::Point;
    use soi_index::PhotoGrid;
    use soi_network::RoadNetwork;
    use soi_text::KeywordSet;

    fn tags(ids: &[u32]) -> KeywordSet {
        KeywordSet::from_ids(ids.iter().map(|&i| KeywordId(i)))
    }

    fn setup() -> (PhotoCollection, StreetContext) {
        let mut b = RoadNetwork::builder();
        b.add_street_from_points("Main", &[Point::new(0.0, 0.0), Point::new(10.0, 0.0)]);
        let network = b.build().unwrap();
        let mut photos = PhotoCollection::new();
        photos.add(Point::new(1.0, 0.0), tags(&[0, 1]));
        photos.add(Point::new(1.1, 0.0), tags(&[0, 1]));
        photos.add(Point::new(4.0, 0.2), tags(&[2]));
        photos.add(Point::new(6.0, -0.2), tags(&[3]));
        photos.add(Point::new(9.0, 0.0), tags(&[4, 5]));
        let grid = PhotoGrid::build(&network, &photos, 1.0);
        let ctx = ContextBuilder {
            network: &network,
            photos: &photos,
            photo_grid: &grid,
            pois: None,
            eps: 0.5,
            rho: 0.4,
            phi_source: PhiSource::Photos,
        }
        .build(StreetId(0))
        .unwrap();
        (photos, ctx)
    }

    #[test]
    fn exact_upper_bounds_greedy() {
        let (photos, ctx) = setup();
        for &(k, lambda) in &[(2usize, 0.5), (3, 0.25), (3, 0.75)] {
            let params = DescribeParams::new(k, lambda, 0.5).unwrap();
            let (_, exact_val) = exact_select(&ctx, &photos, &params).unwrap();
            let greedy = greedy_select(&ctx, &photos, &params);
            assert!(
                exact_val >= greedy.objective - 1e-12,
                "exact {exact_val} < greedy {}",
                greedy.objective
            );
        }
    }

    #[test]
    fn pure_relevance_greedy_is_optimal() {
        let (photos, ctx) = setup();
        let params = DescribeParams::new(3, 0.0, 0.5).unwrap();
        let (exact_set, exact_val) = exact_select(&ctx, &photos, &params).unwrap();
        let greedy = greedy_select(&ctx, &photos, &params);
        // With lambda = 0, F is the mean relevance: greedy top-k is optimal.
        assert!((exact_val - greedy.objective).abs() < 1e-12);
        let mut g = greedy.selected.clone();
        g.sort();
        assert_eq!(g, exact_set);
    }

    #[test]
    fn k_at_least_members_selects_everything() {
        let (photos, ctx) = setup();
        let params = DescribeParams::new(10, 0.5, 0.5).unwrap();
        let (set, _) = exact_select(&ctx, &photos, &params).unwrap();
        assert_eq!(set.len(), ctx.members.len());
    }

    #[test]
    fn refuses_large_inputs() {
        let mut b = RoadNetwork::builder();
        b.add_street_from_points("Main", &[Point::new(0.0, 0.0), Point::new(30.0, 0.0)]);
        let network = b.build().unwrap();
        let mut photos = PhotoCollection::new();
        for i in 0..25 {
            photos.add(Point::new(i as f64, 0.1), tags(&[i as u32]));
        }
        let grid = PhotoGrid::build(&network, &photos, 1.0);
        let ctx = ContextBuilder {
            network: &network,
            photos: &photos,
            photo_grid: &grid,
            pois: None,
            eps: 0.5,
            rho: 0.4,
            phi_source: PhiSource::Photos,
        }
        .build(StreetId(0))
        .unwrap();
        let params = DescribeParams::new(3, 0.5, 0.5).unwrap();
        assert!(exact_select(&ctx, &photos, &params).is_err());
    }
}
