//! The relevance–diversity trade-off (paper Fig. 5).
//!
//! The paper frames choosing λ as an investment problem: "in order to
//! increase the diversity of the result set (the return), we have to
//! sacrifice its relevance (the investment) … the goal is to figure out an
//! acceptable investment that is 'value for money'". This module runs the
//! λ sweep and picks the knee of the resulting curve — the λ after which
//! additional diversity costs disproportionate relevance.

use crate::describe::context::StreetContext;
use crate::describe::objective::{set_diversity, set_relevance};
use crate::describe::st_rel_div::st_rel_div;
use crate::describe::DescribeParams;
use soi_common::{Result, SoiError};
use soi_data::PhotoView;

/// One point of the trade-off curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TradeoffPoint {
    /// The λ used for selection.
    pub lambda: f64,
    /// The selection's set relevance (Eq. 4).
    pub relevance: f64,
    /// The selection's set diversity (Eq. 5).
    pub diversity: f64,
}

/// Runs the λ sweep: selects a k-photo summary per λ and measures its
/// relevance and diversity (both with weight `w`).
///
/// # Errors
/// Propagates parameter validation errors; requires at least one λ.
pub fn sweep_lambda<'a>(
    ctx: &StreetContext,
    photos: impl Into<PhotoView<'a>>,
    k: usize,
    w: f64,
    lambdas: &[f64],
) -> Result<Vec<TradeoffPoint>> {
    let photos: PhotoView<'a> = photos.into();
    if lambdas.is_empty() {
        return Err(SoiError::invalid("need at least one lambda"));
    }
    let mut out = Vec::with_capacity(lambdas.len());
    for &lambda in lambdas {
        let params = DescribeParams::new(k, lambda, w)?;
        let selection = st_rel_div(ctx, photos, &params)?;
        out.push(TradeoffPoint {
            lambda,
            relevance: set_relevance(ctx, photos, w, &selection.selected),
            diversity: set_diversity(ctx, photos, w, &selection.selected),
        });
    }
    Ok(out)
}

/// Picks the knee of a trade-off curve: the point with the largest
/// perpendicular distance to the chord between the first and last points
/// in (relevance, diversity) space, each axis normalised to `[0, 1]`.
///
/// Returns the index into `points` (`None` for fewer than 3 points —
/// there is no interior to pick from).
pub fn knee(points: &[TradeoffPoint]) -> Option<usize> {
    if points.len() < 3 {
        return None;
    }
    let (min_r, max_r) = points
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), p| {
            (lo.min(p.relevance), hi.max(p.relevance))
        });
    let (min_d, max_d) = points
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), p| {
            (lo.min(p.diversity), hi.max(p.diversity))
        });
    let span_r = (max_r - min_r).max(1e-12);
    let span_d = (max_d - min_d).max(1e-12);
    let norm = |p: &TradeoffPoint| {
        (
            (p.relevance - min_r) / span_r,
            (p.diversity - min_d) / span_d,
        )
    };

    let (x0, y0) = norm(&points[0]);
    let Some(last) = points.last() else {
        return None; // unreachable: len >= 3 checked above
    };
    let (x1, y1) = norm(last);
    let (dx, dy) = (x1 - x0, y1 - y0);
    let chord = (dx * dx + dy * dy).sqrt().max(1e-12);

    let mut best: Option<(usize, f64)> = None;
    for (i, p) in points.iter().enumerate().skip(1).take(points.len() - 2) {
        let (x, y) = norm(p);
        // Perpendicular distance from (x, y) to the chord.
        let dist = ((x - x0) * dy - (y - y0) * dx).abs() / chord;
        if best.is_none_or(|(_, d)| dist > d) {
            best = Some((i, dist));
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(lambda: f64, relevance: f64, diversity: f64) -> TradeoffPoint {
        TradeoffPoint {
            lambda,
            relevance,
            diversity,
        }
    }

    #[test]
    fn knee_finds_the_elbow() {
        // Diversity rises steeply then flattens: the knee is where the
        // curve bends (index 1).
        let curve = [
            pt(0.0, 1.00, 0.10),
            pt(0.25, 0.95, 0.80),
            pt(0.5, 0.85, 0.88),
            pt(0.75, 0.70, 0.94),
            pt(1.0, 0.50, 1.00),
        ];
        assert_eq!(knee(&curve), Some(1));
    }

    #[test]
    fn knee_of_straight_line_is_stable() {
        // On a perfectly straight trade-off, every interior point has
        // distance ~0; the first interior point wins deterministically.
        let curve = [pt(0.0, 1.0, 0.0), pt(0.5, 0.5, 0.5), pt(1.0, 0.0, 1.0)];
        assert_eq!(knee(&curve), Some(1));
    }

    #[test]
    fn knee_requires_three_points() {
        assert_eq!(knee(&[]), None);
        assert_eq!(knee(&[pt(0.0, 1.0, 0.0)]), None);
        assert_eq!(knee(&[pt(0.0, 1.0, 0.0), pt(1.0, 0.0, 1.0)]), None);
    }

    #[test]
    fn degenerate_flat_curve_does_not_crash() {
        let curve = [pt(0.0, 0.5, 0.5), pt(0.5, 0.5, 0.5), pt(1.0, 0.5, 0.5)];
        // All points coincide after normalisation; any interior index is
        // acceptable, but it must not panic or return None.
        assert!(knee(&curve).is_some());
    }
}
