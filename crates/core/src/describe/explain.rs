//! Query explain for Algorithm 2: opt-in per-greedy-round collection of
//! cell filter effectiveness.
//!
//! A [`DescribeExplain`] passed to
//! [`st_rel_div_explained`](crate::describe::st_rel_div_explained) records,
//! for every greedy selection round, how the per-cell `[Bmin, Bmax]`
//! bounds of Eqs. 11–18 pruned the search: how many candidate cells
//! entered the round, how many the filtering phase discarded, how many
//! refinement actually opened versus pruned, and how many exact `mmr`
//! evaluations that cost — the direct measure of Alg. 2's advantage over
//! the naive greedy (which scores every unselected photo every round).

use crate::describe::DescribeStats;
use soi_common::PhotoId;
use soi_obs::json::JsonWriter;

/// One greedy selection round of Alg. 2.
#[derive(Debug, Clone, Copy)]
pub struct DescribeRound {
    /// 1-based round number (= size of the selection after the round).
    pub round: usize,
    /// Cells holding unselected photos when the round started.
    pub cells_candidate: usize,
    /// Candidate cells discarded by filtering (`Bmax < max Bmin`).
    pub cells_pruned_filtering: usize,
    /// Cells whose photos were exactly evaluated this round.
    pub cells_refined: usize,
    /// Cells skipped during refinement (bound below the running best).
    pub cells_pruned_refinement: usize,
    /// Exact `mmr` evaluations this round.
    pub photos_scored: usize,
    /// The filtering threshold `max_c Bmin(c)` of the round.
    pub mmr_min: f64,
    /// The winning exact `mmr` value (`None` when no candidate remained).
    pub best_mmr: Option<f64>,
    /// The photo selected this round (`None` when the loop stopped early).
    pub selected: Option<PhotoId>,
}

/// Collects the explain record of one Alg. 2 evaluation.
///
/// Create one ([`DescribeExplain::default`]) and pass it to
/// [`st_rel_div_explained`](crate::describe::st_rel_div_explained);
/// afterwards render it with [`DescribeExplain::to_json`] or walk
/// [`DescribeExplain::rounds`] directly. Rounds are bounded by the query's
/// `k`, so no decimation is needed.
#[derive(Debug, Default)]
pub struct DescribeExplain {
    /// Per-round filter effectiveness, in selection order.
    pub rounds: Vec<DescribeRound>,
    /// A copy of the finished run's stats.
    pub stats: Option<DescribeStats>,
}

impl DescribeExplain {
    pub(crate) fn record(&mut self, round: DescribeRound) {
        self.rounds.push(round);
    }

    pub(crate) fn finish(&mut self, stats: &DescribeStats) {
        self.stats = Some(stats.clone());
    }

    /// Renders the collected record as a self-contained JSON object (the
    /// `describe` section of the `soi explain --json` artifact).
    pub fn to_json(&self) -> String {
        let mut obj = JsonWriter::object();
        let mut rounds = JsonWriter::array();
        for r in &self.rounds {
            let mut row = JsonWriter::object();
            row.field_u64("round", r.round as u64);
            row.field_u64("cells_candidate", r.cells_candidate as u64);
            row.field_u64("cells_pruned_filtering", r.cells_pruned_filtering as u64);
            row.field_u64("cells_refined", r.cells_refined as u64);
            row.field_u64("cells_pruned_refinement", r.cells_pruned_refinement as u64);
            row.field_u64("photos_scored", r.photos_scored as u64);
            row.field_f64("mmr_min", r.mmr_min);
            if let Some(best) = r.best_mmr {
                row.field_f64("best_mmr", best);
            }
            if let Some(p) = r.selected {
                row.field_u64("selected", p.index() as u64);
            }
            rounds.elem_raw(&row.finish());
        }
        obj.field_raw("rounds", &rounds.finish());
        if let Some(s) = &self.stats {
            let mut c = JsonWriter::object();
            c.field_u64("photos_evaluated", s.photos_evaluated as u64);
            c.field_u64("cells_pruned_filtering", s.cells_pruned_filtering as u64);
            c.field_u64("cells_pruned_refinement", s.cells_pruned_refinement as u64);
            c.field_u64("cells_refined", s.cells_refined as u64);
            obj.field_raw("counters", &c.finish());
            let mut p = JsonWriter::object();
            for phase in [
                soi_obs::names::phases::FILTERING,
                soi_obs::names::phases::REFINEMENT,
            ] {
                p.field_f64(phase, s.timer.duration(phase).as_secs_f64() * 1e3);
            }
            obj.field_raw("phases_ms", &p.finish());
        }
        obj.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trips_through_the_parser() {
        let mut ex = DescribeExplain::default();
        ex.record(DescribeRound {
            round: 1,
            cells_candidate: 10,
            cells_pruned_filtering: 4,
            cells_refined: 2,
            cells_pruned_refinement: 4,
            photos_scored: 7,
            mmr_min: 0.25,
            best_mmr: Some(0.5),
            selected: Some(PhotoId(3)),
        });
        ex.finish(&DescribeStats {
            photos_evaluated: 7,
            cells_pruned_filtering: 4,
            cells_pruned_refinement: 4,
            cells_refined: 2,
            ..Default::default()
        });
        let doc = soi_obs::json::parse(&ex.to_json()).expect("valid JSON");
        let rounds = doc.get("rounds").unwrap().as_arr().unwrap();
        assert_eq!(rounds.len(), 1);
        assert_eq!(rounds[0].get("selected").unwrap().as_f64(), Some(3.0));
        assert_eq!(
            doc.get("counters")
                .unwrap()
                .get("photos_evaluated")
                .unwrap()
                .as_f64(),
            Some(7.0)
        );
    }

    #[test]
    fn early_stop_round_serializes_without_selection() {
        let mut ex = DescribeExplain::default();
        ex.record(DescribeRound {
            round: 2,
            cells_candidate: 0,
            cells_pruned_filtering: 0,
            cells_refined: 0,
            cells_pruned_refinement: 0,
            photos_scored: 0,
            mmr_min: f64::NEG_INFINITY,
            best_mmr: None,
            selected: None,
        });
        let doc = soi_obs::json::parse(&ex.to_json()).expect("valid JSON");
        let rounds = doc.get("rounds").unwrap().as_arr().unwrap();
        assert!(rounds[0].get("selected").is_none());
        assert!(rounds[0].get("best_mmr").is_none());
    }
}
