//! The diversification objective (Eqs. 2, 4, 5) and `mmr` (Eq. 10).

use crate::describe::context::StreetContext;
use crate::describe::measures;
use crate::describe::DescribeParams;
use soi_common::PhotoId;
use soi_data::PhotoView;

/// Set relevance (Eq. 4): the mean combined relevance of the set's photos.
///
/// Returns 0 for an empty set.
pub fn set_relevance<'a>(
    ctx: &StreetContext,
    photos: impl Into<PhotoView<'a>>,
    w: f64,
    set: &[PhotoId],
) -> f64 {
    let photos: PhotoView<'a> = photos.into();
    if set.is_empty() {
        return 0.0;
    }
    set.iter()
        .map(|&r| measures::rel(ctx, photos, w, r))
        .sum::<f64>()
        / set.len() as f64
}

/// Set diversity (Eq. 5): the mean combined pairwise diversity,
/// `2/(k(k−1)) Σ_{r,r′} div(r, r′)` over unordered pairs.
///
/// Returns 0 for sets with fewer than two photos.
pub fn set_diversity<'a>(
    ctx: &StreetContext,
    photos: impl Into<PhotoView<'a>>,
    w: f64,
    set: &[PhotoId],
) -> f64 {
    let photos: PhotoView<'a> = photos.into();
    let k = set.len();
    if k < 2 {
        return 0.0;
    }
    let mut sum = 0.0;
    for i in 0..k {
        for j in (i + 1)..k {
            sum += measures::div(ctx, photos, w, set[i], set[j]);
        }
    }
    2.0 * sum / (k as f64 * (k - 1) as f64)
}

/// The bi-criteria objective (Eq. 2):
/// `F(Rk) = (1−λ)·rel(Rk) + λ·div(Rk)`.
pub fn objective<'a>(
    ctx: &StreetContext,
    photos: impl Into<PhotoView<'a>>,
    params: &DescribeParams,
    set: &[PhotoId],
) -> f64 {
    let photos: PhotoView<'a> = photos.into();
    (1.0 - params.lambda) * set_relevance(ctx, photos, params.w, set)
        + params.lambda * set_diversity(ctx, photos, params.w, set)
}

/// Maximal marginal relevance (Eq. 10) of candidate `r` against the
/// partially built set `selected`:
/// `mmr(r) = (1−λ)·rel(r) + λ/(k−1)·Σ_{r′∈R} div(r, r′)`.
///
/// For `k = 1` the diversity term is absent.
pub fn mmr<'a>(
    ctx: &StreetContext,
    photos: impl Into<PhotoView<'a>>,
    params: &DescribeParams,
    r: PhotoId,
    selected: &[PhotoId],
) -> f64 {
    let photos: PhotoView<'a> = photos.into();
    let mut score = (1.0 - params.lambda) * measures::rel(ctx, photos, params.w, r);
    if params.k > 1 && !selected.is_empty() {
        let div_sum: f64 = selected
            .iter()
            .map(|&r2| measures::div(ctx, photos, params.w, r, r2))
            .sum();
        score += params.lambda / (params.k as f64 - 1.0) * div_sum;
    }
    score
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::describe::context::{ContextBuilder, PhiSource};
    use soi_common::{KeywordId, StreetId};
    use soi_data::PhotoCollection;
    use soi_geo::Point;
    use soi_index::PhotoGrid;
    use soi_network::RoadNetwork;
    use soi_text::KeywordSet;

    fn tags(ids: &[u32]) -> KeywordSet {
        KeywordSet::from_ids(ids.iter().map(|&i| KeywordId(i)))
    }

    fn setup() -> (PhotoCollection, StreetContext) {
        let mut b = RoadNetwork::builder();
        b.add_street_from_points("Main", &[Point::new(0.0, 0.0), Point::new(10.0, 0.0)]);
        let network = b.build().unwrap();
        let mut photos = PhotoCollection::new();
        photos.add(Point::new(1.0, 0.0), tags(&[0, 1]));
        photos.add(Point::new(2.0, 0.0), tags(&[0]));
        photos.add(Point::new(9.0, 0.0), tags(&[2]));
        let grid = PhotoGrid::build(&network, &photos, 1.0);
        let ctx = ContextBuilder {
            network: &network,
            photos: &photos,
            photo_grid: &grid,
            pois: None,
            eps: 0.5,
            rho: 0.2,
            phi_source: PhiSource::Photos,
        }
        .build(StreetId(0))
        .unwrap();
        (photos, ctx)
    }

    #[test]
    fn set_functions_match_manual_sums() {
        let (photos, ctx) = setup();
        let set = [PhotoId(0), PhotoId(1), PhotoId(2)];
        let w = 0.5;
        let rel_manual: f64 = set
            .iter()
            .map(|&r| measures::rel(&ctx, &photos, w, r))
            .sum::<f64>()
            / 3.0;
        assert!((set_relevance(&ctx, &photos, w, &set) - rel_manual).abs() < 1e-12);

        let div_manual = (measures::div(&ctx, &photos, w, set[0], set[1])
            + measures::div(&ctx, &photos, w, set[0], set[2])
            + measures::div(&ctx, &photos, w, set[1], set[2]))
            / 3.0;
        assert!((set_diversity(&ctx, &photos, w, &set) - div_manual).abs() < 1e-12);
    }

    #[test]
    fn degenerate_sets() {
        let (photos, ctx) = setup();
        assert_eq!(set_relevance(&ctx, &photos, 0.5, &[]), 0.0);
        assert_eq!(set_diversity(&ctx, &photos, 0.5, &[]), 0.0);
        assert_eq!(set_diversity(&ctx, &photos, 0.5, &[PhotoId(0)]), 0.0);
    }

    #[test]
    fn objective_interpolates_lambda() {
        let (photos, ctx) = setup();
        let set = [PhotoId(0), PhotoId(2)];
        let rel_only = DescribeParams::new(2, 0.0, 0.5).unwrap();
        let div_only = DescribeParams::new(2, 1.0, 0.5).unwrap();
        assert!(
            (objective(&ctx, &photos, &rel_only, &set) - set_relevance(&ctx, &photos, 0.5, &set))
                .abs()
                < 1e-12
        );
        assert!(
            (objective(&ctx, &photos, &div_only, &set) - set_diversity(&ctx, &photos, 0.5, &set))
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn mmr_with_empty_selection_is_scaled_rel() {
        let (photos, ctx) = setup();
        let p = DescribeParams::new(3, 0.4, 0.5).unwrap();
        let m = mmr(&ctx, &photos, &p, PhotoId(0), &[]);
        assert!((m - 0.6 * measures::rel(&ctx, &photos, 0.5, PhotoId(0))).abs() < 1e-12);
    }

    #[test]
    fn mmr_adds_scaled_diversity() {
        let (photos, ctx) = setup();
        let p = DescribeParams::new(3, 0.5, 0.5).unwrap();
        let selected = [PhotoId(1)];
        let m = mmr(&ctx, &photos, &p, PhotoId(2), &selected);
        let expect = 0.5 * measures::rel(&ctx, &photos, 0.5, PhotoId(2))
            + 0.5 / 2.0 * measures::div(&ctx, &photos, 0.5, PhotoId(2), PhotoId(1));
        assert!((m - expect).abs() < 1e-12);
    }

    #[test]
    fn mmr_k1_has_no_diversity_term() {
        let (photos, ctx) = setup();
        let p = DescribeParams::new(1, 0.5, 0.5).unwrap();
        let m = mmr(&ctx, &photos, &p, PhotoId(2), &[PhotoId(0)]);
        assert!((m - 0.5 * measures::rel(&ctx, &photos, 0.5, PhotoId(2))).abs() < 1e-12);
    }
}
