//! The nine method variants of the paper's effectiveness study (Table 3).
//!
//! Each method is a point in the grid {S, T, ST} × {Rel, Div, Rel+Div}:
//! the information aspect fixes `w` (1 = spatial only, 0 = textual only,
//! query value for ST) and the criterion fixes `λ` (0 = relevance only,
//! 1 = diversity only, query value for Rel+Div). The paper's proposal is
//! `ST_Rel+Div`; the other eight are the comparison techniques of
//! Sec. 5.1.2.

use crate::describe::DescribeParams;

/// Which information aspect a method uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aspect {
    /// Spatial only (`w = 1`).
    S,
    /// Textual only (`w = 0`).
    T,
    /// Spatio-textual (query `w`).
    ST,
}

/// Which selection criterion a method optimises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Criterion {
    /// Relevance only (`λ = 0`).
    Rel,
    /// Diversity only (`λ = 1`).
    Div,
    /// Both (query `λ`).
    RelDiv,
}

/// A method of the Table 3/4 comparison grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MethodSpec {
    /// The information aspect.
    pub aspect: Aspect,
    /// The selection criterion.
    pub criterion: Criterion,
}

impl MethodSpec {
    /// All nine methods, in the paper's Table 3 row order.
    pub fn all() -> [MethodSpec; 9] {
        use Aspect::*;
        use Criterion::*;
        [
            MethodSpec {
                aspect: S,
                criterion: Rel,
            },
            MethodSpec {
                aspect: S,
                criterion: Div,
            },
            MethodSpec {
                aspect: S,
                criterion: RelDiv,
            },
            MethodSpec {
                aspect: T,
                criterion: Rel,
            },
            MethodSpec {
                aspect: T,
                criterion: Div,
            },
            MethodSpec {
                aspect: T,
                criterion: RelDiv,
            },
            MethodSpec {
                aspect: ST,
                criterion: Rel,
            },
            MethodSpec {
                aspect: ST,
                criterion: Div,
            },
            MethodSpec {
                aspect: ST,
                criterion: RelDiv,
            },
        ]
    }

    /// The paper's proposed method.
    pub fn st_rel_div() -> MethodSpec {
        MethodSpec {
            aspect: Aspect::ST,
            criterion: Criterion::RelDiv,
        }
    }

    /// The method's display name, e.g. `"ST_Rel+Div"`.
    pub fn name(&self) -> &'static str {
        match (self.aspect, self.criterion) {
            (Aspect::S, Criterion::Rel) => "S_Rel",
            (Aspect::S, Criterion::Div) => "S_Div",
            (Aspect::S, Criterion::RelDiv) => "S_Rel+Div",
            (Aspect::T, Criterion::Rel) => "T_Rel",
            (Aspect::T, Criterion::Div) => "T_Div",
            (Aspect::T, Criterion::RelDiv) => "T_Rel+Div",
            (Aspect::ST, Criterion::Rel) => "ST_Rel",
            (Aspect::ST, Criterion::Div) => "ST_Div",
            (Aspect::ST, Criterion::RelDiv) => "ST_Rel+Div",
        }
    }

    /// The selection parameters this method uses, given the query's `k` and
    /// its base `λ`/`w` values.
    pub fn params(&self, k: usize, base_lambda: f64, base_w: f64) -> DescribeParams {
        let lambda = match self.criterion {
            Criterion::Rel => 0.0,
            Criterion::Div => 1.0,
            Criterion::RelDiv => base_lambda,
        };
        let w = match self.aspect {
            Aspect::S => 1.0,
            Aspect::T => 0.0,
            Aspect::ST => base_w,
        };
        DescribeParams { k, lambda, w }
    }
}

impl std::fmt::Display for MethodSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_distinct_methods() {
        let all = MethodSpec::all();
        assert_eq!(all.len(), 9);
        let mut names: Vec<&str> = all.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 9);
    }

    #[test]
    fn params_pin_the_right_corners() {
        let k = 3;
        let s_rel = MethodSpec {
            aspect: Aspect::S,
            criterion: Criterion::Rel,
        }
        .params(k, 0.5, 0.5);
        assert_eq!((s_rel.lambda, s_rel.w), (0.0, 1.0));

        let t_div = MethodSpec {
            aspect: Aspect::T,
            criterion: Criterion::Div,
        }
        .params(k, 0.5, 0.5);
        assert_eq!((t_div.lambda, t_div.w), (1.0, 0.0));

        let st = MethodSpec::st_rel_div().params(k, 0.3, 0.7);
        assert_eq!((st.lambda, st.w), (0.3, 0.7));
        assert_eq!(st.k, 3);
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(MethodSpec::st_rel_div().to_string(), "ST_Rel+Div");
    }
}
