//! Per-cell bounds for the ST_Rel+Div algorithm (paper Eqs. 11–18).
//!
//! For a grid cell `c` of the diversification index, these functions bound
//! each component of the `mmr` objective over *all photos in the cell*,
//! using only the cell's aggregates: photo count, keyword set `c.Ψ`, and
//! tag-count range `[c.ψmin, c.ψmax]`. Since the bounds hold for every
//! member photo, they remain valid for any not-yet-selected subset.

use crate::describe::context::StreetContext;
use crate::describe::DescribeParams;
use soi_common::{CellId, PhotoId};
use soi_data::PhotoView;
use soi_index::DivCell;
use soi_text::KeywordSet;

/// Bounds on the spatial relevance of any photo in cell `id`
/// (Eqs. 11–12).
///
/// Lower: the cell's own photos all lie within ρ (cell side is ρ/2).
/// Upper: the radius-2 cell neighbourhood covers every point within ρ.
fn spatial_rel_bounds(ctx: &StreetContext, id: CellId) -> (f64, f64) {
    let n = ctx.index.num_photos();
    if n == 0 {
        return (0.0, 0.0);
    }
    let Some(cell) = ctx.index.cell(id) else {
        return (0.0, 0.0); // unoccupied cell: no photos to bound
    };
    let lower = cell.photos.len() as f64 / n as f64;
    let upper = ctx.index.neighborhood_count(id, 2) as f64 / n as f64;
    (lower, upper)
}

/// Bounds on the textual relevance of any photo in cell `id`
/// (Eqs. 13–14), via the extremal keyword sets `Ψ−(c|s)` / `Ψ+(c|s)`.
///
/// Any photo in the cell has between `ψmin` and `ψmax` tags, all drawn from
/// `c.Ψ`. The minimum Φs-sum takes zero-weight keywords first, then the
/// cheapest positive ones; the maximum takes the `ψmax` heaviest.
fn textual_rel_bounds(ctx: &StreetContext, id: CellId) -> (f64, f64) {
    let l1 = ctx.phi.l1_norm();
    if l1 == 0.0 {
        return (0.0, 0.0);
    }
    let Some(cell) = ctx.index.cell(id) else {
        return (0.0, 0.0); // unoccupied cell: no photos to bound
    };
    let mut positive: Vec<f64> = cell
        .keywords
        .iter()
        .map(|k| ctx.phi.weight(k))
        .filter(|&w| w > 0.0)
        .collect();
    positive.sort_by(f64::total_cmp); // ascending

    let zero_count = cell.keywords.len() - positive.len();
    let must_take = cell.psi_min.saturating_sub(zero_count);
    let lower: f64 = positive.iter().take(must_take).sum();

    let take_upper = cell.psi_max.min(positive.len());
    let upper: f64 = positive.iter().rev().take(take_upper).sum();

    (lower / l1, upper / l1)
}

/// Bounds on the spatial diversity between photo `r` and any photo in cell
/// `id` (Eqs. 15–16): min/max point-to-rect distance over `maxD(s)`.
fn spatial_div_bounds(
    ctx: &StreetContext,
    photos: PhotoView<'_>,
    id: CellId,
    r: PhotoId,
) -> (f64, f64) {
    if ctx.max_d == 0.0 {
        return (0.0, 0.0);
    }
    let rect = ctx.index.grid().cell_rect(ctx.index.grid().coord_of(id));
    let pos = photos.get(r).pos;
    (
        rect.mindist_to_point(pos) / ctx.max_d,
        rect.maxdist_to_point(pos) / ctx.max_d,
    )
}

/// Bounds on the textual (Jaccard) diversity between a photo with tag set
/// `r_tags` and any photo in `cell` (Eqs. 17–18).
///
/// Derivation: a cell photo has `n′ ∈ [ψmin, ψmax]` tags from `c.Ψ`, of
/// which `m = |c.Ψ ∩ Ψr|` could be shared.
/// - Similarity is maximised (diversity minimised) by `i* = min(m, ψmax)`
///   shared tags and the fewest extras: `sim = i*/(|Ψr| + max(i*, ψmin) − i*)`.
/// - Similarity is minimised (diversity maximised) by avoiding shared tags:
///   with `z = |c.Ψ \ Ψr|` avoidable tags, diversity is 1 when `z ≥ ψmin`,
///   else `1 − (ψmin − z)/(|Ψr| + z)`.
fn textual_div_bounds(cell: &DivCell, r_tags: &KeywordSet) -> (f64, f64) {
    let m = cell.keywords.intersection_size(r_tags);
    let nr = r_tags.len();

    let i_star = m.min(cell.psi_max);
    let denom = nr + cell.psi_min.max(i_star) - i_star;
    let lower = if denom == 0 {
        0.0 // both sets can be empty: identical by convention
    } else {
        1.0 - i_star as f64 / denom as f64
    };

    let z = cell.keywords.len() - m;
    let upper = if z >= cell.psi_min {
        1.0
    } else {
        let denom = nr + z;
        if denom == 0 {
            1.0 // r untagged, cell photos necessarily tagged: fully diverse
        } else {
            1.0 - (cell.psi_min - z) as f64 / denom as f64
        }
    };

    (lower, upper)
}

/// Bounds on the combined relevance `w·spatial_rel + (1−w)·textual_rel` of
/// any photo in cell `id`.
pub fn cell_rel_bounds(ctx: &StreetContext, w: f64, id: CellId) -> (f64, f64) {
    let (sl, su) = spatial_rel_bounds(ctx, id);
    let (tl, tu) = textual_rel_bounds(ctx, id);
    (w * sl + (1.0 - w) * tl, w * su + (1.0 - w) * tu)
}

/// Bounds on the combined diversity `w·spatial_div + (1−w)·textual_div`
/// between photo `r` and any photo in cell `id`.
pub fn cell_div_bounds<'a>(
    ctx: &StreetContext,
    photos: impl Into<PhotoView<'a>>,
    w: f64,
    id: CellId,
    r: PhotoId,
) -> (f64, f64) {
    let photos: PhotoView<'a> = photos.into();
    let (sl, su) = spatial_div_bounds(ctx, photos, id, r);
    let Some(cell) = ctx.index.cell(id) else {
        return (0.0, 0.0); // unoccupied cell: no photos to bound
    };
    let (tl, tu) = textual_div_bounds(cell, &photos.get(r).tags);
    (w * sl + (1.0 - w) * tl, w * su + (1.0 - w) * tu)
}

/// Bounds on the `mmr` score (Eq. 10) of any photo in cell `id` against the
/// partially built selection.
pub fn cell_mmr_bounds<'a>(
    ctx: &StreetContext,
    photos: impl Into<PhotoView<'a>>,
    params: &DescribeParams,
    id: CellId,
    selected: &[PhotoId],
) -> (f64, f64) {
    let photos: PhotoView<'a> = photos.into();
    let (rl, ru) = cell_rel_bounds(ctx, params.w, id);
    let mut lower = (1.0 - params.lambda) * rl;
    let mut upper = (1.0 - params.lambda) * ru;
    if params.k > 1 && !selected.is_empty() {
        let scale = params.lambda / (params.k as f64 - 1.0);
        for &r in selected {
            let (dl, du) = cell_div_bounds(ctx, photos, params.w, id, r);
            lower += scale * dl;
            upper += scale * du;
        }
    }
    (lower, upper)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::describe::context::{ContextBuilder, PhiSource};
    use crate::describe::{measures, objective};
    use soi_common::{KeywordId, StreetId};
    use soi_data::PhotoCollection;
    use soi_geo::Point;
    use soi_index::PhotoGrid;
    use soi_network::RoadNetwork;

    fn tags(ids: &[u32]) -> KeywordSet {
        KeywordSet::from_ids(ids.iter().map(|&i| KeywordId(i)))
    }

    fn setup() -> (PhotoCollection, StreetContext) {
        let mut b = RoadNetwork::builder();
        b.add_street_from_points("Main", &[Point::new(0.0, 0.0), Point::new(10.0, 0.0)]);
        let network = b.build().unwrap();
        let mut photos = PhotoCollection::new();
        photos.add(Point::new(0.5, 0.1), tags(&[0, 1]));
        photos.add(Point::new(0.55, 0.12), tags(&[0]));
        photos.add(Point::new(0.6, 0.05), tags(&[1, 2, 3]));
        photos.add(Point::new(4.0, -0.2), tags(&[2]));
        photos.add(Point::new(8.0, 0.3), tags(&[4, 5]));
        photos.add(Point::new(8.1, 0.25), tags(&[]));
        let grid = PhotoGrid::build(&network, &photos, 1.0);
        let ctx = ContextBuilder {
            network: &network,
            photos: &photos,
            photo_grid: &grid,
            pois: None,
            eps: 0.5,
            rho: 0.3,
            phi_source: PhiSource::Photos,
        }
        .build(StreetId(0))
        .unwrap();
        (photos, ctx)
    }

    #[test]
    fn rel_bounds_sandwich_exact_values() {
        let (photos, ctx) = setup();
        for w in [0.0, 0.3, 1.0] {
            for &id in ctx.index.occupied() {
                let (lo, hi) = cell_rel_bounds(&ctx, w, id);
                assert!(lo <= hi + 1e-12);
                for &r in &ctx.index.cell(id).unwrap().photos {
                    let exact = measures::rel(&ctx, &photos, w, r);
                    assert!(
                        lo <= exact + 1e-9 && exact <= hi + 1e-9,
                        "rel bound violated: w={w} cell={id:?} r={r} lo={lo} exact={exact} hi={hi}"
                    );
                }
            }
        }
    }

    #[test]
    fn div_bounds_sandwich_exact_values() {
        let (photos, ctx) = setup();
        for w in [0.0, 0.5, 1.0] {
            for &id in ctx.index.occupied() {
                for &probe in &ctx.members {
                    let (lo, hi) = cell_div_bounds(&ctx, &photos, w, id, probe);
                    assert!(lo <= hi + 1e-12);
                    for &r in &ctx.index.cell(id).unwrap().photos {
                        let exact = measures::div(&ctx, &photos, w, probe, r);
                        assert!(
                            lo <= exact + 1e-9 && exact <= hi + 1e-9,
                            "div bound violated: w={w} cell={id:?} probe={probe} r={r} \
                             lo={lo} exact={exact} hi={hi}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn mmr_bounds_sandwich_exact_values() {
        let (photos, ctx) = setup();
        let params = DescribeParams::new(3, 0.5, 0.5).unwrap();
        let selected = [ctx.members[0], ctx.members[3]];
        for &id in ctx.index.occupied() {
            let (lo, hi) = cell_mmr_bounds(&ctx, &photos, &params, id, &selected);
            for &r in &ctx.index.cell(id).unwrap().photos {
                let exact = objective::mmr(&ctx, &photos, &params, r, &selected);
                assert!(
                    lo <= exact + 1e-9 && exact <= hi + 1e-9,
                    "mmr bound violated: cell={id:?} r={r} lo={lo} exact={exact} hi={hi}"
                );
            }
        }
    }

    #[test]
    fn textual_div_bounds_edge_cases() {
        // Cell with untagged photos only.
        let cell = DivCell {
            photos: vec![],
            inverted: soi_text::InvertedIndex::new(),
            keywords: KeywordSet::empty(),
            psi_min: 0,
            psi_max: 0,
        };
        // r untagged too: both can be empty -> lower 0; upper 1 (sound).
        let (lo, hi) = textual_div_bounds(&cell, &KeywordSet::empty());
        assert_eq!(lo, 0.0);
        assert!(hi >= 0.0);
        // r tagged: all cell photos empty -> jaccard distance exactly 1.
        let (lo, hi) = textual_div_bounds(&cell, &tags(&[1, 2]));
        assert_eq!(lo, 1.0);
        assert_eq!(hi, 1.0);
    }

    #[test]
    fn textual_div_bounds_forced_overlap() {
        // Cell keywords all shared with r, psi_min = psi_max = 2, so every
        // cell photo shares >= ... diversity is constrained below 1.
        let cell = DivCell {
            photos: vec![],
            inverted: soi_text::InvertedIndex::new(),
            keywords: tags(&[0, 1]),
            psi_min: 2,
            psi_max: 2,
        };
        let (lo, hi) = textual_div_bounds(&cell, &tags(&[0, 1]));
        // Cell photo must be exactly {0,1} = Ψr: diversity 0.
        assert_eq!(lo, 0.0);
        assert_eq!(hi, 0.0);
    }
}
