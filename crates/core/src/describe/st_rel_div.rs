//! The ST_Rel+Div algorithm (paper Algorithm 2).
//!
//! Same greedy `mmr` loop as [`greedy_select`](crate::describe::greedy_select)
//! but each step first operates on grid cells:
//!
//! 1. **Filtering**: compute `[Bmin(c), Bmax(c)]` — the per-cell `mmr`
//!    bounds of Eqs. 11–18 — for every cell that still has unselected
//!    photos; discard cells with `Bmax(c) < max_c Bmin(c)`.
//! 2. **Refinement**: visit surviving cells in decreasing `Bmax` order,
//!    evaluating the exact `mmr` of their unselected photos and tightening
//!    the running best; once a cell's `Bmax` drops below the best exact
//!    value, all remaining cells are pruned.
//!
//! Unlike the naive baseline, the per-cell relevance bounds (which do not
//! depend on the partial selection) are computed once, the per-cell
//! diversity-bound sums accumulate incrementally as photos are selected,
//! and each photo's relevance and running diversity sum are cached — so an
//! iteration costs `O(#cells)` bound work plus exact evaluations only for
//! the photos of surviving cells.
//!
//! The tie-break (higher `mmr`, then lower photo id) matches the baseline,
//! so both produce identical selections; summation order also matches,
//! keeping the floating-point results bit-identical.

use crate::budget::QueryBudget;
use crate::describe::bounds::{cell_div_bounds, cell_rel_bounds};
use crate::describe::context::StreetContext;
use crate::describe::explain::{DescribeExplain, DescribeRound};
use crate::describe::measures;
use crate::describe::objective::objective;
use crate::describe::{DescribeOutcome, DescribeParams, DescribeStats};
use soi_common::{CellId, FxHashMap, PhotoId, Result, SoiError};
use soi_data::PhotoView;
use soi_obs::names::phases;

/// Per-cell incremental bound state.
struct CellAcc {
    id: CellId,
    /// Unselected photos remaining in the cell.
    remaining: usize,
    /// Static combined relevance bounds (Eqs. 11–14).
    rel_lo: f64,
    rel_hi: f64,
    /// Accumulated diversity-bound sums against the selected photos
    /// (Eqs. 15–18, summed over the selection).
    div_lo_sum: f64,
    div_hi_sum: f64,
}

/// Per-photo cached exact quantities.
#[derive(Default, Clone, Copy)]
struct PhotoAcc {
    /// Combined relevance (computed once; selection-independent).
    rel: Option<f64>,
    /// Diversity sum over the first `upto` selected photos.
    div_sum: f64,
    upto: usize,
}

/// Reusable allocations for [`st_rel_div`], letting a batch of describe
/// calls share buffers instead of re-allocating the per-cell accumulators,
/// the selection bitmap, and the per-iteration candidate list on every call.
///
/// Hold one per worker thread and pass it to [`st_rel_div_with_scratch`];
/// results are identical to [`st_rel_div`] (the buffers are cleared on
/// entry, never read).
#[derive(Default)]
pub struct DescribeScratch {
    chosen: Vec<bool>,
    cells: Vec<CellAcc>,
    candidates: Vec<(CellId, f64)>,
    photo_acc: FxHashMap<PhotoId, PhotoAcc>,
}

impl std::fmt::Debug for DescribeScratch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DescribeScratch").finish_non_exhaustive()
    }
}

/// Selects up to `params.k` photos with the bound-accelerated greedy.
///
/// This is a total function: hostile parameters and inconsistent inputs are
/// rejected with a typed error, and an empty street (no member photos)
/// yields an empty selection.
///
/// # Errors
/// Returns [`SoiError::InvalidInput`] when `params` violates its invariants
/// (`k = 0`, λ or w outside `[0, 1]`; see [`DescribeParams::validate`]) or
/// when `ctx` references photo ids outside `photos`.
pub fn st_rel_div<'a>(
    ctx: &StreetContext,
    photos: impl Into<PhotoView<'a>>,
    params: &DescribeParams,
) -> Result<DescribeOutcome> {
    st_rel_div_with_scratch(ctx, photos, params, &mut DescribeScratch::default())
}

/// [`st_rel_div`] with caller-provided scratch space (see
/// [`DescribeScratch`]).
///
/// # Errors
/// Same contract as [`st_rel_div`].
pub fn st_rel_div_with_scratch<'a>(
    ctx: &StreetContext,
    photos: impl Into<PhotoView<'a>>,
    params: &DescribeParams,
    scratch: &mut DescribeScratch,
) -> Result<DescribeOutcome> {
    st_rel_div_explained(ctx, photos, params, scratch, None)
}

/// [`st_rel_div_with_scratch`] with an opt-in explain collector.
///
/// When `explain` is `Some`, the run records one [`DescribeRound`] per
/// greedy selection round — candidate cells, filtering/refinement pruning,
/// photos scored, the winning `mmr` — into the collector; results are
/// identical to [`st_rel_div`]. With `None` this *is*
/// [`st_rel_div_with_scratch`] — the hooks are a branch on an `Option`.
///
/// # Errors
/// Same contract as [`st_rel_div`].
pub fn st_rel_div_explained<'a>(
    ctx: &StreetContext,
    photos: impl Into<PhotoView<'a>>,
    params: &DescribeParams,
    scratch: &mut DescribeScratch,
    explain: Option<&mut DescribeExplain>,
) -> Result<DescribeOutcome> {
    st_rel_div_full(
        ctx,
        photos,
        params,
        scratch,
        explain,
        QueryBudget::unlimited(),
    )
}

/// [`st_rel_div_with_scratch`] under an execution budget: anytime semantics.
///
/// The deadline is checked once per greedy round. On expiry the run stops
/// selecting and returns the photos chosen so far with
/// [`partial`](DescribeOutcome::partial) set — the greedy selection is
/// incremental, so every prefix is itself the exact greedy answer for its
/// length. An unlimited budget is bit-identical to
/// [`st_rel_div_with_scratch`].
///
/// # Errors
/// Same contract as [`st_rel_div`] — a deadline hit is *not* an error.
pub fn st_rel_div_budgeted<'a>(
    ctx: &StreetContext,
    photos: impl Into<PhotoView<'a>>,
    params: &DescribeParams,
    scratch: &mut DescribeScratch,
    budget: QueryBudget,
) -> Result<DescribeOutcome> {
    st_rel_div_full(ctx, photos, params, scratch, None, budget)
}

/// The full-surface entry point: explain collector *and* execution budget
/// (see [`st_rel_div_explained`] and [`st_rel_div_budgeted`]).
///
/// # Errors
/// Same contract as [`st_rel_div`].
pub fn st_rel_div_full<'a>(
    ctx: &StreetContext,
    photos: impl Into<PhotoView<'a>>,
    params: &DescribeParams,
    scratch: &mut DescribeScratch,
    mut explain: Option<&mut DescribeExplain>,
    budget: QueryBudget,
) -> Result<DescribeOutcome> {
    let photos: PhotoView<'a> = photos.into();
    params.validate()?;
    if let Some(&max_member) = ctx.members.iter().max() {
        if max_member.index() >= photos.len() {
            return Err(SoiError::invalid(format!(
                "street context references photo {max_member} but the collection has {} photos",
                photos.len()
            )));
        }
    }
    let _query_span = soi_obs::trace::span(soi_obs::names::spans::DESCRIBE_QUERY);
    let mut stats = DescribeStats::default();

    let mut selected: Vec<PhotoId> = Vec::with_capacity(params.k.min(ctx.members.len()));
    let mut chosen = std::mem::take(&mut scratch.chosen);
    let mut cells = std::mem::take(&mut scratch.cells);
    let mut candidates = std::mem::take(&mut scratch.candidates);
    let mut photo_acc = std::mem::take(&mut scratch.photo_acc);
    chosen.clear();
    chosen.resize(photos.len(), false);
    photo_acc.clear();

    stats.timer.enter(phases::FILTERING);
    cells.clear();
    cells.extend(ctx.index.occupied().iter().map(|&id| {
        let (rel_lo, rel_hi) = cell_rel_bounds(ctx, params.w, id);
        CellAcc {
            id,
            remaining: ctx.index.cell(id).map_or(0, |c| c.photos.len()),
            rel_lo,
            rel_hi,
            div_lo_sum: 0.0,
            div_hi_sum: 0.0,
        }
    }));
    let div_scale = if params.k > 1 {
        params.lambda / (params.k as f64 - 1.0)
    } else {
        0.0
    };
    let one_minus_lambda = 1.0 - params.lambda;
    stats.timer.stop();

    // Exact mmr with cached relevance and incrementally topped-up div sums.
    // Summation order equals the baseline's (selection order), so results
    // are bit-identical.
    let exact_mmr =
        |r: PhotoId, selected: &[PhotoId], photo_acc: &mut FxHashMap<PhotoId, PhotoAcc>| -> f64 {
            let acc = photo_acc.entry(r).or_default();
            let rel = match acc.rel {
                Some(rel) => rel,
                None => {
                    let rel = measures::rel(ctx, photos, params.w, r);
                    acc.rel = Some(rel);
                    rel
                }
            };
            let mut div_sum = acc.div_sum;
            for &r2 in &selected[acc.upto..] {
                div_sum += measures::div(ctx, photos, params.w, r, r2);
            }
            acc.div_sum = div_sum;
            acc.upto = selected.len();
            let mut score = one_minus_lambda * rel;
            if params.k > 1 && !selected.is_empty() {
                score += div_scale * div_sum;
            }
            score
        };

    // Checked once per greedy round: each completed round's selection is a
    // valid (exact) greedy prefix, so stopping between rounds degrades the
    // summary length, never its per-photo quality.
    let mut expired = budget.expired();
    while !expired && selected.len() < params.k && selected.len() < ctx.members.len() {
        let round_no = selected.len() + 1;
        // Per-round span: profiles and traces resolve greedy rounds
        // individually below describe.query (drops on every loop exit).
        let _round_span = soi_obs::trace::span(soi_obs::names::spans::DESCRIBE_ROUND);
        // Round-start counter snapshot, so the explain row can report the
        // refinement work attributable to this round alone.
        let snap = (
            stats.cells_refined,
            stats.cells_pruned_refinement,
            stats.photos_evaluated,
        );
        // --- Filtering phase: per-cell mmr bounds from the accumulators.
        stats.timer.enter(phases::FILTERING);
        let use_div = params.k > 1 && !selected.is_empty();
        candidates.clear();
        let mut mmr_min = f64::NEG_INFINITY;
        for cell in &cells {
            if cell.remaining == 0 {
                continue;
            }
            let mut lo = one_minus_lambda * cell.rel_lo;
            let mut hi = one_minus_lambda * cell.rel_hi;
            if use_div {
                lo += div_scale * cell.div_lo_sum;
                hi += div_scale * cell.div_hi_sum;
            }
            if lo > mmr_min {
                mmr_min = lo;
            }
            candidates.push((cell.id, hi));
        }
        let before = candidates.len();
        // Keep candidate cells whose upper bound can reach the best lower
        // bound (Alg. 2 line 9; non-strict to preserve ties).
        candidates.retain(|&(_, hi)| hi >= mmr_min);
        stats.cells_pruned_filtering += before - candidates.len();
        // Priority order: descending upper bound, ties by ascending cell id.
        candidates.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));

        // --- Refinement phase: exact mmr over surviving cells.
        stats.timer.enter(phases::REFINEMENT);
        let mut best: Option<(f64, PhotoId)> = None;
        for (idx, &(c, hi)) in candidates.iter().enumerate() {
            if let Some((bv, _)) = best {
                if hi < bv {
                    // Cells are sorted by Bmax: everything after is pruned too.
                    stats.cells_pruned_refinement += candidates.len() - idx;
                    break;
                }
            }
            stats.cells_refined += 1;
            let Some(cell) = ctx.index.cell(c) else {
                continue; // unreachable: candidates come from occupied()
            };
            for &r in &cell.photos {
                if chosen[r.index()] {
                    continue;
                }
                let v = exact_mmr(r, &selected, &mut photo_acc);
                stats.photos_evaluated += 1;
                let better = match best {
                    None => true,
                    Some((bv, bid)) => v > bv || (v == bv && r < bid),
                };
                if better {
                    best = Some((v, r));
                }
            }
        }
        stats.timer.stop();

        if let Some(ex) = explain.as_deref_mut() {
            ex.record(DescribeRound {
                round: round_no,
                cells_candidate: before,
                cells_pruned_filtering: before - candidates.len(),
                cells_refined: stats.cells_refined - snap.0,
                cells_pruned_refinement: stats.cells_pruned_refinement - snap.1,
                photos_scored: stats.photos_evaluated - snap.2,
                mmr_min,
                best_mmr: best.map(|(v, _)| v),
                selected: best.map(|(_, p)| p),
            });
        }

        // No evaluable candidate left (every remaining cell is empty):
        // the selection is as large as it can get.
        let Some((_, next)) = best else {
            stats.timer.stop();
            break;
        };
        selected.push(next);
        chosen[next.index()] = true;

        // --- Incremental updates for the new selection.
        stats.timer.enter(phases::FILTERING);
        let next_cell = ctx
            .index
            .grid()
            .cell_containing(photos.get(next).pos)
            .map(|coord| ctx.index.grid().cell_id(coord));
        for cell in &mut cells {
            if Some(cell.id) == next_cell {
                cell.remaining = cell.remaining.saturating_sub(1);
            }
            if cell.remaining > 0 && params.k > 1 {
                let (dl, du) = cell_div_bounds(ctx, photos, params.w, cell.id, next);
                cell.div_lo_sum += dl;
                cell.div_hi_sum += du;
            }
        }
        stats.timer.stop();

        if budget.expired() {
            expired = true;
        }
    }
    stats.deadline_expired = expired;

    let objective = objective(ctx, photos, params, &selected);

    // Hand the buffers (and their capacity) back for the next call.
    scratch.chosen = chosen;
    scratch.cells = cells;
    scratch.candidates = candidates;
    scratch.photo_acc = photo_acc;

    crate::obs::absorb_describe_stats(&stats);

    if let Some(ex) = explain {
        ex.finish(&stats);
    }

    Ok(DescribeOutcome {
        selected,
        objective,
        stats,
        partial: expired,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::describe::context::{ContextBuilder, PhiSource};
    use crate::describe::greedy::greedy_select;
    use soi_common::{KeywordId, StreetId};
    use soi_data::PhotoCollection;
    use soi_geo::Point;
    use soi_index::PhotoGrid;
    use soi_network::RoadNetwork;
    use soi_text::KeywordSet;

    fn tags(ids: &[u32]) -> KeywordSet {
        KeywordSet::from_ids(ids.iter().map(|&i| KeywordId(i)))
    }

    fn build_ctx(photo_specs: &[(f64, f64, Vec<u32>)]) -> (PhotoCollection, StreetContext) {
        let mut b = RoadNetwork::builder();
        b.add_street_from_points("Main", &[Point::new(0.0, 0.0), Point::new(10.0, 0.0)]);
        let network = b.build().unwrap();
        let mut photos = PhotoCollection::new();
        for (x, y, ts) in photo_specs {
            photos.add(Point::new(*x, *y), tags(ts));
        }
        let grid = PhotoGrid::build(&network, &photos, 1.0);
        let ctx = ContextBuilder {
            network: &network,
            photos: &photos,
            photo_grid: &grid,
            pois: None,
            eps: 0.5,
            rho: 0.4,
            phi_source: PhiSource::Photos,
        }
        .build(StreetId(0))
        .unwrap();
        (photos, ctx)
    }

    fn spread_specs() -> Vec<(f64, f64, Vec<u32>)> {
        vec![
            (1.0, 0.0, vec![0, 1]),
            (1.1, 0.05, vec![0, 1]),
            (1.2, -0.05, vec![0]),
            (3.0, 0.2, vec![2]),
            (5.0, -0.3, vec![3, 4]),
            (7.0, 0.1, vec![0, 5]),
            (9.0, 0.0, vec![6]),
            (9.2, 0.1, vec![6, 7]),
        ]
    }

    #[test]
    fn matches_greedy_baseline_exactly() {
        let (photos, ctx) = build_ctx(&spread_specs());
        for &(k, lambda, w) in &[
            (1usize, 0.5, 0.5),
            (3, 0.0, 0.5),
            (3, 1.0, 0.5),
            (4, 0.5, 0.0),
            (4, 0.5, 1.0),
            (5, 0.25, 0.75),
            (8, 0.5, 0.5),
        ] {
            let params = DescribeParams::new(k, lambda, w).unwrap();
            let fast = st_rel_div(&ctx, &photos, &params).unwrap();
            let slow = greedy_select(&ctx, &photos, &params);
            assert_eq!(
                fast.selected, slow.selected,
                "mismatch at k={k} lambda={lambda} w={w}"
            );
            assert_eq!(fast.objective, slow.objective);
        }
    }

    #[test]
    fn prunes_work_relative_to_baseline() {
        let (photos, ctx) = build_ctx(&spread_specs());
        let params = DescribeParams::new(3, 0.5, 0.5).unwrap();
        let fast = st_rel_div(&ctx, &photos, &params).unwrap();
        let slow = greedy_select(&ctx, &photos, &params);
        // The accelerated version must never evaluate more photos.
        assert!(fast.stats.photos_evaluated <= slow.stats.photos_evaluated);
    }

    #[test]
    fn all_zero_mmr_still_selects_deterministically() {
        // Photos with no tags and lambda = 1 (first pick has mmr 0 for all).
        let (photos, ctx) =
            build_ctx(&[(1.0, 0.0, vec![]), (2.0, 0.0, vec![]), (3.0, 0.0, vec![])]);
        let params = DescribeParams::new(2, 1.0, 0.5).unwrap();
        let fast = st_rel_div(&ctx, &photos, &params).unwrap();
        let slow = greedy_select(&ctx, &photos, &params);
        assert_eq!(fast.selected, slow.selected);
        assert_eq!(fast.selected.len(), 2);
    }

    #[test]
    fn single_photo_street() {
        let (photos, ctx) = build_ctx(&[(1.0, 0.0, vec![0])]);
        let params = DescribeParams::new(3, 0.5, 0.5).unwrap();
        let out = st_rel_div(&ctx, &photos, &params).unwrap();
        assert_eq!(out.selected.len(), 1);
    }
}
