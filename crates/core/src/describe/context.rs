//! Per-street description context.
//!
//! Bundles everything the measures of Section 4.1.2 need about one street:
//! its photo set `Rs`, its keyword frequency vector `Φs`, the normaliser
//! `maxD(s)` (diagonal of the ε-buffered street MBR, Definition 5), the
//! neighbourhood radius ρ, and the per-street diversification grid index.

use soi_common::{PhotoId, PoiId, Result, SoiError, StreetId};
use soi_data::{PhotoCollection, PhotoView, PoiCollection};
use soi_index::{DeltaIndex, DiversificationIndex, PhotoGrid};
use soi_network::RoadNetwork;
use soi_text::FreqVector;

/// Where the street keyword frequency vector `Φs` is derived from.
///
/// The paper notes "there are many ways to derive the keyword frequency
/// vector of a street; for example … from the keywords of its neighboring
/// POIs and/or photos" (Sec. 4.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PhiSource {
    /// Tag frequencies of the street's photos `Rs` (default).
    #[default]
    Photos,
    /// Keyword frequencies of POIs within ε of the street.
    Pois,
    /// Sum of both.
    PhotosAndPois,
}

impl PhiSource {
    /// Name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            PhiSource::Photos => "photos",
            PhiSource::Pois => "pois",
            PhiSource::PhotosAndPois => "photos+pois",
        }
    }
}

/// The description context of one street.
#[derive(Debug)]
pub struct StreetContext {
    /// The street being described.
    pub street: StreetId,
    /// `Rs`: photos within ε of the street, ascending by id.
    pub members: Vec<PhotoId>,
    /// The street keyword frequency vector `Φs`.
    pub phi: FreqVector,
    /// `maxD(s)`: the diagonal of the street MBR expanded by ε.
    pub max_d: f64,
    /// The neighbourhood radius ρ of Definition 4.
    pub rho: f64,
    /// The per-street grid index (cell side ρ/2).
    pub index: DiversificationIndex,
}

/// Inputs shared across street-context constructions.
#[derive(Clone, Copy)]
pub struct ContextBuilder<'a> {
    /// The road network.
    pub network: &'a RoadNetwork,
    /// All photos of the dataset.
    pub photos: &'a PhotoCollection,
    /// The dataset-wide photo grid (for extracting `Rs`).
    pub photo_grid: &'a PhotoGrid,
    /// POIs, if `Φs` should draw on them.
    pub pois: Option<&'a PoiCollection>,
    /// Distance threshold ε (photo-to-street association).
    pub eps: f64,
    /// Neighbourhood radius ρ (spatial relevance).
    pub rho: f64,
    /// Source of `Φs`.
    pub phi_source: PhiSource,
}

impl ContextBuilder<'_> {
    /// Builds the description context for `street`.
    ///
    /// # Errors
    /// Rejects a street id outside the network, non-positive or non-finite
    /// `eps`/`rho`, and a `phi_source` that requires POIs when none were
    /// provided.
    pub fn build(&self, street: StreetId) -> Result<StreetContext> {
        self.build_with_delta(street, None)
    }

    /// Builds the description context for `street` with a sealed ingestion
    /// delta overlaid (deleted photos leave `Rs`, added photos within ε
    /// join it, and `Φs` draws on the merged POI/photo populations).
    ///
    /// With `delta = None` this is exactly [`build`](Self::build). The
    /// merged iteration order (base survivors ascending, then adds
    /// ascending) matches a rebuild over the folded collections, so `Φs`,
    /// `maxD(s)` and every per-photo measure are bit-identical to the
    /// post-compaction context (photo *ids* differ: the fold reassigns
    /// dense ids, while the live view keeps epoch ids).
    ///
    /// # Errors
    /// Same conditions as [`build`](Self::build).
    pub fn build_with_delta(
        &self,
        street: StreetId,
        delta: Option<&DeltaIndex>,
    ) -> Result<StreetContext> {
        if street.index() >= self.network.num_streets() {
            return Err(SoiError::not_found(format!(
                "street {street} (network has {} streets)",
                self.network.num_streets()
            )));
        }
        if !(self.eps > 0.0 && self.eps.is_finite()) {
            return Err(SoiError::invalid(format!(
                "eps must be positive and finite, got {}",
                self.eps
            )));
        }
        if !(self.rho > 0.0 && self.rho.is_finite()) {
            return Err(SoiError::invalid(format!(
                "rho must be positive and finite, got {}",
                self.rho
            )));
        }
        let photos: PhotoView<'_> = match delta {
            Some(d) => d.photo_view(self.photos),
            None => self.photos.into(),
        };
        // Base members (ascending), minus this epoch's deleted photos, plus
        // its added photos within ε (their ids follow all base ids, so the
        // list stays ascending).
        let mut members =
            self.photo_grid
                .photos_near_street(self.network, self.photos, street, self.eps);
        if let Some(d) = delta {
            if d.num_deleted_photos() > 0 {
                members.retain(|&pid| !d.photo_deleted(pid));
            }
            for photo in d.added_photos() {
                if !d.photo_deleted(photo.id)
                    && self.network.dist_point_to_street(photo.pos, street) <= self.eps
                {
                    members.push(photo.id);
                }
            }
        }

        let mut phi = FreqVector::new();
        if matches!(
            self.phi_source,
            PhiSource::Photos | PhiSource::PhotosAndPois
        ) {
            for &pid in &members {
                for tag in photos.get(pid).tags.iter() {
                    phi.increment(tag);
                }
            }
        }
        if matches!(self.phi_source, PhiSource::Pois | PhiSource::PhotosAndPois) {
            let Some(pois) = self.pois else {
                return Err(SoiError::invalid(format!(
                    "phi source `{}` requires POIs but none were provided",
                    self.phi_source.name()
                )));
            };
            // Merged order: base survivors ascending, then adds ascending —
            // the same accumulation order a rebuild over the folded
            // collection uses.
            for (i, poi) in pois.iter().enumerate() {
                if delta.is_some_and(|d| d.poi_deleted(PoiId::from_index(i))) {
                    continue;
                }
                if self.network.dist_point_to_street(poi.pos, street) <= self.eps {
                    for k in poi.keywords.iter() {
                        phi.add(k, poi.weight);
                    }
                }
            }
            if let Some(d) = delta {
                for poi in d.added_pois() {
                    if d.poi_deleted(poi.id) {
                        continue;
                    }
                    if self.network.dist_point_to_street(poi.pos, street) <= self.eps {
                        for k in poi.keywords.iter() {
                            phi.add(k, poi.weight);
                        }
                    }
                }
            }
        }

        let max_d = self
            .network
            .street_mbr(street)
            .map(|mbr| mbr.expand(self.eps).diagonal())
            .unwrap_or(0.0);

        let index = DiversificationIndex::build(photos, &members, self.rho);

        Ok(StreetContext {
            street,
            members,
            phi,
            max_d,
            rho: self.rho,
            index,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_common::KeywordId;
    use soi_geo::Point;
    use soi_text::KeywordSet;

    fn tags(ids: &[u32]) -> KeywordSet {
        KeywordSet::from_ids(ids.iter().map(|&i| KeywordId(i)))
    }

    fn setup() -> (RoadNetwork, PhotoCollection, PoiCollection) {
        let mut b = RoadNetwork::builder();
        b.add_street_from_points("Main", &[Point::new(0.0, 0.0), Point::new(10.0, 0.0)]);
        let network = b.build().unwrap();
        let mut photos = PhotoCollection::new();
        photos.add(Point::new(1.0, 0.2), tags(&[0, 1]));
        photos.add(Point::new(2.0, -0.3), tags(&[1]));
        photos.add(Point::new(5.0, 8.0), tags(&[2])); // too far
        let mut pois = PoiCollection::new();
        pois.add(Point::new(3.0, 0.1), tags(&[5]));
        pois.add(Point::new(3.0, 7.0), tags(&[6])); // too far
        (network, photos, pois)
    }

    #[test]
    fn members_and_phi_from_photos() {
        let (network, photos, _) = setup();
        let grid = PhotoGrid::build(&network, &photos, 1.0);
        let builder = ContextBuilder {
            network: &network,
            photos: &photos,
            photo_grid: &grid,
            pois: None,
            eps: 0.5,
            rho: 0.2,
            phi_source: PhiSource::Photos,
        };
        let ctx = builder.build(StreetId(0)).unwrap();
        assert_eq!(ctx.members.len(), 2);
        // Tag 1 appears twice, tag 0 once, tag 2 not at all.
        assert_eq!(ctx.phi.weight(KeywordId(1)), 2.0);
        assert_eq!(ctx.phi.weight(KeywordId(0)), 1.0);
        assert_eq!(ctx.phi.weight(KeywordId(2)), 0.0);
        assert_eq!(ctx.phi.l1_norm(), 3.0);
        assert_eq!(ctx.index.num_photos(), 2);
    }

    #[test]
    fn phi_from_pois() {
        let (network, photos, pois) = setup();
        let grid = PhotoGrid::build(&network, &photos, 1.0);
        let builder = ContextBuilder {
            network: &network,
            photos: &photos,
            photo_grid: &grid,
            pois: Some(&pois),
            eps: 0.5,
            rho: 0.2,
            phi_source: PhiSource::Pois,
        };
        let ctx = builder.build(StreetId(0)).unwrap();
        assert_eq!(ctx.phi.weight(KeywordId(5)), 1.0);
        assert_eq!(ctx.phi.weight(KeywordId(6)), 0.0);
        assert_eq!(ctx.phi.weight(KeywordId(1)), 0.0);
    }

    #[test]
    fn phi_from_both_sums() {
        let (network, photos, pois) = setup();
        let grid = PhotoGrid::build(&network, &photos, 1.0);
        let builder = ContextBuilder {
            network: &network,
            photos: &photos,
            photo_grid: &grid,
            pois: Some(&pois),
            eps: 0.5,
            rho: 0.2,
            phi_source: PhiSource::PhotosAndPois,
        };
        let ctx = builder.build(StreetId(0)).unwrap();
        assert_eq!(ctx.phi.weight(KeywordId(1)), 2.0);
        assert_eq!(ctx.phi.weight(KeywordId(5)), 1.0);
    }

    #[test]
    fn max_d_is_buffered_mbr_diagonal() {
        let (network, photos, _) = setup();
        let grid = PhotoGrid::build(&network, &photos, 1.0);
        let builder = ContextBuilder {
            network: &network,
            photos: &photos,
            photo_grid: &grid,
            pois: None,
            eps: 0.5,
            rho: 0.2,
            phi_source: PhiSource::Photos,
        };
        let ctx = builder.build(StreetId(0)).unwrap();
        // MBR is the segment itself (10 x 0), expanded by 0.5 -> 11 x 1.
        let expect = (11.0f64 * 11.0 + 1.0).sqrt();
        assert!((ctx.max_d - expect).abs() < 1e-12);
    }

    #[test]
    fn phi_source_names() {
        assert_eq!(PhiSource::Photos.name(), "photos");
        assert_eq!(PhiSource::Pois.name(), "pois");
        assert_eq!(PhiSource::PhotosAndPois.name(), "photos+pois");
    }
}
