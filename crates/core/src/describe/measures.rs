//! Spatio-textual relevance and diversity measures (Definitions 4–7).

use crate::describe::context::StreetContext;
use soi_common::PhotoId;
use soi_data::PhotoView;

/// Spatial relevance (Definition 4): the fraction of `Rs` within
/// neighbourhood radius ρ of photo `r` (including `r` itself, per Eq. 6).
///
/// Returns 0 for an empty `Rs`.
pub fn spatial_rel<'a>(ctx: &StreetContext, photos: impl Into<PhotoView<'a>>, r: PhotoId) -> f64 {
    let photos: PhotoView<'a> = photos.into();
    let n = ctx.index.num_photos();
    if n == 0 {
        return 0.0;
    }
    let center = photos.get(r).pos;
    ctx.index.count_within(photos, center, ctx.rho) as f64 / n as f64
}

/// Textual relevance (Definition 6): `Σ_{ψ∈Ψr} Φs(ψ) / ‖Φs‖₁`.
///
/// Returns 0 when `Φs` is all-zero.
pub fn textual_rel<'a>(ctx: &StreetContext, photos: impl Into<PhotoView<'a>>, r: PhotoId) -> f64 {
    let photos: PhotoView<'a> = photos.into();
    let l1 = ctx.phi.l1_norm();
    if l1 == 0.0 {
        return 0.0;
    }
    ctx.phi.sum_over(&photos.get(r).tags) / l1
}

/// Spatial diversity (Definition 5): `dist(r, r′) / maxD(s)`.
///
/// Returns 0 when `maxD(s)` is 0 (degenerate street).
pub fn spatial_div<'a>(
    ctx: &StreetContext,
    photos: impl Into<PhotoView<'a>>,
    r: PhotoId,
    r2: PhotoId,
) -> f64 {
    let photos: PhotoView<'a> = photos.into();
    if ctx.max_d == 0.0 {
        return 0.0;
    }
    photos.get(r).pos.dist(photos.get(r2).pos) / ctx.max_d
}

/// Textual diversity (Definition 7): the Jaccard distance of the tag sets.
pub fn textual_div<'a>(photos: impl Into<PhotoView<'a>>, r: PhotoId, r2: PhotoId) -> f64 {
    let photos: PhotoView<'a> = photos.into();
    photos.get(r).tags.jaccard_distance(&photos.get(r2).tags)
}

/// Combined per-photo relevance: `w·spatial_rel + (1−w)·textual_rel`
/// (the per-item summand of Eq. 4).
pub fn rel<'a>(ctx: &StreetContext, photos: impl Into<PhotoView<'a>>, w: f64, r: PhotoId) -> f64 {
    let photos: PhotoView<'a> = photos.into();
    w * spatial_rel(ctx, photos, r) + (1.0 - w) * textual_rel(ctx, photos, r)
}

/// Combined pairwise diversity: `w·spatial_div + (1−w)·textual_div`
/// (the per-pair summand of Eq. 5).
pub fn div<'a>(
    ctx: &StreetContext,
    photos: impl Into<PhotoView<'a>>,
    w: f64,
    r: PhotoId,
    r2: PhotoId,
) -> f64 {
    let photos: PhotoView<'a> = photos.into();
    w * spatial_div(ctx, photos, r, r2) + (1.0 - w) * textual_div(photos, r, r2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::describe::context::{ContextBuilder, PhiSource};
    use soi_common::{KeywordId, StreetId};
    use soi_data::PhotoCollection;
    use soi_geo::Point;
    use soi_index::PhotoGrid;
    use soi_network::RoadNetwork;
    use soi_text::KeywordSet;

    fn tags(ids: &[u32]) -> KeywordSet {
        KeywordSet::from_ids(ids.iter().map(|&i| KeywordId(i)))
    }

    /// Street along y=0, 0..10; four member photos.
    fn setup() -> (RoadNetwork, PhotoCollection, StreetContext) {
        let mut b = RoadNetwork::builder();
        b.add_street_from_points("Main", &[Point::new(0.0, 0.0), Point::new(10.0, 0.0)]);
        let network = b.build().unwrap();
        let mut photos = PhotoCollection::new();
        photos.add(Point::new(1.0, 0.0), tags(&[0, 1])); // r0
        photos.add(Point::new(1.05, 0.0), tags(&[0])); // r1, very near r0
        photos.add(Point::new(9.0, 0.0), tags(&[2])); // r2, far end
        photos.add(Point::new(9.1, 0.0), tags(&[0, 1])); // r3
        let grid = PhotoGrid::build(&network, &photos, 1.0);
        let ctx = ContextBuilder {
            network: &network,
            photos: &photos,
            photo_grid: &grid,
            pois: None,
            eps: 0.5,
            rho: 0.2,
            phi_source: PhiSource::Photos,
        }
        .build(StreetId(0))
        .unwrap();
        (network, photos, ctx)
    }

    #[test]
    fn spatial_rel_counts_neighbourhood() {
        let (_, photos, ctx) = setup();
        assert_eq!(ctx.members.len(), 4);
        // r0's rho=0.2 neighbourhood: itself and r1 -> 2/4.
        assert_eq!(spatial_rel(&ctx, &photos, PhotoId(0)), 0.5);
        // r2's neighbourhood: itself and r3 (0.1 away) -> 2/4.
        assert_eq!(spatial_rel(&ctx, &photos, PhotoId(2)), 0.5);
    }

    #[test]
    fn textual_rel_uses_phi() {
        let (_, photos, ctx) = setup();
        // Phi counts: kw0 -> 3, kw1 -> 2, kw2 -> 1; l1 = 6.
        assert!((textual_rel(&ctx, &photos, PhotoId(0)) - 5.0 / 6.0).abs() < 1e-12);
        assert!((textual_rel(&ctx, &photos, PhotoId(2)) - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn spatial_div_is_normalised_distance() {
        let (_, photos, ctx) = setup();
        let d = spatial_div(&ctx, &photos, PhotoId(0), PhotoId(2));
        assert!((d - 8.0 / ctx.max_d).abs() < 1e-12);
        assert_eq!(spatial_div(&ctx, &photos, PhotoId(0), PhotoId(0)), 0.0);
        // Symmetric.
        assert_eq!(
            spatial_div(&ctx, &photos, PhotoId(2), PhotoId(0)),
            spatial_div(&ctx, &photos, PhotoId(0), PhotoId(2))
        );
        // Bounded by 1 for member pairs.
        assert!(d <= 1.0);
    }

    #[test]
    fn textual_div_is_jaccard() {
        let (_, photos, _) = setup();
        // r0 {0,1} vs r1 {0}: 1 - 1/2.
        assert_eq!(textual_div(&photos, PhotoId(0), PhotoId(1)), 0.5);
        // Identical tag sets.
        assert_eq!(textual_div(&photos, PhotoId(0), PhotoId(3)), 0.0);
        // Disjoint.
        assert_eq!(textual_div(&photos, PhotoId(0), PhotoId(2)), 1.0);
    }

    #[test]
    fn combined_measures_interpolate() {
        let (_, photos, ctx) = setup();
        let r = PhotoId(0);
        assert_eq!(rel(&ctx, &photos, 1.0, r), spatial_rel(&ctx, &photos, r));
        assert_eq!(rel(&ctx, &photos, 0.0, r), textual_rel(&ctx, &photos, r));
        let mid = rel(&ctx, &photos, 0.5, r);
        let expect = 0.5 * spatial_rel(&ctx, &photos, r) + 0.5 * textual_rel(&ctx, &photos, r);
        assert!((mid - expect).abs() < 1e-12);

        let d = div(&ctx, &photos, 0.25, PhotoId(0), PhotoId(2));
        let expect = 0.25 * spatial_div(&ctx, &photos, PhotoId(0), PhotoId(2))
            + 0.75 * textual_div(&photos, PhotoId(0), PhotoId(2));
        assert!((d - expect).abs() < 1e-12);
    }
}
