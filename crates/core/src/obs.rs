//! Process-wide metric instruments for the core algorithms.
//!
//! Hot loops keep their counters in the per-query [`QueryStats`] /
//! [`DescribeStats`] structs (plain field increments); the whole bundle is
//! *absorbed* into these global atomics once per query, so enabling
//! metrics costs a handful of atomic adds per query rather than per
//! source access. [`register_metrics`] forces registration so `soi
//! metrics` reports the full series set (at zero) even before the first
//! query runs.

use crate::describe::DescribeStats;
use crate::soi::QueryStats;
use soi_obs::metrics::{
    register_counter, register_histogram, Counter, Histogram, DEFAULT_LATENCY_BUCKETS,
};
use std::sync::OnceLock;

/// Global instruments fed by k-SOI query evaluations.
pub struct SoiMetrics {
    /// `soi_queries_total`: k-SOI queries evaluated.
    pub queries: &'static Counter,
    /// `soi_query_latency_seconds`: end-to-end `run_soi` latency.
    pub latency: &'static Histogram,
    /// `soi_cells_popped_total`: SL1 cell pops (Alg. 1 line 11).
    pub cells_popped: &'static Counter,
    /// `soi_segments_popped_total`: SL2/SL3 segment pops.
    pub segments_popped: &'static Counter,
    /// `soi_cell_visits_total`: effective `UpdateInterest` executions.
    pub cell_visits: &'static Counter,
    /// `soi_segments_seen_total`: segments that entered the partial state.
    pub segments_seen: &'static Counter,
    /// `soi_segments_bounded_out_total`: segments dismissed by bounds
    /// without distance work.
    pub segments_bounded_out: &'static Counter,
    /// `soi_source_accesses_total`: total source-list accesses.
    pub accesses: &'static Counter,
    /// `soi_queries_partial_total`: queries whose deadline expired before
    /// the bounds converged (anytime partial results returned).
    pub partials: &'static Counter,
}

/// The SOI instruments (registered on first use).
pub fn soi_metrics() -> &'static SoiMetrics {
    static METRICS: OnceLock<SoiMetrics> = OnceLock::new();
    METRICS.get_or_init(|| SoiMetrics {
        queries: register_counter("soi_queries_total", "k-SOI queries evaluated"),
        latency: register_histogram(
            "soi_query_latency_seconds",
            "End-to-end run_soi latency",
            DEFAULT_LATENCY_BUCKETS,
        ),
        cells_popped: register_counter("soi_cells_popped_total", "SL1 cells popped"),
        segments_popped: register_counter("soi_segments_popped_total", "SL2/SL3 segments popped"),
        cell_visits: register_counter(
            "soi_cell_visits_total",
            "Effective UpdateInterest executions",
        ),
        segments_seen: register_counter(
            "soi_segments_seen_total",
            "Segments that entered the partial state",
        ),
        segments_bounded_out: register_counter(
            "soi_segments_bounded_out_total",
            "Segments dismissed by upper bounds without distance work",
        ),
        accesses: register_counter("soi_source_accesses_total", "Source-list accesses"),
        partials: register_counter(
            "soi_queries_partial_total",
            "k-SOI queries that hit their deadline and returned partial lower-bound results",
        ),
    })
}

/// Folds one finished query's counters into the global SOI instruments.
pub fn absorb_query_stats(stats: &QueryStats) {
    let m = soi_metrics();
    m.queries.inc();
    m.latency.observe_duration(stats.total_time());
    m.cells_popped.add(stats.cells_popped as u64);
    m.segments_popped.add(stats.segments_popped as u64);
    m.cell_visits.add(stats.cell_visits as u64);
    m.segments_seen.add(stats.segments_seen as u64);
    m.segments_bounded_out
        .add(stats.segments_bounded_out as u64);
    m.accesses.add(stats.accesses as u64);
    if stats.deadline_expired {
        m.partials.inc();
    }
}

/// Global instruments fed by description (ST_Rel+Div) queries.
pub struct DescribeMetrics {
    /// `soi_describe_queries_total`: description queries evaluated.
    pub queries: &'static Counter,
    /// `soi_describe_latency_seconds`: end-to-end `st_rel_div` latency.
    pub latency: &'static Histogram,
    /// `soi_describe_photos_evaluated_total`: exact `mmr` evaluations.
    pub photos_evaluated: &'static Counter,
    /// `soi_describe_cells_pruned_total`: cells discarded by the
    /// filtering-phase bounds (Alg. 2).
    pub cells_pruned_filtering: &'static Counter,
    /// `soi_describe_cells_skipped_total`: cells skipped in refinement.
    pub cells_pruned_refinement: &'static Counter,
    /// `soi_describe_cells_refined_total`: cells whose photos were refined.
    pub cells_refined: &'static Counter,
    /// `soi_describe_queries_partial_total`: describe queries whose deadline
    /// expired mid-selection (anytime partial summaries returned).
    pub partials: &'static Counter,
}

/// The describe instruments (registered on first use).
pub fn describe_metrics() -> &'static DescribeMetrics {
    static METRICS: OnceLock<DescribeMetrics> = OnceLock::new();
    METRICS.get_or_init(|| DescribeMetrics {
        queries: register_counter(
            "soi_describe_queries_total",
            "Description queries evaluated",
        ),
        latency: register_histogram(
            "soi_describe_latency_seconds",
            "End-to-end st_rel_div latency",
            DEFAULT_LATENCY_BUCKETS,
        ),
        photos_evaluated: register_counter(
            "soi_describe_photos_evaluated_total",
            "Exact mmr evaluations",
        ),
        cells_pruned_filtering: register_counter(
            "soi_describe_cells_pruned_total",
            "Cells discarded by Alg. 2 filtering bounds",
        ),
        cells_pruned_refinement: register_counter(
            "soi_describe_cells_skipped_total",
            "Cells skipped during Alg. 2 refinement",
        ),
        cells_refined: register_counter(
            "soi_describe_cells_refined_total",
            "Cells whose photos were refined",
        ),
        partials: register_counter(
            "soi_describe_queries_partial_total",
            "Describe queries that hit their deadline and returned a partial summary",
        ),
    })
}

/// Folds one finished description query into the global instruments.
pub fn absorb_describe_stats(stats: &DescribeStats) {
    let m = describe_metrics();
    m.queries.inc();
    m.latency.observe_duration(stats.timer.total());
    m.photos_evaluated.add(stats.photos_evaluated as u64);
    m.cells_pruned_filtering
        .add(stats.cells_pruned_filtering as u64);
    m.cells_pruned_refinement
        .add(stats.cells_pruned_refinement as u64);
    m.cells_refined.add(stats.cells_refined as u64);
    if stats.deadline_expired {
        m.partials.inc();
    }
}

/// Forces registration of every core-algorithm metric so a gather
/// performed before any query still exposes the full series set.
pub fn register_metrics() {
    let _ = soi_metrics();
    let _ = describe_metrics();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_accumulates_counters() {
        let before = soi_metrics().cells_popped.get();
        let stats = QueryStats {
            cells_popped: 5,
            accesses: 9,
            ..Default::default()
        };
        absorb_query_stats(&stats);
        assert!(soi_metrics().cells_popped.get() >= before + 5);
        assert!(soi_metrics().queries.get() >= 1);
    }

    #[test]
    fn register_exposes_full_series_set() {
        register_metrics();
        let text = soi_obs::metrics::gather_prefixed("soi_");
        for name in [
            "soi_queries_total",
            "soi_query_latency_seconds",
            "soi_describe_queries_total",
            "soi_describe_latency_seconds",
        ] {
            assert!(text.contains(name), "{name} missing from gather");
        }
    }
}
