//! Per-query execution budgets: deadlines for anytime query evaluation.
//!
//! A [`QueryBudget`] carries an optional wall-clock deadline into the
//! algorithms. Algorithm 1 checks it every few source-list accesses,
//! Algorithm 2 once per greedy round; on expiry each returns its current
//! best answer flagged as *partial* instead of an error. This is sound
//! because both algorithms maintain valid intermediate answers at every
//! step: Alg. 1's seen segments carry lower-bound masses (so the current
//! LBk top-k is a correct lower-bound ranking), and Alg. 2's selection is
//! grown one photo at a time (so the current selection is a valid, smaller
//! summary).
//!
//! The unlimited budget is the default and is free: every check is a
//! branch on a `None`, and results are bit-identical to the un-budgeted
//! entry points.

use std::time::{Duration, Instant};

/// How many Alg. 1 source-list accesses elapse between deadline checks.
/// A power of two so the modulo folds to a mask; small enough that a
/// deadline overrun is bounded by a few accesses' work (microseconds),
/// large enough that `Instant::now` never shows up in a profile.
pub const BUDGET_CHECK_EVERY: usize = 16;

/// A wall-clock execution budget for one query.
///
/// Construct with [`QueryBudget::unlimited`] (the default; identical
/// behaviour to the plain entry points), [`QueryBudget::with_deadline`],
/// or [`QueryBudget::from_timeout`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryBudget {
    deadline: Option<Instant>,
}

impl QueryBudget {
    /// A budget that never expires.
    pub const fn unlimited() -> Self {
        Self { deadline: None }
    }

    /// A budget expiring at `deadline`.
    pub const fn with_deadline(deadline: Instant) -> Self {
        Self {
            deadline: Some(deadline),
        }
    }

    /// A budget expiring `timeout` from now.
    pub fn from_timeout(timeout: Duration) -> Self {
        Self {
            deadline: Instant::now().checked_add(timeout),
        }
    }

    /// The absolute deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Whether this budget can never expire.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
    }

    /// Whether the deadline has passed. Unlimited budgets never expire.
    #[inline]
    pub fn expired(&self) -> bool {
        match self.deadline {
            None => false,
            Some(d) => Instant::now() >= d,
        }
    }

    /// Time left until expiry: `None` for unlimited budgets, zero once
    /// expired.
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_expires() {
        let b = QueryBudget::unlimited();
        assert!(b.is_unlimited());
        assert!(!b.expired());
        assert_eq!(b.remaining(), None);
        assert_eq!(b, QueryBudget::default());
    }

    #[test]
    fn past_deadline_is_expired() {
        let b = QueryBudget::with_deadline(Instant::now() - Duration::from_secs(1));
        assert!(!b.is_unlimited());
        assert!(b.expired());
        assert_eq!(b.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn future_deadline_is_not_expired() {
        let b = QueryBudget::from_timeout(Duration::from_secs(3600));
        assert!(!b.expired());
        assert!(b.remaining().is_some_and(|r| r > Duration::from_secs(3000)));
    }
}
