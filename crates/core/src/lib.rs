//! Core algorithms of *"Identifying and Describing Streets of Interest"*
//! (Skoutas, Sacharidis, Stamatoukos — EDBT 2016).
//!
//! Two complementary problems over a road network, a POI set, and a photo
//! set:
//!
//! 1. **Identification** ([`soi`]): the k-SOI query `q = ⟨Ψ, k, ε⟩` returns
//!    the `k` streets with the highest interest — the maximum mass density
//!    `int(ℓ) = mass(ℓ)/(2ε·len(ℓ) + πε²)` over their segments. The
//!    [`soi::run_soi`] algorithm evaluates it top-k style over the
//!    spatio-textual indexes of [`soi_index`], with a seen lower bound and
//!    an unseen upper bound (paper Algorithm 1); [`soi::run_baseline`] is
//!    the grid-scan baseline BL the paper compares against, and
//!    [`soi::brute_force`] an index-free reference for testing.
//!
//! 2. **Description** ([`describe`]): choose `k` photos of a street's photo
//!    set `Rs` that maximise `F = (1−λ)·rel + λ·div` with spatio-textual
//!    relevance and diversity measures (Definitions 4–7). The greedy `mmr`
//!    baseline is [`describe::greedy_select`]; [`describe::st_rel_div()`](describe::st_rel_div())
//!    accelerates it with per-grid-cell bounds (paper Algorithm 2,
//!    Eqs. 11–18); [`describe::MethodSpec`] enumerates the nine method
//!    variants of the paper's Table 3.
//!
//! The [`route`] module implements the paper's future-work suggestion of
//! sketching an exploration route over the discovered streets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code must surface failures as `SoiError`, never panic: unwrap and
// expect are compile errors outside of test code.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod budget;
pub mod describe;
pub mod obs;
pub mod route;
pub mod soi;

pub use budget::QueryBudget;
