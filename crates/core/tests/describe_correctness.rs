//! Randomised correctness tests for the diversification stack.
//!
//! Verifies on random street/photo configurations that:
//! 1. the per-cell bounds (Eqs. 11–18) sandwich the exact measures;
//! 2. ST_Rel+Div (Algorithm 2) returns *exactly* the greedy baseline's
//!    selection for every (k, λ, w) combination;
//! 3. the greedy objective never exceeds the exhaustive optimum, and
//!    matches it for λ = 0.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use soi_common::KeywordId;
use soi_core::describe::{
    cell_mmr_bounds, exact_select, greedy_select, mmr, objective, st_rel_div, ContextBuilder,
    DescribeParams, PhiSource, StreetContext,
};
use soi_data::PhotoCollection;
use soi_geo::Point;
use soi_index::PhotoGrid;
use soi_network::RoadNetwork;
use soi_text::KeywordSet;

const NUM_TAGS: u32 = 8;

fn random_street_scene(
    rng: &mut StdRng,
    n_photos: usize,
) -> (RoadNetwork, PhotoCollection, StreetContext) {
    let mut b = RoadNetwork::builder();
    // An L-shaped street.
    b.add_street_from_points(
        "Main",
        &[
            Point::new(0.0, 0.0),
            Point::new(6.0, 0.0),
            Point::new(6.0, 4.0),
        ],
    );
    let network = b.build().unwrap();

    let mut photos = PhotoCollection::new();
    for _ in 0..n_photos {
        // Mostly near the street, some scattered.
        let (x, y) = if rng.random_range(0..4) > 0 {
            let t: f64 = rng.random_range(0.0..1.0);
            let (bx, by) = if t < 0.6 {
                (t / 0.6 * 6.0, 0.0)
            } else {
                (6.0, (t - 0.6) / 0.4 * 4.0)
            };
            (
                bx + rng.random_range(-0.4..0.4),
                by + rng.random_range(-0.4..0.4),
            )
        } else {
            (rng.random_range(-1.0..7.0), rng.random_range(-1.0..5.0))
        };
        let n_tags = rng.random_range(0..4usize);
        let tags =
            KeywordSet::from_ids((0..n_tags).map(|_| KeywordId(rng.random_range(0..NUM_TAGS))));
        photos.add(Point::new(x, y), tags);
    }
    let grid = PhotoGrid::build(&network, &photos, 0.5);
    let ctx = ContextBuilder {
        network: &network,
        photos: &photos,
        photo_grid: &grid,
        pois: None,
        eps: 0.45,
        rho: 0.3,
        phi_source: PhiSource::Photos,
    }
    .build(soi_common::StreetId(0))
    .unwrap();
    (network, photos, ctx)
}

#[test]
fn cell_mmr_bounds_sandwich_exact_mmr() {
    for seed in 0..10u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let (_net, photos, ctx) = random_street_scene(&mut rng, 60);
        if ctx.members.len() < 3 {
            continue;
        }
        let selected = vec![ctx.members[0], ctx.members[ctx.members.len() / 2]];
        for &(lambda, w) in &[(0.0, 0.5), (1.0, 0.5), (0.5, 0.0), (0.5, 1.0), (0.5, 0.5)] {
            let params = DescribeParams::new(4, lambda, w).unwrap();
            for &cell in ctx.index.occupied() {
                let (lo, hi) = cell_mmr_bounds(&ctx, &photos, &params, cell, &selected);
                assert!(lo <= hi + 1e-12);
                for &r in &ctx.index.cell(cell).unwrap().photos {
                    let exact = mmr(&ctx, &photos, &params, r, &selected);
                    assert!(
                        lo <= exact + 1e-9 && exact <= hi + 1e-9,
                        "seed {seed} lambda={lambda} w={w} cell={cell:?} r={r}: \
                         {lo} <= {exact} <= {hi} violated"
                    );
                }
            }
        }
    }
}

#[test]
fn st_rel_div_equals_greedy_baseline() {
    for seed in 0..12u64 {
        let mut rng = StdRng::seed_from_u64(100 + seed);
        let (_net, photos, ctx) = random_street_scene(&mut rng, 80);
        if ctx.members.is_empty() {
            continue;
        }
        for &(k, lambda, w) in &[
            (1usize, 0.5, 0.5),
            (3, 0.0, 0.5),
            (3, 1.0, 0.5),
            (5, 0.5, 0.0),
            (5, 0.5, 1.0),
            (7, 0.3, 0.7),
            (10, 0.5, 0.5),
        ] {
            let params = DescribeParams::new(k, lambda, w).unwrap();
            let fast = st_rel_div(&ctx, &photos, &params).unwrap();
            let slow = greedy_select(&ctx, &photos, &params);
            assert_eq!(
                fast.selected, slow.selected,
                "seed {seed} k={k} lambda={lambda} w={w}: selections differ\n\
                 fast objective {} slow objective {}",
                fast.objective, slow.objective
            );
        }
    }
}

#[test]
fn st_rel_div_never_evaluates_more_photos() {
    let mut total_fast = 0usize;
    let mut total_slow = 0usize;
    for seed in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(300 + seed);
        let (_net, photos, ctx) = random_street_scene(&mut rng, 120);
        if ctx.members.len() < 5 {
            continue;
        }
        let params = DescribeParams::new(5, 0.5, 0.5).unwrap();
        let fast = st_rel_div(&ctx, &photos, &params).unwrap();
        let slow = greedy_select(&ctx, &photos, &params);
        assert!(fast.stats.photos_evaluated <= slow.stats.photos_evaluated);
        total_fast += fast.stats.photos_evaluated;
        total_slow += slow.stats.photos_evaluated;
    }
    // On aggregate the pruning must actually bite.
    assert!(
        total_fast < total_slow,
        "pruning ineffective: {total_fast} vs {total_slow}"
    );
}

#[test]
fn greedy_objective_bounded_by_exhaustive_optimum() {
    for seed in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(200 + seed);
        let (_net, photos, ctx) = random_street_scene(&mut rng, 18);
        if ctx.members.len() < 4 || ctx.members.len() > 16 {
            continue;
        }
        for &(k, lambda) in &[(2usize, 0.5), (3, 0.0), (3, 0.8)] {
            let params = DescribeParams::new(k, lambda, 0.5).unwrap();
            let (_, exact_val) = exact_select(&ctx, &photos, &params).unwrap();
            let greedy = greedy_select(&ctx, &photos, &params);
            assert!(
                exact_val >= greedy.objective - 1e-9,
                "seed {seed} k={k} lambda={lambda}: greedy beats optimum?!"
            );
            if lambda == 0.0 {
                assert!(
                    (exact_val - greedy.objective).abs() < 1e-9,
                    "seed {seed}: lambda=0 greedy must be optimal"
                );
            }
        }
    }
}

#[test]
fn objective_recomputes_consistently() {
    let mut rng = StdRng::seed_from_u64(999);
    let (_net, photos, ctx) = random_street_scene(&mut rng, 50);
    let params = DescribeParams::new(6, 0.4, 0.6).unwrap();
    let out = st_rel_div(&ctx, &photos, &params).unwrap();
    let f = objective(&ctx, &photos, &params, &out.selected);
    assert!((out.objective - f).abs() < 1e-12);
}

#[test]
fn describe_explain_rounds_account_for_all_work() {
    use soi_core::describe::{st_rel_div_explained, DescribeExplain, DescribeScratch};

    for seed in 0..5u64 {
        let mut rng = StdRng::seed_from_u64(4000 + seed);
        let (_network, photos, ctx) = random_street_scene(&mut rng, 60);
        let params = DescribeParams::new(5, 0.5, 0.5).unwrap();

        let plain = st_rel_div(&ctx, &photos, &params).unwrap();
        let mut explain = DescribeExplain::default();
        let explained = st_rel_div_explained(
            &ctx,
            &photos,
            &params,
            &mut DescribeScratch::default(),
            Some(&mut explain),
        )
        .unwrap();

        // Collecting an explain must not change the selection.
        assert_eq!(plain.selected, explained.selected, "seed {seed}");
        assert_eq!(plain.objective, explained.objective, "seed {seed}");

        // One recorded round per selected photo (plus at most one final
        // round that found no candidate), in order, and the per-round
        // counters sum to the run totals.
        assert!(explain.rounds.len() >= explained.selected.len());
        assert!(explain.rounds.len() <= explained.selected.len() + 1);
        for (i, (round, &photo)) in explain
            .rounds
            .iter()
            .zip(explained.selected.iter())
            .enumerate()
        {
            assert_eq!(round.round, i + 1, "seed {seed}");
            assert_eq!(round.selected, Some(photo), "seed {seed}");
        }
        let scored: usize = explain.rounds.iter().map(|r| r.photos_scored).sum();
        assert_eq!(scored, explained.stats.photos_evaluated, "seed {seed}");
        let pruned: usize = explain
            .rounds
            .iter()
            .map(|r| r.cells_pruned_filtering)
            .sum();
        assert_eq!(
            pruned, explained.stats.cells_pruned_filtering,
            "seed {seed}"
        );

        // The artifact parses and its rounds match the collector.
        let doc = soi_obs::json::parse(&explain.to_json()).unwrap();
        let rounds = doc.get("rounds").unwrap().as_arr().unwrap();
        assert_eq!(rounds.len(), explain.rounds.len());
    }
}
