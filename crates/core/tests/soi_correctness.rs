//! Randomised correctness tests for the SOI algorithm.
//!
//! The paper's guarantee (Problem 1): a k-SOI answer is any k-set such that
//! every non-returned street has interest ≤ the minimum returned interest.
//! We verify:
//!
//! 1. the BL baseline equals the index-free brute force exactly;
//! 2. the SOI algorithm's returned interests are exact, its result is a
//!    valid top-k set, and it has exactly `min(k, #positive streets)`
//!    entries — under every access strategy and several check intervals.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use soi_common::KeywordId;
use soi_core::soi::{
    brute_force, exact_street_interests, run_baseline, run_soi, AccessStrategy, SoiConfig,
    SoiQuery, StreetAggregate,
};
use soi_data::PoiCollection;
use soi_geo::Point;
use soi_index::PoiIndex;
use soi_network::RoadNetwork;
use soi_text::KeywordSet;

const NUM_KEYWORDS: u32 = 6;

/// Builds a jittered grid road network with horizontal and vertical streets.
fn random_city(rng: &mut StdRng, rows: usize, cols: usize) -> RoadNetwork {
    let mut b = RoadNetwork::builder();
    let spacing = 1.0;
    let jitter = 0.15;
    // Node positions (grid with jitter).
    let mut pos = vec![vec![Point::ORIGIN; cols]; rows];
    for (r, row) in pos.iter_mut().enumerate() {
        for (c, p) in row.iter_mut().enumerate() {
            *p = Point::new(
                c as f64 * spacing + rng.random_range(-jitter..jitter),
                r as f64 * spacing + rng.random_range(-jitter..jitter),
            );
        }
    }
    for (r, row) in pos.iter().enumerate() {
        b.add_street_from_points(format!("h{r}"), row);
    }
    for c in 0..cols {
        let col: Vec<Point> = pos.iter().map(|row| row[c]).collect();
        b.add_street_from_points(format!("v{c}"), &col);
    }
    b.build().unwrap()
}

fn random_pois(rng: &mut StdRng, n: usize, extent: f64) -> PoiCollection {
    let mut pois = PoiCollection::new();
    for _ in 0..n {
        let p = Point::new(
            rng.random_range(-0.5..extent + 0.5),
            rng.random_range(-0.5..extent + 0.5),
        );
        let n_kw = rng.random_range(0..3usize);
        let kws =
            KeywordSet::from_ids((0..n_kw).map(|_| KeywordId(rng.random_range(0..NUM_KEYWORDS))));
        if rng.random_range(0..10) == 0 {
            pois.add_weighted(p, kws, rng.random_range(0.5..3.0));
        } else {
            pois.add(p, kws);
        }
    }
    pois
}

fn random_query(rng: &mut StdRng) -> SoiQuery {
    let n_kw = rng.random_range(1..4usize);
    let kws = KeywordSet::from_ids((0..n_kw).map(|_| KeywordId(rng.random_range(0..NUM_KEYWORDS))));
    let k = rng.random_range(1..6usize);
    let eps = rng.random_range(0.1..0.6f64);
    SoiQuery::new(kws, k, eps).unwrap()
}

#[test]
fn baseline_matches_brute_force() {
    for seed in 0..15u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let network = random_city(&mut rng, 5, 5);
        let pois = random_pois(&mut rng, 120, 4.0);
        let index = PoiIndex::build(&network, &pois, 0.7);
        let query = random_query(&mut rng);

        let bl = run_baseline(&network, &pois, &index, &query, StreetAggregate::Max);
        let bf = brute_force(&network, &pois, &query);

        assert_eq!(
            bl.street_ids(),
            bf.street_ids(),
            "seed {seed}: baseline vs brute force street sets differ"
        );
        for (a, b) in bl.results.iter().zip(bf.results.iter()) {
            assert!(
                (a.interest - b.interest).abs() < 1e-9,
                "seed {seed}: interest mismatch for {:?}",
                a.street
            );
        }
    }
}

#[test]
fn soi_returns_valid_topk_under_all_strategies() {
    for seed in 0..15u64 {
        let mut rng = StdRng::seed_from_u64(1000 + seed);
        let network = random_city(&mut rng, 6, 6);
        let pois = random_pois(&mut rng, 200, 5.0);
        let index = PoiIndex::build(&network, &pois, 0.5);
        let query = random_query(&mut rng);
        let exact = exact_street_interests(&network, &pois, &query);
        let positive = exact.values().filter(|&&v| v > 0.0).count();
        let expected_len = query.k.min(positive);

        for strategy in AccessStrategy::all() {
            for paper_bounds_only in [false, true] {
                let config = SoiConfig {
                    strategy,
                    paper_bounds_only,
                };
                let out = run_soi(&network, &pois, &index, &query, &config).unwrap();

                assert_eq!(
                    out.results.len(),
                    expected_len,
                    "seed {seed} strategy {}: wrong result size",
                    strategy.name()
                );
                // Returned interests are exact.
                for r in &out.results {
                    let want = exact[&r.street];
                    assert!(
                        (r.interest - want).abs() < 1e-9,
                        "seed {seed} strategy {}: street {:?} interest {} != exact {}",
                        strategy.name(),
                        r.street,
                        r.interest,
                        want
                    );
                }
                // Valid top-k: no excluded street beats the worst returned.
                let min_returned = out.min_interest();
                let returned: Vec<_> = out.street_ids();
                let max_excluded = exact
                    .iter()
                    .filter(|(id, _)| !returned.contains(id))
                    .map(|(_, &v)| v)
                    .fold(0.0f64, f64::max);
                assert!(
                    max_excluded <= min_returned + 1e-9,
                    "seed {seed} strategy {}: excluded street with \
                 interest {max_excluded} beats returned minimum {min_returned}",
                    strategy.name()
                );
            }
        }
    }
}

#[test]
fn soi_matches_baseline_when_no_ties_at_boundary() {
    // With continuous POI positions, exact score ties across streets are
    // essentially impossible; SOI and BL must return identical rankings.
    for seed in 0..15u64 {
        let mut rng = StdRng::seed_from_u64(2000 + seed);
        let network = random_city(&mut rng, 5, 7);
        let pois = random_pois(&mut rng, 150, 5.0);
        let index = PoiIndex::build(&network, &pois, 0.6);
        let query = random_query(&mut rng);
        let exact = exact_street_interests(&network, &pois, &query);

        // Skip the rare tie at the k-th boundary.
        let mut vals: Vec<f64> = exact.values().copied().filter(|&v| v > 0.0).collect();
        vals.sort_by(|a, b| b.total_cmp(a));
        if vals.len() > query.k && (vals[query.k - 1] - vals[query.k]).abs() < 1e-12 {
            continue;
        }

        let soi = run_soi(&network, &pois, &index, &query, &SoiConfig::default()).unwrap();
        let bl = run_baseline(&network, &pois, &index, &query, StreetAggregate::Max);
        assert_eq!(soi.street_ids(), bl.street_ids(), "seed {seed}");
    }
}

#[test]
fn soi_prunes_work_on_skewed_data() {
    // Hotspot data: most relevant POIs on one street. SOI should terminate
    // without finalising every segment.
    let mut rng = StdRng::seed_from_u64(42);
    let network = random_city(&mut rng, 10, 10);
    let mut pois = PoiCollection::new();
    let shop = KeywordId(0);
    // Dense hotspot along the first horizontal street (y ~ 0).
    for i in 0..300 {
        pois.add(
            Point::new(i as f64 * 0.03, rng.random_range(-0.1..0.1)),
            KeywordSet::from_ids([shop]),
        );
    }
    // Sparse background.
    for _ in 0..300 {
        pois.add(
            Point::new(rng.random_range(0.0..9.0), rng.random_range(0.0..9.0)),
            KeywordSet::from_ids([shop]),
        );
    }
    let index = PoiIndex::build(&network, &pois, 0.4);
    let query = SoiQuery::new(KeywordSet::from_ids([shop]), 5, 0.3).unwrap();
    let out = run_soi(&network, &pois, &index, &query, &SoiConfig::default()).unwrap();

    assert_eq!(out.results.len(), 5);
    let total_segments = network.num_segments();
    assert!(
        out.stats.segments_finalized() < total_segments,
        "no pruning: finalized {} of {}",
        out.stats.segments_finalized(),
        total_segments
    );
    // And it is still exact.
    let exact = exact_street_interests(&network, &pois, &query);
    for r in &out.results {
        assert!((r.interest - exact[&r.street]).abs() < 1e-9);
    }
}

#[test]
fn weighted_pois_scale_interest() {
    let mut b = RoadNetwork::builder();
    b.add_street_from_points("A", &[Point::new(0.0, 0.0), Point::new(1.0, 0.0)]);
    b.add_street_from_points("B", &[Point::new(0.0, 5.0), Point::new(1.0, 5.0)]);
    let network = b.build().unwrap();
    let kw = KeywordId(0);
    let mut pois = PoiCollection::new();
    // One heavy POI near street B outweighs two unit POIs near street A.
    pois.add(Point::new(0.5, 0.1), KeywordSet::from_ids([kw]));
    pois.add(Point::new(0.6, 0.1), KeywordSet::from_ids([kw]));
    pois.add_weighted(Point::new(0.5, 5.1), KeywordSet::from_ids([kw]), 5.0);
    let index = PoiIndex::build(&network, &pois, 0.5);
    let query = SoiQuery::new(KeywordSet::from_ids([kw]), 1, 0.2).unwrap();

    let out = run_soi(&network, &pois, &index, &query, &SoiConfig::default()).unwrap();
    assert_eq!(out.results.len(), 1);
    assert_eq!(network.street(out.results[0].street).name, "B");
    assert_eq!(out.results[0].best_segment_mass, 5.0);
}

#[test]
fn huge_eps_makes_every_street_relevant_and_stays_exact() {
    // eps spanning the whole city: every relevant POI is near every segment;
    // bounds degenerate but correctness must hold.
    let mut rng = StdRng::seed_from_u64(77);
    let network = random_city(&mut rng, 4, 4);
    let pois = random_pois(&mut rng, 60, 3.0);
    let index = PoiIndex::build(&network, &pois, 0.5);
    let query = SoiQuery::new(KeywordSet::from_ids([KeywordId(0), KeywordId(1)]), 5, 50.0).unwrap();
    let exact = exact_street_interests(&network, &pois, &query);
    let out = run_soi(&network, &pois, &index, &query, &SoiConfig::default()).unwrap();
    for r in &out.results {
        assert!((r.interest - exact[&r.street]).abs() < 1e-9);
    }
    let bl = run_baseline(&network, &pois, &index, &query, StreetAggregate::Max);
    assert_eq!(out.street_ids(), bl.street_ids());
}

#[test]
fn k_exceeding_street_count_returns_all_positive_streets() {
    let mut rng = StdRng::seed_from_u64(78);
    let network = random_city(&mut rng, 3, 3);
    let pois = random_pois(&mut rng, 80, 2.0);
    let index = PoiIndex::build(&network, &pois, 0.5);
    let query = SoiQuery::new(
        KeywordSet::from_ids([KeywordId(0), KeywordId(2)]),
        10_000,
        0.4,
    )
    .unwrap();
    let exact = exact_street_interests(&network, &pois, &query);
    let positive = exact.values().filter(|&&v| v > 0.0).count();
    let out = run_soi(&network, &pois, &index, &query, &SoiConfig::default()).unwrap();
    assert_eq!(out.results.len(), positive);
    // Ranked non-increasing.
    for pair in out.results.windows(2) {
        assert!(pair[0].interest >= pair[1].interest);
    }
}

#[test]
fn tiny_eps_still_counts_on_street_pois() {
    // POIs exactly on segments are always within any positive eps.
    let mut b = RoadNetwork::builder();
    b.add_street_from_points("exact", &[Point::new(0.0, 0.0), Point::new(1.0, 0.0)]);
    let network = b.build().unwrap();
    let mut pois = PoiCollection::new();
    pois.add(Point::new(0.5, 0.0), KeywordSet::from_ids([KeywordId(0)]));
    let index = PoiIndex::build(&network, &pois, 0.5);
    let query = SoiQuery::new(KeywordSet::from_ids([KeywordId(0)]), 1, 1e-9).unwrap();
    let out = run_soi(&network, &pois, &index, &query, &SoiConfig::default()).unwrap();
    assert_eq!(out.results.len(), 1);
    assert_eq!(out.results[0].best_segment_mass, 1.0);
}

#[test]
fn empty_query_returns_nothing() {
    let mut rng = StdRng::seed_from_u64(7);
    let network = random_city(&mut rng, 4, 4);
    let pois = random_pois(&mut rng, 50, 3.0);
    let index = PoiIndex::build(&network, &pois, 0.5);
    // Keyword id far outside the used range.
    let query = SoiQuery::new(KeywordSet::from_ids([KeywordId(999)]), 3, 0.3).unwrap();
    let out = run_soi(&network, &pois, &index, &query, &SoiConfig::default()).unwrap();
    assert!(out.results.is_empty());
    let bl = run_baseline(&network, &pois, &index, &query, StreetAggregate::Max);
    assert!(bl.results.is_empty());
}

#[test]
fn explain_trajectory_matches_termination_and_results() {
    use soi_core::soi::{run_soi_explained, SoiExplain, SoiScratch};

    for seed in 0..5u64 {
        let mut rng = StdRng::seed_from_u64(3000 + seed);
        let network = random_city(&mut rng, 6, 6);
        let pois = random_pois(&mut rng, 200, 5.0);
        let index = PoiIndex::build(&network, &pois, 0.5);
        let query = random_query(&mut rng);
        let config = SoiConfig::default();

        let plain = run_soi(&network, &pois, &index, &query, &config).unwrap();
        let mut explain = SoiExplain::default();
        let explained = run_soi_explained(
            &network,
            &pois,
            &index,
            &query,
            &config,
            &mut SoiScratch::default(),
            Some(&mut explain),
        )
        .unwrap();

        // Collecting an explain must not change the answer.
        assert_eq!(plain.street_ids(), explained.street_ids(), "seed {seed}");

        // The trajectory is bounded, in access order, and ends in the
        // termination row, whose bounds equal the run's actual termination.
        assert!(!explain.rows.is_empty(), "seed {seed}: no rows");
        assert!(explain.rows.len() <= explain.max_rows());
        assert!(explain.rows.windows(2).all(|w| w[0].access <= w[1].access));
        let last = explain.rows.last().unwrap();
        assert!(last.source.is_none(), "seed {seed}: final row not terminal");
        assert!(
            last.ub <= last.lbk,
            "seed {seed}: final row UB {} > LBk {}",
            last.ub,
            last.lbk
        );
        let term = explain.termination.expect("termination recorded");
        assert_eq!(term.ub, explained.stats.termination_ub, "seed {seed}");
        assert_eq!(term.lbk, explained.stats.termination_lb, "seed {seed}");
        assert_eq!(term.accesses, explained.stats.accesses, "seed {seed}");
        assert_eq!(last.ub, term.ub, "seed {seed}");
        assert_eq!(last.lbk, term.lbk, "seed {seed}");

        // Construction metadata and the stats copy are present.
        assert_eq!(explain.k, query.k);
        assert_eq!(explain.lists.sl2, network.num_segments());
        assert_eq!(
            explain.stats.as_ref().map(|s| s.accesses),
            Some(explained.stats.accesses)
        );

        // The artifact is valid JSON with a converged termination object.
        let doc = soi_obs::json::parse(&explain.to_json()).unwrap();
        let t = doc.get("termination").unwrap();
        assert_eq!(t.get("converged"), Some(&soi_obs::json::Json::Bool(true)));
    }
}
