//! Correctness tests for deadline-budgeted (anytime) query evaluation.
//!
//! The serving layer's degradation contract rests on two properties:
//!
//! 1. **Unlimited is free and exact** — `run_soi_budgeted` /
//!    `st_rel_div_budgeted` with [`QueryBudget::unlimited`] are
//!    bit-identical to the plain entry points.
//! 2. **Expiry is sound** — a deadline hit returns `partial: true` with a
//!    valid *lower-bound* answer: every returned k-SOI score is at least
//!    the recorded termination LBk and at most the street's exact
//!    interest; Alg. 2's partial selection is a prefix of the full greedy
//!    selection.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use soi_common::KeywordId;
use soi_core::describe::{
    st_rel_div, st_rel_div_budgeted, ContextBuilder, DescribeParams, DescribeScratch, PhiSource,
    StreetContext,
};
use soi_core::soi::{
    exact_street_interests, run_soi, run_soi_budgeted, SoiConfig, SoiQuery, SoiScratch,
};
use soi_core::QueryBudget;
use soi_data::{PhotoCollection, PoiCollection};
use soi_geo::Point;
use soi_index::{PhotoGrid, PoiIndex};
use soi_network::RoadNetwork;
use soi_text::KeywordSet;
use std::time::{Duration, Instant};

const NUM_KEYWORDS: u32 = 6;

fn random_city(rng: &mut StdRng, rows: usize, cols: usize) -> RoadNetwork {
    let mut b = RoadNetwork::builder();
    let spacing = 1.0;
    let jitter = 0.15;
    let mut pos = vec![vec![Point::ORIGIN; cols]; rows];
    for (r, row) in pos.iter_mut().enumerate() {
        for (c, p) in row.iter_mut().enumerate() {
            *p = Point::new(
                c as f64 * spacing + rng.random_range(-jitter..jitter),
                r as f64 * spacing + rng.random_range(-jitter..jitter),
            );
        }
    }
    for (r, row) in pos.iter().enumerate() {
        b.add_street_from_points(format!("h{r}"), row);
    }
    for c in 0..cols {
        let col: Vec<Point> = pos.iter().map(|row| row[c]).collect();
        b.add_street_from_points(format!("v{c}"), &col);
    }
    b.build().unwrap()
}

fn random_pois(rng: &mut StdRng, n: usize, extent: f64) -> PoiCollection {
    let mut pois = PoiCollection::new();
    for _ in 0..n {
        let p = Point::new(
            rng.random_range(-0.5..extent + 0.5),
            rng.random_range(-0.5..extent + 0.5),
        );
        let n_kw = rng.random_range(0..3usize);
        let kws =
            KeywordSet::from_ids((0..n_kw).map(|_| KeywordId(rng.random_range(0..NUM_KEYWORDS))));
        pois.add(p, kws);
    }
    pois
}

fn random_query(rng: &mut StdRng) -> SoiQuery {
    let n_kw = rng.random_range(1..4usize);
    let kws = KeywordSet::from_ids((0..n_kw).map(|_| KeywordId(rng.random_range(0..NUM_KEYWORDS))));
    let k = rng.random_range(1..6usize);
    let eps = rng.random_range(0.1..0.6f64);
    SoiQuery::new(kws, k, eps).unwrap()
}

#[test]
fn unlimited_budget_is_bit_identical_to_plain_path() {
    for seed in 0..10u64 {
        let mut rng = StdRng::seed_from_u64(9000 + seed);
        let network = random_city(&mut rng, 6, 6);
        let pois = random_pois(&mut rng, 200, 5.0);
        let index = PoiIndex::build(&network, &pois, 0.5);
        let query = random_query(&mut rng);
        let config = SoiConfig::default();

        let plain = run_soi(&network, &pois, &index, &query, &config).unwrap();
        let budgeted = run_soi_budgeted(
            &network,
            &pois,
            &index,
            &query,
            &config,
            &mut SoiScratch::default(),
            QueryBudget::unlimited(),
        )
        .unwrap();

        assert!(
            !budgeted.partial,
            "seed {seed}: unlimited run flagged partial"
        );
        assert!(!budgeted.stats.deadline_expired);
        assert_eq!(plain.results.len(), budgeted.results.len(), "seed {seed}");
        for (a, b) in plain.results.iter().zip(&budgeted.results) {
            assert_eq!(a.street, b.street, "seed {seed}");
            assert_eq!(
                a.interest.to_bits(),
                b.interest.to_bits(),
                "seed {seed}: interest differs in bits"
            );
            assert_eq!(a.best_segment, b.best_segment, "seed {seed}");
        }
        assert_eq!(plain.stats.accesses, budgeted.stats.accesses, "seed {seed}");
        assert_eq!(
            plain.stats.termination_lb.to_bits(),
            budgeted.stats.termination_lb.to_bits(),
            "seed {seed}"
        );
    }
}

/// Every budgeted run — whatever point it stopped at — must return a sound
/// lower-bound answer: scores between the recorded LBk and the exact
/// street interest, ranked non-increasing, never more than k entries.
fn assert_sound_outcome(
    seed: u64,
    timeout_us: u64,
    outcome: &soi_core::soi::SoiOutcome,
    exact: &soi_common::FxHashMap<soi_common::StreetId, f64>,
    k: usize,
) {
    assert_eq!(outcome.partial, outcome.stats.deadline_expired);
    assert!(outcome.results.len() <= k);
    for pair in outcome.results.windows(2) {
        assert!(
            pair[0].interest >= pair[1].interest,
            "seed {seed} timeout {timeout_us}us: ranking not sorted"
        );
    }
    let lbk = outcome.stats.termination_lb;
    for r in &outcome.results {
        assert!(
            r.interest >= lbk,
            "seed {seed} timeout {timeout_us}us: returned score {} below recorded LBk {lbk}",
            r.interest
        );
        let exact_interest = exact.get(&r.street).copied().unwrap_or(0.0);
        assert!(
            r.interest <= exact_interest + 1e-9,
            "seed {seed} timeout {timeout_us}us: partial score {} exceeds exact interest \
             {exact_interest} for {:?} — not a lower bound",
            r.interest,
            r.street
        );
    }
}

#[test]
fn expired_deadlines_return_sound_partial_lower_bounds() {
    let mut scratch = SoiScratch::default();
    for seed in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(9100 + seed);
        let network = random_city(&mut rng, 8, 8);
        let pois = random_pois(&mut rng, 600, 7.0);
        let index = PoiIndex::build(&network, &pois, 0.5);
        let query = random_query(&mut rng);
        let exact = exact_street_interests(&network, &pois, &query);
        let config = SoiConfig::default();

        // A pre-expired deadline: the access loop never runs, yet the
        // outcome is still a well-formed (empty or LB-backed) answer.
        let pre_expired = run_soi_budgeted(
            &network,
            &pois,
            &index,
            &query,
            &config,
            &mut scratch,
            QueryBudget::with_deadline(Instant::now() - Duration::from_secs(1)),
        )
        .unwrap();
        assert!(pre_expired.partial, "seed {seed}: pre-expired not partial");
        assert!(
            pre_expired.results.is_empty(),
            "seed {seed}: work done after expiry"
        );
        assert_sound_outcome(seed, 0, &pre_expired, &exact, query.k);

        // Tiny-but-positive timeouts: wherever the run lands (expired
        // mid-flight or completed), the answer must be sound.
        let mut saw_partial = false;
        for timeout_us in [1u64, 10, 50, 200, 1000] {
            let outcome = run_soi_budgeted(
                &network,
                &pois,
                &index,
                &query,
                &config,
                &mut scratch,
                QueryBudget::from_timeout(Duration::from_micros(timeout_us)),
            )
            .unwrap();
            saw_partial |= outcome.partial;
            assert_sound_outcome(seed, timeout_us, &outcome, &exact, query.k);
            if !outcome.partial {
                // A completed run under a budget is the exact answer.
                for r in &outcome.results {
                    let want = exact.get(&r.street).copied().unwrap_or(0.0);
                    assert!(
                        (r.interest - want).abs() < 1e-9,
                        "seed {seed}: completed budgeted run not exact"
                    );
                }
            }
        }
        // With a 1µs budget on a 600-POI city at least one run must expire,
        // or the budget plumbing is dead code.
        assert!(saw_partial, "seed {seed}: no timeout ever expired");
    }
}

fn photo_scene(rng: &mut StdRng, n_photos: usize) -> (PhotoCollection, StreetContext) {
    let mut b = RoadNetwork::builder();
    b.add_street_from_points(
        "Main",
        &[
            Point::new(0.0, 0.0),
            Point::new(6.0, 0.0),
            Point::new(6.0, 4.0),
        ],
    );
    let network = b.build().unwrap();
    let mut photos = PhotoCollection::new();
    for _ in 0..n_photos {
        let t: f64 = rng.random_range(0.0..1.0);
        let (bx, by) = if t < 0.6 {
            (t / 0.6 * 6.0, 0.0)
        } else {
            (6.0, (t - 0.6) / 0.4 * 4.0)
        };
        let p = Point::new(
            bx + rng.random_range(-0.4..0.4),
            by + rng.random_range(-0.4..0.4),
        );
        let n_tags = rng.random_range(0..4usize);
        let tags = KeywordSet::from_ids((0..n_tags).map(|_| KeywordId(rng.random_range(0..8))));
        photos.add(p, tags);
    }
    let grid = PhotoGrid::build(&network, &photos, 0.5);
    let ctx = ContextBuilder {
        network: &network,
        photos: &photos,
        photo_grid: &grid,
        pois: None,
        eps: 0.45,
        rho: 0.3,
        phi_source: PhiSource::Photos,
    }
    .build(soi_common::StreetId(0))
    .unwrap();
    (photos, ctx)
}

#[test]
fn describe_unlimited_budget_matches_plain_and_expiry_is_a_greedy_prefix() {
    let mut scratch = DescribeScratch::default();
    for seed in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(9200 + seed);
        let (photos, ctx) = photo_scene(&mut rng, 120);
        let params = DescribeParams::new(6, 0.5, 0.5).unwrap();

        let plain = st_rel_div(&ctx, &photos, &params).unwrap();
        let unlimited = st_rel_div_budgeted(
            &ctx,
            &photos,
            &params,
            &mut scratch,
            QueryBudget::unlimited(),
        )
        .unwrap();
        assert!(!unlimited.partial, "seed {seed}");
        assert_eq!(plain.selected, unlimited.selected, "seed {seed}");
        assert_eq!(
            plain.objective.to_bits(),
            unlimited.objective.to_bits(),
            "seed {seed}: objective differs in bits"
        );

        // Pre-expired: empty prefix, flagged partial.
        let pre_expired = st_rel_div_budgeted(
            &ctx,
            &photos,
            &params,
            &mut scratch,
            QueryBudget::with_deadline(Instant::now() - Duration::from_secs(1)),
        )
        .unwrap();
        assert!(pre_expired.partial, "seed {seed}");
        assert!(pre_expired.selected.is_empty(), "seed {seed}");

        // Any mid-run expiry yields a prefix of the full greedy selection
        // (each greedy round's selection is exact for its length).
        for timeout_us in [1u64, 20, 100, 500] {
            let outcome = st_rel_div_budgeted(
                &ctx,
                &photos,
                &params,
                &mut scratch,
                QueryBudget::from_timeout(Duration::from_micros(timeout_us)),
            )
            .unwrap();
            assert_eq!(outcome.partial, outcome.stats.deadline_expired);
            assert!(
                outcome.selected.len() <= plain.selected.len(),
                "seed {seed}: partial longer than full selection"
            );
            assert_eq!(
                outcome.selected[..],
                plain.selected[..outcome.selected.len()],
                "seed {seed} timeout {timeout_us}us: partial is not a greedy prefix"
            );
            if !outcome.partial {
                assert_eq!(outcome.selected, plain.selected, "seed {seed}");
            }
        }
    }
}
