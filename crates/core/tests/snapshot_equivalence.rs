//! Loaded-vs-built equivalence: an index bundle decoded from a snapshot
//! must be indistinguishable from a freshly built one, query by query.
//!
//! For every structure in the bundle (`PoiIndex`, `PhotoGrid`, `IrTree`,
//! the preloaded ε-maps) and for several build thread counts, we run the
//! same queries against the fresh and the loaded bundle and require
//! *bit-identical* answers — not approximately equal: every interest,
//! relevance, and objective is compared via `f64::to_bits` — and identical
//! deterministic work counters in [`QueryStats`]. If the snapshot
//! round-trip perturbed so much as one posting's order, these fail.

use soi_common::KeywordId;
use soi_core::describe::{greedy_select, ContextBuilder, DescribeParams, PhiSource};
use soi_core::soi::{run_soi, QueryStats, SoiConfig, SoiOutcome, SoiQuery};
use soi_data::{Dataset, PhotoCollection, PoiCollection};
use soi_geo::Point;
use soi_index::{build_bundle, read_bundle, write_bundle, BundleParams, IndexBundle, ReadOutcome};
use soi_network::RoadNetwork;
use soi_text::{KeywordSet, Vocabulary};

const EPS: f64 = 0.25;

fn kws(ids: &[u32]) -> KeywordSet {
    KeywordSet::from_ids(ids.iter().map(|&i| KeywordId(i)))
}

fn sample_dataset() -> Dataset {
    let mut b = RoadNetwork::builder();
    b.add_street_from_points(
        "Alpha",
        &[
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 4.0),
        ],
    );
    b.add_street_from_points("Beta", &[Point::new(0.0, 2.0), Point::new(6.0, 2.0)]);
    b.add_street_from_points("Gamma", &[Point::new(2.0, 0.0), Point::new(2.0, 4.0)]);
    b.add_street_from_points("Delta", &[Point::new(0.0, 4.0), Point::new(6.0, 0.0)]);
    let network = b.build().unwrap();

    let mut vocab = Vocabulary::new();
    for term in ["cafe", "bar", "museum", "park", "shop", "hotel"] {
        vocab.intern(term);
    }
    let mut pois = PoiCollection::new();
    let mut photos = PhotoCollection::new();
    let mut x: u64 = 0xE0_1D1E_5CE4_11CE;
    for i in 0..600 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let px = (x % 600) as f64 / 100.0;
        let py = ((x >> 17) % 400) as f64 / 100.0;
        let k1 = (x % 6) as u32;
        let k2 = ((x >> 23) % 6) as u32;
        if i % 2 == 0 {
            photos.add(Point::new(px, py), kws(&[k1, k2]));
        } else {
            pois.add_weighted(Point::new(px, py), kws(&[k1, k2]), 1.0 + (x % 5) as f64);
        }
    }
    Dataset::new("equiv-sample", network, vocab, pois, photos)
}

fn params(threads: usize) -> BundleParams {
    BundleParams {
        poi_cell: 0.5,
        pg_cell: 0.5,
        eps: Some(EPS),
        with_ir: true,
        threads,
    }
}

/// Round-trips `dataset`'s bundle through a snapshot file.
fn load_round_trip(dataset: &Dataset, p: &BundleParams) -> (IndexBundle, IndexBundle) {
    let fresh = build_bundle(dataset, p);
    let path = std::env::temp_dir().join(format!(
        "soi-equiv-{}-t{}.soisnap",
        std::process::id(),
        p.threads
    ));
    write_bundle(&path, dataset, &fresh, p).unwrap();
    let loaded = match read_bundle(&path, dataset, p).unwrap() {
        ReadOutcome::Loaded(b) => *b,
        ReadOutcome::Stale(why) => panic!("snapshot unexpectedly stale: {why}"),
    };
    std::fs::remove_file(&path).ok();
    (fresh, loaded)
}

/// The deterministic (non-timing) fields of [`QueryStats`].
#[allow(clippy::type_complexity)]
fn counters(
    s: &QueryStats,
) -> (
    usize,
    usize,
    usize,
    usize,
    usize,
    usize,
    usize,
    usize,
    u64,
    u64,
    usize,
    bool,
) {
    (
        s.cells_popped,
        s.segments_popped,
        s.cell_visits,
        s.duplicate_visits,
        s.segments_seen,
        s.segments_finalized_filtering,
        s.segments_finalized_refinement,
        s.segments_bounded_out,
        s.termination_ub.to_bits(),
        s.termination_lb.to_bits(),
        s.accesses,
        s.deadline_expired,
    )
}

fn assert_outcomes_identical(a: &SoiOutcome, b: &SoiOutcome, what: &str) {
    assert_eq!(a.results.len(), b.results.len(), "{what}: result count");
    for (x, y) in a.results.iter().zip(&b.results) {
        assert_eq!(x.street, y.street, "{what}");
        assert_eq!(
            x.interest.to_bits(),
            y.interest.to_bits(),
            "{what}: interest of {}",
            x.street
        );
        assert_eq!(x.best_segment, y.best_segment, "{what}");
        assert_eq!(
            x.best_segment_mass.to_bits(),
            y.best_segment_mass.to_bits(),
            "{what}"
        );
    }
    assert_eq!(counters(&a.stats), counters(&b.stats), "{what}: stats");
    assert_eq!(a.partial, b.partial, "{what}");
}

fn queries() -> Vec<SoiQuery> {
    let mut qs = Vec::new();
    for (ids, k, eps) in [
        (&[0u32][..], 3, EPS),
        (&[1, 2][..], 5, EPS),
        (&[0, 3, 4][..], 4, EPS),
        (&[5][..], 2, 0.4), // ε off the precomputed maps: built on demand both sides
    ] {
        qs.push(SoiQuery::new(kws(ids), k, eps).unwrap());
    }
    qs
}

#[test]
fn soi_queries_identical_across_thread_counts() {
    let dataset = sample_dataset();
    let config = SoiConfig::default();
    // Reference answers from a single-threaded fresh build.
    let reference = build_bundle(&dataset, &params(1));
    for threads in [1, 2, 8] {
        let (fresh, loaded) = load_round_trip(&dataset, &params(threads));
        for q in &queries() {
            let want =
                run_soi(&dataset.network, &dataset.pois, &reference.poi, q, &config).unwrap();
            let from_fresh =
                run_soi(&dataset.network, &dataset.pois, &fresh.poi, q, &config).unwrap();
            let from_loaded =
                run_soi(&dataset.network, &dataset.pois, &loaded.poi, q, &config).unwrap();
            let what = format!("threads={threads} k={} eps={}", q.k, q.eps);
            // Builds are deterministic across thread counts…
            assert_outcomes_identical(&want, &from_fresh, &format!("{what} (build determinism)"));
            // …and the snapshot round-trip changes nothing.
            assert_outcomes_identical(&from_fresh, &from_loaded, &format!("{what} (round trip)"));
            assert!(!want.results.is_empty(), "{what}: degenerate query");
        }
    }
}

#[test]
fn ir_tree_top_k_identical_after_round_trip() {
    let dataset = sample_dataset();
    for threads in [1, 2, 8] {
        let (fresh, loaded) = load_round_trip(&dataset, &params(threads));
        let (fresh_ir, loaded_ir) = (fresh.ir.unwrap(), loaded.ir.unwrap());
        for (q, ids, k) in [
            (Point::new(1.0, 1.0), &[0u32][..], 5),
            (Point::new(3.0, 2.0), &[1, 4][..], 8),
            (Point::new(5.0, 0.5), &[2, 3, 5][..], 3),
        ] {
            let a = fresh_ir.top_k_relevant(q, &kws(ids), k);
            let b = loaded_ir.top_k_relevant(q, &kws(ids), k);
            assert_eq!(a.len(), b.len(), "threads={threads}");
            for ((pa, sa), (pb, sb)) in a.iter().zip(&b) {
                assert_eq!(pa, pb, "threads={threads}");
                assert_eq!(sa.to_bits(), sb.to_bits(), "threads={threads}");
            }
        }
    }
}

#[test]
fn describe_selection_identical_after_round_trip() {
    let dataset = sample_dataset();
    let describe = DescribeParams::new(4, 0.5, 0.5).unwrap();
    for threads in [1, 2, 8] {
        let (fresh, loaded) = load_round_trip(&dataset, &params(threads));
        let run = |grid| {
            let builder = ContextBuilder {
                network: &dataset.network,
                photos: &dataset.photos,
                photo_grid: grid,
                pois: Some(&dataset.pois),
                eps: EPS,
                rho: 0.5,
                phi_source: PhiSource::PhotosAndPois,
            };
            let mut all = Vec::new();
            for street in 0..dataset.network.num_streets() {
                let ctx = builder.build(soi_common::StreetId(street as u32)).unwrap();
                let out = greedy_select(&ctx, &dataset.photos, &describe);
                all.push((out.selected, out.objective.to_bits()));
            }
            all
        };
        assert_eq!(
            run(&fresh.photo_grid),
            run(&loaded.photo_grid),
            "threads={threads}: describe selections diverged after round trip"
        );
    }
}
