//! Incremental index maintenance: building an index over a prefix of the
//! POIs and inserting the rest must answer every query exactly like a
//! full rebuild.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use soi_common::KeywordId;
use soi_data::{PhotoCollection, PoiCollection};
use soi_geo::Point;
use soi_index::{PhotoGrid, PoiIndex};
use soi_network::RoadNetwork;
use soi_text::KeywordSet;

fn network() -> RoadNetwork {
    let mut b = RoadNetwork::builder();
    b.add_street_from_points(
        "H",
        &[
            Point::new(0.0, 2.0),
            Point::new(4.0, 2.0),
            Point::new(8.0, 2.0),
        ],
    );
    b.add_street_from_points(
        "V",
        &[
            Point::new(4.0, 0.0),
            Point::new(4.0, 4.0),
            Point::new(4.0, 8.0),
        ],
    );
    // Corner anchors so the grid extent covers all POI positions below.
    b.add_street_from_points("B", &[Point::new(0.0, 0.0), Point::new(8.0, 8.0)]);
    b.build().unwrap()
}

fn random_pois(rng: &mut StdRng, n: usize) -> PoiCollection {
    let mut pois = PoiCollection::new();
    for _ in 0..n {
        let kws = KeywordSet::from_ids(
            (0..rng.random_range(0..3usize)).map(|_| KeywordId(rng.random_range(0..5))),
        );
        let weight = if rng.random_range(0..8) == 0 {
            2.5
        } else {
            1.0
        };
        pois.add_weighted(
            Point::new(rng.random_range(0.0..8.0), rng.random_range(0.0..8.0)),
            kws,
            weight,
        );
    }
    pois
}

#[test]
fn incremental_insert_matches_full_rebuild() {
    for seed in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = network();
        let pois = random_pois(&mut rng, 80);
        let split = 40;

        // Index over the first half, then insert the second half.
        let prefix = {
            let mut p = PoiCollection::new();
            for poi in pois.iter().take(split) {
                p.add_weighted(poi.pos, poi.keywords.clone(), poi.weight);
            }
            p
        };
        let mut incremental = PoiIndex::build(&net, &prefix, 0.7);
        for poi in pois.iter().skip(split) {
            incremental.insert(poi).expect("inside extent");
        }
        let rebuilt = PoiIndex::build(&net, &pois, 0.7);

        // Every structure the algorithms consult must agree.
        assert_eq!(
            incremental.num_occupied_cells(),
            rebuilt.num_occupied_cells(),
            "seed {seed}"
        );
        for k in 0..5u32 {
            let a = incremental.global_postings(KeywordId(k));
            let b = rebuilt.global_postings(KeywordId(k));
            assert_eq!(a, b, "seed {seed} keyword {k}");
        }
        let query = KeywordSet::from_ids([KeywordId(0), KeywordId(3)]);
        for seg in net.segments() {
            let a = incremental.segment_mass_lazy(&pois, &net, seg.id, &query, 0.5);
            let b = rebuilt.segment_mass_lazy(&pois, &net, seg.id, &query, 0.5);
            assert_eq!(a, b, "seed {seed} segment {}", seg.id);
        }
    }
}

#[test]
fn insert_outside_extent_is_rejected() {
    let net = network();
    let mut pois = random_pois(&mut StdRng::seed_from_u64(1), 10);
    let mut index = PoiIndex::build(&net, &pois, 0.7);
    let far = pois.add(Point::new(500.0, 500.0), KeywordSet::empty());
    assert!(index.insert(pois.get(far)).is_err());
}

#[test]
fn photo_grid_incremental_matches_rebuild() {
    let net = network();
    let mut rng = StdRng::seed_from_u64(3);
    let mut photos = PhotoCollection::new();
    for _ in 0..60 {
        photos.add(
            Point::new(rng.random_range(0.0..8.0), rng.random_range(0.0..8.0)),
            KeywordSet::empty(),
        );
    }
    let prefix = {
        let mut p = PhotoCollection::new();
        for ph in photos.iter().take(30) {
            p.add(ph.pos, ph.tags.clone());
        }
        p
    };
    let mut incremental = PhotoGrid::build(&net, &prefix, 0.7);
    for ph in photos.iter().skip(30) {
        incremental.insert(ph).expect("inside extent");
    }
    let rebuilt = PhotoGrid::build(&net, &photos, 0.7);
    for street in net.streets() {
        for eps in [0.3, 0.8] {
            assert_eq!(
                incremental.photos_near_street(&net, &photos, street.id, eps),
                rebuilt.photos_near_street(&net, &photos, street.id, eps),
                "street {} eps {eps}",
                street.id
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Full delta streams: sealed-delta reads must equal a rebuild over the
// folded collections, bit for bit, at every build thread count.
// ---------------------------------------------------------------------------

use soi_common::PhotoId;
use soi_data::Photo;
use soi_index::{fold_ops, DeltaIndex, DeltaOp, IndexView};

/// A random op stream against `pois`/`photos`: inserts inside the extent,
/// deletes over distinct ids of the epoch's id space (base ids and ids
/// added earlier in the same stream).
fn random_ops(
    rng: &mut StdRng,
    pois: &PoiCollection,
    photos: &PhotoCollection,
    n: usize,
) -> Vec<DeltaOp> {
    let mut ops = Vec::with_capacity(n);
    let mut num_pois = pois.len();
    let mut num_photos = photos.len();
    let mut deleted_pois = std::collections::HashSet::new();
    let mut deleted_photos = std::collections::HashSet::new();
    for _ in 0..n {
        match rng.random_range(0..10u32) {
            // POI insert (weighted occasionally); positions stay inside
            // the 0..8 network extent.
            0..=4 => {
                let kws = KeywordSet::from_ids(
                    (0..rng.random_range(0..3usize)).map(|_| KeywordId(rng.random_range(0..5))),
                );
                ops.push(DeltaOp::AddPoi {
                    pos: Point::new(rng.random_range(0.0..8.0), rng.random_range(0.0..8.0)),
                    keywords: kws,
                    weight: if rng.random_range(0..4) == 0 {
                        2.5
                    } else {
                        1.0
                    },
                });
                num_pois += 1;
            }
            5..=6 => {
                ops.push(DeltaOp::AddPhoto {
                    pos: Point::new(rng.random_range(0.0..8.0), rng.random_range(0.0..8.0)),
                    tags: KeywordSet::from_ids([KeywordId(rng.random_range(0..5))]),
                });
                num_photos += 1;
            }
            7..=8 => {
                // Delete a not-yet-deleted POI id (base or delta-added).
                let candidates: Vec<usize> = (0..num_pois)
                    .filter(|i| !deleted_pois.contains(i))
                    .collect();
                if let Some(&idx) = candidates.get(rng.random_range(0..candidates.len().max(1))) {
                    deleted_pois.insert(idx);
                    ops.push(DeltaOp::DeletePoi {
                        id: soi_common::PoiId::from_index(idx),
                    });
                }
            }
            _ => {
                let candidates: Vec<usize> = (0..num_photos)
                    .filter(|i| !deleted_photos.contains(i))
                    .collect();
                if let Some(&idx) = candidates.get(rng.random_range(0..candidates.len().max(1))) {
                    deleted_photos.insert(idx);
                    ops.push(DeltaOp::DeletePhoto {
                        id: PhotoId::from_index(idx),
                    });
                }
            }
        }
    }
    ops
}

fn random_photos(rng: &mut StdRng, n: usize) -> PhotoCollection {
    let mut photos = PhotoCollection::new();
    for _ in 0..n {
        photos.add(
            Point::new(rng.random_range(0.0..8.0), rng.random_range(0.0..8.0)),
            KeywordSet::from_ids([KeywordId(rng.random_range(0..5))]),
        );
    }
    photos
}

#[test]
fn delta_stream_replay_matches_full_rebuild_across_build_threads() {
    for seed in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(100 + seed);
        let net = network();
        let pois = random_pois(&mut rng, 80);
        let photos = random_photos(&mut rng, 40);
        let index = PoiIndex::build(&net, &pois, 0.7);
        let ops = random_ops(&mut rng, &pois, &photos, 50);

        let delta = DeltaIndex::seal(&index, &pois, &photos, &ops).expect("valid stream");
        let view = IndexView::new(&index, Some(&delta));
        let poi_view = delta.poi_view(&pois);
        let (folded_pois, _folded_photos) = fold_ops(&pois, &photos, &ops).expect("valid stream");

        let query = KeywordSet::from_ids([KeywordId(0), KeywordId(3)]);
        for threads in [1usize, 2, 8] {
            let rebuilt = PoiIndex::build_with_threads(&net, &folded_pois, 0.7, threads);
            // Global postings: replacement lists for touched keywords must
            // equal the rebuilt aggregates bit for bit.
            for k in 0..5u32 {
                let a = view.global_postings(KeywordId(k));
                let b = rebuilt.global_postings(KeywordId(k));
                assert_eq!(a.len(), b.len(), "seed {seed} t{threads} keyword {k}");
                for ((ca, wa), (cb, wb)) in a.iter().zip(b) {
                    assert_eq!(ca, cb, "seed {seed} t{threads} keyword {k}");
                    assert_eq!(
                        wa.to_bits(),
                        wb.to_bits(),
                        "seed {seed} t{threads} keyword {k} cell {ca:?}"
                    );
                }
            }
            for seg in net.segments() {
                // The view's lazy ε-cell walk must cover the same mass as
                // the rebuilt index's, bit-identically.
                let a = view.segment_mass_lazy(poi_view, &net, seg.id, &query, 0.5);
                let b = rebuilt.segment_mass_lazy(&folded_pois, &net, seg.id, &query, 0.5);
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "seed {seed} t{threads} segment {} mass {a} vs {b}",
                    seg.id
                );
                // Occupied-cell sets agree up to cells that lost all their
                // POIs (the view keeps them as a sound zero-mass superset).
                let va = view.occupied_cells_near_segment(&seg.geom, 0.5);
                let vb = rebuilt.occupied_cells_near_segment(&seg.geom, 0.5);
                for c in &vb {
                    assert!(
                        va.contains(c),
                        "seed {seed} t{threads}: rebuilt cell {c:?} missing from view"
                    );
                }
                for c in &va {
                    if !vb.contains(c) {
                        assert_eq!(
                            view.cell_total_weight(*c).to_bits(),
                            0.0f64.to_bits(),
                            "seed {seed} t{threads}: extra view cell {c:?} must be empty"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn photo_delta_fold_matches_view_survivors_and_grid_queries() {
    let mut rng = StdRng::seed_from_u64(7);
    let net = network();
    let pois = random_pois(&mut rng, 20);
    let photos = random_photos(&mut rng, 60);
    let index = PoiIndex::build(&net, &pois, 0.7);
    // Photo-only stream: adds plus deletes of base and delta-added ids.
    let mut ops: Vec<DeltaOp> = (0..25)
        .map(|_| DeltaOp::AddPhoto {
            pos: Point::new(rng.random_range(0.0..8.0), rng.random_range(0.0..8.0)),
            tags: KeywordSet::from_ids([KeywordId(rng.random_range(0..5))]),
        })
        .collect();
    for id in [3usize, 17, 42, 59, 60, 71] {
        ops.push(DeltaOp::DeletePhoto {
            id: PhotoId::from_index(id),
        });
    }
    let delta = DeltaIndex::seal(&index, &pois, &photos, &ops).expect("valid stream");
    let (_, folded_photos) = fold_ops(&pois, &photos, &ops).expect("valid stream");

    // The folded collection is exactly the view's survivors, in view
    // order, with ids re-densified.
    let photo_view = delta.photo_view(&photos);
    let survivors: Vec<&Photo> = photo_view
        .iter()
        .filter(|p| !delta.photo_deleted(p.id))
        .collect();
    assert_eq!(folded_photos.len(), 60 + 25 - 6);
    assert_eq!(folded_photos.len(), survivors.len());
    for (i, (folded, survivor)) in folded_photos.iter().zip(&survivors).enumerate() {
        assert_eq!(folded.id.index(), i, "folded ids must be dense");
        assert_eq!(folded.pos, survivor.pos);
        assert_eq!(folded.tags, survivor.tags);
    }

    // A grid rebuilt over the folded photos answers street queries that
    // agree with a brute-force distance scan of the same collection.
    let grid = PhotoGrid::build(&net, &folded_photos, 0.7);
    for street in net.streets() {
        for eps in [0.3, 0.8] {
            let got = grid.photos_near_street(&net, &folded_photos, street.id, eps);
            let want: Vec<_> = folded_photos
                .iter()
                .filter(|p| {
                    street
                        .segments
                        .iter()
                        .any(|&seg| net.segment(seg).geom.dist_sq_to_point(p.pos) <= eps * eps)
                })
                .map(|p| p.id)
                .collect();
            assert_eq!(got, want, "street {} eps {eps}", street.id);
        }
    }
}

#[test]
fn interleaved_insert_delete_query_fuzz_never_panics() {
    // Streams batches of random ops through seal → query → (sometimes)
    // fold, exactly the server's epoch lifecycle. Every view answer is
    // cross-checked against a brute-force scan of the logical state; the
    // run must never panic, never reject a validly-constructed batch, and
    // never drift from the brute-force mass.
    for seed in 0..4u64 {
        let mut rng = StdRng::seed_from_u64(900 + seed);
        let net = network();
        let mut pois = random_pois(&mut rng, 40);
        let mut photos = random_photos(&mut rng, 20);
        let mut index = PoiIndex::build(&net, &pois, 0.7);
        let mut pending: Vec<DeltaOp> = Vec::new();

        for round in 0..12 {
            // The cumulative re-seal rejects duplicate deletes, so drop
            // ops colliding with an earlier round's deletes.
            let fresh: Vec<DeltaOp> = random_ops(&mut rng, &pois, &photos, 6)
                .into_iter()
                .filter(|op| match op {
                    DeltaOp::DeletePoi { .. } | DeltaOp::DeletePhoto { .. } => {
                        !pending.contains(op)
                    }
                    _ => true,
                })
                .collect();
            pending.extend(fresh);
            let delta = DeltaIndex::seal(&index, &pois, &photos, &pending).expect("valid batch");
            let view = IndexView::new(&index, Some(&delta));
            let poi_view = delta.poi_view(&pois);

            let query = KeywordSet::from_ids(
                (0..rng.random_range(1..3usize)).map(|_| KeywordId(rng.random_range(0..5))),
            );
            let eps = rng.random_range(0.2..0.9f64);
            for seg in net.segments() {
                let got = view.segment_mass_lazy(poi_view, &net, seg.id, &query, eps);
                let want: f64 = poi_view
                    .iter()
                    .filter(|p| {
                        !delta.poi_deleted(p.id)
                            && p.keywords.intersects(&query)
                            && seg.geom.dist_sq_to_point(p.pos) <= eps * eps
                    })
                    .map(|p| p.weight)
                    .sum();
                assert!(
                    (got - want).abs() < 1e-9,
                    "seed {seed} round {round} segment {}: view {got} vs brute {want}",
                    seg.id
                );
            }

            // Fold roughly every third round: the pending delta becomes
            // the new base, exactly like a server epoch boundary.
            if rng.random_range(0..3) == 0 {
                let (fp, fph) = fold_ops(&pois, &photos, &pending).expect("valid fold");
                pois = fp;
                photos = fph;
                index = PoiIndex::build(&net, &pois, 0.7);
                pending.clear();
            }
        }
    }
}
