//! Incremental index maintenance: building an index over a prefix of the
//! POIs and inserting the rest must answer every query exactly like a
//! full rebuild.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use soi_common::KeywordId;
use soi_data::{PhotoCollection, PoiCollection};
use soi_geo::Point;
use soi_index::{PhotoGrid, PoiIndex};
use soi_network::RoadNetwork;
use soi_text::KeywordSet;

fn network() -> RoadNetwork {
    let mut b = RoadNetwork::builder();
    b.add_street_from_points(
        "H",
        &[
            Point::new(0.0, 2.0),
            Point::new(4.0, 2.0),
            Point::new(8.0, 2.0),
        ],
    );
    b.add_street_from_points(
        "V",
        &[
            Point::new(4.0, 0.0),
            Point::new(4.0, 4.0),
            Point::new(4.0, 8.0),
        ],
    );
    // Corner anchors so the grid extent covers all POI positions below.
    b.add_street_from_points("B", &[Point::new(0.0, 0.0), Point::new(8.0, 8.0)]);
    b.build().unwrap()
}

fn random_pois(rng: &mut StdRng, n: usize) -> PoiCollection {
    let mut pois = PoiCollection::new();
    for _ in 0..n {
        let kws = KeywordSet::from_ids(
            (0..rng.random_range(0..3usize)).map(|_| KeywordId(rng.random_range(0..5))),
        );
        let weight = if rng.random_range(0..8) == 0 {
            2.5
        } else {
            1.0
        };
        pois.add_weighted(
            Point::new(rng.random_range(0.0..8.0), rng.random_range(0.0..8.0)),
            kws,
            weight,
        );
    }
    pois
}

#[test]
fn incremental_insert_matches_full_rebuild() {
    for seed in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = network();
        let pois = random_pois(&mut rng, 80);
        let split = 40;

        // Index over the first half, then insert the second half.
        let prefix = {
            let mut p = PoiCollection::new();
            for poi in pois.iter().take(split) {
                p.add_weighted(poi.pos, poi.keywords.clone(), poi.weight);
            }
            p
        };
        let mut incremental = PoiIndex::build(&net, &prefix, 0.7);
        for poi in pois.iter().skip(split) {
            incremental.insert(poi).expect("inside extent");
        }
        let rebuilt = PoiIndex::build(&net, &pois, 0.7);

        // Every structure the algorithms consult must agree.
        assert_eq!(
            incremental.num_occupied_cells(),
            rebuilt.num_occupied_cells(),
            "seed {seed}"
        );
        for k in 0..5u32 {
            let a = incremental.global_postings(KeywordId(k));
            let b = rebuilt.global_postings(KeywordId(k));
            assert_eq!(a, b, "seed {seed} keyword {k}");
        }
        let query = KeywordSet::from_ids([KeywordId(0), KeywordId(3)]);
        for seg in net.segments() {
            let a = incremental.segment_mass_lazy(&pois, &net, seg.id, &query, 0.5);
            let b = rebuilt.segment_mass_lazy(&pois, &net, seg.id, &query, 0.5);
            assert_eq!(a, b, "seed {seed} segment {}", seg.id);
        }
    }
}

#[test]
fn insert_outside_extent_is_rejected() {
    let net = network();
    let mut pois = random_pois(&mut StdRng::seed_from_u64(1), 10);
    let mut index = PoiIndex::build(&net, &pois, 0.7);
    let far = pois.add(Point::new(500.0, 500.0), KeywordSet::empty());
    assert!(index.insert(pois.get(far)).is_err());
}

#[test]
fn photo_grid_incremental_matches_rebuild() {
    let net = network();
    let mut rng = StdRng::seed_from_u64(3);
    let mut photos = PhotoCollection::new();
    for _ in 0..60 {
        photos.add(
            Point::new(rng.random_range(0.0..8.0), rng.random_range(0.0..8.0)),
            KeywordSet::empty(),
        );
    }
    let prefix = {
        let mut p = PhotoCollection::new();
        for ph in photos.iter().take(30) {
            p.add(ph.pos, ph.tags.clone());
        }
        p
    };
    let mut incremental = PhotoGrid::build(&net, &prefix, 0.7);
    for ph in photos.iter().skip(30) {
        incremental.insert(ph).expect("inside extent");
    }
    let rebuilt = PhotoGrid::build(&net, &photos, 0.7);
    for street in net.streets() {
        for eps in [0.3, 0.8] {
            assert_eq!(
                incremental.photos_near_street(&net, &photos, street.id, eps),
                rebuilt.photos_near_street(&net, &photos, street.id, eps),
                "street {} eps {eps}",
                street.id
            );
        }
    }
}
