//! Fault-injection suite for bundle snapshots.
//!
//! The container's own unit tests cover each corruption mode against a toy
//! two-section file; this suite drives the same faults through the full
//! bundle path — a real `PoiIndex`/`PhotoGrid`/`IrTree`/ε-maps snapshot
//! read via [`soi_index::read_bundle`] and [`soi_index::IndexCache`] — and
//! checks the contract end to end:
//!
//! - every corruption surfaces as a categorized `Data` error (CLI exit
//!   code 3) carrying the snapshot path — never a panic;
//! - [`CacheMode::Lenient`]-style default caching treats a corrupt
//!   snapshot as a miss: rebuild, rewrite, and the *next* start hits;
//! - [`CacheMode::Strict`] fails loudly instead.

use soi_common::{ErrorCategory, KeywordId};
use soi_data::{Dataset, PhotoCollection, PoiCollection};
use soi_geo::Point;
use soi_index::{
    read_bundle, write_bundle, BundleParams, CacheMode, CacheOutcome, IndexCache, ReadOutcome,
};
use soi_network::RoadNetwork;
use soi_snapshot::{fnv1a64, HEADER_LEN, TABLE_ENTRY_LEN};
use soi_text::{KeywordSet, Vocabulary};
use std::path::PathBuf;

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("soi-fault-{}-{name}.soisnap", std::process::id()))
}

fn kws(ids: &[u32]) -> KeywordSet {
    KeywordSet::from_ids(ids.iter().map(|&i| KeywordId(i)))
}

/// A small but multi-street dataset: enough POIs and photos that every
/// section of the bundle snapshot is non-trivial.
fn sample_dataset() -> Dataset {
    let mut b = RoadNetwork::builder();
    b.add_street_from_points(
        "Alpha",
        &[
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 4.0),
        ],
    );
    b.add_street_from_points("Beta", &[Point::new(0.0, 2.0), Point::new(6.0, 2.0)]);
    b.add_street_from_points("Gamma", &[Point::new(2.0, 0.0), Point::new(2.0, 4.0)]);
    let network = b.build().unwrap();

    let mut vocab = Vocabulary::new();
    for term in ["cafe", "bar", "museum", "park", "shop", "hotel"] {
        vocab.intern(term);
    }
    let mut pois = PoiCollection::new();
    let mut photos = PhotoCollection::new();
    let mut x: u64 = 0x0DDB_A11C_AFEF_00D5;
    for i in 0..300 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let px = (x % 600) as f64 / 100.0;
        let py = ((x >> 17) % 400) as f64 / 100.0;
        let k1 = (x % 6) as u32;
        let k2 = ((x >> 23) % 6) as u32;
        if i % 3 == 0 {
            photos.add(Point::new(px, py), kws(&[k1]));
        } else {
            pois.add_weighted(Point::new(px, py), kws(&[k1, k2]), 1.0 + (x % 4) as f64);
        }
    }
    Dataset::new("fault-sample", network, vocab, pois, photos)
}

fn params() -> BundleParams {
    BundleParams {
        poi_cell: 0.5,
        pg_cell: 0.5,
        eps: Some(0.25),
        with_ir: true,
        threads: 1,
    }
}

/// The pristine snapshot image for `dataset`, written once per process.
fn pristine_image(dataset: &Dataset) -> Vec<u8> {
    let path = temp_path("pristine");
    let bundle = soi_index::build_bundle(dataset, &params());
    write_bundle(&path, dataset, &bundle, &params()).unwrap();
    let image = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();
    image
}

fn read_u32(b: &[u8], at: usize) -> u32 {
    u32::from_ne_bytes(b[at..at + 4].try_into().unwrap())
}

fn read_u64(b: &[u8], at: usize) -> u64 {
    u64::from_ne_bytes(b[at..at + 8].try_into().unwrap())
}

/// Rewrites the header's table checksum so table edits reach the *next*
/// validation layer instead of tripping the checksum.
fn fix_table_checksum(b: &mut [u8]) {
    let n = read_u32(b, 16) as usize;
    let table = fnv1a64(&b[HEADER_LEN..HEADER_LEN + n * TABLE_ENTRY_LEN]);
    b[24..32].copy_from_slice(&table.to_ne_bytes());
}

/// Applies `mutate` to a copy of `image`, reads it as a bundle, and
/// returns the outcome. The mutated file is removed afterwards.
fn read_mutated(
    name: &str,
    dataset: &Dataset,
    image: &[u8],
    mutate: impl FnOnce(&mut Vec<u8>),
) -> soi_common::Result<ReadOutcome> {
    let path = temp_path(name);
    let mut bytes = image.to_vec();
    mutate(&mut bytes);
    std::fs::write(&path, &bytes).unwrap();
    let out = read_bundle(&path, dataset, &params());
    std::fs::remove_file(&path).ok();
    out
}

type Mutator = Box<dyn FnOnce(&mut Vec<u8>)>;

#[test]
fn every_corruption_mode_is_a_data_error_with_path() {
    let dataset = sample_dataset();
    let image = pristine_image(&dataset);
    let payload_start = {
        // First section's offset: everything after it is payload bytes.
        read_u64(&image, HEADER_LEN + 16) as usize
    };
    let cases: Vec<(&str, Mutator)> = vec![
        ("bad-magic", Box::new(|b: &mut Vec<u8>| b[0] = b'X')),
        (
            "unknown-version",
            Box::new(|b: &mut Vec<u8>| b[8..12].copy_from_slice(&0x7F7F_7F7Fu32.to_ne_bytes())),
        ),
        (
            "wrong-endianness",
            Box::new(|b: &mut Vec<u8>| b[12..16].reverse()),
        ),
        (
            "truncated-header",
            Box::new(|b: &mut Vec<u8>| b.truncate(10)),
        ),
        (
            "truncated-table",
            Box::new(|b: &mut Vec<u8>| b.truncate(HEADER_LEN + TABLE_ENTRY_LEN / 2)),
        ),
        (
            "truncated-payload",
            Box::new(|b: &mut Vec<u8>| {
                let l = b.len();
                b.truncate(l - 7);
            }),
        ),
        (
            "flipped-payload-first",
            Box::new(move |b: &mut Vec<u8>| b[payload_start] ^= 0x01),
        ),
        (
            "flipped-payload-last",
            Box::new(|b: &mut Vec<u8>| {
                let l = b.len();
                b[l - 1] ^= 0x80;
            }),
        ),
        (
            "flipped-payload-middle",
            Box::new(move |b: &mut Vec<u8>| {
                let mid = payload_start + (b.len() - payload_start) / 2;
                b[mid] ^= 0x10;
            }),
        ),
        (
            "zeroed-page",
            Box::new(move |b: &mut Vec<u8>| {
                let end = (payload_start + 4096).min(b.len());
                b[payload_start..end].fill(0);
            }),
        ),
        (
            "flipped-table-byte",
            Box::new(|b: &mut Vec<u8>| b[HEADER_LEN + 17] ^= 0x01),
        ),
        (
            "section-out-of-bounds",
            Box::new(|b: &mut Vec<u8>| {
                let file_len = b.len() as u64;
                b[HEADER_LEN + 16..HEADER_LEN + 24].copy_from_slice(&file_len.to_ne_bytes());
                fix_table_checksum(b);
            }),
        ),
        (
            "section-overlap",
            Box::new(|b: &mut Vec<u8>| {
                let off0 = read_u64(b, HEADER_LEN + 16);
                let aligned = off0.div_ceil(8) * 8;
                let e1 = HEADER_LEN + TABLE_ENTRY_LEN;
                b[e1 + 16..e1 + 24].copy_from_slice(&aligned.to_ne_bytes());
                fix_table_checksum(b);
            }),
        ),
        (
            "section-count-overflow",
            Box::new(|b: &mut Vec<u8>| b[16..20].copy_from_slice(&u32::MAX.to_ne_bytes())),
        ),
    ];
    for (name, mutate) in cases {
        let err = match read_mutated(name, &dataset, &image, mutate) {
            Err(err) => err,
            Ok(out) => panic!("case {name}: corruption not detected ({out:?})"),
        };
        assert_eq!(
            err.category(),
            ErrorCategory::Data,
            "case {name}: wrong category for {err}"
        );
        assert_eq!(err.category().exit_code(), 3, "case {name}");
        assert!(
            err.to_string().contains(".soisnap"),
            "case {name}: error must carry the snapshot path: {err}"
        );
    }
}

/// Every single-byte flip anywhere in the file must surface as a `Data`
/// error (payloads and the table are checksummed; the header is fully
/// validated) — and must never panic. Alignment padding between sections
/// is the one region no checksum covers; flips there may load cleanly,
/// which is fine: padding bytes are never read.
#[test]
fn random_byte_flips_never_panic() {
    let dataset = sample_dataset();
    let image = pristine_image(&dataset);
    let mut x: u64 = 0xFEED_FACE_CAFE_BEEF;
    for round in 0..64 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let at = (x % image.len() as u64) as usize;
        let bit = 1u8 << (x >> 32 & 7);
        let out = read_mutated("bitflip", &dataset, &image, |b| b[at] ^= bit);
        // A flip in alignment padding (or one that keeps the stamp valid
        // but changes its meaning) may read as clean or stale; any error
        // must be the categorized corruption kind.
        if let Err(err) = out {
            assert_eq!(
                err.category(),
                ErrorCategory::Data,
                "round {round}, flip at {at}: {err}"
            );
        }
    }
}

#[test]
fn lenient_cache_rebuilds_after_corruption_and_hits_next_start() {
    let dataset = sample_dataset();
    let dir = std::env::temp_dir().join(format!("soi-fault-cache-{}", std::process::id()));
    let cache = IndexCache::new(&dir, CacheMode::Lenient);

    // First start: miss, build, persist.
    let (_, outcome) = cache.load_or_build(&dataset, &params()).unwrap();
    assert_eq!(outcome, CacheOutcome::MissBuilt);
    let snap = cache.snapshot_path(&dataset, &params());
    assert!(snap.exists());

    // Storage bitrot: flip one payload byte in place.
    let mut bytes = std::fs::read(&snap).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x04;
    std::fs::write(&snap, &bytes).unwrap();

    // Second start: the corrupt snapshot is detected, discarded, rebuilt.
    let (_, outcome) = cache.load_or_build(&dataset, &params()).unwrap();
    assert_eq!(outcome, CacheOutcome::RebuiltCorrupt);

    // Third start: the rewritten snapshot hits cleanly.
    let (_, outcome) = cache.load_or_build(&dataset, &params()).unwrap();
    assert_eq!(outcome, CacheOutcome::Hit);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn strict_cache_fails_loudly_on_corruption() {
    let dataset = sample_dataset();
    let dir = std::env::temp_dir().join(format!("soi-fault-strict-{}", std::process::id()));
    let lenient = IndexCache::new(&dir, CacheMode::Lenient);
    lenient.load_or_build(&dataset, &params()).unwrap();
    let snap = lenient.snapshot_path(&dataset, &params());

    let mut bytes = std::fs::read(&snap).unwrap();
    bytes[0] = b'X';
    std::fs::write(&snap, &bytes).unwrap();

    let strict = IndexCache::new(&dir, CacheMode::Strict);
    let err = strict.load_or_build(&dataset, &params()).unwrap_err();
    assert_eq!(err.category(), ErrorCategory::Data);
    assert_eq!(err.category().exit_code(), 3);
    // The corrupt file must still be there: strict mode never destroys
    // evidence.
    assert!(snap.exists());

    std::fs::remove_dir_all(&dir).ok();
}
