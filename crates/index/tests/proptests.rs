//! Property-based tests for the index layer on random data.

use proptest::prelude::*;
use soi_common::KeywordId;
use soi_data::PoiCollection;
use soi_geo::Point;
use soi_index::{EpsilonMaps, IrTree, PoiIndex};
use soi_network::RoadNetwork;
use soi_text::KeywordSet;

fn poi_specs() -> impl Strategy<Value = Vec<(f64, f64, Vec<u32>)>> {
    proptest::collection::vec(
        (
            0.0f64..8.0,
            0.0f64..8.0,
            proptest::collection::vec(0u32..6, 0..3),
        ),
        0..60,
    )
}

fn build_pois(specs: &[(f64, f64, Vec<u32>)]) -> PoiCollection {
    let mut pois = PoiCollection::new();
    for (x, y, kws) in specs {
        pois.add(
            Point::new(*x, *y),
            KeywordSet::from_ids(kws.iter().map(|&k| KeywordId(k))),
        );
    }
    pois
}

fn small_network() -> RoadNetwork {
    let mut b = RoadNetwork::builder();
    b.add_street_from_points(
        "H",
        &[
            Point::new(0.0, 2.0),
            Point::new(4.0, 2.0),
            Point::new(8.0, 2.0),
        ],
    );
    b.add_street_from_points(
        "V",
        &[
            Point::new(4.0, 0.0),
            Point::new(4.0, 4.0),
            Point::new(4.0, 8.0),
        ],
    );
    b.add_street_from_points("D", &[Point::new(0.0, 0.0), Point::new(7.5, 7.5)]);
    b.build().unwrap()
}

proptest! {
    #[test]
    fn ir_tree_top_k_matches_brute_force(
        specs in poi_specs(),
        q in ((0.0f64..8.0), (0.0f64..8.0)),
        query_kws in proptest::collection::vec(0u32..6, 1..3),
        k in 1usize..10,
    ) {
        let pois = build_pois(&specs);
        let tree = IrTree::build(&pois);
        let query = KeywordSet::from_ids(query_kws.iter().map(|&k| KeywordId(k)));
        let qp = Point::new(q.0, q.1);

        let got = tree.top_k_relevant(qp, &query, k);
        let mut want: Vec<(f64, u32)> = pois
            .iter()
            .filter(|p| p.keywords.intersects(&query))
            .map(|p| (p.pos.dist(qp), p.id.raw()))
            .collect();
        want.sort_by(|a, b| a.0.total_cmp(&b.0));
        want.truncate(k);

        prop_assert_eq!(got.len(), want.len());
        for ((_, gd), (wd, _)) in got.iter().zip(want.iter()) {
            prop_assert!((gd - wd).abs() < 1e-9);
        }
    }

    #[test]
    fn ir_tree_range_matches_brute_force(
        specs in poi_specs(),
        q in ((0.0f64..8.0), (0.0f64..8.0)),
        dist in 0.0f64..6.0,
        query_kws in proptest::collection::vec(0u32..6, 1..3),
    ) {
        let pois = build_pois(&specs);
        let tree = IrTree::build(&pois);
        let query = KeywordSet::from_ids(query_kws.iter().map(|&k| KeywordId(k)));
        let qp = Point::new(q.0, q.1);

        let got = tree.relevant_within(qp, dist, &query);
        let want: Vec<_> = pois
            .iter()
            .filter(|p| p.keywords.intersects(&query) && p.pos.dist(qp) <= dist)
            .map(|p| p.id)
            .collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn lazy_and_eager_epsilon_maps_agree(
        specs in poi_specs(),
        eps in 0.05f64..1.5,
        cell in 0.3f64..1.2,
    ) {
        let network = small_network();
        let pois = build_pois(&specs);
        let index = PoiIndex::build(&network, &pois, cell);
        let maps = EpsilonMaps::build(&network, &index, eps);
        for seg in network.segments() {
            let lazy = index.occupied_cells_near_segment(&seg.geom, eps);
            prop_assert_eq!(lazy.as_slice(), maps.cells_of_segment(seg.id));
            prop_assert!(index.upper_cell_count(&seg.geom, eps) >= lazy.len());
        }
        for (cell_id, _) in index.occupied_cells() {
            let lazy = index.segments_within_eps_of_cell(&network, cell_id, eps);
            let mut eager = maps.segments_of_cell(cell_id).to_vec();
            eager.sort_unstable();
            prop_assert_eq!(lazy, eager);
            // The superset really is a superset.
            let superset = index.segments_near_cell_superset(cell_id, eps);
            for s in maps.segments_of_cell(cell_id) {
                prop_assert!(superset.contains(s));
            }
        }
    }

    #[test]
    fn segment_mass_consistent_between_paths(
        specs in poi_specs(),
        eps in 0.05f64..1.5,
        query_kws in proptest::collection::vec(0u32..6, 1..3),
    ) {
        let network = small_network();
        let pois = build_pois(&specs);
        let index = PoiIndex::build(&network, &pois, 0.6);
        let maps = EpsilonMaps::build(&network, &index, eps);
        let query = KeywordSet::from_ids(query_kws.iter().map(|&k| KeywordId(k)));
        for seg in network.segments() {
            let eager = index.segment_mass(&pois, &network, seg.id, &query, &maps);
            let lazy = index.segment_mass_lazy(&pois, &network, seg.id, &query, eps);
            let brute: f64 = pois
                .iter()
                .filter(|p| p.keywords.intersects(&query))
                .filter(|p| seg.geom.dist_to_point(p.pos) <= eps)
                .map(|p| p.weight)
                .sum();
            prop_assert_eq!(eager, lazy);
            prop_assert!((lazy - brute).abs() < 1e-9);
        }
    }
}
