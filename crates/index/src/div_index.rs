//! The per-street diversification index (paper Sec. 4.2.1).
//!
//! For a street `s` with photo set `Rs`, the ST_Rel+Div algorithm uses a
//! grid with cell side ρ/2 where each cell stores: the photos in the cell,
//! a local inverted index over their tags, and the minimum/maximum number of
//! tags among the cell's photos (`c.ψmin`, `c.ψmax`). These feed the
//! per-cell bounds of Eqs. 11–18.

use soi_common::{
    bucket_sort_stable, bucket_sort_worthwhile, effective_threads, par_chunk_map,
    par_sort_unstable_by, CellId, FxHashMap, KeywordId, PhotoId,
};
use soi_data::PhotoView;
use soi_geo::{Grid, Point, Rect};
use soi_text::{InvertedIndex, KeywordSet};

/// One occupied cell of the diversification index.
#[derive(Debug, Clone)]
pub struct DivCell {
    /// Photos in this cell, sorted by id (`c.R`).
    pub photos: Vec<PhotoId>,
    /// Local inverted index over the photos' tags (`c.I`).
    pub inverted: InvertedIndex<PhotoId>,
    /// Union of tags of the cell's photos (`c.Ψ`).
    pub keywords: KeywordSet,
    /// Minimum number of tags of any photo in the cell (`c.ψmin`).
    pub psi_min: usize,
    /// Maximum number of tags of any photo in the cell (`c.ψmax`).
    pub psi_max: usize,
}

/// The grid index over one street's photo set `Rs`.
#[derive(Debug)]
pub struct DiversificationIndex {
    grid: Grid,
    cells: FxHashMap<CellId, DivCell>,
    /// Occupied cell ids, ascending (deterministic iteration order).
    occupied: Vec<CellId>,
    num_photos: usize,
}

impl DiversificationIndex {
    /// Builds the index over the photos `members ⊆ photos` with neighbourhood
    /// radius `rho` (cell side becomes ρ/2 as in the paper).
    ///
    /// `members` must be sorted ascending by id (as produced by
    /// [`PhotoGrid::photos_near_street`](crate::PhotoGrid::photos_near_street)).
    ///
    /// # Panics
    /// Panics if `rho` is not strictly positive.
    pub fn build<'a>(photos: impl Into<PhotoView<'a>>, members: &[PhotoId], rho: f64) -> Self {
        Self::build_with_threads(photos, members, rho, 0)
    }

    /// Builds the index with an explicit worker-thread count (`0` = resolve
    /// automatically, see [`effective_threads`]).
    ///
    /// The build is chunk-partitioned and deterministic: chunks emit packed
    /// (cell ‖ photo) keys in member order, one stable counting pass by cell
    /// (or a comparison sort of the unique keys) groups them, and each cell
    /// is assembled from its id-ascending members — identical to the
    /// sequential build for every thread count.
    ///
    /// # Panics
    /// Panics if `rho` is not strictly positive.
    pub fn build_with_threads<'a>(
        photos: impl Into<PhotoView<'a>>,
        members: &[PhotoId],
        rho: f64,
        threads: usize,
    ) -> Self {
        let photos: PhotoView<'a> = photos.into();
        assert!(rho > 0.0 && rho.is_finite(), "rho must be positive");
        debug_assert!(
            members.windows(2).all(|w| w[0] < w[1]),
            "members must be sorted ascending"
        );
        let threads = effective_threads((threads > 0).then_some(threads));
        let cell_size = rho / 2.0;
        let extent = Rect::bounding(members.iter().map(|&id| photos.get(id).pos))
            .unwrap_or_else(|| Rect::new(Point::ORIGIN, Point::new(1.0, 1.0)));
        let grid = Grid::covering(extent, cell_size);

        let mut keys: Vec<u64> = par_chunk_map(members, threads, |_, chunk| {
            let mut keys = Vec::with_capacity(chunk.len());
            for &pid in chunk {
                // Photos outside the grid (non-finite position) are
                // unindexable.
                if let Some(coord) = grid.cell_containing(photos.get(pid).pos) {
                    keys.push(u64::from(grid.cell_id(coord).0) << 32 | u64::from(pid.0));
                }
            }
            keys
        })
        .into_iter()
        .flatten()
        .collect();
        let num_cells = grid.num_cells();
        if bucket_sort_worthwhile(keys.len(), num_cells) {
            keys = bucket_sort_stable(&keys, num_cells as u32, |&k| (k >> 32) as u32);
        } else {
            par_sort_unstable_by(&mut keys, threads, |a, b| a.cmp(b));
        }

        let mut groups: Vec<(CellId, usize, usize)> = Vec::new();
        let mut i = 0;
        while i < keys.len() {
            let cell = (keys[i] >> 32) as u32;
            let s = i;
            while i < keys.len() && (keys[i] >> 32) as u32 == cell {
                i += 1;
            }
            groups.push((CellId(cell), s, i));
        }

        let per_chunk: Vec<Vec<(CellId, DivCell)>> =
            par_chunk_map(&groups, threads, |_, gchunk| {
                let mut cells_part = Vec::with_capacity(gchunk.len());
                let mut pairs: Vec<(KeywordId, PhotoId)> = Vec::new();
                for &(cell_id, s, e) in gchunk {
                    let mut cell_photos = Vec::with_capacity(e - s);
                    let mut psi_min = usize::MAX;
                    let mut psi_max = 0;
                    pairs.clear();
                    for &key in &keys[s..e] {
                        let pid = PhotoId(key as u32);
                        let tags = &photos.get(pid).tags;
                        cell_photos.push(pid);
                        psi_min = psi_min.min(tags.len());
                        psi_max = psi_max.max(tags.len());
                        for &k in tags.ids() {
                            pairs.push((k, pid));
                        }
                    }
                    // (tag, photo) pairs are unique (tag sets are deduplicated)
                    // → the unstable sort is deterministic.
                    pairs.sort_unstable();
                    cells_part.push((
                        cell_id,
                        DivCell {
                            photos: cell_photos,
                            inverted: InvertedIndex::from_sorted_pairs(e - s, &pairs),
                            keywords: KeywordSet::from_ids(pairs.iter().map(|&(k, _)| k)),
                            psi_min,
                            psi_max,
                        },
                    ));
                }
                cells_part
            });

        let mut cells: FxHashMap<CellId, DivCell> = FxHashMap::default();
        cells.reserve(groups.len());
        let mut occupied: Vec<CellId> = Vec::with_capacity(groups.len());
        for cells_part in per_chunk {
            for (id, cell) in cells_part {
                occupied.push(id);
                cells.insert(id, cell);
            }
        }

        Self {
            grid,
            cells,
            occupied,
            num_photos: members.len(),
        }
    }

    /// The underlying grid (cell side = ρ/2).
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Snapshot-encode access to the private parts (see [`crate::snapshot`]).
    pub(crate) fn snapshot_parts(&self) -> (&Grid, &FxHashMap<CellId, DivCell>, &[CellId], usize) {
        (&self.grid, &self.cells, &self.occupied, self.num_photos)
    }

    /// Reassembles an index from snapshot-decoded parts (`occupied` must be
    /// the ascending occupied-cell list and `cells` populated in that order,
    /// matching the build path).
    pub(crate) fn from_snapshot_parts(
        grid: Grid,
        cells: FxHashMap<CellId, DivCell>,
        occupied: Vec<CellId>,
        num_photos: usize,
    ) -> Self {
        Self {
            grid,
            cells,
            occupied,
            num_photos,
        }
    }

    /// The cell with id `id`, if occupied.
    pub fn cell(&self, id: CellId) -> Option<&DivCell> {
        self.cells.get(&id)
    }

    /// Occupied cell ids, ascending.
    pub fn occupied(&self) -> &[CellId] {
        &self.occupied
    }

    /// Total number of indexed photos (`|Rs|`).
    pub fn num_photos(&self) -> usize {
        self.num_photos
    }

    /// Total photos within Chebyshev cell radius `radius` of cell `id`
    /// (including `id` itself): the numerator of Eq. 12 for `radius = 2`.
    pub fn neighborhood_count(&self, id: CellId, radius: u32) -> usize {
        let coord = self.grid.coord_of(id);
        self.grid
            .neighborhood(coord, radius)
            .into_iter()
            .filter_map(|c| self.cells.get(&self.grid.cell_id(c)))
            .map(|c| c.photos.len())
            .sum()
    }

    /// Exact count of member photos within Euclidean distance `radius` of
    /// `center` (the numerator of Definition 4).
    ///
    /// Correct only for `radius ≤ ρ` (the scan is limited to the radius-2
    /// cell neighbourhood, which covers exactly distances up to ρ = 2·cell).
    pub fn count_within<'a>(
        &self,
        photos: impl Into<PhotoView<'a>>,
        center: Point,
        radius: f64,
    ) -> usize {
        let photos: PhotoView<'a> = photos.into();
        debug_assert!(
            radius <= self.grid.cell_size() * 2.0 + 1e-12,
            "count_within only valid up to rho"
        );
        let Some(coord) = self.grid.cell_containing(center) else {
            return 0;
        };
        let r_sq = radius * radius;
        self.grid
            .neighborhood(coord, 2)
            .into_iter()
            .filter_map(|c| self.cells.get(&self.grid.cell_id(c)))
            .flat_map(|c| c.photos.iter())
            .filter(|&&pid| photos.get(pid).pos.dist_sq(center) <= r_sq)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_common::KeywordId;
    use soi_data::PhotoCollection;

    fn tags(ids: &[u32]) -> KeywordSet {
        KeywordSet::from_ids(ids.iter().map(|&i| KeywordId(i)))
    }

    fn setup() -> (PhotoCollection, Vec<PhotoId>, DiversificationIndex) {
        let mut photos = PhotoCollection::new();
        // Cluster A around (0.1..0.3, 0.1): three photos.
        photos.add(Point::new(0.10, 0.10), tags(&[0, 1]));
        photos.add(Point::new(0.20, 0.10), tags(&[0]));
        photos.add(Point::new(0.30, 0.10), tags(&[1, 2, 3]));
        // Lone photo far away at (5, 5).
        photos.add(Point::new(5.0, 5.0), tags(&[4]));
        // Photo not in Rs (excluded from members).
        photos.add(Point::new(0.15, 0.12), tags(&[9]));
        let members: Vec<PhotoId> = [0u32, 1, 2, 3].iter().map(|&i| PhotoId(i)).collect();
        let index = DiversificationIndex::build(&photos, &members, 1.0);
        (photos, members, index)
    }

    #[test]
    fn cells_capture_tag_statistics() {
        let (_, _, index) = setup();
        assert_eq!(index.num_photos(), 4);
        // Cell of the cluster (cell size 0.5 => all three in cell (0,0)).
        let id = index
            .grid()
            .cell_id(index.grid().cell_containing(Point::new(0.2, 0.1)).unwrap());
        let cell = index.cell(id).unwrap();
        assert_eq!(cell.photos.len(), 3);
        assert_eq!(cell.psi_min, 1);
        assert_eq!(cell.psi_max, 3);
        assert_eq!(cell.keywords, tags(&[0, 1, 2, 3]));
        // Excluded photo's tag 9 must not appear.
        assert!(!cell.keywords.contains(KeywordId(9)));
    }

    #[test]
    fn occupied_is_sorted_and_complete() {
        let (_, _, index) = setup();
        assert_eq!(index.occupied().len(), 2);
        assert!(index.occupied().windows(2).all(|w| w[0] < w[1]));
        let total: usize = index
            .occupied()
            .iter()
            .map(|&c| index.cell(c).unwrap().photos.len())
            .sum();
        assert_eq!(total, index.num_photos());
    }

    #[test]
    fn neighborhood_count_sums_nearby_cells() {
        let (_, _, index) = setup();
        let id = index
            .grid()
            .cell_id(index.grid().cell_containing(Point::new(0.2, 0.1)).unwrap());
        // The far photo is many cells away: radius-2 neighbourhood holds only
        // the cluster.
        assert_eq!(index.neighborhood_count(id, 2), 3);
    }

    #[test]
    fn count_within_is_exact() {
        let (photos, _, index) = setup();
        // Around photo 0 at (0.1, 0.1): with radius 0.15, photos 0 and 1.
        assert_eq!(index.count_within(&photos, Point::new(0.10, 0.10), 0.15), 2);
        // Radius 0.25 adds photo 2.
        assert_eq!(index.count_within(&photos, Point::new(0.10, 0.10), 0.25), 3);
        // Excluded photo (id 4) never counted even though it is nearby.
        assert_eq!(index.count_within(&photos, Point::new(0.15, 0.12), 0.10), 2);
    }

    #[test]
    fn empty_members() {
        let photos = PhotoCollection::new();
        let index = DiversificationIndex::build(&photos, &[], 1.0);
        assert_eq!(index.num_photos(), 0);
        assert!(index.occupied().is_empty());
    }

    #[test]
    #[should_panic(expected = "rho must be positive")]
    fn zero_rho_panics() {
        let photos = PhotoCollection::new();
        DiversificationIndex::build(&photos, &[], 0.0);
    }

    #[test]
    fn parallel_build_identical_to_sequential() {
        let mut photos = PhotoCollection::new();
        let mut x: u64 = 0xDEAD_BEEF_CAFE_F00D;
        for _ in 0..400 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let px = (x % 800) as f64 / 100.0;
            let py = ((x >> 13) % 800) as f64 / 100.0;
            let k1 = (x % 9) as u32;
            let k2 = ((x >> 11) % 9) as u32;
            photos.add(Point::new(px, py), tags(&[k1, k2]));
        }
        // Every other photo is a member (an arbitrary subset, ascending).
        let members: Vec<PhotoId> = (0..400).step_by(2).map(PhotoId).collect();
        let sequential = DiversificationIndex::build_with_threads(&photos, &members, 0.9, 1);
        for threads in [2usize, 3, 8] {
            let parallel =
                DiversificationIndex::build_with_threads(&photos, &members, 0.9, threads);
            assert_eq!(sequential.occupied(), parallel.occupied());
            for &id in sequential.occupied() {
                let a = sequential.cell(id).unwrap();
                let b = parallel.cell(id).unwrap();
                assert_eq!(a.photos, b.photos);
                assert_eq!(a.keywords, b.keywords);
                assert_eq!(a.psi_min, b.psi_min);
                assert_eq!(a.psi_max, b.psi_max);
                let mut kws: Vec<_> = a.inverted.iter().map(|(k, _)| k).collect();
                kws.sort_unstable();
                assert_eq!(a.inverted.num_keywords(), b.inverted.num_keywords());
                for k in kws {
                    assert_eq!(a.inverted.postings(k), b.inverted.postings(k));
                }
            }
        }
    }
}
