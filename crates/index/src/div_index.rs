//! The per-street diversification index (paper Sec. 4.2.1).
//!
//! For a street `s` with photo set `Rs`, the ST_Rel+Div algorithm uses a
//! grid with cell side ρ/2 where each cell stores: the photos in the cell,
//! a local inverted index over their tags, and the minimum/maximum number of
//! tags among the cell's photos (`c.ψmin`, `c.ψmax`). These feed the
//! per-cell bounds of Eqs. 11–18.

use soi_common::{CellId, FxHashMap, PhotoId};
use soi_data::PhotoCollection;
use soi_geo::{Grid, Point, Rect};
use soi_text::{InvertedIndex, KeywordSet};

/// One occupied cell of the diversification index.
#[derive(Debug, Clone)]
pub struct DivCell {
    /// Photos in this cell, sorted by id (`c.R`).
    pub photos: Vec<PhotoId>,
    /// Local inverted index over the photos' tags (`c.I`).
    pub inverted: InvertedIndex<PhotoId>,
    /// Union of tags of the cell's photos (`c.Ψ`).
    pub keywords: KeywordSet,
    /// Minimum number of tags of any photo in the cell (`c.ψmin`).
    pub psi_min: usize,
    /// Maximum number of tags of any photo in the cell (`c.ψmax`).
    pub psi_max: usize,
}

/// The grid index over one street's photo set `Rs`.
#[derive(Debug)]
pub struct DiversificationIndex {
    grid: Grid,
    cells: FxHashMap<CellId, DivCell>,
    /// Occupied cell ids, ascending (deterministic iteration order).
    occupied: Vec<CellId>,
    num_photos: usize,
}

impl DiversificationIndex {
    /// Builds the index over the photos `members ⊆ photos` with neighbourhood
    /// radius `rho` (cell side becomes ρ/2 as in the paper).
    ///
    /// `members` must be sorted ascending by id (as produced by
    /// [`PhotoGrid::photos_near_street`](crate::PhotoGrid::photos_near_street)).
    ///
    /// # Panics
    /// Panics if `rho` is not strictly positive.
    pub fn build(photos: &PhotoCollection, members: &[PhotoId], rho: f64) -> Self {
        assert!(rho > 0.0 && rho.is_finite(), "rho must be positive");
        debug_assert!(
            members.windows(2).all(|w| w[0] < w[1]),
            "members must be sorted ascending"
        );
        let cell_size = rho / 2.0;
        let extent = Rect::bounding(members.iter().map(|&id| photos.get(id).pos))
            .unwrap_or_else(|| Rect::new(Point::ORIGIN, Point::new(1.0, 1.0)));
        let grid = Grid::covering(extent, cell_size);

        let mut cells: FxHashMap<CellId, DivCell> = FxHashMap::default();
        for &pid in members {
            let photo = photos.get(pid);
            let Some(coord) = grid.cell_containing(photo.pos) else {
                continue; // outside the grid (non-finite position): unindexable
            };
            let id = grid.cell_id(coord);
            let cell = cells.entry(id).or_insert_with(|| DivCell {
                photos: Vec::new(),
                inverted: InvertedIndex::new(),
                keywords: KeywordSet::empty(),
                psi_min: usize::MAX,
                psi_max: 0,
            });
            cell.photos.push(pid);
            cell.inverted.add_document(pid, photo.tags.iter());
            cell.psi_min = cell.psi_min.min(photo.tags.len());
            cell.psi_max = cell.psi_max.max(photo.tags.len());
        }
        for cell in cells.values_mut() {
            cell.keywords = KeywordSet::from_ids(cell.inverted.iter().map(|(k, _)| k));
        }
        let mut occupied: Vec<CellId> = cells.keys().copied().collect();
        occupied.sort_unstable();

        Self {
            grid,
            cells,
            occupied,
            num_photos: members.len(),
        }
    }

    /// The underlying grid (cell side = ρ/2).
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// The cell with id `id`, if occupied.
    pub fn cell(&self, id: CellId) -> Option<&DivCell> {
        self.cells.get(&id)
    }

    /// Occupied cell ids, ascending.
    pub fn occupied(&self) -> &[CellId] {
        &self.occupied
    }

    /// Total number of indexed photos (`|Rs|`).
    pub fn num_photos(&self) -> usize {
        self.num_photos
    }

    /// Total photos within Chebyshev cell radius `radius` of cell `id`
    /// (including `id` itself): the numerator of Eq. 12 for `radius = 2`.
    pub fn neighborhood_count(&self, id: CellId, radius: u32) -> usize {
        let coord = self.grid.coord_of(id);
        self.grid
            .neighborhood(coord, radius)
            .into_iter()
            .filter_map(|c| self.cells.get(&self.grid.cell_id(c)))
            .map(|c| c.photos.len())
            .sum()
    }

    /// Exact count of member photos within Euclidean distance `radius` of
    /// `center` (the numerator of Definition 4).
    ///
    /// Correct only for `radius ≤ ρ` (the scan is limited to the radius-2
    /// cell neighbourhood, which covers exactly distances up to ρ = 2·cell).
    pub fn count_within(&self, photos: &PhotoCollection, center: Point, radius: f64) -> usize {
        debug_assert!(
            radius <= self.grid.cell_size() * 2.0 + 1e-12,
            "count_within only valid up to rho"
        );
        let Some(coord) = self.grid.cell_containing(center) else {
            return 0;
        };
        let r_sq = radius * radius;
        self.grid
            .neighborhood(coord, 2)
            .into_iter()
            .filter_map(|c| self.cells.get(&self.grid.cell_id(c)))
            .flat_map(|c| c.photos.iter())
            .filter(|&&pid| photos.get(pid).pos.dist_sq(center) <= r_sq)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_common::KeywordId;

    fn tags(ids: &[u32]) -> KeywordSet {
        KeywordSet::from_ids(ids.iter().map(|&i| KeywordId(i)))
    }

    fn setup() -> (PhotoCollection, Vec<PhotoId>, DiversificationIndex) {
        let mut photos = PhotoCollection::new();
        // Cluster A around (0.1..0.3, 0.1): three photos.
        photos.add(Point::new(0.10, 0.10), tags(&[0, 1]));
        photos.add(Point::new(0.20, 0.10), tags(&[0]));
        photos.add(Point::new(0.30, 0.10), tags(&[1, 2, 3]));
        // Lone photo far away at (5, 5).
        photos.add(Point::new(5.0, 5.0), tags(&[4]));
        // Photo not in Rs (excluded from members).
        photos.add(Point::new(0.15, 0.12), tags(&[9]));
        let members: Vec<PhotoId> = [0u32, 1, 2, 3].iter().map(|&i| PhotoId(i)).collect();
        let index = DiversificationIndex::build(&photos, &members, 1.0);
        (photos, members, index)
    }

    #[test]
    fn cells_capture_tag_statistics() {
        let (_, _, index) = setup();
        assert_eq!(index.num_photos(), 4);
        // Cell of the cluster (cell size 0.5 => all three in cell (0,0)).
        let id = index
            .grid()
            .cell_id(index.grid().cell_containing(Point::new(0.2, 0.1)).unwrap());
        let cell = index.cell(id).unwrap();
        assert_eq!(cell.photos.len(), 3);
        assert_eq!(cell.psi_min, 1);
        assert_eq!(cell.psi_max, 3);
        assert_eq!(cell.keywords, tags(&[0, 1, 2, 3]));
        // Excluded photo's tag 9 must not appear.
        assert!(!cell.keywords.contains(KeywordId(9)));
    }

    #[test]
    fn occupied_is_sorted_and_complete() {
        let (_, _, index) = setup();
        assert_eq!(index.occupied().len(), 2);
        assert!(index.occupied().windows(2).all(|w| w[0] < w[1]));
        let total: usize = index
            .occupied()
            .iter()
            .map(|&c| index.cell(c).unwrap().photos.len())
            .sum();
        assert_eq!(total, index.num_photos());
    }

    #[test]
    fn neighborhood_count_sums_nearby_cells() {
        let (_, _, index) = setup();
        let id = index
            .grid()
            .cell_id(index.grid().cell_containing(Point::new(0.2, 0.1)).unwrap());
        // The far photo is many cells away: radius-2 neighbourhood holds only
        // the cluster.
        assert_eq!(index.neighborhood_count(id, 2), 3);
    }

    #[test]
    fn count_within_is_exact() {
        let (photos, _, index) = setup();
        // Around photo 0 at (0.1, 0.1): with radius 0.15, photos 0 and 1.
        assert_eq!(index.count_within(&photos, Point::new(0.10, 0.10), 0.15), 2);
        // Radius 0.25 adds photo 2.
        assert_eq!(index.count_within(&photos, Point::new(0.10, 0.10), 0.25), 3);
        // Excluded photo (id 4) never counted even though it is nearby.
        assert_eq!(index.count_within(&photos, Point::new(0.15, 0.12), 0.10), 2);
    }

    #[test]
    fn empty_members() {
        let photos = PhotoCollection::new();
        let index = DiversificationIndex::build(&photos, &[], 1.0);
        assert_eq!(index.num_photos(), 0);
        assert!(index.occupied().is_empty());
    }

    #[test]
    #[should_panic(expected = "rho must be positive")]
    fn zero_rho_panics() {
        let photos = PhotoCollection::new();
        DiversificationIndex::build(&photos, &[], 0.0);
    }
}
