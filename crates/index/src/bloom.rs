//! Bloom-filter keyword summaries for the hybrid spatio-textual tree.
//!
//! [`KeywordSummary`](crate::KeywordSummary) stores exact keyword unions in
//! every R-tree node — precise, but a node near the root of a large tree
//! can end up carrying most of the vocabulary. [`BloomSummary`] bounds the
//! summary at a fixed 256 bits per node: membership tests may report false
//! positives (descending into a fruitless subtree costs time, never
//! correctness) but never false negatives (a subtree containing a match is
//! never pruned).

use soi_common::KeywordId;
use soi_rtree::Summary;
use soi_text::KeywordSet;

use crate::ir_tree::PoiEntry;

/// Number of 64-bit words in the filter (256 bits total).
const WORDS: usize = 4;
/// Hash probes per keyword.
const PROBES: u32 = 2;

/// A fixed-size Bloom filter over keyword ids.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BloomSummary {
    bits: [u64; WORDS],
}

impl BloomSummary {
    /// An empty filter.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn positions(k: KeywordId) -> [u32; PROBES as usize] {
        // Two independent mixes of the keyword id (splitmix64-style).
        let mut out = [0u32; PROBES as usize];
        let mut x = (u64::from(k.raw()) + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        for slot in &mut out {
            x ^= x >> 30;
            x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
            x ^= x >> 27;
            x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
            x ^= x >> 31;
            *slot = (x % (WORDS as u64 * 64)) as u32;
        }
        out
    }

    /// Inserts a keyword.
    pub fn insert(&mut self, k: KeywordId) {
        for pos in Self::positions(k) {
            self.bits[(pos / 64) as usize] |= 1u64 << (pos % 64);
        }
    }

    /// Membership test (false positives possible, no false negatives).
    pub fn may_contain(&self, k: KeywordId) -> bool {
        Self::positions(k)
            .into_iter()
            .all(|pos| self.bits[(pos / 64) as usize] & (1u64 << (pos % 64)) != 0)
    }

    /// Returns true if the filter *may* contain any keyword of `set`.
    pub fn may_intersect(&self, set: &KeywordSet) -> bool {
        set.iter().any(|k| self.may_contain(k))
    }

    /// Returns true if the filter *may* contain every keyword of `set`.
    pub fn may_contain_all(&self, set: &KeywordSet) -> bool {
        set.iter().all(|k| self.may_contain(k))
    }
}

impl Summary<PoiEntry> for BloomSummary {
    fn empty() -> Self {
        Self::new()
    }
    fn add_item(&mut self, item: &PoiEntry) {
        for k in item.keywords.iter() {
            self.insert(k);
        }
    }
    fn merge(&mut self, other: &Self) {
        for (a, b) in self.bits.iter_mut().zip(other.bits.iter()) {
            *a |= b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_data::PoiCollection;
    use soi_geo::Point;
    use soi_rtree::RTree;

    fn kws(ids: &[u32]) -> KeywordSet {
        KeywordSet::from_ids(ids.iter().map(|&i| KeywordId(i)))
    }

    #[test]
    fn no_false_negatives() {
        let mut f = BloomSummary::new();
        for k in 0..100u32 {
            f.insert(KeywordId(k * 7));
        }
        for k in 0..100u32 {
            assert!(f.may_contain(KeywordId(k * 7)));
        }
    }

    #[test]
    fn empty_filter_contains_nothing() {
        let f = BloomSummary::new();
        for k in 0..50u32 {
            assert!(!f.may_contain(KeywordId(k)));
        }
        assert!(!f.may_intersect(&kws(&[1, 2, 3])));
    }

    #[test]
    fn merge_is_union() {
        let mut a = BloomSummary::new();
        a.insert(KeywordId(1));
        let mut b = BloomSummary::new();
        b.insert(KeywordId(2));
        a.merge(&b);
        assert!(a.may_contain(KeywordId(1)));
        assert!(a.may_contain(KeywordId(2)));
    }

    #[test]
    fn set_level_queries() {
        let mut f = BloomSummary::new();
        f.insert(KeywordId(3));
        f.insert(KeywordId(5));
        assert!(f.may_intersect(&kws(&[3, 9])));
        assert!(f.may_contain_all(&kws(&[3, 5])));
        // may_contain_all on an unknown keyword is (almost surely) false
        // with a near-empty filter.
        assert!(!f.may_contain_all(&kws(&[3, 40])));
    }

    #[test]
    fn bloom_pruned_rtree_never_misses_matches() {
        // Use the Bloom summary in a real R-tree and compare a pruned
        // traversal against brute force: the filter may visit extra leaves
        // but must find every true match.
        let mut pois = PoiCollection::new();
        for i in 0..300u32 {
            pois.add(
                Point::new((i % 20) as f64, (i / 20) as f64),
                kws(&[i % 13, 100 + i % 7]),
            );
        }
        let entries: Vec<crate::ir_tree::PoiEntry> = pois
            .iter()
            .map(|p| crate::ir_tree::PoiEntry {
                id: p.id,
                pos: p.pos,
                keywords: p.keywords.clone(),
            })
            .collect();
        let tree: RTree<crate::ir_tree::PoiEntry, BloomSummary> = RTree::bulk_load(entries);

        for probe in [kws(&[0]), kws(&[5, 104]), kws(&[999])] {
            let mut found: Vec<u32> = Vec::new();
            tree.search_pruned(
                |_, summary| summary.may_intersect(&probe),
                |entry| {
                    if entry.keywords.intersects(&probe) {
                        found.push(entry.id.raw());
                    }
                },
            );
            found.sort_unstable();
            let want: Vec<u32> = pois
                .iter()
                .filter(|p| p.keywords.intersects(&probe))
                .map(|p| p.id.raw())
                .collect();
            assert_eq!(found, want);
        }
    }
}
