//! Process-wide metric instruments for the index layer.
//!
//! The ε-map cache counters are global (not per-index): a process
//! typically holds one [`PoiIndex`](crate::PoiIndex), and global atomics
//! let the cache sites record without threading instrument handles
//! through `&self` methods that are called under the cache lock. The
//! engine snapshots [`epsilon_cache_counters`] before and after a batch
//! to report per-batch deltas in its telemetry.

use soi_obs::metrics::{
    register_counter, register_histogram, Counter, Histogram, DEFAULT_LATENCY_BUCKETS,
};
use std::sync::OnceLock;

/// Global instruments fed by the index layer.
pub struct IndexMetrics {
    /// `soi_epsilon_cache_hits_total`: ε-map cache lookups served from
    /// the cache.
    pub eps_cache_hits: &'static Counter,
    /// `soi_epsilon_cache_misses_total`: lookups that had to build maps.
    pub eps_cache_misses: &'static Counter,
    /// `soi_epsilon_cache_evictions_total`: LRU evictions.
    pub eps_cache_evictions: &'static Counter,
    /// `soi_index_builds_total`: POI index builds.
    pub builds: &'static Counter,
    /// `soi_index_build_seconds`: wall-clock POI index build time.
    pub build_seconds: &'static Histogram,
}

/// The index instruments (registered on first use).
pub fn index_metrics() -> &'static IndexMetrics {
    static METRICS: OnceLock<IndexMetrics> = OnceLock::new();
    METRICS.get_or_init(|| IndexMetrics {
        eps_cache_hits: register_counter(
            "soi_epsilon_cache_hits_total",
            "Epsilon-map cache lookups served from the cache",
        ),
        eps_cache_misses: register_counter(
            "soi_epsilon_cache_misses_total",
            "Epsilon-map cache lookups that built new maps",
        ),
        eps_cache_evictions: register_counter(
            "soi_epsilon_cache_evictions_total",
            "Epsilon-map cache LRU evictions",
        ),
        builds: register_counter("soi_index_builds_total", "POI index builds"),
        build_seconds: register_histogram(
            "soi_index_build_seconds",
            "Wall-clock POI index build time",
            DEFAULT_LATENCY_BUCKETS,
        ),
    })
}

/// Point-in-time `(hits, misses, evictions)` of the ε-map cache counters.
/// Subtracting two snapshots gives a batch's cache behaviour.
pub fn epsilon_cache_counters() -> (u64, u64, u64) {
    let m = index_metrics();
    (
        m.eps_cache_hits.get(),
        m.eps_cache_misses.get(),
        m.eps_cache_evictions.get(),
    )
}

/// Forces registration of every index metric so a gather performed before
/// any query still exposes the full series set.
pub fn register_metrics() {
    let _ = index_metrics();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_snapshot_monotonically() {
        let before = epsilon_cache_counters();
        index_metrics().eps_cache_hits.inc();
        index_metrics().eps_cache_misses.inc();
        let after = epsilon_cache_counters();
        assert!(after.0 > before.0);
        assert!(after.1 > before.1);
        assert!(after.2 >= before.2);
    }
}
