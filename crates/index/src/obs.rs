//! Process-wide metric instruments for the index layer.
//!
//! The ε-map cache counters are global (not per-index): a process
//! typically holds one [`PoiIndex`](crate::PoiIndex), and global atomics
//! let the cache sites record without threading instrument handles
//! through `&self` methods that are called under the cache lock. The
//! engine snapshots [`epsilon_cache_counters`] before and after a batch
//! to report per-batch deltas in its telemetry.

use soi_obs::metrics::{
    register_counter, register_gauge, register_histogram, Counter, Gauge, Histogram,
    DEFAULT_LATENCY_BUCKETS,
};
use std::sync::OnceLock;

/// Global instruments fed by the index layer.
pub struct IndexMetrics {
    /// `soi_epsilon_cache_hits_total`: ε-map cache lookups served from
    /// the cache.
    pub eps_cache_hits: &'static Counter,
    /// `soi_epsilon_cache_misses_total`: lookups that had to build maps.
    pub eps_cache_misses: &'static Counter,
    /// `soi_epsilon_cache_evictions_total`: LRU evictions.
    pub eps_cache_evictions: &'static Counter,
    /// `soi_index_builds_total`: POI index builds.
    pub builds: &'static Counter,
    /// `soi_index_build_seconds`: wall-clock POI index build time.
    pub build_seconds: &'static Histogram,
    /// `soi_index_build_alloc_bytes`: heap bytes allocated process-wide
    /// (all build workers) during the most recent index build.
    pub build_alloc_bytes: &'static Gauge,
    /// `soi_index_build_allocations`: heap allocations process-wide during
    /// the most recent index build.
    pub build_allocations: &'static Gauge,
    /// `soi_index_build_peak_live_bytes`: process live-heap high-water mark
    /// observed by the end of the most recent index build.
    pub build_peak_live_bytes: &'static Gauge,
    /// `soi_snapshot_load_seconds`: wall-clock time of the most recent
    /// snapshot load (cold start from disk, validation included).
    pub snapshot_load_seconds: &'static Gauge,
    /// `soi_snapshot_write_seconds`: wall-clock time of the most recent
    /// snapshot write (encode + atomic rename).
    pub snapshot_write_seconds: &'static Gauge,
    /// `soi_snapshot_bytes`: on-disk size of the most recently
    /// loaded or written snapshot.
    pub snapshot_bytes: &'static Gauge,
    /// `soi_snapshot_loads_total`: successful snapshot loads.
    pub snapshot_loads: &'static Counter,
    /// `soi_snapshot_writes_total`: successful snapshot writes.
    pub snapshot_writes: &'static Counter,
    /// `soi_snapshot_rebuilds_total`: cache misses resolved by a fresh
    /// build (stale fingerprint, missing file, or lenient-mode fallback
    /// after a corrupt snapshot).
    pub snapshot_rebuilds: &'static Counter,
}

/// The index instruments (registered on first use).
pub fn index_metrics() -> &'static IndexMetrics {
    static METRICS: OnceLock<IndexMetrics> = OnceLock::new();
    METRICS.get_or_init(|| IndexMetrics {
        eps_cache_hits: register_counter(
            "soi_epsilon_cache_hits_total",
            "Epsilon-map cache lookups served from the cache",
        ),
        eps_cache_misses: register_counter(
            "soi_epsilon_cache_misses_total",
            "Epsilon-map cache lookups that built new maps",
        ),
        eps_cache_evictions: register_counter(
            "soi_epsilon_cache_evictions_total",
            "Epsilon-map cache LRU evictions",
        ),
        builds: register_counter("soi_index_builds_total", "POI index builds"),
        build_seconds: register_histogram(
            "soi_index_build_seconds",
            "Wall-clock POI index build time",
            DEFAULT_LATENCY_BUCKETS,
        ),
        build_alloc_bytes: register_gauge(
            "soi_index_build_alloc_bytes",
            "Heap bytes allocated process-wide during the most recent index build",
        ),
        build_allocations: register_gauge(
            "soi_index_build_allocations",
            "Heap allocations process-wide during the most recent index build",
        ),
        build_peak_live_bytes: register_gauge(
            "soi_index_build_peak_live_bytes",
            "Process live-heap high-water mark at the end of the most recent index build",
        ),
        snapshot_load_seconds: register_gauge(
            "soi_snapshot_load_seconds",
            "Wall-clock time of the most recent snapshot load",
        ),
        snapshot_write_seconds: register_gauge(
            "soi_snapshot_write_seconds",
            "Wall-clock time of the most recent snapshot write",
        ),
        snapshot_bytes: register_gauge(
            "soi_snapshot_bytes",
            "On-disk size of the most recently loaded or written snapshot",
        ),
        snapshot_loads: register_counter("soi_snapshot_loads_total", "Successful snapshot loads"),
        snapshot_writes: register_counter(
            "soi_snapshot_writes_total",
            "Successful snapshot writes",
        ),
        snapshot_rebuilds: register_counter(
            "soi_snapshot_rebuilds_total",
            "Index-cache misses resolved by a fresh build",
        ),
    })
}

/// Records the allocator deltas of one index build into the build gauges.
///
/// Build phases fan out over worker threads, so the per-thread
/// [`soi_obs::AllocScope`] cannot see all build allocations; the caller
/// passes process-wide [`soi_obs::alloc::totals`] snapshots taken on the
/// coordinating thread before and after the build instead.
pub fn record_build_alloc(before: soi_obs::alloc::AllocTotals, after: soi_obs::alloc::AllocTotals) {
    let m = index_metrics();
    m.build_alloc_bytes
        .set(after.allocated_bytes.saturating_sub(before.allocated_bytes) as f64);
    m.build_allocations
        .set(after.allocs.saturating_sub(before.allocs) as f64);
    m.build_peak_live_bytes.set(after.peak_bytes as f64);
}

/// Point-in-time `(hits, misses, evictions)` of the ε-map cache counters.
/// Subtracting two snapshots gives a batch's cache behaviour.
pub fn epsilon_cache_counters() -> (u64, u64, u64) {
    let m = index_metrics();
    (
        m.eps_cache_hits.get(),
        m.eps_cache_misses.get(),
        m.eps_cache_evictions.get(),
    )
}

/// Forces registration of every index metric so a gather performed before
/// any query still exposes the full series set.
pub fn register_metrics() {
    let _ = index_metrics();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_snapshot_monotonically() {
        let before = epsilon_cache_counters();
        index_metrics().eps_cache_hits.inc();
        index_metrics().eps_cache_misses.inc();
        let after = epsilon_cache_counters();
        assert!(after.0 > before.0);
        assert!(after.1 > before.1);
        assert!(after.2 >= before.2);
    }
}
