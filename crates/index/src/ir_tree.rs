//! A hybrid spatio-textual R-tree over POIs ("IR-tree lite").
//!
//! The single-POI retrieval the paper contrasts with (Sec. 2.1: the
//! location-aware top-k text retrieval of Cong et al. \[11\] "integrating the
//! inverted file for text retrieval and the R-tree for spatial proximity
//! querying"). Each R-tree node carries the union of its subtree's
//! keywords, so a top-k query descends only into subtrees that can contain
//! a match.
//!
//! This complements — and contrasts with — the street-level ranking of the
//! paper's main contribution: `top_k_relevant` answers *"which POIs"*,
//! k-SOI answers *"which streets"*.

use soi_common::PoiId;
use soi_data::PoiCollection;
use soi_geo::{Point, Rect};
use soi_rtree::{BoundedItem, RTree, Summary};
use soi_text::KeywordSet;

/// One POI as stored in the tree.
#[derive(Debug, Clone)]
pub struct PoiEntry {
    /// The POI's id.
    pub id: PoiId,
    /// Its location.
    pub pos: Point,
    /// Its keyword set (duplicated from the collection so node summaries
    /// can be built without external lookups).
    pub keywords: KeywordSet,
}

impl BoundedItem for PoiEntry {
    fn rect(&self) -> Rect {
        Rect::new(self.pos, self.pos)
    }
}

/// Node summary: the union of the subtree's keywords.
///
/// For very large vocabularies a Bloom filter would bound the summary
/// size; the datasets here have compact vocabularies, so the exact union
/// keeps pruning exact.
#[derive(Debug, Clone, Default)]
pub struct KeywordSummary {
    /// Union of subtree keywords.
    pub keywords: KeywordSet,
}

impl Summary<PoiEntry> for KeywordSummary {
    fn empty() -> Self {
        Self::default()
    }
    fn add_item(&mut self, item: &PoiEntry) {
        self.keywords = self.keywords.union(&item.keywords);
    }
    fn merge(&mut self, other: &Self) {
        self.keywords = self.keywords.union(&other.keywords);
    }
}

/// The hybrid spatio-textual POI tree.
///
/// ```
/// use soi_common::KeywordId;
/// use soi_data::PoiCollection;
/// use soi_geo::Point;
/// use soi_index::IrTree;
/// use soi_text::KeywordSet;
///
/// let mut pois = PoiCollection::new();
/// let cafe = KeywordSet::from_ids([KeywordId(0)]);
/// pois.add(Point::new(0.0, 0.0), cafe.clone());
/// pois.add(Point::new(5.0, 0.0), cafe.clone());
/// pois.add(Point::new(1.0, 0.0), KeywordSet::from_ids([KeywordId(1)]));
///
/// let tree = IrTree::build(&pois);
/// let hits = tree.top_k_relevant(Point::new(0.2, 0.0), &cafe, 1);
/// assert_eq!(hits[0].0.raw(), 0); // the café at the origin, not the non-café nearby
/// ```
#[derive(Debug)]
pub struct IrTree {
    tree: RTree<PoiEntry, KeywordSummary>,
}

impl IrTree {
    /// Builds the tree over all POIs of `pois`.
    pub fn build(pois: &PoiCollection) -> Self {
        Self::build_with_threads(pois, 0)
    }

    /// Builds the tree with an explicit worker-thread count (`0` = resolve
    /// automatically). The STR bulk load's tiling sorts run in parallel but
    /// produce the same tree for every thread count.
    pub fn build_with_threads(pois: &PoiCollection, threads: usize) -> Self {
        let entries: Vec<PoiEntry> = pois
            .iter()
            .map(|p| PoiEntry {
                id: p.id,
                pos: p.pos,
                keywords: p.keywords.clone(),
            })
            .collect();
        Self {
            tree: RTree::bulk_load_with_threads(entries, soi_rtree::DEFAULT_FANOUT, threads),
        }
    }

    /// Snapshot-encode access to the inner tree (see [`crate::snapshot`]).
    pub(crate) fn tree(&self) -> &RTree<PoiEntry, KeywordSummary> {
        &self.tree
    }

    /// Wraps a snapshot-reassembled tree.
    pub(crate) fn from_tree(tree: RTree<PoiEntry, KeywordSummary>) -> Self {
        Self { tree }
    }

    /// Number of indexed POIs.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// Returns true if no POIs are indexed.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// The `k` POIs nearest to `q` whose keywords intersect `keywords`,
    /// nearest first, with distances. Subtrees without any query keyword
    /// are pruned via the node summaries.
    pub fn top_k_relevant(&self, q: Point, keywords: &KeywordSet, k: usize) -> Vec<(PoiId, f64)> {
        self.tree
            .nearest_k_pruned(
                q,
                k,
                |_, summary| summary.keywords.intersects(keywords),
                |entry| entry.keywords.intersects(keywords),
            )
            .into_iter()
            .map(|(entry, d)| (entry.id, d))
            .collect()
    }

    /// All POIs within `dist` of `q` matching any of `keywords`, ascending
    /// by id.
    pub fn relevant_within(&self, q: Point, dist: f64, keywords: &KeywordSet) -> Vec<PoiId> {
        let mut out = Vec::new();
        self.tree.search_pruned(
            |rect, summary| {
                rect.mindist_to_point(q) <= dist && summary.keywords.intersects(keywords)
            },
            |entry| {
                if entry.pos.dist(q) <= dist && entry.keywords.intersects(keywords) {
                    out.push(entry.id);
                }
            },
        );
        out.sort_unstable();
        out
    }

    /// The `k` POIs nearest to `q` that contain **every** keyword of
    /// `keywords` (conjunctive semantics), nearest first.
    pub fn top_k_containing_all(
        &self,
        q: Point,
        keywords: &KeywordSet,
        k: usize,
    ) -> Vec<(PoiId, f64)> {
        self.tree
            .nearest_k_pruned(
                q,
                k,
                // A subtree can only contain a conjunctive match if its
                // keyword union covers the whole query.
                |_, summary| summary.keywords.intersection_size(keywords) == keywords.len(),
                |entry| entry.keywords.intersection_size(keywords) == keywords.len(),
            )
            .into_iter()
            .map(|(entry, d)| (entry.id, d))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_common::KeywordId;

    fn kws(ids: &[u32]) -> KeywordSet {
        KeywordSet::from_ids(ids.iter().map(|&i| KeywordId(i)))
    }

    fn sample() -> PoiCollection {
        let mut pois = PoiCollection::new();
        pois.add(Point::new(0.0, 0.0), kws(&[0]));
        pois.add(Point::new(1.0, 0.0), kws(&[1]));
        pois.add(Point::new(2.0, 0.0), kws(&[0, 1]));
        pois.add(Point::new(3.0, 0.0), kws(&[2]));
        pois.add(Point::new(0.0, 5.0), kws(&[0]));
        pois.add(Point::new(9.0, 9.0), kws(&[0, 2]));
        pois
    }

    #[test]
    fn top_k_relevant_orders_by_distance() {
        let tree = IrTree::build(&sample());
        assert_eq!(tree.len(), 6);
        let got = tree.top_k_relevant(Point::new(0.0, 0.0), &kws(&[0]), 3);
        let ids: Vec<u32> = got.iter().map(|&(id, _)| id.raw()).collect();
        // POIs with kw 0 sorted by distance from origin: #0 (0), #2 (2), #4 (5).
        assert_eq!(ids, vec![0, 2, 4]);
        assert_eq!(got[0].1, 0.0);
        assert_eq!(got[1].1, 2.0);
        assert_eq!(got[2].1, 5.0);
    }

    #[test]
    fn disjoint_keywords_return_nothing() {
        let tree = IrTree::build(&sample());
        assert!(tree.top_k_relevant(Point::ORIGIN, &kws(&[9]), 5).is_empty());
        assert!(tree
            .relevant_within(Point::ORIGIN, 100.0, &kws(&[9]))
            .is_empty());
    }

    #[test]
    fn relevant_within_matches_brute_force() {
        let pois = sample();
        let tree = IrTree::build(&pois);
        let q = Point::new(1.0, 1.0);
        for dist in [0.5, 2.0, 10.0] {
            for query in [kws(&[0]), kws(&[1, 2]), kws(&[0, 1, 2])] {
                let got = tree.relevant_within(q, dist, &query);
                let want: Vec<PoiId> = pois
                    .iter()
                    .filter(|p| p.keywords.intersects(&query))
                    .filter(|p| p.pos.dist(q) <= dist)
                    .map(|p| p.id)
                    .collect();
                assert_eq!(got, want, "dist {dist}");
            }
        }
    }

    #[test]
    fn conjunctive_semantics() {
        let tree = IrTree::build(&sample());
        let got = tree.top_k_containing_all(Point::ORIGIN, &kws(&[0, 1]), 5);
        // Only POI #2 has both keywords.
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0.raw(), 2);

        let got = tree.top_k_containing_all(Point::ORIGIN, &kws(&[0, 2]), 5);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0.raw(), 5);
    }

    #[test]
    fn empty_collection() {
        let tree = IrTree::build(&PoiCollection::new());
        assert!(tree.is_empty());
        assert!(tree.top_k_relevant(Point::ORIGIN, &kws(&[0]), 3).is_empty());
    }
}
