//! The POI grid index (paper Sec. 3.2.1).

use parking_lot::Mutex;
use soi_common::{
    effective_threads, f64_from_total_key, f64_total_key, par_chunk_map, par_sort_by,
    par_sort_unstable_by, CellId, FxHashMap, KeywordId, PoiId, SegmentId,
};
use soi_data::PoiCollection;
use soi_geo::{Grid, Point, Rect};
use soi_network::RoadNetwork;
use soi_text::{FlatPostings, KeywordSet};
use std::sync::Arc;

use crate::epsilon::EpsilonMaps;

/// Packs one global-index entry into a single sortable integer:
/// keyword (high 32) ‖ weight as an order-reversed totalOrder key (middle
/// 64) ‖ cell (low 32). Unsigned order over the packed keys is therefore
/// (keyword asc, weight desc, cell asc) — the global index's list order —
/// and the weight bits are exactly recoverable.
#[inline]
fn pack_global_entry(k: KeywordId, weight: f64, cell: CellId) -> u128 {
    (u128::from(k.0) << 96) | (u128::from(!f64_total_key(weight)) << 32) | u128::from(cell.0)
}

/// Inverse of [`pack_global_entry`], minus the keyword: the `(cell, weight)`
/// pair stored in the per-keyword global list.
#[inline]
fn unpack_global_entry(entry: u128) -> (CellId, f64) {
    let weight = f64_from_total_key(!((entry >> 32) as u64));
    (CellId(entry as u32), weight)
}

/// Capacity of the per-ε cache of augmented maps. Parameter sweeps touch a
/// handful of ε values; keeping the cache bounded stops a long-lived process
/// that sweeps many ε values from accumulating maps without limit.
const EPS_CACHE_CAPACITY: usize = 8;

/// Bounded LRU cache of [`EpsilonMaps`], keyed by `ε.to_bits()`.
#[derive(Debug, Default)]
struct EpsCache {
    /// Monotonic access counter; entries carry their last-access stamp.
    stamp: u64,
    /// ε-bits → (maps, last-access stamp).
    entries: FxHashMap<u64, (Arc<EpsilonMaps>, u64)>,
}

impl EpsCache {
    /// Looks up `key`, refreshing its recency on a hit.
    fn get(&mut self, key: u64) -> Option<Arc<EpsilonMaps>> {
        self.stamp += 1;
        let stamp = self.stamp;
        self.entries.get_mut(&key).map(|entry| {
            entry.1 = stamp;
            Arc::clone(&entry.0)
        })
    }

    /// Inserts `maps` under `key` (keeping an existing entry if one raced in
    /// first), refreshes its recency, and evicts the least recently used
    /// entries down to [`EPS_CACHE_CAPACITY`]. Returns the cached value.
    fn insert(&mut self, key: u64, maps: Arc<EpsilonMaps>) -> Arc<EpsilonMaps> {
        self.stamp += 1;
        let stamp = self.stamp;
        let entry = self.entries.entry(key).or_insert((maps, stamp));
        entry.1 = stamp;
        let out = Arc::clone(&entry.0);
        while self.entries.len() > EPS_CACHE_CAPACITY {
            // The just-touched entry holds the maximal stamp, so it is never
            // the eviction victim.
            let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|&(_, &(_, s))| s)
                .map(|(&k, _)| k)
            else {
                break;
            };
            self.entries.remove(&victim);
            crate::obs::index_metrics().eps_cache_evictions.inc();
        }
        out
    }

    fn clear(&mut self) {
        self.entries.clear();
    }
}

/// One occupied grid cell of the POI index.
#[derive(Debug, Clone)]
pub struct PoiCell {
    /// POIs located in this cell, sorted by id.
    pub pois: Vec<PoiId>,
    /// Total POI weight in the cell (`|Pc|` with unit weights).
    pub total_weight: f64,
    /// Local inverted index: keyword → POIs in this cell, sorted by id,
    /// in the allocation-lean CSR layout the bulk build produces.
    pub inverted: FlatPostings<PoiId>,
}

/// The spatio-textual POI index of Section 3.2.1.
///
/// Holds the five offline structures the SOI algorithm needs:
/// 1. the spatial grid with per-cell local inverted indexes;
/// 2. the global inverted index (keyword → `(cell, count)` sorted
///    decreasingly on count);
/// 3. the raster cell-to-segment map (segments passing through each cell);
/// 4. the raster segment-to-cell map;
/// 5. the list of segments sorted increasingly on length.
///
/// The ε-augmented versions of maps (3) and (4) are built at query time by
/// [`EpsilonMaps`] and cached here per ε value.
#[derive(Debug)]
pub struct PoiIndex {
    grid: Grid,
    cells: FxHashMap<CellId, PoiCell>,
    /// keyword → (cell, summed weight of POIs with that keyword), desc.
    global: FxHashMap<KeywordId, Vec<(CellId, f64)>>,
    /// Segments sorted increasingly by length (the basis of SL3).
    segments_by_len: Vec<SegmentId>,
    /// The static raster cell-to-segment map (Sec. 3.2.1): segments passing
    /// through each cell (occupied or not), built offline. The ε-augmented
    /// `Lε(c)` is derived from it lazily at query time.
    raster: FxHashMap<CellId, Vec<SegmentId>>,
    /// Bounded per-ε LRU cache of augmented maps (street segments and POIs
    /// are static).
    eps_cache: Mutex<EpsCache>,
}

impl PoiIndex {
    /// Builds the index over `pois` with the given grid `cell_size`, for the
    /// road network `network`.
    ///
    /// The grid covers the union of the network and POI extents so that every
    /// POI falls into exactly one cell.
    ///
    /// # Panics
    /// Panics if `cell_size` is not strictly positive.
    pub fn build(network: &RoadNetwork, pois: &PoiCollection, cell_size: f64) -> Self {
        Self::build_with_threads(network, pois, cell_size, 0)
    }

    /// Builds the index with an explicit worker-thread count (`0` = resolve
    /// automatically, see [`effective_threads`]).
    ///
    /// The build is chunk-partitioned and deterministic: every structure is
    /// assembled by sorting globally ordered intermediate pairs, and all
    /// floating-point sums run in ascending POI id order, so the result is
    /// byte-identical for every thread count (including 1).
    ///
    /// # Panics
    /// Panics if `cell_size` is not strictly positive.
    pub fn build_with_threads(
        network: &RoadNetwork,
        pois: &PoiCollection,
        cell_size: f64,
        threads: usize,
    ) -> Self {
        let threads = effective_threads((threads > 0).then_some(threads));
        let build_span = soi_obs::trace::span(soi_obs::names::spans::INDEX_BUILD);
        soi_obs::trace::counter(soi_obs::names::tracks::INDEX_BUILD_THREADS, threads as f64);
        let build_start = std::time::Instant::now();
        let alloc_before = soi_obs::alloc::totals();
        let extent = match (network.extent(), pois.extent()) {
            (Some(a), Some(b)) => a.union(&b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => Rect::new(Point::ORIGIN, Point::new(1.0, 1.0)),
        };
        let grid = Grid::covering(extent, cell_size);

        let phase1_span = soi_obs::trace::span(soi_obs::names::spans::INDEX_BUILD_FLATTEN);
        // Phase 1 — one cache-friendly pass over the POI slice per chunk:
        // emit the packed (cell ‖ poi) bucket key for every indexable POI,
        // and flatten all keyword sets into a CSR sidecar (per-POI counts +
        // one flat id array) so later phases re-read keywords from a single
        // contiguous array instead of per-POI heap nodes. Chunks flatten in
        // chunk order (= ascending POI order), so the arrays are independent
        // of the thread count.
        let parts = par_chunk_map(pois.as_slice(), threads, |_, chunk| {
            let mut keys: Vec<u64> = Vec::with_capacity(chunk.len());
            let mut counts: Vec<u32> = Vec::with_capacity(chunk.len());
            let mut flat: Vec<KeywordId> = Vec::new();
            let mut max_kw = 0u32;
            for poi in chunk {
                counts.push(poi.keywords.len() as u32);
                flat.extend_from_slice(poi.keywords.ids());
                if let Some(&k) = poi.keywords.ids().last() {
                    max_kw = max_kw.max(k.0);
                }
                // POIs outside the grid (non-finite position) are unindexable.
                if let Some(coord) = grid.cell_containing(poi.pos) {
                    keys.push(u64::from(grid.cell_id(coord).0) << 32 | u64::from(poi.id.0));
                }
            }
            (keys, counts, flat, max_kw)
        });
        let mut keys: Vec<u64> = Vec::with_capacity(pois.len());
        let mut kw_offsets: Vec<u32> = Vec::with_capacity(pois.len() + 1);
        let mut kw_flat: Vec<KeywordId> = Vec::new();
        let mut max_kw = 0u32;
        kw_offsets.push(0);
        let mut off = 0u32;
        for (k, counts, flat, m) in parts {
            keys.extend(k);
            for c in counts {
                off += c;
                kw_offsets.push(off);
            }
            kw_flat.extend(flat);
            max_kw = max_kw.max(m);
        }
        let weights: Vec<f64> = pois.as_slice().iter().map(|p| p.weight).collect();

        // Sort keys by (cell, poi). The input is already poi-ascending, so
        // one stable counting pass over the dense cell ids completes the
        // sort in O(n + cells); the comparison fallback (for degenerate
        // grids) yields the identical permutation because keys are unique.
        let num_cells = grid.num_cells();
        if soi_common::bucket_sort_worthwhile(keys.len(), num_cells) {
            keys = soi_common::bucket_sort_stable(&keys, num_cells as u32, |&k| (k >> 32) as u32);
        } else {
            par_sort_unstable_by(&mut keys, threads, |a, b| a.cmp(b));
        }

        // Group boundaries: one contiguous key run per occupied cell (the
        // cell occupies the key's high bits), POIs ascending within each run.
        let mut groups: Vec<(CellId, usize, usize)> = Vec::new();
        let mut i = 0;
        while i < keys.len() {
            let cell = (keys[i] >> 32) as u32;
            let s = i;
            while i < keys.len() && (keys[i] >> 32) as u32 == cell {
                i += 1;
            }
            groups.push((CellId(cell), s, i));
        }

        drop(phase1_span);
        let phase2_span = soi_obs::trace::span(soi_obs::names::spans::INDEX_BUILD_CELLS);

        // Per-cell (keyword, poi) ordering: with a dense vocabulary, one
        // stable counting pass per cell over a reusable histogram sorts the
        // cell's pairs in O(pairs + vocab); the pairs arrive poi-major (POIs
        // ascending, keywords ascending within each POI), so bucketing by
        // keyword leaves POIs ascending within each keyword run. Cells where
        // the vocabulary dwarfs the pair count (and all builds over huge
        // vocabularies) fall back to a comparison sort of the packed pairs,
        // which (pairs are unique) produces the identical order.
        let num_kws = max_kw as usize + 1;
        let cell_counting = num_kws <= 65536;

        // A chunk's output: the built cells plus its packed global-index
        // contributions.
        type ChunkOut = (Vec<(CellId, PoiCell)>, Vec<u128>);

        // Phase 2 — per-cell structures: each worker takes a contiguous run
        // of whole groups and builds the cell's POI list, weight total
        // (summed in ascending id order, matching the sequential build
        // bit-for-bit), and CSR local index — no per-POI hashing, and every
        // lookup hits the id-indexed weight array or the flat keyword
        // sidecar. Each group also emits its packed (keyword, weight, cell)
        // contributions to the global index.
        let per_chunk: Vec<ChunkOut> = par_chunk_map(&groups, threads, |_, gchunk| {
            let mut cells_part = Vec::with_capacity(gchunk.len());
            let mut triples: Vec<u128> = Vec::new();
            let mut pairs: Vec<u64> = Vec::new();
            let mut sorted: Vec<u64> = Vec::new();
            // Keyword histogram, reused (and re-zeroed) across cells.
            let mut hist: Vec<u32> = vec![0; if cell_counting { num_kws } else { 0 }];
            for &(cell_id, s, e) in gchunk {
                let members = &keys[s..e];
                let mut cell_pois = Vec::with_capacity(members.len());
                let mut total_weight = 0.0;
                pairs.clear();
                for &key in members {
                    let pid = key as u32;
                    cell_pois.push(PoiId(pid));
                    total_weight += weights[pid as usize];
                    let ks = kw_offsets[pid as usize] as usize;
                    let ke = kw_offsets[pid as usize + 1] as usize;
                    for &k in &kw_flat[ks..ke] {
                        pairs.push(u64::from(k.0) << 32 | u64::from(pid));
                    }
                }
                // The histogram fill(0) bounds the per-cell counting
                // cost to O(pairs), so the whole phase stays linear.
                if cell_counting && num_kws <= 8 * pairs.len() + 64 {
                    for &p in &pairs {
                        hist[(p >> 32) as usize] += 1;
                    }
                    let mut sum = 0u32;
                    for c in hist.iter_mut() {
                        let n = *c;
                        *c = sum;
                        sum += n;
                    }
                    sorted.clear();
                    sorted.resize(pairs.len(), 0);
                    for &p in &pairs {
                        let cur = &mut hist[(p >> 32) as usize];
                        sorted[*cur as usize] = p;
                        *cur += 1;
                    }
                    hist.fill(0);
                    std::mem::swap(&mut pairs, &mut sorted);
                } else {
                    pairs.sort_unstable();
                }
                // Fused run scan: the per-keyword weight sums (in
                // ascending POI order) for the global index and the CSR
                // run directory fall out of one pass; the postings column
                // is the poi half of the sorted pairs verbatim.
                let docs: Vec<PoiId> = pairs.iter().map(|&p| PoiId(p as u32)).collect();
                let mut runs: Vec<(KeywordId, u32)> = Vec::new();
                let mut r = 0;
                while r < pairs.len() {
                    let k = (pairs[r] >> 32) as u32;
                    let mut weight = 0.0;
                    while r < pairs.len() && (pairs[r] >> 32) as u32 == k {
                        weight += weights[pairs[r] as u32 as usize];
                        r += 1;
                    }
                    triples.push(pack_global_entry(KeywordId(k), weight, cell_id));
                    runs.push((KeywordId(k), r as u32));
                }
                cells_part.push((
                    cell_id,
                    PoiCell {
                        pois: cell_pois,
                        total_weight,
                        inverted: FlatPostings::from_raw_parts(members.len(), runs, docs),
                    },
                ));
            }
            (cells_part, triples)
        });

        let mut cells: FxHashMap<CellId, PoiCell> = FxHashMap::default();
        cells.reserve(groups.len());
        let mut all_triples: Vec<u128> = Vec::new();
        for (cells_part, triples) in per_chunk {
            cells.extend(cells_part);
            all_triples.extend(triples);
        }

        drop(phase2_span);
        let phase3_span = soi_obs::trace::span(soi_obs::names::spans::INDEX_BUILD_GLOBAL);

        // Phase 3 — global inverted index: the packed keys order by
        // (keyword asc, weight desc in totalOrder, cell asc) — the same
        // total order as the sequential per-list sorts — and are unique per
        // (keyword, cell), so one deterministic unstable sort plus a
        // run-partition rebuilds every per-keyword list exactly.
        par_sort_unstable_by(&mut all_triples, threads, |a, b| a.cmp(b));
        let mut global: FxHashMap<KeywordId, Vec<(CellId, f64)>> = FxHashMap::default();
        let mut i = 0;
        while i < all_triples.len() {
            let k = (all_triples[i] >> 96) as u32;
            let mut j = i;
            while j < all_triples.len() && (all_triples[j] >> 96) as u32 == k {
                j += 1;
            }
            global.insert(
                KeywordId(k),
                all_triples[i..j]
                    .iter()
                    .map(|&t| unpack_global_entry(t))
                    .collect(),
            );
            i = j;
        }

        drop(phase3_span);
        let phase4_span = soi_obs::trace::span(soi_obs::names::spans::INDEX_BUILD_RASTER);

        // Phase 4 — static raster map: rasterise segments in parallel chunks
        // into packed (cell ‖ segment) keys. Keys are unique (a segment hits
        // a cell at most once), and their order — cell asc, then segment
        // asc — is exactly what the sequential per-segment insertion
        // produced, so a deterministic unstable sort plus a run-partition
        // rebuilds the map.
        let segs = network.segments();
        let mut seg_cells: Vec<u64> = par_chunk_map(segs, threads, |_, chunk| {
            let mut out = Vec::new();
            for seg in chunk {
                grid.for_each_cell_near_segment(&seg.geom, 0.0, |coord| {
                    out.push(u64::from(grid.cell_id(coord).0) << 32 | u64::from(seg.id.0));
                });
            }
            out
        })
        .into_iter()
        .flatten()
        .collect();
        // Segment-ascending input + one stable counting pass by cell =
        // (cell, segment) order, the same permutation the comparison sort
        // of these unique keys produces.
        if soi_common::bucket_sort_worthwhile(seg_cells.len(), num_cells) {
            seg_cells =
                soi_common::bucket_sort_stable(&seg_cells, num_cells as u32, |&k| (k >> 32) as u32);
        } else {
            par_sort_unstable_by(&mut seg_cells, threads, |a, b| a.cmp(b));
        }
        let mut raster: FxHashMap<CellId, Vec<SegmentId>> = FxHashMap::default();
        let mut i = 0;
        while i < seg_cells.len() {
            let c = (seg_cells[i] >> 32) as u32;
            let mut j = i;
            while j < seg_cells.len() && (seg_cells[j] >> 32) as u32 == c {
                j += 1;
            }
            raster.insert(
                CellId(c),
                seg_cells[i..j]
                    .iter()
                    .map(|&e| SegmentId(e as u32))
                    .collect(),
            );
            i = j;
        }

        drop(phase4_span);
        let phase5_span = soi_obs::trace::span(soi_obs::names::spans::INDEX_BUILD_LENGTHS);

        // Phase 5 — length-sorted segment list (the SL3 order): precompute
        // the keys once and sort by the (length, id) total order.
        let mut len_keys: Vec<(f64, SegmentId)> = segs.iter().map(|s| (s.len(), s.id)).collect();
        par_sort_by(&mut len_keys, threads, |a, b| {
            a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1))
        });
        let segments_by_len = len_keys.into_iter().map(|(_, id)| id).collect();

        drop(phase5_span);
        drop(build_span);
        let m = crate::obs::index_metrics();
        m.builds.inc();
        m.build_seconds.observe_duration(build_start.elapsed());
        crate::obs::record_build_alloc(alloc_before, soi_obs::alloc::totals());

        Self {
            grid,
            cells,
            global,
            segments_by_len,
            raster,
            eps_cache: Mutex::new(EpsCache::default()),
        }
    }

    /// Incrementally inserts a POI added to the collection after the index
    /// was built (the paper's structures are "created and maintained
    /// offline"; this is the maintenance path).
    ///
    /// POIs must be inserted in ascending id order (postings stay sorted),
    /// and the location must lie within the grid extent fixed at build
    /// time. Cached ε-maps are invalidated, since the set of occupied cells
    /// may have grown.
    ///
    /// # Errors
    /// Rejects positions outside the grid extent.
    pub fn insert(&mut self, poi: &soi_data::Poi) -> soi_common::Result<()> {
        let coord = self.grid.cell_containing(poi.pos).ok_or_else(|| {
            soi_common::SoiError::invalid(format!(
                "POI at {} lies outside the index extent; rebuild the index",
                poi.pos
            ))
        })?;
        let id = self.grid.cell_id(coord);
        let cell = self.cells.entry(id).or_insert_with(|| PoiCell {
            pois: Vec::new(),
            total_weight: 0.0,
            inverted: FlatPostings::new(),
        });
        cell.pois.push(poi.id);
        cell.total_weight += poi.weight;
        cell.inverted.add_document(poi.id, poi.keywords.iter());

        for k in poi.keywords.iter() {
            let list = self.global.entry(k).or_default();
            match list.iter_mut().find(|(c, _)| *c == id) {
                Some(entry) => entry.1 += poi.weight,
                None => list.push((id, poi.weight)),
            }
            list.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        }

        // Newly occupied cells change the ε-augmented maps.
        self.eps_cache.lock().clear();
        Ok(())
    }

    /// Segments passing through cell `id` (the static raster map; empty if
    /// no segment crosses the cell).
    pub fn raster_segments_of_cell(&self, id: CellId) -> &[SegmentId] {
        self.raster.get(&id).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Lazy `Cε(ℓ)`: occupied cells within `eps` of `geom`, ascending ids.
    pub fn occupied_cells_near_segment(&self, geom: &soi_geo::LineSeg, eps: f64) -> Vec<CellId> {
        let mut cells = Vec::new();
        self.occupied_cells_near_segment_into(geom, eps, &mut cells);
        cells
    }

    /// Allocation-reusing form of
    /// [`occupied_cells_near_segment`](Self::occupied_cells_near_segment):
    /// clears `out` and fills it with the occupied cells within `eps` of
    /// `geom`, ascending. The hot query loop calls this once per popped
    /// segment with a scratch vector.
    pub fn occupied_cells_near_segment_into(
        &self,
        geom: &soi_geo::LineSeg,
        eps: f64,
        out: &mut Vec<CellId>,
    ) {
        out.clear();
        self.grid.for_each_cell_near_segment(geom, eps, |coord| {
            let c = self.grid.cell_id(coord);
            if self.cells.contains_key(&c) {
                out.push(c);
            }
        });
        out.sort_unstable();
    }

    /// O(1) upper bound on `|Cε(ℓ)|`: the number of grid cells overlapping
    /// the ε-dilated bounding box of the segment. Used to order SL2 without
    /// rasterising every segment at query time.
    pub fn upper_cell_count(&self, geom: &soi_geo::LineSeg, eps: f64) -> usize {
        self.grid
            .count_cells_in_rect(&geom.bounding_rect().expand(eps))
    }

    /// Lazy `Lε(c)`: all segments within `eps` of cell `id`, ascending,
    /// derived from the static raster map by scanning the Chebyshev ring of
    /// radius `⌈ε/h⌉ + 1` around the cell and filtering by exact distance.
    pub fn segments_within_eps_of_cell(
        &self,
        network: &RoadNetwork,
        id: CellId,
        eps: f64,
    ) -> Vec<SegmentId> {
        let coord = self.grid.coord_of(id);
        let rect = self.grid.cell_rect(coord);
        // A point within eps of the cell lies at most eps beyond the cell
        // boundary, i.e. within floor((eps + h)/h) cells (half-open cells).
        let h = self.grid.cell_size();
        let radius = ((eps + h) / h).floor() as u32;
        let mut out: Vec<SegmentId> = Vec::new();
        for near in self.grid.neighborhood(coord, radius) {
            out.extend_from_slice(self.raster_segments_of_cell(self.grid.cell_id(near)));
        }
        out.sort_unstable();
        out.dedup();
        let dilated = rect.expand(eps);
        out.retain(|&seg| {
            let geom = network.segment(seg).geom;
            dilated.intersects(&geom.bounding_rect()) && rect.within_dist_of_segment(&geom, eps)
        });
        out
    }

    /// Superset of `Lε(c)`: segments passing through the Chebyshev ring that
    /// could reach within `eps` of cell `id`, without the exact distance
    /// filter. Sound for the SOI algorithm's touch semantics (a touched
    /// segment ignores cells outside its own `Cε` list) and ~2× cheaper per
    /// popped cell than [`PoiIndex::segments_within_eps_of_cell`].
    pub fn segments_near_cell_superset(&self, id: CellId, eps: f64) -> Vec<SegmentId> {
        let mut out = Vec::new();
        self.segments_near_cell_superset_into(id, eps, &mut out);
        out
    }

    /// Allocation-reusing form of
    /// [`segments_near_cell_superset`](Self::segments_near_cell_superset):
    /// clears `out` and fills it with the superset segments, ascending and
    /// deduplicated. The hot query loop calls this once per popped cell with
    /// a scratch vector.
    pub fn segments_near_cell_superset_into(&self, id: CellId, eps: f64, out: &mut Vec<SegmentId>) {
        out.clear();
        let coord = self.grid.coord_of(id);
        let h = self.grid.cell_size();
        let radius = ((eps + h) / h).floor() as u32;
        self.grid.for_each_in_neighborhood(coord, radius, |near| {
            out.extend_from_slice(self.raster_segments_of_cell(self.grid.cell_id(near)));
        });
        out.sort_unstable();
        out.dedup();
    }

    /// Exact weighted mass of a segment under `query` and `eps`
    /// (Definition 1), with the ε-dilation computed on the fly.
    pub fn segment_mass_lazy(
        &self,
        pois: &PoiCollection,
        network: &RoadNetwork,
        seg: SegmentId,
        query: &KeywordSet,
        eps: f64,
    ) -> f64 {
        let geom = network.segment(seg).geom;
        self.occupied_cells_near_segment(&geom, eps)
            .into_iter()
            .map(|c| self.cell_mass_for_segment(pois, c, &geom, query, eps))
            .sum()
    }

    /// The underlying grid.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// The cell with id `id`, if occupied.
    pub fn cell(&self, id: CellId) -> Option<&PoiCell> {
        self.cells.get(&id)
    }

    /// Total POI weight in cell `id` (0.0 if unoccupied).
    pub fn cell_total_weight(&self, id: CellId) -> f64 {
        self.cells.get(&id).map_or(0.0, |c| c.total_weight)
    }

    /// Number of occupied cells.
    pub fn num_occupied_cells(&self) -> usize {
        self.cells.len()
    }

    /// Iterates over occupied cells in unspecified order.
    pub fn occupied_cells(&self) -> impl Iterator<Item = (CellId, &PoiCell)> {
        self.cells.iter().map(|(&id, c)| (id, c))
    }

    /// The global inverted list for keyword `k`: `(cell, count)` sorted
    /// decreasingly on count. Empty if the keyword occurs nowhere.
    pub fn global_postings(&self, k: KeywordId) -> &[(CellId, f64)] {
        self.global.get(&k).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Segment ids sorted increasingly by segment length (the SL3 order).
    pub fn segments_by_len(&self) -> &[SegmentId] {
        &self.segments_by_len
    }

    /// Returns the ε-augmented cell↔segment maps, building and caching them
    /// on first use for each distinct ε.
    ///
    /// The cache is a bounded LRU of [`EPS_CACHE_CAPACITY`] entries: sweeping
    /// many ε values (as the experiment harness does) evicts the least
    /// recently used maps instead of growing without limit. The maps are
    /// built outside the cache lock, so concurrent queries at other ε values
    /// are not blocked; if two threads race to build the same ε, the first
    /// insertion wins and both receive the same [`Arc`].
    pub fn epsilon_maps(&self, network: &RoadNetwork, eps: f64) -> Arc<EpsilonMaps> {
        let key = eps.to_bits();
        if let Some(maps) = self.eps_cache.lock().get(key) {
            crate::obs::index_metrics().eps_cache_hits.inc();
            return maps;
        }
        crate::obs::index_metrics().eps_cache_misses.inc();
        let maps = {
            let _span = soi_obs::trace::span(soi_obs::names::spans::EPS_MAPS_BUILD);
            Arc::new(EpsilonMaps::build(network, self, eps))
        };
        self.eps_cache.lock().insert(key, maps)
    }

    /// Snapshot-encode access to the private parts (see [`crate::snapshot`]).
    #[allow(clippy::type_complexity)]
    pub(crate) fn snapshot_parts(
        &self,
    ) -> (
        &Grid,
        &FxHashMap<CellId, PoiCell>,
        &FxHashMap<KeywordId, Vec<(CellId, f64)>>,
        &[SegmentId],
        &FxHashMap<CellId, Vec<SegmentId>>,
    ) {
        (
            &self.grid,
            &self.cells,
            &self.global,
            &self.segments_by_len,
            &self.raster,
        )
    }

    /// Reassembles an index from snapshot-decoded parts. The decoder
    /// guarantees the maps were populated with the build path's reserve
    /// calls and ascending-key insertion order, so the result behaves
    /// identically to a freshly built index.
    pub(crate) fn from_snapshot_parts(
        grid: Grid,
        cells: FxHashMap<CellId, PoiCell>,
        global: FxHashMap<KeywordId, Vec<(CellId, f64)>>,
        segments_by_len: Vec<SegmentId>,
        raster: FxHashMap<CellId, Vec<SegmentId>>,
    ) -> Self {
        Self {
            grid,
            cells,
            global,
            segments_by_len,
            raster,
            eps_cache: Mutex::new(EpsCache::default()),
        }
    }

    /// Seeds the ε-map cache with snapshot-decoded maps so the first query
    /// at that ε skips the augmentation pass entirely.
    pub(crate) fn preload_epsilon_maps(&self, maps: Arc<EpsilonMaps>) {
        let key = maps.eps().to_bits();
        drop(self.eps_cache.lock().insert(key, maps));
    }

    /// Drops all cached ε-augmented maps.
    ///
    /// The experiment harness calls this between timed runs so that each
    /// measured query pays the full query-time map augmentation, as in the
    /// paper's methodology.
    pub fn clear_epsilon_cache(&self) {
        self.eps_cache.lock().clear();
    }

    /// Number of ε values currently cached (at most [`EPS_CACHE_CAPACITY`]).
    pub fn epsilon_cache_len(&self) -> usize {
        self.eps_cache.lock().entries.len()
    }

    /// Upper bound on the weighted number of POIs in cell `id` matching any
    /// keyword of `query`: `min(|Pc|, Σ_ψ I[ψ][c])` (Alg. 1 line 2).
    pub fn cell_relevant_upper(&self, id: CellId, query: &KeywordSet) -> f64 {
        let Some(cell) = self.cells.get(&id) else {
            return 0.0;
        };
        let mut sum = 0.0;
        for k in query.iter() {
            if let Some(list) = self.global.get(&k) {
                // Linear scan is fine: lists are per-keyword and short per
                // cell lookup happens once per SL1 build entry.
                if let Some(&(_, w)) = list.iter().find(|&&(c, _)| c == id) {
                    sum += w;
                }
            }
        }
        sum.min(cell.total_weight)
    }

    /// Exact weighted mass contribution of cell `id` to segment `seg_geom`:
    /// the summed weight of distinct POIs in the cell that match `query` and
    /// lie within `eps` of the segment (Procedure UpdateInterest).
    pub fn cell_mass_for_segment(
        &self,
        pois: &PoiCollection,
        id: CellId,
        seg_geom: &soi_geo::LineSeg,
        query: &KeywordSet,
        eps: f64,
    ) -> f64 {
        let Some(cell) = self.cells.get(&id) else {
            return 0.0;
        };
        let mut mass = 0.0;
        cell.inverted.for_each_matching(query.ids(), |pid| {
            let poi = pois.get(pid);
            if seg_geom.dist_sq_to_point(poi.pos) <= eps * eps {
                mass += poi.weight;
            }
        });
        mass
    }

    /// Exact weighted mass of a whole segment under `query` and `eps`
    /// (Definition 1), computed through the grid.
    pub fn segment_mass(
        &self,
        pois: &PoiCollection,
        network: &RoadNetwork,
        seg: SegmentId,
        query: &KeywordSet,
        maps: &EpsilonMaps,
    ) -> f64 {
        let geom = network.segment(seg).geom;
        maps.cells_of_segment(seg)
            .iter()
            .map(|&c| self.cell_mass_for_segment(pois, c, &geom, query, maps.eps()))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_common::KeywordId;
    use soi_geo::LineSeg;

    fn kws(ids: &[u32]) -> KeywordSet {
        KeywordSet::from_ids(ids.iter().map(|&i| KeywordId(i)))
    }

    /// One horizontal street at y=0 from x=0..10, POIs sprinkled around it.
    fn setup() -> (RoadNetwork, PoiCollection, PoiIndex) {
        let mut b = RoadNetwork::builder();
        b.add_street_from_points(
            "Main",
            &[
                Point::new(0.0, 0.0),
                Point::new(5.0, 0.0),
                Point::new(10.0, 0.0),
            ],
        );
        let network = b.build().unwrap();
        let mut pois = PoiCollection::new();
        pois.add(Point::new(1.0, 0.5), kws(&[0])); // near seg 0
        pois.add(Point::new(1.2, 0.6), kws(&[0, 1])); // near seg 0, same cell as above
        pois.add(Point::new(7.0, -0.5), kws(&[1])); // near seg 1
        pois.add(Point::new(7.0, 9.0), kws(&[0])); // far away
        let index = PoiIndex::build(&network, &pois, 1.0);
        (network, pois, index)
    }

    #[test]
    fn cells_are_populated_sorted() {
        let (_, _, index) = setup();
        assert!(index.num_occupied_cells() >= 3);
        for (_, cell) in index.occupied_cells() {
            let mut sorted = cell.pois.clone();
            sorted.sort();
            assert_eq!(sorted, cell.pois);
            assert!(cell.total_weight >= cell.pois.len() as f64 - 1e-9);
        }
    }

    #[test]
    fn global_postings_sorted_desc() {
        let (_, _, index) = setup();
        let postings = index.global_postings(KeywordId(0));
        assert!(!postings.is_empty());
        for w in postings.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        // Total count across cells for keyword 0 = 3 POIs.
        let total: f64 = postings.iter().map(|&(_, w)| w).sum();
        assert_eq!(total, 3.0);
        assert!(index.global_postings(KeywordId(99)).is_empty());
    }

    #[test]
    fn segments_sorted_by_len() {
        let (network, _, index) = setup();
        let by_len = index.segments_by_len();
        assert_eq!(by_len.len(), 2);
        for w in by_len.windows(2) {
            assert!(network.segment(w[0]).len() <= network.segment(w[1]).len());
        }
    }

    #[test]
    fn cell_relevant_upper_respects_cell_total() {
        let (_, _, index) = setup();
        // POI 0 and 1 are both in the cell at (1, 0.x): keyword 0 appears in
        // both, keyword 1 in one. Upper for {0,1} is min(|Pc|=2, 2+1=3) = 2.
        let coord = index.grid().cell_containing(Point::new(1.0, 0.5)).unwrap();
        let id = index.grid().cell_id(coord);
        assert_eq!(index.cell_relevant_upper(id, &kws(&[0, 1])), 2.0);
        assert_eq!(index.cell_relevant_upper(id, &kws(&[0])), 2.0);
        assert_eq!(index.cell_relevant_upper(id, &kws(&[1])), 1.0);
        assert_eq!(index.cell_relevant_upper(id, &kws(&[5])), 0.0);
    }

    #[test]
    fn cell_mass_counts_distinct_matching_pois_within_eps() {
        let (_, pois, index) = setup();
        let coord = index.grid().cell_containing(Point::new(1.0, 0.5)).unwrap();
        let id = index.grid().cell_id(coord);
        let seg = LineSeg::new(Point::new(0.0, 0.0), Point::new(5.0, 0.0));
        // eps = 0.65: both POIs within reach; multi-keyword query counts each once.
        assert_eq!(
            index.cell_mass_for_segment(&pois, id, &seg, &kws(&[0, 1]), 0.65),
            2.0
        );
        // eps = 0.55: only the POI at distance 0.5.
        assert_eq!(
            index.cell_mass_for_segment(&pois, id, &seg, &kws(&[0, 1]), 0.55),
            1.0
        );
        // Non-matching query.
        assert_eq!(
            index.cell_mass_for_segment(&pois, id, &seg, &kws(&[7]), 1.0),
            0.0
        );
    }

    #[test]
    fn segment_mass_matches_brute_force() {
        let (network, pois, index) = setup();
        let eps = 0.75;
        let maps = index.epsilon_maps(&network, eps);
        let query = kws(&[0, 1]);
        for seg in network.segments() {
            let brute: f64 = pois
                .iter()
                .filter(|p| p.keywords.intersects(&query))
                .filter(|p| seg.geom.dist_to_point(p.pos) <= eps)
                .map(|p| p.weight)
                .sum();
            let via_index = index.segment_mass(&pois, &network, seg.id, &query, &maps);
            assert_eq!(via_index, brute, "segment {}", seg.id);
        }
    }

    #[test]
    fn lazy_maps_match_eager_epsilon_maps() {
        let (network, _, index) = setup();
        for eps in [0.0, 0.3, 0.75, 1.5] {
            let maps = index.epsilon_maps(&network, eps);
            for seg in network.segments() {
                let lazy = index.occupied_cells_near_segment(&seg.geom, eps);
                assert_eq!(lazy.as_slice(), maps.cells_of_segment(seg.id), "eps {eps}");
                assert!(index.upper_cell_count(&seg.geom, eps) >= lazy.len());
            }
            for (cell, _) in index.occupied_cells() {
                let lazy = index.segments_within_eps_of_cell(&network, cell, eps);
                let mut eager = maps.segments_of_cell(cell).to_vec();
                eager.sort_unstable();
                assert_eq!(lazy, eager, "eps {eps} cell {cell:?}");
            }
        }
    }

    #[test]
    fn segment_mass_lazy_matches_eager() {
        let (network, pois, index) = setup();
        let eps = 0.7;
        let maps = index.epsilon_maps(&network, eps);
        let query = kws(&[0, 1]);
        for seg in network.segments() {
            assert_eq!(
                index.segment_mass_lazy(&pois, &network, seg.id, &query, eps),
                index.segment_mass(&pois, &network, seg.id, &query, &maps)
            );
        }
    }

    #[test]
    fn raster_contains_crossed_cells() {
        let (network, _, index) = setup();
        let grid = index.grid();
        for seg in network.segments() {
            // The midpoint's cell must list the segment.
            if let Some(c) = grid.cell_containing(seg.geom.midpoint()) {
                assert!(
                    index
                        .raster_segments_of_cell(grid.cell_id(c))
                        .contains(&seg.id),
                    "segment {} missing from raster",
                    seg.id
                );
            }
        }
    }

    #[test]
    fn epsilon_maps_are_cached() {
        let (network, _, index) = setup();
        let a = index.epsilon_maps(&network, 0.5);
        let b = index.epsilon_maps(&network, 0.5);
        assert!(Arc::ptr_eq(&a, &b));
        let c = index.epsilon_maps(&network, 0.7);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(index.epsilon_cache_len(), 2);
    }

    #[test]
    fn epsilon_cache_counters_track_hits_misses_evictions() {
        // The counters are process-global (shared with parallel tests), so
        // assert on deltas with ≥.
        let (network, _, index) = setup();
        let (h0, m0, e0) = crate::obs::epsilon_cache_counters();
        index.epsilon_maps(&network, 0.31); // miss
        index.epsilon_maps(&network, 0.31); // hit
        index.epsilon_maps(&network, 0.31); // hit
        let (h1, m1, _) = crate::obs::epsilon_cache_counters();
        assert!(h1 >= h0 + 2, "repeated-ε lookups must count as hits");
        assert!(m1 > m0, "first lookup must count as a miss");
        // Overflow the LRU: evictions must be counted.
        for i in 1..=EPS_CACHE_CAPACITY + 2 {
            index.epsilon_maps(&network, 0.31 + i as f64 * 0.01);
        }
        let (_, _, e1) = crate::obs::epsilon_cache_counters();
        assert!(e1 >= e0 + 2, "LRU overflow must count evictions");
    }

    #[test]
    fn epsilon_cache_is_bounded_lru() {
        let (network, _, index) = setup();
        let first = index.epsilon_maps(&network, 0.01);
        // Fill the cache past capacity; ε=0.01 is kept hot by re-touching it
        // after each insertion, so the evictions land on the other entries.
        for i in 1..=EPS_CACHE_CAPACITY + 3 {
            index.epsilon_maps(&network, 0.01 + i as f64 * 0.01);
            let again = index.epsilon_maps(&network, 0.01);
            assert!(Arc::ptr_eq(&first, &again), "hot entry was evicted");
        }
        assert_eq!(index.epsilon_cache_len(), EPS_CACHE_CAPACITY);
        // The least recently used ε values are gone: re-requesting one
        // rebuilds (a fresh Arc).
        let rebuilt = index.epsilon_maps(&network, 0.02);
        assert_eq!(rebuilt.eps(), 0.02);
        assert_eq!(index.epsilon_cache_len(), EPS_CACHE_CAPACITY);
        index.clear_epsilon_cache();
        assert_eq!(index.epsilon_cache_len(), 0);
    }

    #[test]
    fn epsilon_cache_reinsert_keeps_first_value_and_counts_no_eviction() {
        // Two threads racing epsilon_maps() for the same ε both miss and
        // both call insert(). The loser's insert must (a) return the
        // winner's maps, (b) leave the cache size unchanged, and (c) not
        // register an LRU eviction — the eviction counter is incremented
        // only next to an entries.remove(), so an unchanged entry set
        // proves the metric stayed flat.
        let (network, _, index) = setup();
        let key = 0.37f64.to_bits();
        let winner = Arc::new(EpsilonMaps::build(&network, &index, 0.37));
        let loser = Arc::new(EpsilonMaps::build(&network, &index, 0.37));

        let mut cache = EpsCache::default();
        // Fill to capacity so any spurious eviction on overwrite would be
        // observable as a shrunken entry set.
        for i in 0..EPS_CACHE_CAPACITY - 1 {
            cache.insert(
                (0.5 + i as f64).to_bits(),
                Arc::new(EpsilonMaps::build(&network, &index, 0.5 + i as f64)),
            );
        }
        let first = cache.insert(key, Arc::clone(&winner));
        assert!(Arc::ptr_eq(&first, &winner));
        assert_eq!(cache.entries.len(), EPS_CACHE_CAPACITY);

        let second = cache.insert(key, Arc::clone(&loser));
        assert!(
            Arc::ptr_eq(&second, &winner),
            "overwrite must keep the first-inserted maps"
        );
        assert_eq!(
            cache.entries.len(),
            EPS_CACHE_CAPACITY,
            "overwrite must not change the cache size"
        );
        // The overwrite refreshed recency: pushing one new entry over
        // capacity evicts the stalest *other* key, never the re-inserted one.
        cache.insert(
            99.0f64.to_bits(),
            Arc::new(EpsilonMaps::build(&network, &index, 99.0)),
        );
        assert_eq!(cache.entries.len(), EPS_CACHE_CAPACITY);
        let survivor = cache.get(key).expect("re-inserted key evicted");
        assert!(Arc::ptr_eq(&survivor, &winner));
        assert!(
            !cache.entries.contains_key(&0.5f64.to_bits()),
            "the LRU victim must be the oldest untouched key"
        );
    }

    /// Asserts full structural equality of two indexes, comparing floats by
    /// bit pattern (builds must be byte-identical across thread counts).
    fn assert_index_identical(a: &PoiIndex, b: &PoiIndex) {
        assert_eq!(a.num_occupied_cells(), b.num_occupied_cells());
        let mut cell_ids: Vec<CellId> = a.cells.keys().copied().collect();
        cell_ids.sort_unstable();
        for id in cell_ids {
            let ca = a.cell(id).expect("cell in a");
            let cb = b.cell(id).expect("cell in b");
            assert_eq!(ca.pois, cb.pois, "cell {id:?} pois");
            assert_eq!(
                ca.total_weight.to_bits(),
                cb.total_weight.to_bits(),
                "cell {id:?} weight"
            );
            let mut kws: Vec<KeywordId> = ca.inverted.iter().map(|(k, _)| k).collect();
            kws.sort_unstable();
            assert_eq!(ca.inverted.num_keywords(), cb.inverted.num_keywords());
            assert_eq!(ca.inverted.num_documents(), cb.inverted.num_documents());
            for k in kws {
                assert_eq!(ca.inverted.postings(k), cb.inverted.postings(k));
            }
        }
        let mut gks: Vec<KeywordId> = a.global.keys().copied().collect();
        gks.sort_unstable();
        assert_eq!(a.global.len(), b.global.len());
        for k in gks {
            let ga = a.global_postings(k);
            let gb = b.global_postings(k);
            assert_eq!(ga.len(), gb.len(), "global {k:?}");
            for (x, y) in ga.iter().zip(gb) {
                assert_eq!(x.0, y.0, "global {k:?} cell");
                assert_eq!(x.1.to_bits(), y.1.to_bits(), "global {k:?} weight");
            }
        }
        assert_eq!(a.segments_by_len, b.segments_by_len);
        let mut rks: Vec<CellId> = a.raster.keys().copied().collect();
        rks.sort_unstable();
        assert_eq!(a.raster.len(), b.raster.len());
        for c in rks {
            assert_eq!(a.raster_segments_of_cell(c), b.raster_segments_of_cell(c));
        }
    }

    /// A denser grid-city fixture than `setup()`, large enough that every
    /// parallel phase actually splits into multiple chunks.
    fn dense_fixture() -> (RoadNetwork, PoiCollection) {
        let mut b = RoadNetwork::builder();
        for i in 0..12 {
            let y = i as f64;
            b.add_street_from_points(
                format!("H{i}"),
                &[Point::new(0.0, y), Point::new(6.0, y), Point::new(12.0, y)],
            );
            b.add_street_from_points(
                format!("V{i}"),
                &[Point::new(y, 0.0), Point::new(y, 6.0), Point::new(y, 12.0)],
            );
        }
        let network = b.build().unwrap();
        let mut pois = PoiCollection::new();
        let mut x: u64 = 0x9E37_79B9_7F4A_7C15;
        for i in 0..600 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let px = (x % 1200) as f64 / 100.0;
            let py = ((x >> 17) % 1200) as f64 / 100.0;
            let k1 = (x % 7) as u32;
            let k2 = ((x >> 11) % 7) as u32;
            let weight = 1.0 + (i % 3) as f64 * 0.5;
            pois.add_weighted(Point::new(px, py), kws(&[k1, k2]), weight);
        }
        (network, pois)
    }

    #[test]
    fn parallel_build_identical_to_sequential() {
        let (network, pois) = dense_fixture();
        let sequential = PoiIndex::build_with_threads(&network, &pois, 0.75, 1);
        for threads in [2usize, 3, 8] {
            let parallel = PoiIndex::build_with_threads(&network, &pois, 0.75, threads);
            assert_index_identical(&sequential, &parallel);
        }
        // The default entry point must agree as well, whatever thread count
        // it resolves to.
        let auto = PoiIndex::build(&network, &pois, 0.75);
        assert_index_identical(&sequential, &auto);
    }

    #[test]
    fn into_helpers_match_allocating_forms() {
        let (network, _, index) = setup();
        let mut cells_buf = vec![CellId(999); 4];
        let mut segs_buf = vec![SegmentId(999); 4];
        for seg in network.segments() {
            index.occupied_cells_near_segment_into(&seg.geom, 0.7, &mut cells_buf);
            assert_eq!(cells_buf, index.occupied_cells_near_segment(&seg.geom, 0.7));
        }
        for (cell, _) in index.occupied_cells() {
            index.segments_near_cell_superset_into(cell, 0.7, &mut segs_buf);
            assert_eq!(segs_buf, index.segments_near_cell_superset(cell, 0.7));
        }
    }

    #[test]
    fn empty_dataset_builds() {
        let network = RoadNetwork::builder().build().unwrap();
        let pois = PoiCollection::new();
        let index = PoiIndex::build(&network, &pois, 1.0);
        assert_eq!(index.num_occupied_cells(), 0);
        assert!(index.segments_by_len().is_empty());
    }
}
