//! The POI grid index (paper Sec. 3.2.1).

use parking_lot::RwLock;
use soi_common::{CellId, FxHashMap, KeywordId, PoiId, SegmentId};
use soi_data::PoiCollection;
use soi_geo::{Grid, Point, Rect};
use soi_network::RoadNetwork;
use soi_text::{InvertedIndex, KeywordSet};
use std::sync::Arc;

use crate::epsilon::EpsilonMaps;

/// One occupied grid cell of the POI index.
#[derive(Debug, Clone)]
pub struct PoiCell {
    /// POIs located in this cell, sorted by id.
    pub pois: Vec<PoiId>,
    /// Total POI weight in the cell (`|Pc|` with unit weights).
    pub total_weight: f64,
    /// Local inverted index: keyword → POIs in this cell, sorted by id.
    pub inverted: InvertedIndex<PoiId>,
}

/// The spatio-textual POI index of Section 3.2.1.
///
/// Holds the five offline structures the SOI algorithm needs:
/// 1. the spatial grid with per-cell local inverted indexes;
/// 2. the global inverted index (keyword → `(cell, count)` sorted
///    decreasingly on count);
/// 3. the raster cell-to-segment map (segments passing through each cell);
/// 4. the raster segment-to-cell map;
/// 5. the list of segments sorted increasingly on length.
///
/// The ε-augmented versions of maps (3) and (4) are built at query time by
/// [`EpsilonMaps`] and cached here per ε value.
#[derive(Debug)]
pub struct PoiIndex {
    grid: Grid,
    cells: FxHashMap<CellId, PoiCell>,
    /// keyword → (cell, summed weight of POIs with that keyword), desc.
    global: FxHashMap<KeywordId, Vec<(CellId, f64)>>,
    /// Segments sorted increasingly by length (the basis of SL3).
    segments_by_len: Vec<SegmentId>,
    /// The static raster cell-to-segment map (Sec. 3.2.1): segments passing
    /// through each cell (occupied or not), built offline. The ε-augmented
    /// `Lε(c)` is derived from it lazily at query time.
    raster: FxHashMap<CellId, Vec<SegmentId>>,
    /// Per-ε cache of augmented maps (street segments and POIs are static).
    eps_cache: RwLock<FxHashMap<u64, Arc<EpsilonMaps>>>,
}

impl PoiIndex {
    /// Builds the index over `pois` with the given grid `cell_size`, for the
    /// road network `network`.
    ///
    /// The grid covers the union of the network and POI extents so that every
    /// POI falls into exactly one cell.
    ///
    /// # Panics
    /// Panics if `cell_size` is not strictly positive.
    pub fn build(network: &RoadNetwork, pois: &PoiCollection, cell_size: f64) -> Self {
        let extent = match (network.extent(), pois.extent()) {
            (Some(a), Some(b)) => a.union(&b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => Rect::new(Point::ORIGIN, Point::new(1.0, 1.0)),
        };
        let grid = Grid::covering(extent, cell_size);

        // Populate cells. POIs are iterated in id order, keeping per-cell
        // lists and postings sorted by id without extra sorting.
        let mut cells: FxHashMap<CellId, PoiCell> = FxHashMap::default();
        for poi in pois.iter() {
            let Some(coord) = grid.cell_containing(poi.pos) else {
                continue; // outside the grid (non-finite position): unindexable
            };
            let cell = cells.entry(grid.cell_id(coord)).or_insert_with(|| PoiCell {
                pois: Vec::new(),
                total_weight: 0.0,
                inverted: InvertedIndex::new(),
            });
            cell.pois.push(poi.id);
            cell.total_weight += poi.weight;
            cell.inverted.add_document(poi.id, poi.keywords.iter());
        }

        // Global inverted index: per keyword, the weighted count per cell,
        // sorted decreasingly on count (ties: ascending cell id, for
        // determinism).
        let mut global: FxHashMap<KeywordId, Vec<(CellId, f64)>> = FxHashMap::default();
        for (&cell_id, cell) in &cells {
            for (k, postings) in cell.inverted.iter() {
                let weight: f64 = postings.iter().map(|&p| pois.get(p).weight).sum();
                global.entry(k).or_default().push((cell_id, weight));
            }
        }
        for list in global.values_mut() {
            list.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        }

        // Static raster map: which segments pass through which cells.
        let mut raster: FxHashMap<CellId, Vec<SegmentId>> = FxHashMap::default();
        for seg in network.segments() {
            for coord in grid.cells_near_segment(&seg.geom, 0.0) {
                raster.entry(grid.cell_id(coord)).or_default().push(seg.id);
            }
        }

        let mut segments_by_len: Vec<SegmentId> = network.segments().iter().map(|s| s.id).collect();
        segments_by_len.sort_by(|&a, &b| {
            network
                .segment(a)
                .len()
                .total_cmp(&network.segment(b).len())
                .then_with(|| a.cmp(&b))
        });

        Self {
            grid,
            cells,
            global,
            segments_by_len,
            raster,
            eps_cache: RwLock::new(FxHashMap::default()),
        }
    }

    /// Incrementally inserts a POI added to the collection after the index
    /// was built (the paper's structures are "created and maintained
    /// offline"; this is the maintenance path).
    ///
    /// POIs must be inserted in ascending id order (postings stay sorted),
    /// and the location must lie within the grid extent fixed at build
    /// time. Cached ε-maps are invalidated, since the set of occupied cells
    /// may have grown.
    ///
    /// # Errors
    /// Rejects positions outside the grid extent.
    pub fn insert(&mut self, poi: &soi_data::Poi) -> soi_common::Result<()> {
        let coord = self.grid.cell_containing(poi.pos).ok_or_else(|| {
            soi_common::SoiError::invalid(format!(
                "POI at {} lies outside the index extent; rebuild the index",
                poi.pos
            ))
        })?;
        let id = self.grid.cell_id(coord);
        let cell = self.cells.entry(id).or_insert_with(|| PoiCell {
            pois: Vec::new(),
            total_weight: 0.0,
            inverted: InvertedIndex::new(),
        });
        cell.pois.push(poi.id);
        cell.total_weight += poi.weight;
        cell.inverted.add_document(poi.id, poi.keywords.iter());

        for k in poi.keywords.iter() {
            let list = self.global.entry(k).or_default();
            match list.iter_mut().find(|(c, _)| *c == id) {
                Some(entry) => entry.1 += poi.weight,
                None => list.push((id, poi.weight)),
            }
            list.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        }

        // Newly occupied cells change the ε-augmented maps.
        self.eps_cache.write().clear();
        Ok(())
    }

    /// Segments passing through cell `id` (the static raster map; empty if
    /// no segment crosses the cell).
    pub fn raster_segments_of_cell(&self, id: CellId) -> &[SegmentId] {
        self.raster.get(&id).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Lazy `Cε(ℓ)`: occupied cells within `eps` of `geom`, ascending ids.
    pub fn occupied_cells_near_segment(&self, geom: &soi_geo::LineSeg, eps: f64) -> Vec<CellId> {
        let mut cells: Vec<CellId> = self
            .grid
            .cells_near_segment(geom, eps)
            .into_iter()
            .map(|c| self.grid.cell_id(c))
            .filter(|&c| self.cells.contains_key(&c))
            .collect();
        cells.sort_unstable();
        cells
    }

    /// O(1) upper bound on `|Cε(ℓ)|`: the number of grid cells overlapping
    /// the ε-dilated bounding box of the segment. Used to order SL2 without
    /// rasterising every segment at query time.
    pub fn upper_cell_count(&self, geom: &soi_geo::LineSeg, eps: f64) -> usize {
        self.grid
            .count_cells_in_rect(&geom.bounding_rect().expand(eps))
    }

    /// Lazy `Lε(c)`: all segments within `eps` of cell `id`, ascending,
    /// derived from the static raster map by scanning the Chebyshev ring of
    /// radius `⌈ε/h⌉ + 1` around the cell and filtering by exact distance.
    pub fn segments_within_eps_of_cell(
        &self,
        network: &RoadNetwork,
        id: CellId,
        eps: f64,
    ) -> Vec<SegmentId> {
        let coord = self.grid.coord_of(id);
        let rect = self.grid.cell_rect(coord);
        // A point within eps of the cell lies at most eps beyond the cell
        // boundary, i.e. within floor((eps + h)/h) cells (half-open cells).
        let h = self.grid.cell_size();
        let radius = ((eps + h) / h).floor() as u32;
        let mut out: Vec<SegmentId> = Vec::new();
        for near in self.grid.neighborhood(coord, radius) {
            out.extend_from_slice(self.raster_segments_of_cell(self.grid.cell_id(near)));
        }
        out.sort_unstable();
        out.dedup();
        let dilated = rect.expand(eps);
        out.retain(|&seg| {
            let geom = network.segment(seg).geom;
            dilated.intersects(&geom.bounding_rect()) && rect.within_dist_of_segment(&geom, eps)
        });
        out
    }

    /// Superset of `Lε(c)`: segments passing through the Chebyshev ring that
    /// could reach within `eps` of cell `id`, without the exact distance
    /// filter. Sound for the SOI algorithm's touch semantics (a touched
    /// segment ignores cells outside its own `Cε` list) and ~2× cheaper per
    /// popped cell than [`PoiIndex::segments_within_eps_of_cell`].
    pub fn segments_near_cell_superset(&self, id: CellId, eps: f64) -> Vec<SegmentId> {
        let coord = self.grid.coord_of(id);
        let h = self.grid.cell_size();
        let radius = ((eps + h) / h).floor() as u32;
        let mut out: Vec<SegmentId> = Vec::new();
        for near in self.grid.neighborhood(coord, radius) {
            out.extend_from_slice(self.raster_segments_of_cell(self.grid.cell_id(near)));
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Exact weighted mass of a segment under `query` and `eps`
    /// (Definition 1), with the ε-dilation computed on the fly.
    pub fn segment_mass_lazy(
        &self,
        pois: &PoiCollection,
        network: &RoadNetwork,
        seg: SegmentId,
        query: &KeywordSet,
        eps: f64,
    ) -> f64 {
        let geom = network.segment(seg).geom;
        self.occupied_cells_near_segment(&geom, eps)
            .into_iter()
            .map(|c| self.cell_mass_for_segment(pois, c, &geom, query, eps))
            .sum()
    }

    /// The underlying grid.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// The cell with id `id`, if occupied.
    pub fn cell(&self, id: CellId) -> Option<&PoiCell> {
        self.cells.get(&id)
    }

    /// Number of occupied cells.
    pub fn num_occupied_cells(&self) -> usize {
        self.cells.len()
    }

    /// Iterates over occupied cells in unspecified order.
    pub fn occupied_cells(&self) -> impl Iterator<Item = (CellId, &PoiCell)> {
        self.cells.iter().map(|(&id, c)| (id, c))
    }

    /// The global inverted list for keyword `k`: `(cell, count)` sorted
    /// decreasingly on count. Empty if the keyword occurs nowhere.
    pub fn global_postings(&self, k: KeywordId) -> &[(CellId, f64)] {
        self.global.get(&k).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Segment ids sorted increasingly by segment length (the SL3 order).
    pub fn segments_by_len(&self) -> &[SegmentId] {
        &self.segments_by_len
    }

    /// Returns the ε-augmented cell↔segment maps, building and caching them
    /// on first use for each distinct ε.
    pub fn epsilon_maps(&self, network: &RoadNetwork, eps: f64) -> Arc<EpsilonMaps> {
        let key = eps.to_bits();
        if let Some(maps) = self.eps_cache.read().get(&key) {
            return Arc::clone(maps);
        }
        let maps = Arc::new(EpsilonMaps::build(network, self, eps));
        self.eps_cache
            .write()
            .entry(key)
            .or_insert_with(|| Arc::clone(&maps));
        maps
    }

    /// Drops all cached ε-augmented maps.
    ///
    /// The experiment harness calls this between timed runs so that each
    /// measured query pays the full query-time map augmentation, as in the
    /// paper's methodology.
    pub fn clear_epsilon_cache(&self) {
        self.eps_cache.write().clear();
    }

    /// Upper bound on the weighted number of POIs in cell `id` matching any
    /// keyword of `query`: `min(|Pc|, Σ_ψ I[ψ][c])` (Alg. 1 line 2).
    pub fn cell_relevant_upper(&self, id: CellId, query: &KeywordSet) -> f64 {
        let Some(cell) = self.cells.get(&id) else {
            return 0.0;
        };
        let mut sum = 0.0;
        for k in query.iter() {
            if let Some(list) = self.global.get(&k) {
                // Linear scan is fine: lists are per-keyword and short per
                // cell lookup happens once per SL1 build entry.
                if let Some(&(_, w)) = list.iter().find(|&&(c, _)| c == id) {
                    sum += w;
                }
            }
        }
        sum.min(cell.total_weight)
    }

    /// Exact weighted mass contribution of cell `id` to segment `seg_geom`:
    /// the summed weight of distinct POIs in the cell that match `query` and
    /// lie within `eps` of the segment (Procedure UpdateInterest).
    pub fn cell_mass_for_segment(
        &self,
        pois: &PoiCollection,
        id: CellId,
        seg_geom: &soi_geo::LineSeg,
        query: &KeywordSet,
        eps: f64,
    ) -> f64 {
        let Some(cell) = self.cells.get(&id) else {
            return 0.0;
        };
        let mut mass = 0.0;
        cell.inverted.for_each_matching(query.ids(), |pid| {
            let poi = pois.get(pid);
            if seg_geom.dist_sq_to_point(poi.pos) <= eps * eps {
                mass += poi.weight;
            }
        });
        mass
    }

    /// Exact weighted mass of a whole segment under `query` and `eps`
    /// (Definition 1), computed through the grid.
    pub fn segment_mass(
        &self,
        pois: &PoiCollection,
        network: &RoadNetwork,
        seg: SegmentId,
        query: &KeywordSet,
        maps: &EpsilonMaps,
    ) -> f64 {
        let geom = network.segment(seg).geom;
        maps.cells_of_segment(seg)
            .iter()
            .map(|&c| self.cell_mass_for_segment(pois, c, &geom, query, maps.eps()))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_common::KeywordId;
    use soi_geo::LineSeg;

    fn kws(ids: &[u32]) -> KeywordSet {
        KeywordSet::from_ids(ids.iter().map(|&i| KeywordId(i)))
    }

    /// One horizontal street at y=0 from x=0..10, POIs sprinkled around it.
    fn setup() -> (RoadNetwork, PoiCollection, PoiIndex) {
        let mut b = RoadNetwork::builder();
        b.add_street_from_points(
            "Main",
            &[
                Point::new(0.0, 0.0),
                Point::new(5.0, 0.0),
                Point::new(10.0, 0.0),
            ],
        );
        let network = b.build().unwrap();
        let mut pois = PoiCollection::new();
        pois.add(Point::new(1.0, 0.5), kws(&[0])); // near seg 0
        pois.add(Point::new(1.2, 0.6), kws(&[0, 1])); // near seg 0, same cell as above
        pois.add(Point::new(7.0, -0.5), kws(&[1])); // near seg 1
        pois.add(Point::new(7.0, 9.0), kws(&[0])); // far away
        let index = PoiIndex::build(&network, &pois, 1.0);
        (network, pois, index)
    }

    #[test]
    fn cells_are_populated_sorted() {
        let (_, _, index) = setup();
        assert!(index.num_occupied_cells() >= 3);
        for (_, cell) in index.occupied_cells() {
            let mut sorted = cell.pois.clone();
            sorted.sort();
            assert_eq!(sorted, cell.pois);
            assert!(cell.total_weight >= cell.pois.len() as f64 - 1e-9);
        }
    }

    #[test]
    fn global_postings_sorted_desc() {
        let (_, _, index) = setup();
        let postings = index.global_postings(KeywordId(0));
        assert!(!postings.is_empty());
        for w in postings.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        // Total count across cells for keyword 0 = 3 POIs.
        let total: f64 = postings.iter().map(|&(_, w)| w).sum();
        assert_eq!(total, 3.0);
        assert!(index.global_postings(KeywordId(99)).is_empty());
    }

    #[test]
    fn segments_sorted_by_len() {
        let (network, _, index) = setup();
        let by_len = index.segments_by_len();
        assert_eq!(by_len.len(), 2);
        for w in by_len.windows(2) {
            assert!(network.segment(w[0]).len() <= network.segment(w[1]).len());
        }
    }

    #[test]
    fn cell_relevant_upper_respects_cell_total() {
        let (_, _, index) = setup();
        // POI 0 and 1 are both in the cell at (1, 0.x): keyword 0 appears in
        // both, keyword 1 in one. Upper for {0,1} is min(|Pc|=2, 2+1=3) = 2.
        let coord = index.grid().cell_containing(Point::new(1.0, 0.5)).unwrap();
        let id = index.grid().cell_id(coord);
        assert_eq!(index.cell_relevant_upper(id, &kws(&[0, 1])), 2.0);
        assert_eq!(index.cell_relevant_upper(id, &kws(&[0])), 2.0);
        assert_eq!(index.cell_relevant_upper(id, &kws(&[1])), 1.0);
        assert_eq!(index.cell_relevant_upper(id, &kws(&[5])), 0.0);
    }

    #[test]
    fn cell_mass_counts_distinct_matching_pois_within_eps() {
        let (_, pois, index) = setup();
        let coord = index.grid().cell_containing(Point::new(1.0, 0.5)).unwrap();
        let id = index.grid().cell_id(coord);
        let seg = LineSeg::new(Point::new(0.0, 0.0), Point::new(5.0, 0.0));
        // eps = 0.65: both POIs within reach; multi-keyword query counts each once.
        assert_eq!(
            index.cell_mass_for_segment(&pois, id, &seg, &kws(&[0, 1]), 0.65),
            2.0
        );
        // eps = 0.55: only the POI at distance 0.5.
        assert_eq!(
            index.cell_mass_for_segment(&pois, id, &seg, &kws(&[0, 1]), 0.55),
            1.0
        );
        // Non-matching query.
        assert_eq!(
            index.cell_mass_for_segment(&pois, id, &seg, &kws(&[7]), 1.0),
            0.0
        );
    }

    #[test]
    fn segment_mass_matches_brute_force() {
        let (network, pois, index) = setup();
        let eps = 0.75;
        let maps = index.epsilon_maps(&network, eps);
        let query = kws(&[0, 1]);
        for seg in network.segments() {
            let brute: f64 = pois
                .iter()
                .filter(|p| p.keywords.intersects(&query))
                .filter(|p| seg.geom.dist_to_point(p.pos) <= eps)
                .map(|p| p.weight)
                .sum();
            let via_index = index.segment_mass(&pois, &network, seg.id, &query, &maps);
            assert_eq!(via_index, brute, "segment {}", seg.id);
        }
    }

    #[test]
    fn lazy_maps_match_eager_epsilon_maps() {
        let (network, _, index) = setup();
        for eps in [0.0, 0.3, 0.75, 1.5] {
            let maps = index.epsilon_maps(&network, eps);
            for seg in network.segments() {
                let lazy = index.occupied_cells_near_segment(&seg.geom, eps);
                assert_eq!(lazy.as_slice(), maps.cells_of_segment(seg.id), "eps {eps}");
                assert!(index.upper_cell_count(&seg.geom, eps) >= lazy.len());
            }
            for (cell, _) in index.occupied_cells() {
                let lazy = index.segments_within_eps_of_cell(&network, cell, eps);
                let mut eager = maps.segments_of_cell(cell).to_vec();
                eager.sort_unstable();
                assert_eq!(lazy, eager, "eps {eps} cell {cell:?}");
            }
        }
    }

    #[test]
    fn segment_mass_lazy_matches_eager() {
        let (network, pois, index) = setup();
        let eps = 0.7;
        let maps = index.epsilon_maps(&network, eps);
        let query = kws(&[0, 1]);
        for seg in network.segments() {
            assert_eq!(
                index.segment_mass_lazy(&pois, &network, seg.id, &query, eps),
                index.segment_mass(&pois, &network, seg.id, &query, &maps)
            );
        }
    }

    #[test]
    fn raster_contains_crossed_cells() {
        let (network, _, index) = setup();
        let grid = index.grid();
        for seg in network.segments() {
            // The midpoint's cell must list the segment.
            if let Some(c) = grid.cell_containing(seg.geom.midpoint()) {
                assert!(
                    index
                        .raster_segments_of_cell(grid.cell_id(c))
                        .contains(&seg.id),
                    "segment {} missing from raster",
                    seg.id
                );
            }
        }
    }

    #[test]
    fn epsilon_maps_are_cached() {
        let (network, _, index) = setup();
        let a = index.epsilon_maps(&network, 0.5);
        let b = index.epsilon_maps(&network, 0.5);
        assert!(Arc::ptr_eq(&a, &b));
        let c = index.epsilon_maps(&network, 0.7);
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn empty_dataset_builds() {
        let network = RoadNetwork::builder().build().unwrap();
        let pois = PoiCollection::new();
        let index = PoiIndex::build(&network, &pois, 1.0);
        assert_eq!(index.num_occupied_cells(), 0);
        assert!(index.segments_by_len().is_empty());
    }
}
