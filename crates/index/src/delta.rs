//! Live-ingestion deltas over the base POI index (the maintenance path of
//! Sec. 3.2.1 generalised to batched inserts *and* deletes).
//!
//! The base structures are build-once and immutable; a [`DeltaIndex`] holds
//! a batch of pending [`DeltaOp`]s in a query-ready form. Queries read
//! through an [`IndexView`](crate::IndexView) that consults the delta
//! alongside the base, and at an epoch boundary the delta is folded into
//! fresh collections ([`DeltaIndex::apply_to`]) and the index rebuilt — by
//! the deterministic-build property, compaction is exactly a rebuild.
//!
//! Bound soundness is preserved by *recomputing* every touched aggregate
//! from scratch in ascending POI order rather than adjusting it in place:
//! the per-(keyword, cell) weights and per-cell totals a sealed delta
//! reports are bit-identical to what a full rebuild over the merged
//! collections would produce, so UB/LBk pruning decisions match the
//! rebuilt index exactly (no float residue from incremental subtraction).
//!
//! Id-space contract: ops address the id space of the epoch they are
//! ingested into. An add receives the next dense id after the base
//! collection (continuing its numbering); a delete may target a base id or
//! a just-added id. Folding reassigns dense ids (base survivors in order,
//! then added survivors), which is why a fold boundary is semantically
//! meaningful and replays must respect the recorded boundaries.

use soi_common::{CellId, FxHashMap, FxHashSet, KeywordId, PhotoId, PoiId, Result, SoiError};
use soi_data::{Photo, PhotoCollection, PhotoView, Poi, PoiCollection, PoiView};
use soi_geo::Point;
use soi_obs::json::{self, Json};
use soi_text::{KeywordSet, Vocabulary};

use crate::poi_index::PoiIndex;

/// One ingestion operation, addressed to the current epoch's id space.
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaOp {
    /// Insert a POI; it receives the next dense id.
    AddPoi {
        /// Location (must lie within the base grid extent when applied
        /// against a live index).
        pos: Point,
        /// Keyword set `Ψp`.
        keywords: KeywordSet,
        /// POI weight (finite, non-negative).
        weight: f64,
    },
    /// Delete the POI with this id (base or previously added this epoch).
    DeletePoi {
        /// Target id in the current epoch's id space.
        id: PoiId,
    },
    /// Insert a photo; it receives the next dense id.
    AddPhoto {
        /// Location.
        pos: Point,
        /// Tag set `Ψr`.
        tags: KeywordSet,
    },
    /// Delete the photo with this id (base or previously added this epoch).
    DeletePhoto {
        /// Target id in the current epoch's id space.
        id: PhotoId,
    },
}

/// Reads a keyword array that may mix strings (resolved through `vocab`)
/// and numeric ids (trusted as-is).
fn parse_keywords(value: &Json, vocab: &Vocabulary, what: &str) -> Result<KeywordSet> {
    let items = value
        .as_arr()
        .ok_or_else(|| SoiError::invalid(format!("{what} must be an array")))?;
    let mut ids = Vec::with_capacity(items.len());
    for item in items {
        match item {
            Json::Str(term) => ids.push(vocab.lookup(term).ok_or_else(|| {
                SoiError::invalid(format!("unknown {what} term {term:?} (not in vocabulary)"))
            })?),
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= f64::from(u32::MAX) => {
                ids.push(KeywordId(*n as u32));
            }
            other => {
                return Err(SoiError::invalid(format!(
                    "{what} entries must be strings or non-negative integers, got {other:?}"
                )))
            }
        }
    }
    Ok(KeywordSet::from_ids(ids))
}

fn field_f64(obj: &Json, key: &str) -> Result<f64> {
    obj.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| SoiError::invalid(format!("missing or non-numeric field {key:?}")))
}

fn field_id(obj: &Json, key: &str) -> Result<u32> {
    let n = field_f64(obj, key)?;
    if n >= 0.0 && n.fract() == 0.0 && n <= f64::from(u32::MAX) {
        Ok(n as u32)
    } else {
        Err(SoiError::invalid(format!(
            "field {key:?} must be a non-negative integer id, got {n}"
        )))
    }
}

impl DeltaOp {
    /// Parses one JSON line of the ingest format.
    ///
    /// ```json
    /// {"op":"add_poi","x":1.0,"y":2.0,"kw":["museum",3],"weight":1.5}
    /// {"op":"del_poi","id":17}
    /// {"op":"add_photo","x":1.0,"y":2.0,"tags":["museum"]}
    /// {"op":"del_photo","id":3}
    /// ```
    ///
    /// Keyword/tag arrays may mix vocabulary terms (strings) and raw
    /// numeric ids; `weight` defaults to 1.0.
    ///
    /// # Errors
    /// Rejects malformed JSON, unknown `op` values, missing fields,
    /// non-finite coordinates or weights, and terms absent from `vocab`.
    pub fn parse_line(line: &str, vocab: &Vocabulary) -> Result<DeltaOp> {
        let doc = json::parse(line)
            .map_err(|e| SoiError::invalid(format!("malformed delta line: {e}")))?;
        let op = doc
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| SoiError::invalid("delta line missing string field \"op\""))?;
        match op {
            "add_poi" => {
                let pos = Point::new(field_f64(&doc, "x")?, field_f64(&doc, "y")?);
                let weight = match doc.get("weight") {
                    None => 1.0,
                    Some(w) => w
                        .as_f64()
                        .ok_or_else(|| SoiError::invalid("field \"weight\" must be a number"))?,
                };
                if !(pos.x.is_finite() && pos.y.is_finite() && weight.is_finite() && weight >= 0.0)
                {
                    return Err(SoiError::invalid(
                        "add_poi requires finite coordinates and a finite non-negative weight",
                    ));
                }
                let keywords = match doc.get("kw") {
                    Some(v) => parse_keywords(v, vocab, "kw")?,
                    None => KeywordSet::empty(),
                };
                Ok(DeltaOp::AddPoi {
                    pos,
                    keywords,
                    weight,
                })
            }
            "del_poi" => Ok(DeltaOp::DeletePoi {
                id: PoiId(field_id(&doc, "id")?),
            }),
            "add_photo" => {
                let pos = Point::new(field_f64(&doc, "x")?, field_f64(&doc, "y")?);
                if !(pos.x.is_finite() && pos.y.is_finite()) {
                    return Err(SoiError::invalid("add_photo requires finite coordinates"));
                }
                let tags = match doc.get("tags") {
                    Some(v) => parse_keywords(v, vocab, "tags")?,
                    None => KeywordSet::empty(),
                };
                Ok(DeltaOp::AddPhoto { pos, tags })
            }
            "del_photo" => Ok(DeltaOp::DeletePhoto {
                id: PhotoId(field_id(&doc, "id")?),
            }),
            other => Err(SoiError::invalid(format!("unknown delta op {other:?}"))),
        }
    }

    /// Parses a whole JSON-lines document (blank lines skipped), reporting
    /// the 1-based line number on the first error.
    ///
    /// # Errors
    /// Propagates the first [`DeltaOp::parse_line`] failure.
    pub fn parse_lines(text: &str, vocab: &Vocabulary) -> Result<Vec<DeltaOp>> {
        let mut ops = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            ops.push(
                Self::parse_line(line, vocab)
                    .map_err(|e| SoiError::invalid(format!("delta line {}: {e}", i + 1)))?,
            );
        }
        Ok(ops)
    }

    /// Renders the op back to its one-line JSON form (the inverse of
    /// [`DeltaOp::parse_line`] with numeric keyword ids).
    pub fn to_json_line(&self) -> String {
        let mut w = json::JsonWriter::object();
        match self {
            DeltaOp::AddPoi {
                pos,
                keywords,
                weight,
            } => {
                w.field_str("op", "add_poi");
                w.field_f64("x", pos.x);
                w.field_f64("y", pos.y);
                let mut kw = json::JsonWriter::array();
                for k in keywords.iter() {
                    kw.elem_f64(f64::from(k.0));
                }
                w.field_raw("kw", &kw.finish());
                w.field_f64("weight", *weight);
            }
            DeltaOp::DeletePoi { id } => {
                w.field_str("op", "del_poi");
                w.field_u64("id", u64::from(id.0));
            }
            DeltaOp::AddPhoto { pos, tags } => {
                w.field_str("op", "add_photo");
                w.field_f64("x", pos.x);
                w.field_f64("y", pos.y);
                let mut tg = json::JsonWriter::array();
                for k in tags.iter() {
                    tg.elem_f64(f64::from(k.0));
                }
                w.field_raw("tags", &tg.finish());
            }
            DeltaOp::DeletePhoto { id } => {
                w.field_str("op", "del_photo");
                w.field_u64("id", u64::from(id.0));
            }
        }
        w.finish()
    }
}

/// The validated, materialised form of an op batch: added rows with their
/// assigned ids plus the delete sets. Shared by [`DeltaIndex::seal`] and
/// [`fold_ops`] so the live path and the replay path agree op-for-op.
struct Materialized {
    added_pois: Vec<Poi>,
    deleted_pois: FxHashSet<PoiId>,
    added_photos: Vec<Photo>,
    deleted_photos: FxHashSet<PhotoId>,
}

/// Validates `ops` against the (base_pois, base_photos) id space and
/// materialises them. `index` (when present) additionally rejects POI adds
/// outside the live grid extent, matching [`PoiIndex::insert`]; replay
/// through [`fold_ops`] has no live grid, and relies on the serving layer
/// having validated every logged op before appending it.
fn materialize(
    num_base_pois: usize,
    num_base_photos: usize,
    index: Option<&PoiIndex>,
    ops: &[DeltaOp],
) -> Result<Materialized> {
    let mut m = Materialized {
        added_pois: Vec::new(),
        deleted_pois: FxHashSet::default(),
        added_photos: Vec::new(),
        deleted_photos: FxHashSet::default(),
    };
    for (i, op) in ops.iter().enumerate() {
        let at = |e: SoiError| SoiError::invalid(format!("delta op {}: {e}", i + 1));
        match op {
            DeltaOp::AddPoi {
                pos,
                keywords,
                weight,
            } => {
                if !(pos.x.is_finite() && pos.y.is_finite() && weight.is_finite() && *weight >= 0.0)
                {
                    return Err(at(SoiError::invalid(
                        "non-finite coordinates or invalid weight",
                    )));
                }
                if let Some(idx) = index {
                    if idx.grid().cell_containing(*pos).is_none() {
                        return Err(at(SoiError::invalid(format!(
                            "POI at {pos} lies outside the index extent"
                        ))));
                    }
                }
                let id = PoiId::from_index(num_base_pois + m.added_pois.len());
                m.added_pois.push(Poi {
                    id,
                    pos: *pos,
                    keywords: keywords.clone(),
                    weight: *weight,
                });
            }
            DeltaOp::DeletePoi { id } => {
                if id.index() >= num_base_pois + m.added_pois.len() {
                    return Err(at(SoiError::invalid(format!(
                        "POI id {} out of range (epoch holds {} POIs)",
                        id.0,
                        num_base_pois + m.added_pois.len()
                    ))));
                }
                if !m.deleted_pois.insert(*id) {
                    return Err(at(SoiError::invalid(format!(
                        "POI id {} already deleted in this delta",
                        id.0
                    ))));
                }
            }
            DeltaOp::AddPhoto { pos, tags } => {
                if !(pos.x.is_finite() && pos.y.is_finite()) {
                    return Err(at(SoiError::invalid("non-finite coordinates")));
                }
                let id = PhotoId::from_index(num_base_photos + m.added_photos.len());
                m.added_photos.push(Photo {
                    id,
                    pos: *pos,
                    tags: tags.clone(),
                });
            }
            DeltaOp::DeletePhoto { id } => {
                if id.index() >= num_base_photos + m.added_photos.len() {
                    return Err(at(SoiError::invalid(format!(
                        "photo id {} out of range (epoch holds {} photos)",
                        id.0,
                        num_base_photos + m.added_photos.len()
                    ))));
                }
                if !m.deleted_photos.insert(*id) {
                    return Err(at(SoiError::invalid(format!(
                        "photo id {} already deleted in this delta",
                        id.0
                    ))));
                }
            }
        }
    }
    Ok(m)
}

/// Folds survivors into fresh dense collections: base rows in id order
/// (skipping deletes), then added rows in id order (skipping deletes).
/// Weights and positions are copied bit-for-bit, so an index rebuilt over
/// the result is byte-identical to one rebuilt over any equivalent fold.
fn fold(
    base_pois: &PoiCollection,
    base_photos: &PhotoCollection,
    m: &Materialized,
) -> (PoiCollection, PhotoCollection) {
    let mut pois = PoiCollection::new();
    for p in base_pois.iter().chain(m.added_pois.iter()) {
        if !m.deleted_pois.contains(&p.id) {
            pois.add_weighted(p.pos, p.keywords.clone(), p.weight);
        }
    }
    let mut photos = PhotoCollection::new();
    for r in base_photos.iter().chain(m.added_photos.iter()) {
        if !m.deleted_photos.contains(&r.id) {
            photos.add(r.pos, r.tags.clone());
        }
    }
    (pois, photos)
}

/// Applies one validated op batch to the collections, returning the merged
/// (dense-id) collections. This is the replay/compaction primitive: ids in
/// `ops` address the id space of the *input* collections, and the output
/// reassigns dense ids, so successive batches must be folded at exactly
/// the recorded epoch boundaries.
///
/// # Errors
/// Rejects ops referencing out-of-range ids, double deletes, or
/// non-finite values. The fold is atomic: on error the inputs are
/// untouched and nothing is returned.
pub fn fold_ops(
    pois: &PoiCollection,
    photos: &PhotoCollection,
    ops: &[DeltaOp],
) -> Result<(PoiCollection, PhotoCollection)> {
    let m = materialize(pois.len(), photos.len(), None, ops)?;
    Ok(fold(pois, photos, &m))
}

/// Per-cell state of a sealed delta: the surviving added POIs located in
/// the cell (ascending id) and the recomputed merged total weight.
#[derive(Debug, Default, Clone)]
struct DeltaCell {
    added: Vec<PoiId>,
    total_weight: f64,
}

/// An immutable, query-ready batch of pending ops (the "sealed" delta).
///
/// Sealing validates the whole batch atomically against the base epoch and
/// precomputes everything the read path needs: per-cell added-POI lists,
/// merged per-cell weight totals, and full replacement global-postings
/// lists for every touched keyword. All aggregates are recomputed from
/// scratch in ascending POI order (see module docs), so bounds read
/// through a view are exactly the rebuilt index's bounds.
#[derive(Debug)]
pub struct DeltaIndex {
    num_base_pois: usize,
    num_base_photos: usize,
    added_pois: Vec<Poi>,
    deleted_pois: FxHashSet<PoiId>,
    added_photos: Vec<Photo>,
    deleted_photos: FxHashSet<PhotoId>,
    /// Cell → surviving added POIs + merged total weight, for every cell
    /// touched by an add or a delete.
    cells: FxHashMap<CellId, DeltaCell>,
    /// Keyword → full replacement global-postings list, for every keyword
    /// carried by an added or deleted POI.
    global: FxHashMap<KeywordId, Vec<(CellId, f64)>>,
    /// Delta-occupied cells that are unoccupied in the base, ascending.
    new_cells: Vec<CellId>,
    ops: usize,
}

impl DeltaIndex {
    /// Seals `ops` into a query-ready delta against the base epoch.
    ///
    /// # Errors
    /// Rejects the whole batch (leaving nothing sealed) if any op is
    /// invalid: POI adds outside the base grid extent, out-of-range or
    /// doubled deletes, or non-finite values.
    pub fn seal(
        base_index: &PoiIndex,
        base_pois: &PoiCollection,
        base_photos: &PhotoCollection,
        ops: &[DeltaOp],
    ) -> Result<DeltaIndex> {
        let m = materialize(base_pois.len(), base_photos.len(), Some(base_index), ops)?;
        let grid = base_index.grid();
        let cell_of = |pos: Point| grid.cell_containing(pos).map(|c| grid.cell_id(c));

        // Touched aggregates: the cell and keywords of every added POI and
        // every deleted POI (base or added).
        let mut touched_cells: FxHashSet<CellId> = FxHashSet::default();
        let mut touched_kws: FxHashSet<KeywordId> = FxHashSet::default();
        let poi_by_id = |id: PoiId| -> &Poi {
            if id.index() < base_pois.len() {
                base_pois.get(id)
            } else {
                &m.added_pois[id.index() - base_pois.len()]
            }
        };
        for p in &m.added_pois {
            if let Some(c) = cell_of(p.pos) {
                touched_cells.insert(c);
            }
            touched_kws.extend(p.keywords.iter());
        }
        for &id in &m.deleted_pois {
            let p = poi_by_id(id);
            if let Some(c) = cell_of(p.pos) {
                touched_cells.insert(c);
            }
            touched_kws.extend(p.keywords.iter());
        }

        // Surviving added POIs per cell, ascending by id (added_pois is
        // already id-ascending).
        let mut cells: FxHashMap<CellId, DeltaCell> = FxHashMap::default();
        for p in &m.added_pois {
            if m.deleted_pois.contains(&p.id) {
                continue;
            }
            if let Some(c) = cell_of(p.pos) {
                cells.entry(c).or_default().added.push(p.id);
            }
        }

        // Merged total weight per touched cell, recomputed from scratch in
        // ascending id order: base survivors, then added survivors — the
        // exact order a rebuild over the folded collections sums in.
        let mut touched_cells_sorted: Vec<CellId> = touched_cells.iter().copied().collect();
        touched_cells_sorted.sort_unstable();
        for &c in &touched_cells_sorted {
            let mut total = 0.0;
            if let Some(cell) = base_index.cell(c) {
                for &pid in &cell.pois {
                    if !m.deleted_pois.contains(&pid) {
                        total += base_pois.get(pid).weight;
                    }
                }
            }
            let entry = cells.entry(c).or_default();
            for &pid in &entry.added {
                total += m.added_pois[pid.index() - base_pois.len()].weight;
            }
            entry.total_weight = total;
        }

        // Replacement global lists for touched keywords. Untouched (k, c)
        // entries are copied bit-for-bit from the base; touched entries are
        // recomputed in merged ascending-POI order and dropped when no
        // matching POI survives (exactly the rebuilt index's entry set).
        let recompute = |k: KeywordId, c: CellId| -> (f64, usize) {
            let mut w = 0.0;
            let mut n = 0usize;
            if let Some(cell) = base_index.cell(c) {
                for &pid in cell.inverted.postings(k) {
                    if !m.deleted_pois.contains(&pid) {
                        w += base_pois.get(pid).weight;
                        n += 1;
                    }
                }
            }
            if let Some(dc) = cells.get(&c) {
                for &pid in &dc.added {
                    let p = &m.added_pois[pid.index() - base_pois.len()];
                    if p.keywords.contains(k) {
                        w += p.weight;
                        n += 1;
                    }
                }
            }
            (w, n)
        };
        let mut touched_kws_sorted: Vec<KeywordId> = touched_kws.iter().copied().collect();
        touched_kws_sorted.sort_unstable();
        let mut global: FxHashMap<KeywordId, Vec<(CellId, f64)>> = FxHashMap::default();
        for &k in &touched_kws_sorted {
            let base_list = base_index.global_postings(k);
            let mut list: Vec<(CellId, f64)> = Vec::with_capacity(base_list.len());
            for &(c, w) in base_list {
                if touched_cells.contains(&c) {
                    let (nw, n) = recompute(k, c);
                    if n > 0 {
                        list.push((c, nw));
                    }
                } else {
                    list.push((c, w));
                }
            }
            for &c in &touched_cells_sorted {
                if base_list.iter().any(|&(bc, _)| bc == c) {
                    continue;
                }
                let (nw, n) = recompute(k, c);
                if n > 0 {
                    list.push((c, nw));
                }
            }
            // The insert/maintenance order: weight desc, cell asc.
            list.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            global.insert(k, list);
        }

        let mut new_cells: Vec<CellId> = cells
            .keys()
            .copied()
            .filter(|&c| base_index.cell(c).is_none())
            .collect();
        new_cells.sort_unstable();

        Ok(DeltaIndex {
            num_base_pois: base_pois.len(),
            num_base_photos: base_photos.len(),
            added_pois: m.added_pois,
            deleted_pois: m.deleted_pois,
            added_photos: m.added_photos,
            deleted_photos: m.deleted_photos,
            cells,
            global,
            new_cells,
            ops: ops.len(),
        })
    }

    /// Number of ops sealed into this delta.
    pub fn num_ops(&self) -> usize {
        self.ops
    }

    /// Added POIs in id order (including ones tombstoned later in the same
    /// delta, so id lookups through a view stay dense).
    pub fn added_pois(&self) -> &[Poi] {
        &self.added_pois
    }

    /// Added photos in id order (including tombstoned ones).
    pub fn added_photos(&self) -> &[Photo] {
        &self.added_photos
    }

    /// Number of deleted POIs (base or added).
    pub fn num_deleted_pois(&self) -> usize {
        self.deleted_pois.len()
    }

    /// Number of deleted photos (base or added).
    pub fn num_deleted_photos(&self) -> usize {
        self.deleted_photos.len()
    }

    /// Whether POI `id` is deleted in this delta.
    #[inline]
    pub fn poi_deleted(&self, id: PoiId) -> bool {
        !self.deleted_pois.is_empty() && self.deleted_pois.contains(&id)
    }

    /// Whether photo `id` is deleted in this delta.
    #[inline]
    pub fn photo_deleted(&self, id: PhotoId) -> bool {
        !self.deleted_photos.is_empty() && self.deleted_photos.contains(&id)
    }

    /// The replacement global-postings list for keyword `k`, if this delta
    /// touched it.
    pub fn global_postings(&self, k: KeywordId) -> Option<&[(CellId, f64)]> {
        self.global.get(&k).map(Vec::as_slice)
    }

    /// The merged total weight of cell `c`, if this delta touched it.
    pub fn cell_total_weight(&self, c: CellId) -> Option<f64> {
        self.cells.get(&c).map(|dc| dc.total_weight)
    }

    /// Surviving added POIs located in cell `c`, ascending by id.
    pub fn cell_added_pois(&self, c: CellId) -> &[PoiId] {
        self.cells
            .get(&c)
            .map(|dc| dc.added.as_slice())
            .unwrap_or(&[])
    }

    /// Whether `c` is occupied by this delta but not by the base.
    #[inline]
    pub fn occupies_new_cell(&self, c: CellId) -> bool {
        self.new_cells.binary_search(&c).is_ok()
    }

    /// A [`PoiView`] over `base` extended by this delta's added POIs.
    ///
    /// `base` must be the collection the delta was sealed against.
    pub fn poi_view<'a>(&'a self, base: &'a PoiCollection) -> PoiView<'a> {
        debug_assert_eq!(base.len(), self.num_base_pois);
        PoiView::new(base, &self.added_pois)
    }

    /// A [`PhotoView`] over `base` extended by this delta's added photos.
    pub fn photo_view<'a>(&'a self, base: &'a PhotoCollection) -> PhotoView<'a> {
        debug_assert_eq!(base.len(), self.num_base_photos);
        PhotoView::new(base, &self.added_photos)
    }

    /// Folds this delta into fresh dense collections (the compaction
    /// primitive): base survivors in id order, then added survivors.
    /// Rebuilding the index over the result is byte-identical to a full
    /// rebuild over an equivalently folded dataset.
    pub fn apply_to(
        &self,
        base_pois: &PoiCollection,
        base_photos: &PhotoCollection,
    ) -> (PoiCollection, PhotoCollection) {
        let m = Materialized {
            added_pois: self.added_pois.clone(),
            deleted_pois: self.deleted_pois.clone(),
            added_photos: self.added_photos.clone(),
            deleted_photos: self.deleted_photos.clone(),
        };
        fold(base_pois, base_photos, &m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vocab() -> Vocabulary {
        let mut v = Vocabulary::default();
        v.intern("museum");
        v.intern("art");
        v
    }

    #[test]
    fn parse_round_trips_all_ops() {
        let v = vocab();
        let lines = concat!(
            "{\"op\":\"add_poi\",\"x\":1.0,\"y\":2.0,\"kw\":[\"museum\",1],\"weight\":1.5}\n",
            "\n",
            "{\"op\":\"del_poi\",\"id\":17}\n",
            "{\"op\":\"add_photo\",\"x\":3.0,\"y\":4.0,\"tags\":[\"art\"]}\n",
            "{\"op\":\"del_photo\",\"id\":3}\n",
        );
        let ops = DeltaOp::parse_lines(lines, &v).unwrap();
        assert_eq!(ops.len(), 4);
        let reparsed: Vec<DeltaOp> = ops
            .iter()
            .map(|op| DeltaOp::parse_line(&op.to_json_line(), &v).unwrap())
            .collect();
        assert_eq!(ops, reparsed);
        match &ops[0] {
            DeltaOp::AddPoi {
                keywords, weight, ..
            } => {
                assert_eq!(keywords.len(), 2);
                assert_eq!(*weight, 1.5);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_rejects_bad_lines() {
        let v = vocab();
        for bad in [
            "{\"op\":\"warp\"}",
            "{\"x\":1}",
            "{\"op\":\"add_poi\",\"x\":1.0}",
            "{\"op\":\"add_poi\",\"x\":1.0,\"y\":2.0,\"kw\":[\"nope\"]}",
            "{\"op\":\"del_poi\"}",
            "not json",
            "{\"op\":\"add_poi\",\"x\":1.0,\"y\":2.0,\"weight\":-1.0}",
        ] {
            assert!(DeltaOp::parse_line(bad, &v).is_err(), "{bad} accepted");
        }
        // Errors carry the line number.
        let err = DeltaOp::parse_lines("{\"op\":\"del_poi\",\"id\":0}\nnope\n", &v)
            .unwrap_err()
            .to_string();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn fold_ops_validates_atomically() {
        let mut pois = PoiCollection::new();
        pois.add(Point::new(0.5, 0.5), KeywordSet::empty());
        let photos = PhotoCollection::new();
        // Second op references an id out of range: nothing is applied.
        let ops = [
            DeltaOp::DeletePoi {
                id: PoiId::from_index(0),
            },
            DeltaOp::DeletePoi {
                id: PoiId::from_index(5),
            },
        ];
        assert!(fold_ops(&pois, &photos, &ops).is_err());
        // Double delete of the same id is rejected.
        let ops = [
            DeltaOp::DeletePoi {
                id: PoiId::from_index(0),
            },
            DeltaOp::DeletePoi {
                id: PoiId::from_index(0),
            },
        ];
        assert!(fold_ops(&pois, &photos, &ops).is_err());
    }

    #[test]
    fn fold_reassigns_dense_ids() {
        let mut pois = PoiCollection::new();
        for i in 0..4 {
            pois.add_weighted(
                Point::new(i as f64, 0.0),
                KeywordSet::empty(),
                1.0 + i as f64,
            );
        }
        let photos = PhotoCollection::new();
        let ops = [
            DeltaOp::DeletePoi {
                id: PoiId::from_index(1),
            },
            DeltaOp::AddPoi {
                pos: Point::new(9.0, 0.0),
                keywords: KeywordSet::empty(),
                weight: 7.0,
            },
            // Delete the POI just added (id 4 in this epoch's space).
            DeltaOp::DeletePoi {
                id: PoiId::from_index(4),
            },
        ];
        let (folded, _) = fold_ops(&pois, &photos, &ops).unwrap();
        assert_eq!(folded.len(), 3);
        let weights: Vec<f64> = folded.iter().map(|p| p.weight).collect();
        assert_eq!(weights, vec![1.0, 3.0, 4.0]);
        for (i, p) in folded.iter().enumerate() {
            assert_eq!(p.id.index(), i);
        }
    }
}
