//! Epoch-swapped shared state.
//!
//! [`EpochedIndex`] is the swap handle of the live-ingestion design: the
//! serving layer publishes each new epoch (base + sealed delta) by swapping
//! the inner [`Arc`], and query batches *pin* the current epoch once at
//! batch start. Pinned epochs stay alive until their last reader drops the
//! [`Arc`], so in-flight queries never observe a torn state and never
//! contend with writers beyond one uncontended mutex acquisition per pin.

use parking_lot::Mutex;
use std::sync::Arc;

/// A swap handle holding the current epoch's state.
///
/// Readers call [`pin`](Self::pin) once per batch and hold the returned
/// [`Arc`] for the batch's lifetime; writers build the next state off to
/// the side and [`swap`](Self::swap) it in. The mutex guards only the
/// pointer-sized clone/store, so the critical section is a few
/// instructions — there is no lock held while querying or building.
#[derive(Debug)]
pub struct EpochedIndex<T> {
    current: Mutex<Arc<T>>,
}

impl<T> EpochedIndex<T> {
    /// Creates the handle with an initial state (epoch 0).
    pub fn new(state: T) -> Self {
        Self {
            current: Mutex::new(Arc::new(state)),
        }
    }

    /// Pins the current epoch: returns a reference-counted handle that
    /// keeps this epoch's state alive for as long as the caller holds it,
    /// regardless of how many swaps happen meanwhile.
    pub fn pin(&self) -> Arc<T> {
        Arc::clone(&self.current.lock())
    }

    /// Publishes `next` as the current epoch, returning the previous one
    /// (still alive for any reader that pinned it).
    pub fn swap(&self, next: Arc<T>) -> Arc<T> {
        std::mem::replace(&mut *self.current.lock(), next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinned_epoch_survives_swap() {
        let handle = EpochedIndex::new(1u64);
        let pinned = handle.pin();
        let old = handle.swap(Arc::new(2));
        assert_eq!(*old, 1);
        assert_eq!(*pinned, 1, "pinned epoch must keep its state");
        assert_eq!(*handle.pin(), 2);
        drop(pinned);
        assert_eq!(*handle.pin(), 2);
    }

    #[test]
    fn concurrent_pins_see_consistent_states() {
        let handle = Arc::new(EpochedIndex::new(0u64));
        let writer = {
            let handle = Arc::clone(&handle);
            std::thread::spawn(move || {
                for i in 1..=100u64 {
                    handle.swap(Arc::new(i));
                }
            })
        };
        let reader = {
            let handle = Arc::clone(&handle);
            std::thread::spawn(move || {
                let mut last = 0u64;
                for _ in 0..100 {
                    let cur = *handle.pin();
                    assert!(cur >= last, "epochs must be monotone");
                    last = cur;
                }
            })
        };
        writer.join().unwrap();
        reader.join().unwrap();
        assert_eq!(*handle.pin(), 100);
    }
}
